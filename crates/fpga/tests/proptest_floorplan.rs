//! Property-based tests for the floorplanner: placements never overlap,
//! never leave the device, and accounting is exact.

use proptest::prelude::*;
use pscp_fpga::area::Clb;
use pscp_fpga::device::Device;
use pscp_fpga::floorplan::{Block, Floorplan};

fn blocks() -> impl Strategy<Value = Vec<Block>> {
    proptest::collection::vec(1u32..200, 1..12).prop_map(|areas| {
        areas
            .into_iter()
            .enumerate()
            .map(|(i, a)| Block::new(format!("b{i}"), Clb(a)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn placements_disjoint_and_in_bounds(bs in blocks()) {
        for device in [Device::xc4005(), Device::xc4013(), Device::xc4025()] {
            let plan = Floorplan::place(&device, &bs);
            let mut grid =
                vec![vec![false; device.cols as usize]; device.rows as usize];
            for p in &plan.placements {
                prop_assert!(p.x + p.w <= device.cols, "x overflow");
                prop_assert!(p.y + p.h <= device.rows, "y overflow");
                prop_assert!(p.w as u32 * p.h as u32 >= p.block.area.0, "rect too small");
                for y in p.y..p.y + p.h {
                    for x in p.x..p.x + p.w {
                        prop_assert!(
                            !grid[y as usize][x as usize],
                            "overlap at ({x},{y}) on {}",
                            device.name
                        );
                        grid[y as usize][x as usize] = true;
                    }
                }
            }
            // Conservation: every block is either placed or reported.
            prop_assert_eq!(plan.placements.len() + plan.unplaced.len(), bs.len());
            let placed: u32 = plan.placements.iter().map(|p| p.block.area.0).sum();
            prop_assert_eq!(plan.used().0, placed);
        }
    }

    #[test]
    fn small_total_always_fits_big_device(bs in blocks()) {
        let total: u32 = bs.iter().map(|b| b.area.0).sum();
        let device = Device::xc4025();
        // Shelf packing is within 2x of optimal for our shapes; only
        // claim fit when comfortably under half the device.
        prop_assume!(total <= device.clbs() / 2);
        let plan = Floorplan::place(&device, &bs);
        prop_assert!(plan.fits(), "unplaced: {:?} (total {total})", plan.unplaced);
    }

    #[test]
    fn render_never_panics(bs in blocks()) {
        let plan = Floorplan::place(&Device::xc4010(), &bs);
        let text = plan.render();
        prop_assert!(text.contains("floorplan"));
    }
}
