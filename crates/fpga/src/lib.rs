//! XC4000-class FPGA substrate.
//!
//! The paper's target platform is a Xilinx XC4025 ("contains 1024 CLBs",
//! §5, \[12\]). We cannot run the 1994 vendor tools, so this crate
//! models what the evaluation actually reports: **CLB area counts**
//! (Table 4), a **floorplan** (Fig. 8) and a combinational **delay
//! budget** for the 15 MHz reference clock. See DESIGN.md for the
//! substitution rationale.
//!
//! * [`device`] — XC4000 family device table (CLB grids, FF/LUT counts).
//! * [`area`] — CLB cost estimation for logic networks, datapath blocks,
//!   memories and microcode ROMs.
//! * [`floorplan`] — greedy shelf placer producing an ASCII floorplan.
//! * [`timing`] — gate-level delay budget checks.

pub mod area;
pub mod device;
pub mod floorplan;
pub mod timing;

pub use area::Clb;
pub use device::Device;
pub use floorplan::{Block, Floorplan};
