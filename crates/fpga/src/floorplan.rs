//! Greedy macro-block floorplanner (Fig. 8).
//!
//! Blocks are placed as rectangles on the CLB grid with a shelf
//! algorithm: sort by area descending, fill rows left-to-right, open a
//! new shelf when a block does not fit. The result renders as an ASCII
//! floorplan in the spirit of the paper's Fig. 8.

use crate::area::Clb;
use crate::device::Device;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A macro block to place.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Block name (shown in the legend).
    pub name: String,
    /// Area in CLBs.
    pub area: Clb,
}

impl Block {
    /// Creates a block.
    pub fn new(name: impl Into<String>, area: Clb) -> Self {
        Block { name: name.into(), area }
    }
}

/// A placed block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// The block.
    pub block: Block,
    /// Left column.
    pub x: u16,
    /// Top row.
    pub y: u16,
    /// Width in CLBs.
    pub w: u16,
    /// Height in CLBs.
    pub h: u16,
}

/// A finished floorplan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Floorplan {
    /// Target device.
    pub device: Device,
    /// Placements in placement order.
    pub placements: Vec<Placement>,
    /// Blocks that did not fit.
    pub unplaced: Vec<Block>,
}

impl Floorplan {
    /// Places `blocks` on `device`. Returns a floorplan even when some
    /// blocks do not fit (reported in [`Floorplan::unplaced`]).
    pub fn place(device: &Device, blocks: &[Block]) -> Floorplan {
        let mut sorted: Vec<Block> = blocks.to_vec();
        sorted.sort_by(|a, b| b.area.0.cmp(&a.area.0).then(a.name.cmp(&b.name)));

        let cols = device.cols;
        let rows = device.rows;
        let mut placements = Vec::new();
        let mut unplaced = Vec::new();
        // Shelves: (y, height, cursor_x). First-fit over existing
        // shelves, new shelf at the bottom when none fits.
        let mut shelves: Vec<(u16, u16, u16)> = Vec::new();
        let mut bottom: u16 = 0;

        'blocks: for b in sorted {
            if b.area.0 == 0 {
                continue;
            }
            // Large blocks take full-width bands (they would otherwise
            // strand unusable L-shaped leftovers); small blocks stay
            // near-square.
            let w0 = if b.area.0 >= cols as u32 * 6 {
                cols
            } else {
                ((b.area.0 as f64).sqrt().ceil() as u16).clamp(1, cols)
            };
            let h0 = (b.area.0 as u16).div_ceil(w0);

            // 1. Try existing shelves (block reshaped to the shelf
            //    height when that helps).
            #[allow(clippy::needless_range_loop)] // index mutated below
            for i in 0..shelves.len() {
                let (sy, sh, sx) = shelves[i];
                // Fill the shelf's full height: the narrowest footprint
                // wastes no shelf area.
                let h = sh;
                let w = (b.area.0 as u16).div_ceil(h);
                if sx + w <= cols {
                    placements.push(Placement { block: b, x: sx, y: sy, w, h });
                    shelves[i].2 += w;
                    continue 'blocks;
                }
            }
            // 2. Open a new shelf at the bottom, reshaping to the
            //    remaining height when necessary.
            let rem = rows - bottom;
            if rem == 0 {
                unplaced.push(b);
                continue;
            }
            let h = h0.min(rem);
            let w = (b.area.0 as u16).div_ceil(h);
            if w <= cols {
                placements.push(Placement { block: b, x: 0, y: bottom, w, h });
                shelves.push((bottom, h, w));
                bottom += h;
            } else {
                unplaced.push(b);
            }
        }

        Floorplan { device: device.clone(), placements, unplaced }
    }

    /// True when every block was placed.
    pub fn fits(&self) -> bool {
        self.unplaced.is_empty()
    }

    /// Total placed area.
    pub fn used(&self) -> Clb {
        self.placements.iter().map(|p| p.block.area).sum()
    }

    /// Utilisation of the device in percent.
    pub fn utilization(&self) -> f64 {
        100.0 * self.used().0 as f64 / self.device.clbs() as f64
    }

    /// Renders an ASCII floorplan with a legend (one letter per block).
    pub fn render(&self) -> String {
        let cols = self.device.cols as usize;
        let rows = self.device.rows as usize;
        let mut grid = vec![vec!['.'; cols]; rows];
        let letters: Vec<char> =
            "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz".chars().collect();
        for (i, p) in self.placements.iter().enumerate() {
            let ch = letters[i % letters.len()];
            let mut remaining = p.block.area.0;
            'outer: for y in p.y..p.y + p.h {
                for x in p.x..p.x + p.w {
                    if remaining == 0 {
                        break 'outer;
                    }
                    if (y as usize) < rows && (x as usize) < cols {
                        grid[y as usize][x as usize] = ch;
                        remaining -= 1;
                    }
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{} floorplan — {} used ({:.1}%)\n",
            self.device,
            self.used(),
            self.utilization()
        ));
        for row in grid {
            out.push_str(&row.into_iter().collect::<String>());
            out.push('\n');
        }
        out.push('\n');
        for (i, p) in self.placements.iter().enumerate() {
            out.push_str(&format!(
                "  {} = {:<24} {:>4} CLBs at ({:>2},{:>2}) {}x{}\n",
                letters[i % letters.len()],
                p.block.name,
                p.block.area.0,
                p.x,
                p.y,
                p.w,
                p.h
            ));
        }
        for b in &self.unplaced {
            out.push_str(&format!("  ! UNPLACED {} ({})\n", b.name, b.area));
        }
        out
    }
}

impl fmt::Display for Floorplan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(spec: &[(&str, u32)]) -> Vec<Block> {
        spec.iter().map(|(n, a)| Block::new(*n, Clb(*a))).collect()
    }

    #[test]
    fn places_blocks_without_overlap() {
        let d = Device::xc4025();
        let fp = Floorplan::place(&d, &blocks(&[("sla", 70), ("tep0", 350), ("tep1", 350)]));
        assert!(fp.fits());
        // Overlap check via cell claims.
        let mut claimed = vec![vec![false; 32]; 32];
        for p in &fp.placements {
            for y in p.y..p.y + p.h {
                for x in p.x..p.x + p.w {
                    assert!(!claimed[y as usize][x as usize], "overlap at {x},{y}");
                    claimed[y as usize][x as usize] = true;
                }
            }
        }
    }

    #[test]
    fn reports_unplaced_when_too_big() {
        let d = Device::xc4005(); // 196 CLBs
        let fp = Floorplan::place(&d, &blocks(&[("huge", 400)]));
        assert!(!fp.fits());
        assert_eq!(fp.unplaced.len(), 1);
    }

    #[test]
    fn utilization_computed() {
        let d = Device::xc4025();
        let fp = Floorplan::place(&d, &blocks(&[("half", 512)]));
        assert!((fp.utilization() - 50.0).abs() < 0.01);
    }

    #[test]
    fn render_contains_legend() {
        let d = Device::xc4010();
        let fp = Floorplan::place(&d, &blocks(&[("sla", 30), ("tep", 100)]));
        let text = fp.render();
        assert!(text.contains("A = "));
        assert!(text.contains("B = "));
        assert!(text.contains("XC4010"));
        // Grid is rows lines of cols chars.
        let grid_lines: Vec<&str> =
            text.lines().skip(1).take(20).collect();
        assert!(grid_lines.iter().all(|l| l.len() == 20));
    }

    #[test]
    fn zero_area_blocks_skipped() {
        let d = Device::xc4005();
        let fp = Floorplan::place(&d, &blocks(&[("empty", 0), ("real", 10)]));
        assert_eq!(fp.placements.len(), 1);
        assert!(fp.fits());
    }
}
