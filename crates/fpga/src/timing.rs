//! Combinational delay budget for the FPGA target.
//!
//! "Our target platform is based on FPGAs, which requires special
//! consideration … of the attainable system speeds" (§1), and custom
//! instructions must not "become the critical paths inside the TEP"
//! (§3.3). The model: each LUT level costs a fixed delay plus average
//! routing; a clock frequency therefore admits a maximum number of gate
//! levels between registers.

use serde::{Deserialize, Serialize};

/// Delay model for an XC4000-class part (-5 speed grade ballpark).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayModel {
    /// Combinational delay through one CLB function generator, ns.
    pub lut_delay_ns: f64,
    /// Average routing delay per level, ns.
    pub route_delay_ns: f64,
    /// Clock-to-out plus setup overhead, ns.
    pub register_overhead_ns: f64,
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel { lut_delay_ns: 4.5, route_delay_ns: 2.5, register_overhead_ns: 6.0 }
    }
}

impl DelayModel {
    /// Critical-path delay of `levels` gate levels, ns.
    pub fn path_ns(&self, levels: u32) -> f64 {
        self.register_overhead_ns + levels as f64 * (self.lut_delay_ns + self.route_delay_ns)
    }

    /// Maximum gate levels that close timing at `freq_mhz`.
    pub fn max_levels_at(&self, freq_mhz: f64) -> u32 {
        let period = 1000.0 / freq_mhz;
        let budget = period - self.register_overhead_ns;
        if budget <= 0.0 {
            return 0;
        }
        (budget / (self.lut_delay_ns + self.route_delay_ns)).floor() as u32
    }

    /// Whether a path of `levels` levels meets timing at `freq_mhz`.
    pub fn meets(&self, levels: u32, freq_mhz: f64) -> bool {
        self.path_ns(levels) <= 1000.0 / freq_mhz
    }

    /// Maximum clock frequency (MHz) for a design whose longest
    /// register-to-register path has `levels` gate levels.
    pub fn fmax_mhz(&self, levels: u32) -> f64 {
        1000.0 / self.path_ns(levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_mhz_budget_is_generous() {
        let m = DelayModel::default();
        // 15 MHz = 66.7ns period: plenty of levels.
        assert!(m.max_levels_at(15.0) >= 6);
        assert!(m.meets(6, 15.0));
    }

    #[test]
    fn high_frequency_tightens_budget() {
        let m = DelayModel::default();
        assert!(m.max_levels_at(100.0) < m.max_levels_at(15.0));
        assert_eq!(m.max_levels_at(1000.0), 0);
    }

    #[test]
    fn fmax_monotone_in_levels() {
        let m = DelayModel::default();
        assert!(m.fmax_mhz(2) > m.fmax_mhz(8));
    }

    #[test]
    fn meets_consistent_with_fmax() {
        let m = DelayModel::default();
        for levels in 1..10 {
            let f = m.fmax_mhz(levels);
            assert!(m.meets(levels, f - 0.1));
            assert!(!m.meets(levels, f + 1.0));
        }
    }
}
