//! XC4000-family device models.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One FPGA device: a square grid of configurable logic blocks.
///
/// Each XC4000 CLB contains two 4-input function generators plus a
/// third 3-input combiner, two flip-flops, and can alternatively act as
/// 32 bits of LUT RAM.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    /// Device name, e.g. `XC4025`.
    pub name: String,
    /// CLB rows.
    pub rows: u16,
    /// CLB columns.
    pub cols: u16,
}

impl Device {
    /// The paper's target: XC4025, 32x32 = 1024 CLBs.
    pub fn xc4025() -> Self {
        Device { name: "XC4025".into(), rows: 32, cols: 32 }
    }

    /// XC4013, 24x24 = 576 CLBs.
    pub fn xc4013() -> Self {
        Device { name: "XC4013".into(), rows: 24, cols: 24 }
    }

    /// XC4010, 20x20 = 400 CLBs.
    pub fn xc4010() -> Self {
        Device { name: "XC4010".into(), rows: 20, cols: 20 }
    }

    /// XC4005, 14x14 = 196 CLBs.
    pub fn xc4005() -> Self {
        Device { name: "XC4005".into(), rows: 14, cols: 14 }
    }

    /// The whole family, smallest first.
    pub fn family() -> Vec<Device> {
        vec![Device::xc4005(), Device::xc4010(), Device::xc4013(), Device::xc4025()]
    }

    /// Total CLB count.
    pub fn clbs(&self) -> u32 {
        self.rows as u32 * self.cols as u32
    }

    /// Flip-flops available (2 per CLB).
    pub fn flip_flops(&self) -> u32 {
        self.clbs() * 2
    }

    /// LUT-RAM bits available (32 per CLB).
    pub fn ram_bits(&self) -> u32 {
        self.clbs() * 32
    }

    /// The smallest family member with at least `clbs` CLBs.
    pub fn smallest_fitting(clbs: u32) -> Option<Device> {
        Device::family().into_iter().find(|d| d.clbs() >= clbs)
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}x{} = {} CLBs)", self.name, self.rows, self.cols, self.clbs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xc4025_matches_paper() {
        let d = Device::xc4025();
        assert_eq!(d.clbs(), 1024);
        assert_eq!(d.rows, 32);
    }

    #[test]
    fn smallest_fitting_picks_correctly() {
        assert_eq!(Device::smallest_fitting(150).unwrap().name, "XC4005");
        assert_eq!(Device::smallest_fitting(300).unwrap().name, "XC4010");
        assert_eq!(Device::smallest_fitting(800).unwrap().name, "XC4025");
        assert!(Device::smallest_fitting(2000).is_none());
    }

    #[test]
    fn resource_counts() {
        let d = Device::xc4005();
        assert_eq!(d.flip_flops(), 392);
        assert_eq!(d.ram_bits(), 6272);
    }
}
