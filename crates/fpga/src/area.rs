//! CLB area estimation.
//!
//! XC4000 CLB capacity assumptions (see \[12\], The Programmable Logic
//! Data Book): two 4-input function generators + combiner per CLB, two
//! flip-flops per CLB, or 32 bits of LUT RAM per CLB. The estimators
//! here turn logic/datapath/memory structures into CLB counts; the
//! coefficients were calibrated so the paper's example lands near its
//! published Table 4 areas (224 / 421 / 773 CLBs).

use serde::{Deserialize, Serialize};

/// A CLB count.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Clb(pub u32);

impl std::ops::Add for Clb {
    type Output = Clb;
    fn add(self, rhs: Clb) -> Clb {
        Clb(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Clb {
    fn add_assign(&mut self, rhs: Clb) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for Clb {
    fn sum<I: Iterator<Item = Clb>>(iter: I) -> Clb {
        Clb(iter.map(|c| c.0).sum())
    }
}

impl std::fmt::Display for Clb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} CLBs", self.0)
    }
}

/// Maps a multi-level gate network onto 4-input LUTs: a gate of fan-in
/// `k` needs `ceil((k-1)/3)` chained LUTs; two LUTs fit one CLB.
/// `fanins` yields the fan-in of every gate (NOT gates fold into their
/// consumers and should be passed as fan-in 1, costing nothing).
pub fn clbs_for_gates<I: IntoIterator<Item = usize>>(fanins: I) -> Clb {
    let luts: usize = fanins
        .into_iter()
        .map(|k| if k <= 1 { 0 } else { k.saturating_sub(1).div_ceil(3) })
        .sum();
    Clb(luts.div_ceil(2) as u32)
}

/// Flip-flop storage: 2 per CLB.
pub fn clbs_for_flip_flops(bits: u32) -> Clb {
    Clb(bits.div_ceil(2))
}

/// LUT RAM: 32 bits per CLB.
pub fn clbs_for_ram(bits: u32) -> Clb {
    Clb(bits.div_ceil(32))
}

/// ROM (microcode, transition address table): also LUT-based, 32 bits
/// per CLB.
pub fn clbs_for_rom(bits: u32) -> Clb {
    clbs_for_ram(bits)
}

/// A `width`-bit ripple ALU with the standard op set (add/sub/logic):
/// roughly one CLB per bit including operand muxing.
pub fn clbs_for_alu(width: u8) -> Clb {
    Clb(width as u32)
}

/// Shifter block.
pub fn clbs_for_shifter(width: u8) -> Clb {
    Clb((width as u32).div_ceil(2))
}

/// Dedicated comparator.
pub fn clbs_for_comparator(width: u8) -> Clb {
    Clb((width as u32).div_ceil(2))
}

/// Two's-complement negate path.
pub fn clbs_for_twos_complement(width: u8) -> Clb {
    Clb((width as u32).div_ceil(4).max(1))
}

/// Serial multiply/divide unit: datapath (partial remainder/product
/// registers, subtract/add, shift) plus its step controller. This is
/// the big-ticket item that separates the minimal TEP from the M/D TEP.
pub fn clbs_for_muldiv(width: u8) -> Clb {
    Clb(width as u32 * 5 + 10)
}

/// Register file of `regs` registers of `width` bits (flip-flops plus
/// read muxing).
pub fn clbs_for_register_file(regs: u8, width: u8) -> Clb {
    if regs == 0 {
        return Clb(0);
    }
    clbs_for_flip_flops(regs as u32 * width as u32) + Clb(regs as u32)
}

/// One custom fused instruction: extra datapath of `depth` gate levels
/// across `width` bits.
pub fn clbs_for_custom_op(depth: u8, width: u8) -> Clb {
    Clb(((depth as u32) * (width as u32)).div_ceil(4).max(1))
}

/// Port architecture interface: address decode plus data muxing per
/// port.
pub fn clbs_for_ports(port_count: usize) -> Clb {
    Clb(6 + 2 * port_count as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_mapping() {
        // Fan-in 4 gate: 1 LUT. Two of them: 1 CLB.
        assert_eq!(clbs_for_gates([4, 4]), Clb(1));
        // Fan-in 10 gate: ceil(9/3)=3 LUTs -> 2 CLBs.
        assert_eq!(clbs_for_gates([10]), Clb(2));
        // Inverters are free.
        assert_eq!(clbs_for_gates([1, 1, 1]), Clb(0));
        assert_eq!(clbs_for_gates(std::iter::empty()), Clb(0));
    }

    #[test]
    fn memory_mapping() {
        assert_eq!(clbs_for_flip_flops(16), Clb(8));
        assert_eq!(clbs_for_ram(1024), Clb(32));
        assert_eq!(clbs_for_ram(1), Clb(1));
    }

    #[test]
    fn muldiv_dominates_minimal_datapath() {
        let md16 = clbs_for_muldiv(16);
        let alu8 = clbs_for_alu(8);
        assert!(md16.0 > 4 * alu8.0);
    }

    #[test]
    fn clb_arithmetic() {
        let total: Clb = [Clb(3), Clb(4)].into_iter().sum();
        assert_eq!(total, Clb(7));
        assert_eq!(Clb(1) + Clb(2), Clb(3));
    }
}
