//! Property-based differential tests: randomly generated action-language
//! programs must behave identically on the IR interpreter and on the
//! cycle-accurate TEP machine, across every architecture variant — and
//! the static WCET must upper-bound the measured cycles for loop-free
//! programs.

use proptest::prelude::*;
use pscp_action_lang::interp::{Interp, RecordingHost};
use pscp_tep::codegen::{compile_program, CodegenOptions};
use pscp_tep::machine::TepMachine;
use pscp_tep::{TepArch, WcetAnalysis};

/// Random expression over two parameters and small constants.
#[derive(Debug, Clone)]
enum E {
    A,
    B,
    K(i8),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>),
    Shr(Box<E>),
    Neg(Box<E>),
    Lt(Box<E>, Box<E>),
    Eq(Box<E>, Box<E>),
}

impl E {
    fn to_src(&self) -> String {
        match self {
            E::A => "a".into(),
            E::B => "b".into(),
            E::K(k) => format!("({k})"),
            E::Add(x, y) => format!("({} + {})", x.to_src(), y.to_src()),
            E::Sub(x, y) => format!("({} - {})", x.to_src(), y.to_src()),
            E::Mul(x, y) => format!("({} * {})", x.to_src(), y.to_src()),
            // Divisor shaped to be non-zero: |y| + 1.
            E::Div(x, y) => format!(
                "({} / (({}) * (({}) < 0) * (-2) + ({}) + 1))",
                x.to_src(),
                y.to_src(),
                y.to_src(),
                y.to_src()
            ),
            E::And(x, y) => format!("({} & {})", x.to_src(), y.to_src()),
            E::Or(x, y) => format!("({} | {})", x.to_src(), y.to_src()),
            E::Xor(x, y) => format!("({} ^ {})", x.to_src(), y.to_src()),
            E::Shl(x) => format!("({} << 2)", x.to_src()),
            E::Shr(x) => format!("({} >> 1)", x.to_src()),
            E::Neg(x) => format!("(-({}))", x.to_src()),
            E::Lt(x, y) => format!("(({}) < ({}))", x.to_src(), y.to_src()),
            E::Eq(x, y) => format!("(({}) == ({}))", x.to_src(), y.to_src()),
        }
    }
}

fn expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![Just(E::A), Just(E::B), any::<i8>().prop_map(E::K)];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Add(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Sub(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Mul(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Div(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::And(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Or(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Xor(Box::new(x), Box::new(y))),
            inner.clone().prop_map(|x| E::Shl(Box::new(x))),
            inner.clone().prop_map(|x| E::Shr(Box::new(x))),
            inner.clone().prop_map(|x| E::Neg(Box::new(x))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Lt(Box::new(x), Box::new(y))),
            (inner.clone(), inner).prop_map(|(x, y)| E::Eq(Box::new(x), Box::new(y))),
        ]
    })
}

fn archs() -> Vec<TepArch> {
    vec![TepArch::minimal(), TepArch::md16_unoptimized(), TepArch::md16_optimized()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn machine_matches_interpreter(e in expr(), a in -100i64..100, b in -100i64..100) {
        let src = format!("int:16 f(int:16 a, int:16 b) {{ return {}; }}", e.to_src());
        let ir = match pscp_action_lang::compile(&src) {
            Ok(ir) => ir,
            Err(err) => return Err(TestCaseError::fail(format!("compile: {err}\n{src}"))),
        };
        let mut interp = Interp::new(&ir);
        let mut h = RecordingHost::new();
        let expected = match interp.call("f", &[a, b], &mut h) {
            Ok(v) => v,
            // Division by zero can still sneak through the shaping when
            // the divisor expression wraps; skip those cases.
            Err(_) => return Ok(()),
        };
        for arch in archs() {
            let p = compile_program(&ir, &arch, &CodegenOptions::default());
            let mut m = TepMachine::new(&p);
            let mut hm = RecordingHost::new();
            let got = m.call("f", &[a, b], &mut hm);
            match got {
                Ok(v) => prop_assert_eq!(
                    Some(v), expected,
                    "arch w={} muldiv={} opt={}\nsrc: {}",
                    arch.calc.width, arch.calc.muldiv, arch.optimize_code, &src
                ),
                Err(err) => return Err(TestCaseError::fail(format!("machine: {err}\n{src}"))),
            }
        }
    }

    #[test]
    fn wcet_bounds_measured_cycles(e in expr(), a in -50i64..50, b in -50i64..50) {
        let src = format!("int:16 f(int:16 a, int:16 b) {{ return {}; }}", e.to_src());
        let Ok(ir) = pscp_action_lang::compile(&src) else { return Ok(()) };
        for arch in archs() {
            let p = compile_program(&ir, &arch, &CodegenOptions::default());
            let report = WcetAnalysis::new(&arch).analyze(&p);
            let bound = report.of("f").unwrap();
            let mut m = TepMachine::new(&p);
            let mut h = RecordingHost::new();
            if m.call("f", &[a, b], &mut h).is_ok() {
                prop_assert!(
                    m.cycles() <= bound,
                    "measured {} > WCET {} on w={} muldiv={}\nsrc: {}",
                    m.cycles(), bound, arch.calc.width, arch.calc.muldiv, &src
                );
            }
        }
    }

    #[test]
    fn globals_and_conditions_differential(
        vals in proptest::collection::vec(-100i64..100, 1..6),
    ) {
        let src = r#"
            condition OVER;
            int:16 acc;
            int:16 peak;
            void feed(int:16 v) {
                acc = acc + v;
                if (acc > peak) { peak = acc; }
                if (acc < -50) { acc = 0; }
                OVER = peak > 75;
            }
        "#;
        let ir = pscp_action_lang::compile(src).unwrap();
        let mut interp = Interp::new(&ir);
        let mut hi = RecordingHost::new();
        for &v in &vals {
            interp.call("feed", &[v], &mut hi).unwrap();
        }
        for arch in archs() {
            let p = compile_program(&ir, &arch, &CodegenOptions::default());
            let mut m = TepMachine::new(&p);
            let mut hm = RecordingHost::new();
            for &v in &vals {
                m.call("feed", &[v], &mut hm).unwrap();
            }
            prop_assert_eq!(m.global_by_name("acc"), interp.global("acc"));
            prop_assert_eq!(m.global_by_name("peak"), interp.global("peak"));
            prop_assert_eq!(&hm.cond_writes, &hi.cond_writes);
        }
    }
}
