//! The Transition Execution Processor (TEP).
//!
//! §3.2 of the paper: the TEP is a modular, scalable accumulator
//! microcontroller with a Harvard architecture, an on-chip RAM, a
//! calculation unit (accumulator + operand register + ALU), ports for
//! events/conditions/data, and a *microprogrammed* control unit — each
//! assembler-level instruction is a microprogram of 16-bit
//! microinstructions (Table 1).
//!
//! Modules:
//!
//! * [`isa`] — the assembler-level instruction set.
//! * [`arch`] — the architecture description: bus width, calculation-unit
//!   features (M/D, comparator, two's complement, shifter), register-file
//!   size, storage classes, custom instructions.
//! * [`microcode`] — microinstruction format, per-instruction
//!   microprograms, decoder/ROM synthesis, the microcode peephole pass.
//! * [`codegen`] — action-language IR → TEP assembly, parameterised by
//!   the architecture (software mul/div expansion on machines without an
//!   M/D unit, comparator-less compare expansion, custom-instruction
//!   substitution).
//! * [`asm`] — textual assembler listing / disassembler.
//! * [`machine`] — cycle-accurate execution of assembled programs, with
//!   costs taken from the microprogram lengths.
//! * [`timing`] — the per-instruction cost model and static worst-case
//!   execution-time analysis of routines (used by the timing validator).

pub mod arch;
pub mod asm;
pub mod codegen;
pub mod isa;
pub mod machine;
pub mod microcode;
pub mod timing;

pub use arch::{CalcUnit, StorageClass, TepArch};
pub use codegen::{
    compile_program, compile_program_cached, recompile_delta, CacheStats, CodegenCache,
    CodegenDelta, CodegenOptions, TepProgram,
};
pub use machine::{TepDataState, TepMachine};
pub use timing::{CostModel, WcetAnalysis};
