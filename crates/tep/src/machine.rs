//! Cycle-accurate execution of TEP programs.
//!
//! The machine executes assembler-level instructions; each one advances
//! the cycle counter by its microprogram length (scaled for limb
//! expansion) from [`crate::timing::CostModel`]. Ports, conditions and
//! events go through the same [`Host`] trait the IR interpreter uses, so
//! the two can be compared instruction-for-effect in differential tests.

use crate::arch::CustomStep;
use crate::codegen::TepProgram;
use crate::isa::{AluOp, AsmInst, CmpOp, Instr, Storage};
use crate::timing::CostModel;
use pscp_action_lang::interp::Host;
use std::fmt;

/// Runtime errors of the TEP machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TepError {
    /// Division by zero on the hardware M/D unit.
    DivideByZero {
        /// Routine name.
        function: String,
        /// Program counter.
        pc: usize,
    },
    /// Cycle budget exhausted (runaway loop).
    CycleLimit {
        /// The exhausted budget.
        limit: u64,
    },
    /// Call stack exceeded its (generous) bound.
    CallDepth,
    /// Unknown routine name.
    NoSuchFunction(String),
    /// The instruction requires a hardware feature the architecture
    /// lacks (generator bug if it ever fires).
    MissingFeature {
        /// Routine name.
        function: String,
        /// Description of the missing block.
        feature: &'static str,
    },
    /// Memory access out of the configured RAM ranges.
    MemoryFault {
        /// Routine name.
        function: String,
        /// The storage operand that faulted.
        storage: Storage,
    },
}

impl fmt::Display for TepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TepError::DivideByZero { function, pc } => {
                write!(f, "divide by zero in `{function}` at pc {pc}")
            }
            TepError::CycleLimit { limit } => write!(f, "cycle limit {limit} exhausted"),
            TepError::CallDepth => write!(f, "call depth exceeded"),
            TepError::NoSuchFunction(n) => write!(f, "no such routine `{n}`"),
            TepError::MissingFeature { function, feature } => {
                write!(f, "`{function}` needs missing hardware: {feature}")
            }
            TepError::MemoryFault { function, storage } => {
                write!(f, "memory fault in `{function}` at {storage}")
            }
        }
    }
}

impl std::error::Error for TepError {}

/// A snapshot of a [`TepMachine`]'s architecturally visible data
/// state: `ACC`, `OP`, the register file, and both RAM planes.
/// Captured by [`TepMachine::data_state`] and reinstated by
/// [`TepMachine::restore_data_state`]; cycle/retired counters and the
/// program itself are deliberately excluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TepDataState {
    /// Accumulator.
    pub acc: i64,
    /// Second operand register.
    pub op: i64,
    /// Register file contents.
    pub regs: Vec<i64>,
    /// On-chip RAM contents.
    pub iram: Vec<i64>,
    /// External RAM contents.
    pub xram: Vec<i64>,
}

/// The TEP machine state.
#[derive(Debug, Clone)]
pub struct TepMachine<'p> {
    program: &'p TepProgram,
    cost: CostModel,
    /// Accumulator.
    acc: i64,
    /// Second operand register.
    op: i64,
    /// Register file.
    regs: Vec<i64>,
    /// On-chip RAM.
    iram: Vec<i64>,
    /// External RAM.
    xram: Vec<i64>,
    /// Executed cycles.
    cycles: u64,
    /// Executed instructions.
    retired: u64,
    cycle_limit: u64,
    /// Locally batched per-kind retire counts, folded into the global
    /// `pscp_obs::metrics::TEP_INSTR` counters on drop/reset so the
    /// execution loop never touches an atomic.
    kind_counts: [u64; pscp_obs::metrics::TEP_KINDS],
    /// Whether this call sequence records kind counts (sampled from
    /// the obs flag word once per routine call).
    count_kinds: bool,
}

impl<'p> TepMachine<'p> {
    /// Creates a machine with globals initialised to their reset values.
    pub fn new(program: &'p TepProgram) -> Self {
        let arch = &program.arch;
        let mut m = TepMachine {
            program,
            cost: CostModel::new(arch),
            acc: 0,
            op: 0,
            regs: vec![0; arch.register_file.max(1) as usize],
            iram: vec![0; arch.internal_ram_words.max(program.internal_words_used) as usize],
            xram: vec![0; arch.external_ram_words.max(program.external_words_used) as usize],
            cycles: 0,
            retired: 0,
            cycle_limit: 100_000_000,
            kind_counts: [0; pscp_obs::metrics::TEP_KINDS],
            count_kinds: false,
        };
        m.reset_globals();
        m
    }

    /// Overrides the runaway cycle budget.
    pub fn with_cycle_limit(mut self, limit: u64) -> Self {
        self.cycle_limit = limit;
        self
    }

    /// Full power-on reset: zeroes every register and memory word,
    /// clears the cycle and retired counters, and reloads the globals'
    /// reset values. A reset machine behaves byte-identically to one
    /// built by [`TepMachine::new`]; the memory allocations are reused.
    pub fn reset(&mut self) {
        self.flush_kind_counts();
        self.acc = 0;
        self.op = 0;
        self.regs.iter_mut().for_each(|r| *r = 0);
        self.iram.iter_mut().for_each(|w| *w = 0);
        self.xram.iter_mut().for_each(|w| *w = 0);
        self.cycles = 0;
        self.retired = 0;
        self.reset_globals();
    }

    /// Snapshots the architecturally visible data state — everything a
    /// routine can read or write: `ACC`, `OP`, the register file, and
    /// both RAM planes. Cycle/retired counters are *not* part of the
    /// data state; callers that meter costs do so as deltas.
    pub fn data_state(&self) -> TepDataState {
        TepDataState {
            acc: self.acc,
            op: self.op,
            regs: self.regs.clone(),
            iram: self.iram.clone(),
            xram: self.xram.clone(),
        }
    }

    /// Restores a [`data_state`](TepMachine::data_state) snapshot. The
    /// cycle and retired counters are rewound to zero so arbitrarily
    /// many restore-and-step rounds (state-space exploration) never
    /// trip the runaway cycle budget — semantically invisible, since
    /// routine costs are always measured as deltas around a call.
    pub fn restore_data_state(&mut self, s: &TepDataState) {
        self.flush_kind_counts();
        self.acc = s.acc;
        self.op = s.op;
        self.regs.copy_from_slice(&s.regs);
        self.iram.copy_from_slice(&s.iram);
        self.xram.copy_from_slice(&s.xram);
        self.cycles = 0;
        self.retired = 0;
    }

    /// Reinitialises all globals to their reset values.
    pub fn reset_globals(&mut self) {
        for g in &self.program.globals {
            let v = g.init;
            match g.storage {
                Storage::Register(r) => self.regs[r as usize] = v,
                Storage::Internal(a) => self.iram[a as usize] = v,
                Storage::External(a) => self.xram[a as usize] = v,
            }
        }
    }

    /// Total cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Reads a global by its IR slot index.
    pub fn global(&self, slot: usize) -> i64 {
        match self.program.globals[slot].storage {
            Storage::Register(r) => self.regs[r as usize],
            Storage::Internal(a) => self.iram[a as usize],
            Storage::External(a) => self.xram[a as usize],
        }
    }

    /// Reads a global by diagnostic name.
    pub fn global_by_name(&self, name: &str) -> Option<i64> {
        self.program.globals.iter().position(|g| g.name == name).map(|i| self.global(i))
    }

    /// Calls a routine by name with arguments; returns `ACC` (the
    /// return-value register) if the routine returns a value.
    ///
    /// # Errors
    ///
    /// Returns the runtime errors documented on [`TepError`].
    pub fn call<H: Host>(
        &mut self,
        name: &str,
        args: &[i64],
        host: &mut H,
    ) -> Result<i64, TepError> {
        let fi = self
            .program
            .function_index(name)
            .ok_or_else(|| TepError::NoSuchFunction(name.to_string()))?;
        self.call_indexed(fi, args, host)
    }

    /// Calls a routine by index.
    ///
    /// # Errors
    ///
    /// Same as [`TepMachine::call`].
    pub fn call_indexed<H: Host>(
        &mut self,
        fi: u32,
        args: &[i64],
        host: &mut H,
    ) -> Result<i64, TepError> {
        // Spill arguments into the callee frame, as the calling sequence
        // does.
        let f = &self.program.functions[fi as usize];
        for (i, &a) in args.iter().enumerate() {
            let slot = f.frame[i];
            self.write_storage(slot, a, &f.name)?;
        }
        self.count_kinds = pscp_obs::metrics_enabled();
        self.exec(fi, host, 0)?;
        Ok(self.acc)
    }

    /// Folds the locally batched instruction-kind counts into the
    /// global observability counters. Runs automatically on reset and
    /// drop; the counts are not part of the machine's architectural
    /// state (a reset machine stays byte-identical in behaviour to a
    /// fresh one).
    fn flush_kind_counts(&mut self) {
        if self.kind_counts.iter().any(|&n| n > 0) {
            pscp_obs::metrics::flush_tep_instr(&self.kind_counts);
            self.kind_counts = [0; pscp_obs::metrics::TEP_KINDS];
        }
    }

    fn read_storage(&self, s: Storage, fname: &str) -> Result<i64, TepError> {
        // `ok_or_else`, not `ok_or`: the fault value allocates a String
        // and must not be built on the (hot) success path.
        match s {
            Storage::Register(r) => self
                .regs
                .get(r as usize)
                .copied()
                .ok_or_else(|| TepError::MemoryFault { function: fname.into(), storage: s }),
            Storage::Internal(a) => self
                .iram
                .get(a as usize)
                .copied()
                .ok_or_else(|| TepError::MemoryFault { function: fname.into(), storage: s }),
            Storage::External(a) => self
                .xram
                .get(a as usize)
                .copied()
                .ok_or_else(|| TepError::MemoryFault { function: fname.into(), storage: s }),
        }
    }

    fn write_storage(&mut self, s: Storage, v: i64, fname: &str) -> Result<(), TepError> {
        let cell = match s {
            Storage::Register(r) => self.regs.get_mut(r as usize),
            Storage::Internal(a) => self.iram.get_mut(a as usize),
            Storage::External(a) => self.xram.get_mut(a as usize),
        };
        match cell {
            Some(c) => {
                *c = v;
                Ok(())
            }
            None => Err(TepError::MemoryFault { function: fname.into(), storage: s }),
        }
    }

    fn indexed(&self, base: Storage, offset: i64) -> Storage {
        match base {
            Storage::Register(r) => Storage::Register((r as i64 + offset) as u8),
            Storage::Internal(a) => Storage::Internal((a as i64 + offset) as u16),
            Storage::External(a) => Storage::External((a as i64 + offset) as u16),
        }
    }

    fn exec<H: Host>(&mut self, fi: u32, host: &mut H, depth: u32) -> Result<(), TepError> {
        if depth > 64 {
            return Err(TepError::CallDepth);
        }
        let f = &self.program.functions[fi as usize];
        // Borrowed, not cloned: the name is only materialised on the
        // error paths below.
        let fname = f.name.as_str();
        let mut pc = 0usize;
        while pc < f.code.len() {
            let inst: &AsmInst = &f.code[pc];
            self.cycles += self.cost.cost(inst);
            self.retired += 1;
            if self.cycles > self.cycle_limit {
                return Err(TepError::CycleLimit { limit: self.cycle_limit });
            }
            if self.count_kinds {
                self.kind_counts[crate::isa::kind_index(&inst.instr)] += 1;
            }
            match &inst.instr {
                Instr::Nop => {}
                Instr::Ldi(v) => self.acc = inst.wrap(*v),
                Instr::Load(s) => self.acc = self.read_storage(*s, fname)?,
                Instr::Store(s) => {
                    let v = inst.wrap(self.acc);
                    self.write_storage(*s, v, fname)?;
                }
                Instr::LoadIndexed(base) => {
                    let s = self.indexed(*base, self.acc);
                    self.acc = self.read_storage(s, fname)?;
                }
                Instr::StoreIndexed(base) => {
                    let s = self.indexed(*base, self.op);
                    let v = inst.wrap(self.acc);
                    self.write_storage(s, v, fname)?;
                }
                Instr::Tao => self.op = self.acc,
                Instr::Alu(op) => {
                    if !self.program.arch.calc.supports(*op) {
                        return Err(TepError::MissingFeature {
                            function: fname.to_string(),
                            feature: "calculation-unit extension",
                        });
                    }
                    let r = match op {
                        AluOp::Add => self.acc.wrapping_add(self.op),
                        AluOp::Sub => self.acc.wrapping_sub(self.op),
                        AluOp::And => self.acc & self.op,
                        AluOp::Or => self.acc | self.op,
                        AluOp::Xor => self.acc ^ self.op,
                        AluOp::Not => !self.acc,
                        AluOp::Neg => self.acc.wrapping_neg(),
                        AluOp::Shl => self.acc.wrapping_shl((self.op & 63) as u32),
                        AluOp::Shr => {
                            let mask = if inst.width >= 64 {
                                u64::MAX
                            } else {
                                (1u64 << inst.width) - 1
                            };
                            (((self.acc as u64) & mask) >> ((self.op & 63) as u64)) as i64
                        }
                        AluOp::Sar => self.acc.wrapping_shr((self.op & 63) as u32),
                        AluOp::Mul => self.acc.wrapping_mul(self.op),
                        AluOp::Div => {
                            if self.op == 0 {
                                return Err(TepError::DivideByZero { function: fname.to_string(), pc });
                            }
                            self.acc.wrapping_div(self.op)
                        }
                        AluOp::Rem => {
                            if self.op == 0 {
                                return Err(TepError::DivideByZero { function: fname.to_string(), pc });
                            }
                            self.acc.wrapping_rem(self.op)
                        }
                    };
                    self.acc = inst.wrap(r);
                }
                Instr::Cmp { op, signed } => {
                    if !self.program.arch.calc.comparator {
                        return Err(TepError::MissingFeature {
                            function: fname.to_string(),
                            feature: "comparator",
                        });
                    }
                    let _ = signed; // values are held sign-correct in i64
                    let r = match op {
                        CmpOp::Eq => self.acc == self.op,
                        CmpOp::Ne => self.acc != self.op,
                        CmpOp::Lt => self.acc < self.op,
                        CmpOp::Le => self.acc <= self.op,
                    };
                    self.acc = r as i64;
                }
                Instr::Jump(t) => {
                    pc = *t as usize;
                    continue;
                }
                Instr::JumpIfZero(t) => {
                    if self.acc == 0 {
                        pc = *t as usize;
                        continue;
                    }
                }
                Instr::JumpIfNotZero(t) => {
                    if self.acc != 0 {
                        pc = *t as usize;
                        continue;
                    }
                }
                Instr::Call(callee) => {
                    self.exec(*callee, host, depth + 1)?;
                }
                Instr::Return => return Ok(()),
                Instr::PortRead(p) => self.acc = inst.wrap(host.port_read(*p as u32)),
                Instr::PortWrite(p) => host.port_write(*p as u32, inst.wrap(self.acc)),
                Instr::ReadCond(c) => self.acc = host.read_condition(*c as u32) as i64,
                Instr::SetCond(c) => host.set_condition(*c as u32, self.acc != 0),
                Instr::RaiseEvent(e) => host.raise_event(*e as u32),
                Instr::Custom(id) => {
                    let custom = self.program.arch.custom_op(*id).ok_or(
                        TepError::MissingFeature { function: fname.to_string(), feature: "custom op" },
                    )?;
                    let mut acc = self.acc;
                    for step in &custom.steps {
                        let (op, rhs) = match step {
                            CustomStep::WithOp(op) => (*op, self.op),
                            CustomStep::WithImm(op, imm) => (*op, *imm),
                        };
                        acc = apply_alu(op, acc, rhs);
                    }
                    self.acc = inst.wrap(acc);
                }
                Instr::AluMem { op, src } => {
                    // Fused `Tao; Load src; Alu op`.
                    let old_acc = self.acc;
                    self.op = old_acc;
                    let m = self.read_storage(*src, fname)?;
                    let r = match op {
                        AluOp::Add => m.wrapping_add(old_acc),
                        AluOp::Sub => m.wrapping_sub(old_acc),
                        AluOp::And => m & old_acc,
                        AluOp::Or => m | old_acc,
                        AluOp::Xor => m ^ old_acc,
                        AluOp::Shl => m.wrapping_shl((old_acc & 63) as u32),
                        AluOp::Shr => {
                            let mask = if inst.width >= 64 {
                                u64::MAX
                            } else {
                                (1u64 << inst.width) - 1
                            };
                            (((m as u64) & mask) >> ((old_acc & 63) as u64)) as i64
                        }
                        AluOp::Sar => m.wrapping_shr((old_acc & 63) as u32),
                        _ => {
                            return Err(TepError::MissingFeature {
                                function: fname.to_string(),
                                feature: "fused op kind",
                            })
                        }
                    };
                    self.acc = inst.wrap(r);
                }
                Instr::Halt => return Ok(()),
            }
            pc += 1;
        }
        Ok(())
    }
}

impl Drop for TepMachine<'_> {
    fn drop(&mut self) {
        self.flush_kind_counts();
    }
}

/// Pure ALU evaluation used for custom fused ops.
fn apply_alu(op: AluOp, a: i64, b: i64) -> i64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Not => !a,
        AluOp::Neg => a.wrapping_neg(),
        AluOp::Shl => a.wrapping_shl((b & 63) as u32),
        AluOp::Shr => ((a as u64) >> ((b & 63) as u64)) as i64,
        AluOp::Sar => a.wrapping_shr((b & 63) as u32),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        AluOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::TepArch;
    use crate::codegen::{compile_program, CodegenOptions};
    use pscp_action_lang::interp::{Interp, RecordingHost};

    fn machine_result(src: &str, func: &str, args: &[i64], arch: &TepArch) -> i64 {
        let ir = pscp_action_lang::compile(src).unwrap();
        let p = compile_program(&ir, arch, &CodegenOptions::default());
        let mut m = TepMachine::new(&p);
        let mut h = RecordingHost::new();
        m.call(func, args, &mut h).unwrap()
    }

    fn interp_result(src: &str, func: &str, args: &[i64]) -> i64 {
        let ir = pscp_action_lang::compile(src).unwrap();
        let mut i = Interp::new(&ir);
        let mut h = RecordingHost::new();
        i.call(func, args, &mut h).unwrap().unwrap_or(0)
    }

    #[test]
    fn reset_restores_power_on_state() {
        let src = r#"
            int:16 total = 7;
            int:16 scratch;
            void Bump(int:16 n) { scratch = scratch + n; total = total + scratch; }
        "#;
        let ir = pscp_action_lang::compile(src).unwrap();
        let p = compile_program(&ir, &TepArch::md16_optimized(), &CodegenOptions::default());
        let mut m = TepMachine::new(&p);
        let mut h = RecordingHost::new();
        m.call("Bump", &[3], &mut h).unwrap();
        m.call("Bump", &[4], &mut h).unwrap();
        assert_ne!(m.global_by_name("total"), Some(7));
        assert!(m.cycles() > 0);
        m.reset();
        assert_eq!(m.global_by_name("total"), Some(7));
        assert_eq!(m.global_by_name("scratch"), Some(0));
        assert_eq!(m.cycles(), 0);
        assert_eq!(m.retired(), 0);
        // The reset machine replays the fresh machine's exact trace.
        let fresh_cost = {
            let mut f = TepMachine::new(&p);
            f.call("Bump", &[3], &mut h).unwrap();
            (f.cycles(), f.global_by_name("total"))
        };
        m.call("Bump", &[3], &mut h).unwrap();
        assert_eq!((m.cycles(), m.global_by_name("total")), fresh_cost);
    }

    fn differential(src: &str, func: &str, cases: &[Vec<i64>]) {
        let archs = [
            TepArch::minimal(),
            TepArch::md16_unoptimized(),
            TepArch::md16_optimized(),
        ];
        for case in cases {
            let expected = interp_result(src, func, case);
            for arch in &archs {
                let got = machine_result(src, func, case, arch);
                assert_eq!(
                    got, expected,
                    "{func}{case:?} on width={} muldiv={} opt={}",
                    arch.calc.width, arch.calc.muldiv, arch.optimize_code
                );
            }
        }
    }

    #[test]
    fn arithmetic_matches_interpreter() {
        differential(
            "int:16 f(int:16 a, int:16 b) { return (a + b) * 3 - a / 2; }",
            "f",
            &[vec![6, 7], vec![-5, 2], vec![0, 0], vec![1000, -1000], vec![-32768, 1]],
        );
    }

    #[test]
    fn comparisons_match_interpreter_all_archs() {
        differential(
            "uint:1 f(int:16 a, int:16 b) { return a < b; }",
            "f",
            &[vec![1, 2], vec![2, 1], vec![-3, 3], vec![3, -3], vec![5, 5], vec![-7, -7]],
        );
        differential(
            "uint:1 f(uint:8 a, uint:8 b) { return a <= b; }",
            "f",
            &[vec![0, 255], vec![255, 0], vec![128, 128], vec![200, 100]],
        );
        differential(
            "uint:1 f(int:16 a, int:16 b) { return a == b; }",
            "f",
            &[vec![4, 4], vec![4, 5], vec![-1, -1], vec![-1, 255]],
        );
    }

    #[test]
    fn software_multiply_matches_hardware() {
        let src = "int:16 f(int:16 a, int:16 b) { return a * b; }";
        differential(
            src,
            "f",
            &[
                vec![3, 5],
                vec![-3, 5],
                vec![3, -5],
                vec![-3, -5],
                vec![0, 99],
                vec![255, 255],
                vec![-128, 2],
            ],
        );
    }

    #[test]
    fn software_divide_matches_hardware() {
        let src = "int:16 f(int:16 a, int:16 b) { return a / b; }";
        differential(
            src,
            "f",
            &[
                vec![10, 3],
                vec![-10, 3],
                vec![10, -3],
                vec![-10, -3],
                vec![0, 7],
                vec![1000, 1],
                vec![7, 10],
            ],
        );
        let src = "int:16 f(int:16 a, int:16 b) { return a % b; }";
        differential(src, "f", &[vec![10, 3], vec![-10, 3], vec![10, -3], vec![-10, -3]]);
    }

    #[test]
    fn loops_match_interpreter() {
        let src = r#"
            int:16 fact(int:16 n) {
                int:16 r = 1;
                while (n > 1) { r = r * n; n = n - 1; }
                return r;
            }
        "#;
        differential(src, "fact", &[vec![0], vec![1], vec![5], vec![7]]);
    }

    #[test]
    fn globals_and_conditions_match() {
        let src = r#"
            condition DONE;
            int:16 total = 10;
            void add(int:16 n) { total = total + n; DONE = total > 20; }
        "#;
        let ir = pscp_action_lang::compile(src).unwrap();
        for arch in [TepArch::minimal(), TepArch::md16_optimized()] {
            let p = compile_program(&ir, &arch, &CodegenOptions::default());
            let mut m = TepMachine::new(&p);
            let mut hm = RecordingHost::new();
            m.call("add", &[7], &mut hm).unwrap();
            m.call("add", &[9], &mut hm).unwrap();

            let mut i = Interp::new(&ir);
            let mut hi = RecordingHost::new();
            i.call("add", &[7], &mut hi).unwrap();
            i.call("add", &[9], &mut hi).unwrap();

            assert_eq!(m.global_by_name("total"), i.global("total"));
            assert_eq!(hm.cond_writes, hi.cond_writes);
        }
    }

    #[test]
    fn port_traffic_matches() {
        let src = r#"
            port In : 8 @ 1 in;
            port Out : 16 @ 2 out;
            void pump() { Out = In * 3 + 1; }
        "#;
        let ir = pscp_action_lang::compile(src).unwrap();
        for arch in [TepArch::minimal(), TepArch::md16_unoptimized()] {
            let p = compile_program(&ir, &arch, &CodegenOptions::default());
            let mut m = TepMachine::new(&p);
            let mut hm = RecordingHost::new();
            hm.queue_input(0, [14]);
            m.call("pump", &[], &mut hm).unwrap();
            assert_eq!(hm.writes, vec![(1, 43)], "arch w={}", arch.calc.width);
        }
    }

    #[test]
    fn minimal_arch_is_much_slower_on_muldiv() {
        let src = "int:16 f(int:16 a, int:16 b) { return a * b / (b + 1); }";
        let ir = pscp_action_lang::compile(src).unwrap();

        let run = |arch: &TepArch| {
            let p = compile_program(&ir, arch, &CodegenOptions::default());
            let mut m = TepMachine::new(&p);
            let mut h = RecordingHost::new();
            m.call("f", &[123, 45], &mut h).unwrap();
            m.cycles()
        };
        let slow = run(&TepArch::minimal());
        let fast = run(&TepArch::md16_unoptimized());
        assert!(
            slow > 4 * fast,
            "software mul/div on 8-bit must dominate: {slow} vs {fast}"
        );
    }

    #[test]
    fn optimized_code_uses_fewer_cycles() {
        let src = "int:16 f(int:16 a) { int:16 x = a + 1; int:16 y = x * 2; return y - a; }";
        let ir = pscp_action_lang::compile(src).unwrap();
        let run = |arch: &TepArch| {
            let p = compile_program(&ir, arch, &CodegenOptions::default());
            let mut m = TepMachine::new(&p);
            let mut h = RecordingHost::new();
            m.call("f", &[10], &mut h).unwrap();
            m.cycles()
        };
        assert!(run(&TepArch::md16_optimized()) < run(&TepArch::md16_unoptimized()));
    }

    #[test]
    fn array_programs_match() {
        let src = r#"
            int:16 tab[4] = {5, 10, 15, 20};
            int:16 f(int:8 i, int:16 v) { tab[i] = v; return tab[0] + tab[i]; }
        "#;
        differential(src, "f", &[vec![1, 100], vec![3, -7], vec![0, 42]]);
    }

    #[test]
    fn cycle_limit_enforced() {
        let src = "void f() { while (1) { } }";
        let ir = pscp_action_lang::compile(src).unwrap();
        let p = compile_program(&ir, &TepArch::md16_optimized(), &CodegenOptions::default());
        let mut m = TepMachine::new(&p).with_cycle_limit(10_000);
        let mut h = RecordingHost::new();
        assert!(matches!(m.call("f", &[], &mut h), Err(TepError::CycleLimit { .. })));
    }
}
