//! Action-language IR → TEP assembly.
//!
//! The generator is parameterised by the target [`TepArch`]:
//!
//! * machines without the M/D calculation unit get multiplies and
//!   divides expanded into calls to a synthesised software runtime
//!   (shift-add multiply, restoring divide — the reason the minimal TEP
//!   blows its timing budget in Table 4);
//! * machines without a comparator get comparisons expanded into
//!   subtract/sign-test/branch sequences;
//! * machines without a two's-complement ALU path get `neg` expanded
//!   into complement-and-increment;
//! * globals are placed in the architecture's global storage class, with
//!   per-slot promotions (internal RAM / register file) supplied by the
//!   iterative optimiser via [`CodegenOptions`];
//! * when [`TepArch::optimize_code`] is set, an assembler-level peephole
//!   removes store/load pairs and jump chains (the §4 "simple
//!   optimizations" at the instruction level).
//!
//! The software runtime is *written in the action language itself* and
//! compiled through the same pipeline, so its semantics are checked by
//! the same differential tests.

use crate::arch::{StorageClass, TepArch};
use crate::isa::{AluOp, AsmFunction, AsmInst, CmpOp, Instr, Storage};
use pscp_action_lang::ir::{self, BinOp, Inst as IrInst, Program, VReg};
use pscp_action_lang::types::Scalar;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// Placement overrides decided by the iterative optimiser.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodegenOptions {
    /// Global slots promoted to a faster storage class. Keys are IR
    /// global slot indices; arrays/structs must be promoted as whole
    /// blocks by listing every slot (scalars only for `Register`).
    pub global_promotions: BTreeMap<u32, StorageClass>,
}

/// A placed global slot.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GlobalPlace {
    /// Diagnostic name from the IR.
    pub name: String,
    /// Value type.
    pub ty: Scalar,
    /// Reset value.
    pub init: i64,
    /// Where it lives.
    pub storage: Storage,
}

/// A fully-compiled TEP program: routines, global placement, ports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TepProgram {
    /// Compiled routines; runtime routines are appended after the user's.
    pub functions: Vec<AsmFunction>,
    /// Routine name → index.
    pub entry: BTreeMap<String, u32>,
    /// Placed globals, parallel to the IR global slots.
    pub globals: Vec<GlobalPlace>,
    /// External data ports (address map).
    pub ports: Vec<ir::PortInfo>,
    /// Event names (indices match `RaiseEvent` operands).
    pub events: Vec<String>,
    /// Condition names (indices match `SetCond`/`ReadCond` operands).
    pub conditions: Vec<String>,
    /// Architecture snapshot the program was compiled for.
    pub arch: TepArch,
    /// Internal RAM words used (frames + promoted globals).
    pub internal_words_used: u16,
    /// External RAM words used.
    pub external_words_used: u16,
}

impl TepProgram {
    /// Index of a routine by name.
    pub fn function_index(&self, name: &str) -> Option<u32> {
        self.entry.get(name).copied()
    }

    /// Total instruction count across all routines (program-memory size).
    pub fn instruction_count(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }

    /// Test-only constructor wiring hand-written functions.
    #[doc(hidden)]
    pub fn for_tests(functions: Vec<AsmFunction>, arch: TepArch) -> Self {
        let entry =
            functions.iter().enumerate().map(|(i, f)| (f.name.clone(), i as u32)).collect();
        TepProgram {
            functions,
            entry,
            globals: Vec::new(),
            ports: Vec::new(),
            events: Vec::new(),
            conditions: Vec::new(),
            arch,
            internal_words_used: 0,
            external_words_used: 0,
        }
    }
}

/// Compiles an IR program for an architecture.
///
/// # Panics
///
/// Panics on malformed IR (dangling function indices); the action-language
/// front end never produces such IR.
pub fn compile_program(ir: &Program, arch: &TepArch, options: &CodegenOptions) -> TepProgram {
    compile_with(ir, arch, options, None)
}

/// [`compile_program`] with a per-routine [`CodegenCache`]: routines
/// whose content key matches a cached body are reused instead of
/// re-lowered. The output is byte-identical to the uncached path.
pub fn compile_program_cached(
    ir: &Program,
    arch: &TepArch,
    options: &CodegenOptions,
    cache: &CodegenCache,
) -> TepProgram {
    compile_with(ir, arch, options, Some(cache))
}

/// The inputs of one delta recompile: the (unchanged) IR plus the
/// perturbed architecture / placement options, and an optional cache
/// carrying warmth across candidates.
#[derive(Debug, Clone, Copy)]
pub struct CodegenDelta<'a> {
    /// The IR program — must be the one `prev` was compiled from.
    pub ir: &'a Program,
    /// The architecture to compile for now.
    pub arch: &'a TepArch,
    /// The placement options to compile with now.
    pub options: &'a CodegenOptions,
    /// Cache shared across recompiles; `None` falls back to a full
    /// compile.
    pub cache: Option<&'a CodegenCache>,
}

/// Recompiles after a delta, reusing every routine of `prev` whose
/// content key is unchanged: the previous program's bodies are seeded
/// into the cache under keys computed from its own architecture
/// snapshot and placement, then a cached compile runs with the new
/// parameters. Routines the delta cannot reach hit; everything else is
/// lowered fresh. The result is byte-identical to
/// [`compile_program`]`(changed.ir, changed.arch, changed.options)`.
pub fn recompile_delta(prev: &TepProgram, changed: &CodegenDelta) -> TepProgram {
    match changed.cache {
        Some(cache) if cache.is_enabled() => {
            cache.seed_from(prev, changed.ir);
            compile_with(changed.ir, changed.arch, changed.options, Some(cache))
        }
        _ => compile_program(changed.ir, changed.arch, changed.options),
    }
}

fn compile_with(
    ir: &Program,
    arch: &TepArch,
    options: &CodegenOptions,
    cache: Option<&CodegenCache>,
) -> TepProgram {
    let cache = cache.filter(|c| c.is_enabled());
    let plan = CompilePlan::build(ir, arch, options, cache);
    let functions = lower_functions(ir, arch, &plan, cache);
    TepProgram {
        functions,
        entry: plan.entry,
        globals: plan.globals,
        ports: ir.ports.clone(),
        events: ir.events.clone(),
        conditions: ir.conditions.clone(),
        arch: arch.clone(),
        internal_words_used: plan.internal_words,
        external_words_used: plan.external_words,
    }
}

/// Stage outputs shared by every routine: runtime selection (stage 1),
/// the function table (stage 2), and storage placement (stage 3).
/// Per-routine lowering (stage 4) reads the plan and nothing else,
/// which is what makes routine bodies cacheable.
struct CompilePlan {
    runtime: RuntimeSet,
    runtime_ir: Option<Program>,
    entry: BTreeMap<String, u32>,
    runtime_base: u32,
    globals: Vec<GlobalPlace>,
    frame_bases: Vec<u16>,
    internal_words: u16,
    external_words: u16,
}

impl CompilePlan {
    fn build(
        ir: &Program,
        arch: &TepArch,
        options: &CodegenOptions,
        cache: Option<&CodegenCache>,
    ) -> CompilePlan {
        // 1. Decide which runtime routines are needed and synthesise
        //    them by compiling action-language source through the
        //    normal pipeline (memoized per runtime set when cached).
        let runtime = RuntimeSet::required(ir, arch);
        let runtime_ir = match cache {
            Some(c) => c.runtime_program(&runtime),
            None => runtime.compile(),
        };

        // 2. Function table: user functions first, runtime after.
        let mut entry: BTreeMap<String, u32> = BTreeMap::new();
        for (i, f) in ir.functions.iter().enumerate() {
            entry.insert(f.name.clone(), i as u32);
        }
        let runtime_base = ir.functions.len() as u32;
        if let Some(rt) = &runtime_ir {
            for (i, f) in rt.functions.iter().enumerate() {
                entry.insert(f.name.clone(), runtime_base + i as u32);
            }
        }

        // 3. Global placement.
        let mut globals = Vec::with_capacity(ir.globals.len());
        let mut next_external: u16 = 0;
        let mut next_register: u8 = 0;
        // Frames live in the per-TEP local (internal) RAM. Since recursion
        // is banned, frames are laid out as a *static overlay*: a callee's
        // frame starts after the deepest caller chain that can reach it, so
        // functions that are never simultaneously live share addresses.
        let frame_sizes: Vec<u16> = ir
            .functions
            .iter()
            .map(|f| f.vreg_count() as u16)
            .chain(
                runtime_ir
                    .iter()
                    .flat_map(|rt| rt.functions.iter().map(|f| f.vreg_count() as u16)),
            )
            .collect();
        let frame_bases = overlay_frames(ir, runtime_ir.as_ref(), &frame_sizes);
        let mut next_internal: u16 = frame_bases
            .iter()
            .zip(&frame_sizes)
            .map(|(&b, &s)| b + s)
            .max()
            .unwrap_or(0);
        for (slot, g) in ir.globals.iter().enumerate() {
            let class = options
                .global_promotions
                .get(&(slot as u32))
                .copied()
                .unwrap_or(arch.global_storage);
            let storage = match class {
                StorageClass::Register if next_register < arch.register_file => {
                    let r = next_register;
                    next_register += 1;
                    Storage::Register(r)
                }
                StorageClass::Register | StorageClass::Internal => {
                    let a = next_internal;
                    next_internal += 1;
                    Storage::Internal(a)
                }
                StorageClass::External => {
                    let a = next_external;
                    next_external += 1;
                    Storage::External(a)
                }
            };
            globals.push(GlobalPlace { name: g.name.clone(), ty: g.ty, init: g.init, storage });
        }

        CompilePlan {
            runtime,
            runtime_ir,
            entry,
            runtime_base,
            globals,
            frame_bases,
            internal_words: next_internal,
            external_words: next_external,
        }
    }
}

/// Stage 4: per-routine lowering, optionally served from `cache`.
fn lower_functions(
    ir: &Program,
    arch: &TepArch,
    plan: &CompilePlan,
    cache: Option<&CodegenCache>,
) -> Vec<AsmFunction> {
    let mut functions = Vec::new();
    let all_ir: Vec<(&ir::Function, Option<u64>)> = ir
        .functions
        .iter()
        .map(|f| (f, None))
        .chain(plan.runtime_ir.iter().flat_map(|rt| {
            rt.functions.iter().map(|f| (f, runtime_loop_bound(&f.name)))
        }))
        .collect();
    for (i, (f, loop_bound)) in all_ir.iter().enumerate() {
        let key = cache.map(|_| routine_key(plan, arch, f, i, *loop_bound));
        if let (Some(c), Some(key)) = (cache, key) {
            if let Some(body) = c.cached_body(key, f, plan.frame_bases[i]) {
                functions.push(body);
                continue;
            }
        }
        let cg = FnCodegen {
            arch,
            entry: &plan.entry,
            globals: &plan.globals,
            frame_base: plan.frame_bases[i],
            frame_bases: &plan.frame_bases,
            ir_fn: f,
            runtime: &plan.runtime,
            runtime_base: plan.runtime_base,
            // IR `Call` operands inside runtime routines index the
            // runtime's own function table; rebase them.
            call_offset: if i >= ir.functions.len() { plan.runtime_base } else { 0 },
            const_of: const_analysis(f),
        };
        let mut asm = cg.run();
        asm.loop_bound = *loop_bound;
        if arch.optimize_code {
            peephole_asm(&mut asm);
            eliminate_dead_frame_stores(&mut asm);
        }
        if let (Some(c), Some(key)) = (cache, key) {
            c.insert_body(key, &asm);
        }
        functions.push(asm);
    }
    functions
}

const KEY_SEED1: u64 = 0xcbf2_9ce4_8422_2325;
const KEY_SEED2: u64 = 0x9e37_79b9_7f4a_7c15;

/// FNV-1a over `bytes` from an arbitrary seed. The cache is in-process
/// only, so cross-run stability of `Debug` formatting is not required.
/// Two independently-seeded FNV-1a streams fed from one
/// [`std::hash::Hasher`] write stream, so structural `Hash` impls can
/// produce a 128-bit content key in a single traversal with no
/// intermediate buffer.
struct KeyHasher {
    a: u64,
    b: u64,
}

impl KeyHasher {
    fn new() -> Self {
        KeyHasher { a: KEY_SEED1, b: KEY_SEED2 }
    }

    fn pair(&self) -> (u64, u64) {
        (self.a, self.b)
    }
}

impl KeyHasher {
    const P: u64 = 0x0000_0100_0000_01b3;

    /// One absorption round per stream. Feeding whole words instead of
    /// bytes keeps `#[derive(Hash)]` traversals (mostly u32/u64 writes)
    /// at one multiply per word rather than one per byte; keys are
    /// in-process only, so the word-level mixing needs no cross-version
    /// stability.
    #[inline]
    fn round(&mut self, word: u64) {
        self.a = (self.a ^ word).wrapping_mul(Self::P);
        self.b = (self.b ^ word.rotate_left(32)).wrapping_mul(Self::P);
    }
}

impl std::hash::Hasher for KeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.round(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Tag with the tail length so "ab" + "c" and "a" + "bc"
            // absorb differently.
            word[7] = rest.len() as u8 | 0x80;
            self.round(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.round(u64::from(v) | 0x1_00);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.round(u64::from(v) | 0x2_0000);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.round(u64::from(v) | 0x4_0000_0000);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.round(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    fn finish(&self) -> u64 {
        self.a
    }
}

fn key_pair(buf: &str) -> (u64, u64) {
    use std::hash::Hasher;
    let mut h = KeyHasher::new();
    h.write(buf.as_bytes());
    h.pair()
}

/// Content key of one routine's compiled body.
///
/// The key mirrors exactly what [`FnCodegen`] reads while lowering this
/// routine — the provenance idea behind `WcetReport`'s per-routine
/// instruction-kind sets, applied to codegen: an architecture knob
/// enters the key only when the routine contains an operation that knob
/// can change. `calc.muldiv` (plus the resolved runtime routine indices
/// and frame bases) only when the routine multiplies or divides,
/// `calc.comparator` only when it compares, `calc.twos_complement` only
/// when it negates, global placements only for the slots it actually
/// touches, callee frame bases only for its actual callees.
/// `calc.width`, `shifter`, `pipelined` and the storage budget knobs
/// never reach lowering, so changing them invalidates nothing.
fn routine_key(
    plan: &CompilePlan,
    arch: &TepArch,
    f: &ir::Function,
    index: usize,
    loop_bound: Option<u64>,
) -> (u64, u64) {
    use std::hash::Hash;
    let call_offset = if index as u32 >= plan.runtime_base { plan.runtime_base } else { 0 };
    let mut h = KeyHasher::new();
    f.hash(&mut h);
    plan.frame_bases[index].hash(&mut h);
    call_offset.hash(&mut h);
    loop_bound.hash(&mut h);
    arch.optimize_code.hash(&mut h);
    let mut slots: BTreeSet<u32> = BTreeSet::new();
    let mut callees: BTreeSet<u32> = BTreeSet::new();
    let mut runtime_calls: BTreeSet<String> = BTreeSet::new();
    let (mut has_muldiv, mut has_cmp, mut has_neg) = (false, false, false);
    for inst in &f.insts {
        match inst {
            IrInst::LoadGlobal { slot, .. } | IrInst::StoreGlobal { slot, .. } => {
                slots.insert(*slot);
            }
            IrInst::LoadIndexed { base, .. } | IrInst::StoreIndexed { base, .. } => {
                slots.insert(*base);
            }
            IrInst::Call { func, .. } => {
                callees.insert(*func + call_offset);
            }
            IrInst::Bin { op, dst, lhs, rhs } => match op {
                BinOp::Mul | BinOp::Div | BinOp::Rem => {
                    has_muldiv = true;
                    if !arch.calc.muldiv {
                        // Mirrors `lower_bin`'s runtime dispatch.
                        let w = runtime_width(
                            f.vreg_type(*dst)
                                .width
                                .max(f.vreg_type(*lhs).width)
                                .max(f.vreg_type(*rhs).width),
                        );
                        let signed = f.vreg_type(*lhs).signed || f.vreg_type(*rhs).signed;
                        runtime_calls.insert(runtime_name(*op, w, signed && *op != BinOp::Mul));
                    }
                }
                _ if op.is_compare() => has_cmp = true,
                _ => {}
            },
            IrInst::Un { op: ir::UnOp::Neg, .. } => has_neg = true,
            _ => {}
        }
    }
    for slot in slots {
        slot.hash(&mut h);
        plan.globals[slot as usize].hash(&mut h);
    }
    for callee in callees {
        callee.hash(&mut h);
        plan.frame_bases[callee as usize].hash(&mut h);
    }
    if has_muldiv {
        arch.calc.muldiv.hash(&mut h);
        for name in runtime_calls {
            let idx = plan.entry[&name];
            name.hash(&mut h);
            idx.hash(&mut h);
            plan.frame_bases[idx as usize].hash(&mut h);
        }
    }
    if has_cmp {
        arch.calc.comparator.hash(&mut h);
    }
    if has_neg {
        arch.calc.twos_complement.hash(&mut h);
    }
    h.pair()
}

/// Point-in-time hit/miss/invalidation counts of a [`CodegenCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that served a reusable body.
    pub hits: u64,
    /// Lookups that missed and compiled fresh.
    pub misses: u64,
    /// Cached bodies that failed structural validation and were
    /// discarded (each also counts as a miss).
    pub invalidations: u64,
}

/// In-process per-routine codegen cache.
///
/// Keys are content hashes of everything lowering reads for one routine
/// (see [`routine_key`]); values are finished [`AsmFunction`] bodies
/// (post-peephole). A hit is additionally validated against the
/// routine's shape (name, arity, frame extent) so a stale or corrupted
/// entry is detected and recompiled instead of served. The compiled
/// software-runtime library is memoized per [`RuntimeSet`] as well.
/// `PSCP_COMPILE_CACHE=off` (or `0`/`false`) disables everything.
#[derive(Debug)]
pub struct CodegenCache {
    enabled: bool,
    bodies: Mutex<HashMap<(u64, u64), AsmFunction>>,
    runtimes: Mutex<HashMap<(u64, u64), Program>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for CodegenCache {
    fn default() -> Self {
        Self::new()
    }
}

impl CodegenCache {
    /// An empty cache, enabled unless `PSCP_COMPILE_CACHE` says `off`.
    pub fn new() -> Self {
        let enabled = !matches!(
            std::env::var("PSCP_COMPILE_CACHE").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        );
        Self::with_enabled(enabled)
    }

    /// An empty cache with the gate forced (ignores the environment).
    pub fn with_enabled(enabled: bool) -> Self {
        CodegenCache {
            enabled,
            bodies: Mutex::new(HashMap::new()),
            runtimes: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Whether lookups are live (false = every compile is a full one).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Current hit/miss/invalidation counts.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            invalidations: self.invalidations.load(Relaxed),
        }
    }

    /// Number of cached routine bodies.
    pub fn len(&self) -> usize {
        self.bodies.lock().unwrap().len()
    }

    /// True when no routine body is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compiles (or recalls) the software runtime for `set`.
    fn runtime_program(&self, set: &RuntimeSet) -> Option<Program> {
        if set.is_empty() {
            return None;
        }
        if !self.enabled {
            return set.compile();
        }
        let key = key_pair(&format!("{set:?}"));
        let mut map = self.runtimes.lock().unwrap();
        if let Some(p) = map.get(&key) {
            return Some(p.clone());
        }
        let p = set.compile();
        if let Some(p) = &p {
            map.insert(key, p.clone());
        }
        p
    }

    /// Looks up `key`, validating the stored body against the routine's
    /// shape. A mismatch (stale or poisoned entry) is discarded and
    /// counted as an invalidation + miss, forcing a fresh compile.
    fn cached_body(&self, key: (u64, u64), f: &ir::Function, frame_base: u16) -> Option<AsmFunction> {
        if !self.enabled {
            return None;
        }
        let mut map = self.bodies.lock().unwrap();
        let Some(body) = map.get(&key) else {
            self.note_miss();
            return None;
        };
        let shape_ok = body.name == f.name
            && body.param_count as usize == f.params.len()
            && body.frame.len() == f.vreg_count()
            && (f.vreg_count() == 0
                || body.frame.first() == Some(&Storage::Internal(frame_base)));
        if !shape_ok {
            map.remove(&key);
            self.invalidations.fetch_add(1, Relaxed);
            pscp_obs::metrics::COMPILE_CACHE_INVALIDATIONS.inc();
            self.note_miss();
            return None;
        }
        let body = body.clone();
        drop(map);
        self.hits.fetch_add(1, Relaxed);
        pscp_obs::metrics::COMPILE_CACHE_HITS.inc();
        Some(body)
    }

    fn note_miss(&self) {
        self.misses.fetch_add(1, Relaxed);
        pscp_obs::metrics::COMPILE_CACHE_MISSES.inc();
    }

    fn insert_body(&self, key: (u64, u64), body: &AsmFunction) {
        if self.enabled {
            self.bodies.lock().unwrap().insert(key, body.clone());
        }
    }

    /// Seeds the cache with `prev`'s routine bodies, keyed by the
    /// context `prev` was compiled under (its own architecture snapshot,
    /// placement, and frame layout, all recoverable from the program).
    /// Entries whose shape cannot be re-derived are skipped — a skipped
    /// seed is just a future miss, never a wrong body.
    fn seed_from(&self, prev: &TepProgram, ir: &Program) {
        if !self.enabled {
            return;
        }
        let user_n = ir.functions.len();
        if prev.functions.len() < user_n
            || prev.globals.len() != ir.globals.len()
            || ir.functions.iter().zip(&prev.functions).any(|(f, af)| f.name != af.name)
        {
            return;
        }
        let runtime = RuntimeSet::required(ir, &prev.arch);
        let runtime_ir = self.runtime_program(&runtime);
        let rt_fns: Vec<(&ir::Function, Option<u64>)> = runtime_ir
            .iter()
            .flat_map(|rt| rt.functions.iter().map(|f| (f, runtime_loop_bound(&f.name))))
            .collect();
        if user_n + rt_fns.len() != prev.functions.len()
            || rt_fns.iter().any(|(f, _)| !prev.entry.contains_key(&f.name))
        {
            return;
        }
        let frame_bases: Vec<u16> = prev
            .functions
            .iter()
            .map(|af| match af.frame.first() {
                Some(Storage::Internal(b)) => *b,
                _ => 0,
            })
            .collect();
        let plan = CompilePlan {
            runtime,
            runtime_ir: None,
            entry: prev.entry.clone(),
            runtime_base: user_n as u32,
            globals: prev.globals.clone(),
            frame_bases,
            internal_words: prev.internal_words_used,
            external_words: prev.external_words_used,
        };
        let all: Vec<(&ir::Function, Option<u64>)> =
            ir.functions.iter().map(|f| (f, None)).chain(rt_fns).collect();
        for (i, (f, loop_bound)) in all.iter().enumerate() {
            let af = &prev.functions[i];
            if af.name != f.name
                || af.param_count as usize != f.params.len()
                || af.frame.len() != f.vreg_count()
                || af.loop_bound != *loop_bound
            {
                continue;
            }
            let key = routine_key(&plan, &prev.arch, f, i, *loop_bound);
            self.bodies.lock().unwrap().entry(key).or_insert_with(|| af.clone());
        }
    }

    /// Overwrites every cached body with `body`, regardless of key —
    /// simulates stale/corrupt entries for cache-poisoning tests.
    #[doc(hidden)]
    pub fn poison_for_tests(&self, body: &AsmFunction) {
        let mut map = self.bodies.lock().unwrap();
        for v in map.values_mut() {
            *v = body.clone();
        }
    }
}

/// Static frame overlay: `base(callee) = max over callers of
/// (base(caller) + size(caller))`, computed over the combined user +
/// runtime call graph (which is a DAG — recursion is rejected by the
/// front end). The runtime's internal calls (`__divs` → `__divu`) and
/// the implicit calls from mul/div lowering are included.
fn overlay_frames(
    ir: &Program,
    runtime_ir: Option<&Program>,
    sizes: &[u16],
) -> Vec<u16> {
    let user_n = ir.functions.len();
    let total = sizes.len();
    // Edges: caller -> callee (global indices).
    let mut callees: Vec<Vec<usize>> = vec![Vec::new(); total];
    for (i, f) in ir.functions.iter().enumerate() {
        for inst in &f.insts {
            match inst {
                IrInst::Call { func, .. } => callees[i].push(*func as usize),
                // Mul/Div/Rem may lower to runtime calls; conservatively
                // link every runtime routine as a potential callee.
                IrInst::Bin { op: BinOp::Mul | BinOp::Div | BinOp::Rem, .. } => {
                    for r in user_n..total {
                        callees[i].push(r);
                    }
                }
                _ => {}
            }
        }
    }
    if let Some(rt) = runtime_ir {
        for (i, f) in rt.functions.iter().enumerate() {
            for inst in &f.insts {
                if let IrInst::Call { func, .. } = inst {
                    callees[user_n + i].push(user_n + *func as usize);
                }
            }
        }
    }
    // Longest-path relaxation over the DAG (|V| passes suffice).
    let mut base = vec![0u16; total];
    for _ in 0..total {
        let mut changed = false;
        for caller in 0..total {
            for &callee in &callees[caller] {
                let want = base[caller] + sizes[caller];
                if base[callee] < want {
                    base[callee] = want;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    base
}

/// Which software-runtime routines an architecture needs for a program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct RuntimeSet {
    /// Widths needing software multiply.
    mul_widths: Vec<u8>,
    /// (width, signed) needing software divide.
    div_widths: Vec<(u8, bool)>,
    /// (width, signed) needing software remainder.
    rem_widths: Vec<(u8, bool)>,
}

impl RuntimeSet {
    fn required(ir: &Program, arch: &TepArch) -> Self {
        let mut set = RuntimeSet::default();
        if arch.calc.muldiv {
            return set;
        }
        for f in &ir.functions {
            for inst in &f.insts {
                if let IrInst::Bin { op, dst, lhs, rhs } = inst {
                    let w = runtime_width(
                        f.vreg_type(*dst).width.max(f.vreg_type(*lhs).width).max(f.vreg_type(*rhs).width),
                    );
                    let signed = f.vreg_type(*lhs).signed || f.vreg_type(*rhs).signed;
                    match op {
                        BinOp::Mul
                            if !set.mul_widths.contains(&w) => {
                                set.mul_widths.push(w);
                            }
                        BinOp::Div
                            if !set.div_widths.contains(&(w, signed)) => {
                                set.div_widths.push((w, signed));
                            }
                        BinOp::Rem
                            if !set.rem_widths.contains(&(w, signed)) => {
                                set.rem_widths.push((w, signed));
                            }
                        _ => {}
                    }
                }
            }
        }
        // Signed div/rem wrappers call the unsigned ones.
        for &(w, s) in set.div_widths.clone().iter().chain(set.rem_widths.clone().iter()) {
            if s && !set.div_widths.contains(&(w, false)) {
                set.div_widths.push((w, false));
            }
        }
        set.mul_widths.sort_unstable();
        set.div_widths.sort_unstable();
        set.rem_widths.sort_unstable();
        set
    }

    fn is_empty(&self) -> bool {
        self.mul_widths.is_empty() && self.div_widths.is_empty() && self.rem_widths.is_empty()
    }

    /// Generates the runtime as action-language source and compiles it.
    fn compile(&self) -> Option<Program> {
        if self.is_empty() {
            return None;
        }
        let mut src = String::new();
        for &w in &self.mul_widths {
            // Shift-add multiply; low bits are sign-agnostic.
            src.push_str(&format!(
                r#"
uint:{w} __mulu_{w}(uint:{w} a, uint:{w} b) {{
    uint:{w} res = 0;
    uint:8 i = {w};
    while (i > 0) {{
        if (b & 1) {{ res = res + a; }}
        a = a << 1;
        b = b >> 1;
        i = i - 1;
    }}
    return res;
}}
"#
            ));
        }
        for &(w, signed) in &self.div_widths {
            if !signed {
                src.push_str(&unsigned_divmod_src(w));
            }
        }
        for &(w, signed) in &self.div_widths {
            if signed {
                src.push_str(&format!(
                    r#"
int:{w} __divs_{w}(int:{w} a, int:{w} b) {{
    uint:1 sa = a < 0;
    uint:1 sb = b < 0;
    uint:{w} ua = a;
    uint:{w} ub = b;
    if (sa) {{ ua = 0 - ua; }}
    if (sb) {{ ub = 0 - ub; }}
    uint:{w} q = __divu_{w}(ua, ub);
    if (sa != sb) {{ return 0 - q; }}
    return q;
}}
"#
                ));
            }
        }
        for &(w, signed) in &self.rem_widths {
            if signed {
                src.push_str(&format!(
                    r#"
int:{w} __rems_{w}(int:{w} a, int:{w} b) {{
    uint:1 sa = a < 0;
    uint:{w} ua = a;
    uint:{w} ub = b;
    if (sa) {{ ua = 0 - ua; }}
    if (b < 0) {{ ub = 0 - ub; }}
    uint:{w} r = __remu_{w}(ua, ub);
    if (sa) {{ return 0 - r; }}
    return r;
}}
"#
                ));
            }
        }
        // Unsigned rem bodies (and any divu pulled in only by rem).
        for &(w, signed) in &self.rem_widths {
            if !signed && !self.div_widths.contains(&(w, false)) {
                src.push_str(&unsigned_divmod_src(w));
            }
        }
        Some(pscp_action_lang::compile(&src).expect("runtime library must compile"))
    }
}

/// `__divu_w` / `__remu_w`: restoring division, one bit per iteration.
fn unsigned_divmod_src(w: u8) -> String {
    format!(
        r#"
uint:{w} __divu_{w}(uint:{w} a, uint:{w} b) {{
    uint:{w} q = 0;
    uint:{w} r = 0;
    uint:8 i = {w};
    while (i > 0) {{
        r = (r << 1) | ((a >> ({w} - 1)) & 1);
        a = a << 1;
        q = q << 1;
        if (r >= b) {{ r = r - b; q = q | 1; }}
        i = i - 1;
    }}
    return q;
}}
uint:{w} __remu_{w}(uint:{w} a, uint:{w} b) {{
    uint:{w} r = 0;
    uint:8 i = {w};
    while (i > 0) {{
        r = (r << 1) | ((a >> ({w} - 1)) & 1);
        a = a << 1;
        if (r >= b) {{ r = r - b; }}
        i = i - 1;
    }}
    return r;
}}
"#
    )
}

/// The runtime's loops iterate exactly `width` times.
fn runtime_loop_bound(name: &str) -> Option<u64> {
    name.rsplit('_').next().and_then(|w| w.parse::<u64>().ok())
}

/// Widths the runtime is generated for (snapped up to 8/16/32).
fn runtime_width(w: u8) -> u8 {
    match w {
        0..=8 => 8,
        9..=16 => 16,
        _ => 32,
    }
}

fn runtime_name(op: BinOp, w: u8, signed: bool) -> String {
    match (op, signed) {
        (BinOp::Mul, _) => format!("__mulu_{w}"),
        (BinOp::Div, false) => format!("__divu_{w}"),
        (BinOp::Div, true) => format!("__divs_{w}"),
        (BinOp::Rem, false) => format!("__remu_{w}"),
        (BinOp::Rem, true) => format!("__rems_{w}"),
        _ => unreachable!("no runtime for {op:?}"),
    }
}

struct FnCodegen<'a> {
    arch: &'a TepArch,
    entry: &'a BTreeMap<String, u32>,
    globals: &'a [GlobalPlace],
    frame_base: u16,
    frame_bases: &'a [u16],
    ir_fn: &'a ir::Function,
    runtime: &'a RuntimeSet,
    runtime_base: u32,
    call_offset: u32,
    /// `Some(k)` for virtual registers defined exactly once, by a
    /// `Const k`: every read inlines to `Ldi k` and the definition is
    /// not materialised at all.
    const_of: Vec<Option<i64>>,
}

/// Single-definition constant analysis for operand inlining.
fn const_analysis(f: &ir::Function) -> Vec<Option<i64>> {
    let mut defs = vec![0u32; f.vreg_count()];
    let mut value: Vec<Option<i64>> = vec![None; f.vreg_count()];
    for inst in &f.insts {
        if let Some(d) = inst.def() {
            defs[d.0 as usize] += 1;
            value[d.0 as usize] = match inst {
                IrInst::Const { value, .. } => Some(*value),
                _ => None,
            };
        }
    }
    // Parameters are implicit definitions.
    for p in 0..f.params.len() {
        defs[p] += 1;
        value[p] = None;
    }
    value
        .into_iter()
        .zip(defs)
        .map(|(v, d)| if d == 1 { v } else { None })
        .collect()
}

impl FnCodegen<'_> {
    fn home(&self, v: VReg) -> Storage {
        Storage::Internal(self.frame_base + v.0 as u16)
    }

    fn ty(&self, v: VReg) -> Scalar {
        self.ir_fn.vreg_type(v)
    }

    fn run(&self) -> AsmFunction {
        let f = self.ir_fn;
        let mut code: Vec<AsmInst> = Vec::new();
        // Map: IR pc -> asm index of its first instruction.
        let mut ir_to_asm: Vec<u32> = Vec::with_capacity(f.insts.len() + 1);
        // (asm index, ir target pc) fixups.
        let mut fixups: Vec<(usize, usize)> = Vec::new();

        let mut prev_def: Option<VReg> = None;
        for inst in &f.insts {
            ir_to_asm.push(code.len() as u32);
            self.lower_inst(inst, &mut code, &mut fixups, prev_def);
            prev_def = inst.def();
        }
        ir_to_asm.push(code.len() as u32);
        // Safety net terminator.
        code.push(AsmInst::new(Instr::Return, 1, false));

        for (at, ir_pc) in fixups {
            code[at].instr.set_branch_target(ir_to_asm[ir_pc]);
        }

        AsmFunction {
            name: f.name.clone(),
            param_count: f.params.len() as u8,
            frame: (0..f.vreg_count())
                .map(|i| Storage::Internal(self.frame_base + i as u16))
                .collect(),
            code,
            loop_bound: None,
        }
    }

    fn lower_inst(
        &self,
        inst: &IrInst,
        code: &mut Vec<AsmInst>,
        fixups: &mut Vec<(usize, usize)>,
        prev_def: Option<VReg>,
    ) {
        let f = self.ir_fn;
        match inst {
            IrInst::Const { dst, value } => {
                // Fully inlined constants need no materialised home.
                if self.const_of[dst.0 as usize].is_some() {
                    return;
                }
                let t = self.ty(*dst);
                code.push(AsmInst::new(Instr::Ldi(t.wrap(*value)), t.width, t.signed));
                self.store(*dst, code);
            }
            IrInst::Copy { dst, src } => {
                self.load(*src, code);
                self.store(*dst, code);
            }
            IrInst::Bin { op, dst, lhs, rhs } => {
                // Accumulator chaining: when the previous instruction's
                // result is the left operand of a commutative operation,
                // swap the operands — the `Store h; Load h` pair the
                // swap creates is then folded by the peephole.
                let commutative = matches!(
                    op,
                    BinOp::Add
                        | BinOp::Mul
                        | BinOp::And
                        | BinOp::Or
                        | BinOp::Xor
                        | BinOp::CmpEq
                        | BinOp::CmpNe
                );
                let (lhs, rhs) = if commutative && prev_def == Some(*lhs) && lhs != rhs {
                    (*rhs, *lhs)
                } else {
                    (*lhs, *rhs)
                };
                self.lower_bin(*op, *dst, lhs, rhs, code);
            }
            IrInst::Un { op, dst, src } => {
                self.load(*src, code);
                let t = self.ty(*dst);
                match op {
                    ir::UnOp::Not => {
                        code.push(AsmInst::new(Instr::Alu(AluOp::Not), t.width, t.signed));
                    }
                    ir::UnOp::Neg => {
                        if self.arch.calc.twos_complement {
                            code.push(AsmInst::new(Instr::Alu(AluOp::Neg), t.width, t.signed));
                        } else {
                            // -x = ~x + 1
                            code.push(AsmInst::new(Instr::Alu(AluOp::Not), t.width, t.signed));
                            code.push(AsmInst::new(Instr::Tao, t.width, t.signed));
                            code.push(AsmInst::new(Instr::Ldi(1), t.width, t.signed));
                            code.push(AsmInst::new(Instr::Alu(AluOp::Add), t.width, t.signed));
                        }
                    }
                }
                self.store(*dst, code);
            }
            IrInst::LoadGlobal { dst, slot } => {
                let g = &self.globals[*slot as usize];
                code.push(AsmInst::new(Instr::Load(g.storage), g.ty.width, g.ty.signed));
                self.store(*dst, code);
            }
            IrInst::StoreGlobal { slot, src } => {
                let g = &self.globals[*slot as usize];
                self.load(*src, code);
                code.push(AsmInst::new(Instr::Store(g.storage), g.ty.width, g.ty.signed));
            }
            IrInst::LoadIndexed { dst, base, index } => {
                let g = &self.globals[*base as usize];
                self.load(*index, code);
                code.push(AsmInst::new(
                    Instr::LoadIndexed(g.storage),
                    g.ty.width,
                    g.ty.signed,
                ));
                self.store(*dst, code);
            }
            IrInst::StoreIndexed { base, index, src } => {
                let g = &self.globals[*base as usize];
                self.load(*index, code);
                code.push(AsmInst::new(Instr::Tao, 16, false));
                self.load(*src, code);
                code.push(AsmInst::new(
                    Instr::StoreIndexed(g.storage),
                    g.ty.width,
                    g.ty.signed,
                ));
            }
            IrInst::PortRead { dst, port } => {
                let t = self.ty(*dst);
                code.push(AsmInst::new(Instr::PortRead(*port as u16), t.width, t.signed));
                self.store(*dst, code);
            }
            IrInst::PortWrite { port, src } => {
                self.load(*src, code);
                let t = self.ty(*src);
                code.push(AsmInst::new(Instr::PortWrite(*port as u16), t.width, t.signed));
            }
            IrInst::ReadCondition { dst, cond } => {
                code.push(AsmInst::new(Instr::ReadCond(*cond as u16), 1, false));
                self.store(*dst, code);
            }
            IrInst::SetCondition { cond, src } => {
                self.load(*src, code);
                code.push(AsmInst::new(Instr::SetCond(*cond as u16), 1, false));
            }
            IrInst::RaiseEvent { event } => {
                code.push(AsmInst::new(Instr::RaiseEvent(*event as u16), 1, false));
            }
            IrInst::Call { func, args, dst } => {
                self.emit_call(*func + self.call_offset, args, *dst, code);
            }
            IrInst::Ret { value } => {
                if let Some(v) = value {
                    self.load(*v, code);
                }
                code.push(AsmInst::new(Instr::Return, 1, false));
            }
            IrInst::Jump { target } => {
                let at = code.len();
                code.push(AsmInst::new(Instr::Jump(0), 1, false));
                fixups.push((at, f.label_pos(*target)));
            }
            IrInst::Branch { cond, if_true, if_false } => {
                self.load(*cond, code);
                let at = code.len();
                code.push(AsmInst::new(Instr::JumpIfNotZero(0), 1, false));
                fixups.push((at, f.label_pos(*if_true)));
                let at2 = code.len();
                code.push(AsmInst::new(Instr::Jump(0), 1, false));
                fixups.push((at2, f.label_pos(*if_false)));
            }
        }
    }

    fn load(&self, v: VReg, code: &mut Vec<AsmInst>) {
        let t = self.ty(v);
        // Single-definition constants are rematerialised instead of
        // loaded: `Ldi k` is cheaper than a RAM access, and the stored
        // definition disappears entirely.
        if let Some(k) = self.const_of[v.0 as usize] {
            code.push(AsmInst::new(Instr::Ldi(t.wrap(k)), t.width, t.signed));
            return;
        }
        code.push(AsmInst::new(Instr::Load(self.home(v)), t.width, t.signed));
    }

    fn store(&self, v: VReg, code: &mut Vec<AsmInst>) {
        let t = self.ty(v);
        code.push(AsmInst::new(Instr::Store(self.home(v)), t.width, t.signed));
    }

    fn lower_bin(&self, op: BinOp, dst: VReg, lhs: VReg, rhs: VReg, code: &mut Vec<AsmInst>) {
        let t = self.ty(dst);
        let lt = self.ty(lhs);
        let rt = self.ty(rhs);

        // Software runtime for mul/div/rem on M/D-less machines.
        if matches!(op, BinOp::Mul | BinOp::Div | BinOp::Rem) && !self.arch.calc.muldiv {
            let w = runtime_width(t.width.max(lt.width).max(rt.width));
            let signed = lt.signed || rt.signed;
            let name = runtime_name(op, w, signed && op != BinOp::Mul);
            let idx = self.entry[&name];
            self.emit_raw_call(idx, &[lhs, rhs], Some(dst), code);
            return;
        }

        if op.is_compare() {
            let signed = lt.signed || rt.signed;
            let cmp = match op {
                BinOp::CmpEq => CmpOp::Eq,
                BinOp::CmpNe => CmpOp::Ne,
                BinOp::CmpLt => CmpOp::Lt,
                BinOp::CmpLe => CmpOp::Le,
                _ => unreachable!(),
            };
            let w = lt.width.max(rt.width);
            self.load(rhs, code);
            code.push(AsmInst::new(Instr::Tao, w, signed));
            self.load(lhs, code);
            if self.arch.calc.comparator {
                code.push(AsmInst::new(Instr::Cmp { op: cmp, signed }, w, signed));
            } else {
                self.expand_cmp(cmp, w, signed, code);
            }
            self.store(dst, code);
            return;
        }

        let alu = match op {
            BinOp::Add => AluOp::Add,
            BinOp::Sub => AluOp::Sub,
            BinOp::Mul => AluOp::Mul,
            BinOp::Div => AluOp::Div,
            BinOp::Rem => AluOp::Rem,
            BinOp::And => AluOp::And,
            BinOp::Or => AluOp::Or,
            BinOp::Xor => AluOp::Xor,
            BinOp::Shl => AluOp::Shl,
            BinOp::Shr => {
                if lt.signed {
                    AluOp::Sar
                } else {
                    AluOp::Shr
                }
            }
            _ => unreachable!("compares handled above"),
        };
        self.load(rhs, code);
        code.push(AsmInst::new(Instr::Tao, rt.width, rt.signed));
        self.load(lhs, code);
        code.push(AsmInst::new(Instr::Alu(alu), t.width, t.signed));
        self.store(dst, code);
    }

    /// Comparator-less compare: subtract at widened precision, then test
    /// the sign / zero with branches.
    fn expand_cmp(&self, cmp: CmpOp, w: u8, signed: bool, code: &mut Vec<AsmInst>) {
        // Entry state: ACC = lhs, OP = rhs.
        // Exact difference needs w+2 bits: with mixed signedness the
        // worst case is (2^w - 1) - (-2^(w-1)), which exceeds w+1 signed
        // bits.
        let wide = w + 2;
        match cmp {
            CmpOp::Eq | CmpOp::Ne => {
                code.push(AsmInst::new(Instr::Alu(AluOp::Xor), w, false));
                // ACC = lhs ^ rhs; == 0 iff equal.
                let base = code.len() as u32;
                if cmp == CmpOp::Eq {
                    // jz -> 1 else 0
                    code.push(AsmInst::new(Instr::JumpIfZero(base + 3), 1, false));
                    code.push(AsmInst::new(Instr::Ldi(0), 1, false));
                    code.push(AsmInst::new(Instr::Jump(base + 4), 1, false));
                    code.push(AsmInst::new(Instr::Ldi(1), 1, false));
                } else {
                    code.push(AsmInst::new(Instr::JumpIfZero(base + 3), 1, false));
                    code.push(AsmInst::new(Instr::Ldi(1), 1, false));
                    code.push(AsmInst::new(Instr::Jump(base + 4), 1, false));
                    code.push(AsmInst::new(Instr::Ldi(0), 1, false));
                }
            }
            CmpOp::Lt | CmpOp::Le => {
                // The subtraction is carried out at widened precision so
                // it is exact for both signed and unsigned operands; the
                // sign bit of the widened difference then decides.
                //   lt(a, b)  <=>  a - b < 0
                //   le(a, b)  <=>  a - b - 1 < 0
                let _ = signed; // widening makes signedness irrelevant
                code.push(AsmInst::new(Instr::Alu(AluOp::Sub), wide, true));
                let test_width = if cmp == CmpOp::Le {
                    let w2 = wide + 1;
                    code.push(AsmInst::new(Instr::Tao, w2, true)); // OP = diff
                    code.push(AsmInst::new(Instr::Ldi(-1), w2, true));
                    code.push(AsmInst::new(Instr::Alu(AluOp::Add), w2, true));
                    w2
                } else {
                    wide
                };
                // Sign test: ACC = diff & SIGN_MASK, nonzero iff negative.
                code.push(AsmInst::new(Instr::Tao, test_width, true)); // OP = diff
                code.push(AsmInst::new(
                    Instr::Ldi(1i64 << (test_width - 1)),
                    test_width,
                    false,
                ));
                code.push(AsmInst::new(Instr::Alu(AluOp::And), test_width, false));
                let base = code.len() as u32;
                code.push(AsmInst::new(Instr::JumpIfNotZero(base + 3), 1, false));
                code.push(AsmInst::new(Instr::Ldi(0), 1, false));
                code.push(AsmInst::new(Instr::Jump(base + 4), 1, false));
                code.push(AsmInst::new(Instr::Ldi(1), 1, false));
            }
        }
    }

    fn emit_call(&self, func: u32, args: &[VReg], dst: Option<VReg>, code: &mut Vec<AsmInst>) {
        self.emit_raw_call(func, args, dst, code);
    }

    fn emit_raw_call(
        &self,
        func: u32,
        args: &[VReg],
        dst: Option<VReg>,
        code: &mut Vec<AsmInst>,
    ) {
        // Arguments are stored into the callee's frame (params live in
        // its first slots). Static frames are safe: no recursion.
        let callee_base = self.frame_bases[func as usize];
        for (i, &a) in args.iter().enumerate() {
            let t = self.ty(a);
            self.load(a, code);
            code.push(AsmInst::new(
                Instr::Store(Storage::Internal(callee_base + i as u16)),
                t.width,
                t.signed,
            ));
        }
        code.push(AsmInst::new(Instr::Call(func), 1, false));
        let _ = self.runtime_base;
        let _ = self.runtime;
        if let Some(d) = dst {
            self.store(d, code);
        }
    }
}

/// Removes stores to the routine's own frame slots that are never read
/// back. The accumulator codegen materialises every intermediate result
/// in its frame home; once loads are folded (peephole, fused
/// instructions), many of those homes become write-only. Parameter
/// slots are kept — callers write them. Frame overlay keeps callee
/// frames disjoint from the caller's own slots, so the analysis is
/// per-function.
pub fn eliminate_dead_frame_stores(f: &mut AsmFunction) {
    use std::collections::BTreeSet;
    let own: BTreeSet<Storage> = f.frame.iter().copied().collect();
    let params: BTreeSet<Storage> =
        f.frame.iter().take(f.param_count as usize).copied().collect();
    let mut read: BTreeSet<Storage> = BTreeSet::new();
    for inst in &f.code {
        match &inst.instr {
            Instr::Load(s) => {
                read.insert(*s);
            }
            Instr::AluMem { src, .. } => {
                read.insert(*src);
            }
            _ => {}
        }
    }
    let mut removed = false;
    for inst in f.code.iter_mut() {
        if let Instr::Store(s) = inst.instr {
            if own.contains(&s) && !params.contains(&s) && !read.contains(&s) {
                inst.instr = Instr::Nop;
                removed = true;
            }
        }
    }
    if removed {
        compact_nops(f);
    }
}

/// Drops `Nop`s, remapping branch targets.
fn compact_nops(f: &mut AsmFunction) {
    let mut new_index = vec![0u32; f.code.len() + 1];
    let mut n = 0u32;
    for (i, inst) in f.code.iter().enumerate() {
        new_index[i] = n;
        if !matches!(inst.instr, Instr::Nop) {
            n += 1;
        }
    }
    new_index[f.code.len()] = n;
    let old = std::mem::take(&mut f.code);
    for mut inst in old {
        if matches!(inst.instr, Instr::Nop) {
            continue;
        }
        if let Some(t) = inst.instr.branch_target() {
            inst.instr.set_branch_target(new_index[t as usize]);
        }
        f.code.push(inst);
    }
}

/// Assembler-level peephole: jump chains, jumps-to-next, and
/// store/load-same-location pairs (the result is still in ACC).
pub fn peephole_asm(f: &mut AsmFunction) {
    // 1. Collapse jump chains: a branch to an unconditional `Jump t`
    //    retargets to `t` (bounded to avoid cycles).
    for i in 0..f.code.len() {
        if let Some(mut t) = f.code[i].instr.branch_target() {
            let mut hops = 0;
            while hops < 8 {
                match f.code.get(t as usize).map(|x| &x.instr) {
                    Some(Instr::Jump(t2)) if *t2 != t => {
                        t = *t2;
                        hops += 1;
                    }
                    _ => break,
                }
            }
            f.code[i].instr.set_branch_target(t);
        }
    }

    // 2. Remove `Store X; Load X` pairs when X is not loaded again
    //    *immediately* needed — conservatively: replace the Load with Nop
    //    only when no branch targets the Load. (The Store stays: the slot
    //    may be read later.)
    let mut is_target = vec![false; f.code.len() + 1];
    for inst in &f.code {
        if let Some(t) = inst.instr.branch_target() {
            if (t as usize) < is_target.len() {
                is_target[t as usize] = true;
            }
        }
    }
    for i in 0..f.code.len().saturating_sub(1) {
        let (a, b) = (&f.code[i].instr, &f.code[i + 1].instr);
        if let (Instr::Store(sa), Instr::Load(sb)) = (a, b) {
            if sa == sb && !is_target[i + 1] {
                f.code[i + 1].instr = Instr::Nop;
                f.code[i + 1].width = 1;
            }
        }
    }

    // 3. Drop Nops and jumps-to-next by rebuilding with an index map.
    let mut keep: Vec<bool> = Vec::with_capacity(f.code.len());
    for (i, inst) in f.code.iter().enumerate() {
        let drop = matches!(inst.instr, Instr::Nop)
            || matches!(inst.instr, Instr::Jump(t) if t as usize == i + 1);
        keep.push(!drop);
    }
    // Never drop a branch target position entirely — map to next kept.
    let mut new_index = vec![0u32; f.code.len() + 1];
    let mut n = 0u32;
    for i in 0..f.code.len() {
        new_index[i] = n;
        if keep[i] {
            n += 1;
        }
    }
    new_index[f.code.len()] = n;
    let old = std::mem::take(&mut f.code);
    for (i, mut inst) in old.into_iter().enumerate() {
        if !keep[i] {
            continue;
        }
        if let Some(t) = inst.instr.branch_target() {
            inst.instr.set_branch_target(new_index[t as usize]);
        }
        f.code.push(inst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_action_lang::compile;

    #[test]
    fn compiles_simple_function() {
        let ir = compile("int:16 add(int:16 a, int:16 b) { return a + b; }").unwrap();
        let p = compile_program(&ir, &TepArch::md16_unoptimized(), &CodegenOptions::default());
        let f = &p.functions[p.function_index("add").unwrap() as usize];
        assert!(f.code.iter().any(|i| matches!(i.instr, Instr::Alu(AluOp::Add))));
        assert!(f.code.iter().any(|i| matches!(i.instr, Instr::Return)));
    }

    #[test]
    fn muldiv_expands_on_minimal_arch() {
        let ir = compile("int:16 f(int:16 a, int:16 b) { return a * b / 3; }").unwrap();
        let minimal = compile_program(&ir, &TepArch::minimal(), &CodegenOptions::default());
        assert!(minimal.function_index("__mulu_16").is_some());
        assert!(minimal.function_index("__divs_16").is_some());
        let f = &minimal.functions[minimal.function_index("f").unwrap() as usize];
        assert!(
            !f.code.iter().any(|i| matches!(i.instr, Instr::Alu(AluOp::Mul | AluOp::Div))),
            "no hw mul/div on minimal arch"
        );

        let md = compile_program(&ir, &TepArch::md16_unoptimized(), &CodegenOptions::default());
        assert!(md.function_index("__mulu_16").is_none(), "no runtime with hw M/D");
    }

    #[test]
    fn runtime_loop_bounds_recorded() {
        let ir = compile("uint:8 f(uint:8 a) { return a * 3; }").unwrap();
        let p = compile_program(&ir, &TepArch::minimal(), &CodegenOptions::default());
        let rt = &p.functions[p.function_index("__mulu_8").unwrap() as usize];
        assert_eq!(rt.loop_bound, Some(8));
    }

    #[test]
    fn globals_placed_by_class_and_promotion() {
        let ir = compile("int:16 g;\nint:16 h;\nvoid f() { g = h + 1; }").unwrap();
        let ext = compile_program(&ir, &TepArch::md16_unoptimized(), &CodegenOptions::default());
        assert!(matches!(ext.globals[0].storage, Storage::External(_)));

        let mut opts = CodegenOptions::default();
        opts.global_promotions.insert(0, StorageClass::Register);
        opts.global_promotions.insert(1, StorageClass::Internal);
        let promoted = compile_program(&ir, &TepArch::md16_optimized(), &opts);
        assert!(matches!(promoted.globals[0].storage, Storage::Register(_)));
        assert!(matches!(promoted.globals[1].storage, Storage::Internal(_)));
    }

    #[test]
    fn peephole_removes_store_load_pairs() {
        let ir = compile("int:16 f(int:16 a) { int:16 x = a + 1; return x + 2; }").unwrap();
        let unopt =
            compile_program(&ir, &TepArch::md16_unoptimized(), &CodegenOptions::default());
        let opt = compile_program(&ir, &TepArch::md16_optimized(), &CodegenOptions::default());
        let fu = &unopt.functions[unopt.function_index("f").unwrap() as usize];
        let fo = &opt.functions[opt.function_index("f").unwrap() as usize];
        assert!(fo.code.len() < fu.code.len(), "{} !< {}", fo.code.len(), fu.code.len());
    }

    #[test]
    fn branch_targets_valid_after_peephole() {
        let src = r#"
            int:16 f(int:16 n) {
                int:16 s = 0;
                while (n > 0) { if (n & 1) { s += n; } n = n - 1; }
                return s;
            }
        "#;
        let ir = compile(src).unwrap();
        for arch in [TepArch::md16_optimized(), TepArch::md16_unoptimized(), TepArch::minimal()]
        {
            let p = compile_program(&ir, &arch, &CodegenOptions::default());
            for f in &p.functions {
                for inst in &f.code {
                    if let Some(t) = inst.instr.branch_target() {
                        assert!(
                            (t as usize) <= f.code.len(),
                            "target {t} out of range in {}",
                            f.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cached_compile_is_identical_and_hits_on_repeat() {
        let src = r#"
            int:16 g;
            int:16 f(int:16 a) { g = a * 3; return g + 1; }
            int:16 h(int:16 b) { return b - 2; }
        "#;
        let ir = compile(src).unwrap();
        let arch = TepArch::md16_optimized();
        let opts = CodegenOptions::default();
        let cache = CodegenCache::with_enabled(true);
        let plain = compile_program(&ir, &arch, &opts);
        let cold = compile_program_cached(&ir, &arch, &opts, &cache);
        assert_eq!(plain, cold);
        assert_eq!(cache.stats().hits, 0);
        let warm = compile_program_cached(&ir, &arch, &opts, &cache);
        assert_eq!(plain, warm);
        assert_eq!(cache.stats().hits as usize, plain.functions.len());
    }

    #[test]
    fn flag_flip_invalidates_only_affected_routines() {
        // `f` compares, `h` does not: flipping the comparator must only
        // recompile `f`.
        let src = r#"
            uint:1 f(int:16 a, int:16 b) { return a < b; }
            int:16 h(int:16 c) { return c + 7; }
        "#;
        let ir = compile(src).unwrap();
        let mut arch = TepArch::md16_optimized();
        let opts = CodegenOptions::default();
        let cache = CodegenCache::with_enabled(true);
        let base = compile_program_cached(&ir, &arch, &opts, &cache);
        arch.calc.comparator = false;
        let flipped = compile_program_cached(&ir, &arch, &opts, &cache);
        assert_eq!(flipped, compile_program(&ir, &arch, &opts));
        assert_ne!(base.functions[0], flipped.functions[0]);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1, "only `h` should hit: {stats:?}");
    }

    #[test]
    fn recompile_delta_matches_full_compile() {
        let src = r#"
            int:16 g;
            int:16 f(int:16 a) { g = a * g; return g; }
            uint:1 p(int:16 x) { return x < 0; }
        "#;
        let ir = compile(src).unwrap();
        let cache = CodegenCache::with_enabled(true);
        let base_arch = TepArch::md16_unoptimized();
        let prev = compile_program(&ir, &base_arch, &CodegenOptions::default());
        for (arch, opts) in [
            (TepArch::md16_optimized(), CodegenOptions::default()),
            (TepArch::minimal(), CodegenOptions::default()),
            (TepArch::md16_unoptimized(), {
                let mut o = CodegenOptions::default();
                o.global_promotions.insert(0, StorageClass::Internal);
                o
            }),
        ] {
            let delta =
                CodegenDelta { ir: &ir, arch: &arch, options: &opts, cache: Some(&cache) };
            let got = recompile_delta(&prev, &delta);
            let want = compile_program(&ir, &arch, &opts);
            assert_eq!(got, want, "delta compile diverged for {arch:?}");
        }
    }

    #[test]
    fn poisoned_entries_are_detected_and_recompiled() {
        let src = "int:16 f(int:16 a) { return a + 1; }\nint:16 h(int:16 b) { return b * 2; }";
        let ir = compile(src).unwrap();
        let arch = TepArch::md16_optimized();
        let opts = CodegenOptions::default();
        let cache = CodegenCache::with_enabled(true);
        let want = compile_program_cached(&ir, &arch, &opts, &cache);
        let bogus = AsmFunction {
            name: "__poison__".into(),
            param_count: 9,
            frame: Vec::new(),
            code: vec![AsmInst::new(Instr::Return, 1, false)],
            loop_bound: None,
        };
        cache.poison_for_tests(&bogus);
        let got = compile_program_cached(&ir, &arch, &opts, &cache);
        assert_eq!(got, want, "poisoned cache must not change output");
        let stats = cache.stats();
        assert!(stats.invalidations >= 2, "poison must be detected: {stats:?}");
    }

    #[test]
    fn disabled_cache_never_stores() {
        let ir = compile("int:16 f(int:16 a) { return a + 1; }").unwrap();
        let cache = CodegenCache::with_enabled(false);
        let arch = TepArch::md16_optimized();
        let got = compile_program_cached(&ir, &arch, &CodegenOptions::default(), &cache);
        assert_eq!(got, compile_program(&ir, &arch, &CodegenOptions::default()));
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn comparator_less_arch_avoids_cmp() {
        let ir = compile("uint:1 f(int:8 a, int:8 b) { return a < b; }").unwrap();
        let p = compile_program(&ir, &TepArch::minimal(), &CodegenOptions::default());
        let f = &p.functions[p.function_index("f").unwrap() as usize];
        assert!(!f.code.iter().any(|i| matches!(i.instr, Instr::Cmp { .. })));
    }
}
