//! Action-language IR → TEP assembly.
//!
//! The generator is parameterised by the target [`TepArch`]:
//!
//! * machines without the M/D calculation unit get multiplies and
//!   divides expanded into calls to a synthesised software runtime
//!   (shift-add multiply, restoring divide — the reason the minimal TEP
//!   blows its timing budget in Table 4);
//! * machines without a comparator get comparisons expanded into
//!   subtract/sign-test/branch sequences;
//! * machines without a two's-complement ALU path get `neg` expanded
//!   into complement-and-increment;
//! * globals are placed in the architecture's global storage class, with
//!   per-slot promotions (internal RAM / register file) supplied by the
//!   iterative optimiser via [`CodegenOptions`];
//! * when [`TepArch::optimize_code`] is set, an assembler-level peephole
//!   removes store/load pairs and jump chains (the §4 "simple
//!   optimizations" at the instruction level).
//!
//! The software runtime is *written in the action language itself* and
//! compiled through the same pipeline, so its semantics are checked by
//! the same differential tests.

use crate::arch::{StorageClass, TepArch};
use crate::isa::{AluOp, AsmFunction, AsmInst, CmpOp, Instr, Storage};
use pscp_action_lang::ir::{self, BinOp, Inst as IrInst, Program, VReg};
use pscp_action_lang::types::Scalar;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Placement overrides decided by the iterative optimiser.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodegenOptions {
    /// Global slots promoted to a faster storage class. Keys are IR
    /// global slot indices; arrays/structs must be promoted as whole
    /// blocks by listing every slot (scalars only for `Register`).
    pub global_promotions: BTreeMap<u32, StorageClass>,
}

/// A placed global slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalPlace {
    /// Diagnostic name from the IR.
    pub name: String,
    /// Value type.
    pub ty: Scalar,
    /// Reset value.
    pub init: i64,
    /// Where it lives.
    pub storage: Storage,
}

/// A fully-compiled TEP program: routines, global placement, ports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TepProgram {
    /// Compiled routines; runtime routines are appended after the user's.
    pub functions: Vec<AsmFunction>,
    /// Routine name → index.
    pub entry: BTreeMap<String, u32>,
    /// Placed globals, parallel to the IR global slots.
    pub globals: Vec<GlobalPlace>,
    /// External data ports (address map).
    pub ports: Vec<ir::PortInfo>,
    /// Event names (indices match `RaiseEvent` operands).
    pub events: Vec<String>,
    /// Condition names (indices match `SetCond`/`ReadCond` operands).
    pub conditions: Vec<String>,
    /// Architecture snapshot the program was compiled for.
    pub arch: TepArch,
    /// Internal RAM words used (frames + promoted globals).
    pub internal_words_used: u16,
    /// External RAM words used.
    pub external_words_used: u16,
}

impl TepProgram {
    /// Index of a routine by name.
    pub fn function_index(&self, name: &str) -> Option<u32> {
        self.entry.get(name).copied()
    }

    /// Total instruction count across all routines (program-memory size).
    pub fn instruction_count(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }

    /// Test-only constructor wiring hand-written functions.
    #[doc(hidden)]
    pub fn for_tests(functions: Vec<AsmFunction>, arch: TepArch) -> Self {
        let entry =
            functions.iter().enumerate().map(|(i, f)| (f.name.clone(), i as u32)).collect();
        TepProgram {
            functions,
            entry,
            globals: Vec::new(),
            ports: Vec::new(),
            events: Vec::new(),
            conditions: Vec::new(),
            arch,
            internal_words_used: 0,
            external_words_used: 0,
        }
    }
}

/// Compiles an IR program for an architecture.
///
/// # Panics
///
/// Panics on malformed IR (dangling function indices); the action-language
/// front end never produces such IR.
pub fn compile_program(ir: &Program, arch: &TepArch, options: &CodegenOptions) -> TepProgram {
    // 1. Decide which runtime routines are needed and synthesise them by
    //    compiling action-language source through the normal pipeline.
    let runtime = RuntimeSet::required(ir, arch);
    let runtime_ir = runtime.compile();

    // 2. Function table: user functions first, runtime after.
    let mut entry: BTreeMap<String, u32> = BTreeMap::new();
    for (i, f) in ir.functions.iter().enumerate() {
        entry.insert(f.name.clone(), i as u32);
    }
    let runtime_base = ir.functions.len() as u32;
    if let Some(rt) = &runtime_ir {
        for (i, f) in rt.functions.iter().enumerate() {
            entry.insert(f.name.clone(), runtime_base + i as u32);
        }
    }

    // 3. Global placement.
    let mut globals = Vec::with_capacity(ir.globals.len());
    let mut next_external: u16 = 0;
    let mut next_register: u8 = 0;
    // Frames live in the per-TEP local (internal) RAM. Since recursion
    // is banned, frames are laid out as a *static overlay*: a callee's
    // frame starts after the deepest caller chain that can reach it, so
    // functions that are never simultaneously live share addresses.
    let frame_sizes: Vec<u16> = ir
        .functions
        .iter()
        .map(|f| f.vreg_count() as u16)
        .chain(
            runtime_ir
                .iter()
                .flat_map(|rt| rt.functions.iter().map(|f| f.vreg_count() as u16)),
        )
        .collect();
    let frame_bases = overlay_frames(ir, runtime_ir.as_ref(), &frame_sizes);
    let mut next_internal: u16 = frame_bases
        .iter()
        .zip(&frame_sizes)
        .map(|(&b, &s)| b + s)
        .max()
        .unwrap_or(0);
    for (slot, g) in ir.globals.iter().enumerate() {
        let class =
            options.global_promotions.get(&(slot as u32)).copied().unwrap_or(arch.global_storage);
        let storage = match class {
            StorageClass::Register if next_register < arch.register_file => {
                let r = next_register;
                next_register += 1;
                Storage::Register(r)
            }
            StorageClass::Register | StorageClass::Internal => {
                let a = next_internal;
                next_internal += 1;
                Storage::Internal(a)
            }
            StorageClass::External => {
                let a = next_external;
                next_external += 1;
                Storage::External(a)
            }
        };
        globals.push(GlobalPlace { name: g.name.clone(), ty: g.ty, init: g.init, storage });
    }

    // 4. Compile each function.
    let mut functions = Vec::new();
    let all_ir: Vec<(&ir::Function, Option<u64>)> = ir
        .functions
        .iter()
        .map(|f| (f, None))
        .chain(runtime_ir.iter().flat_map(|rt| {
            rt.functions.iter().map(|f| (f, runtime_loop_bound(&f.name)))
        }))
        .collect();
    for (i, (f, loop_bound)) in all_ir.iter().enumerate() {
        let cg = FnCodegen {
            arch,
            entry: &entry,
            globals: &globals,
            frame_base: frame_bases[i],
            frame_bases: &frame_bases,
            ir_fn: f,
            runtime: &runtime,
            runtime_base,
            // IR `Call` operands inside runtime routines index the
            // runtime's own function table; rebase them.
            call_offset: if i >= ir.functions.len() { runtime_base } else { 0 },
            const_of: const_analysis(f),
        };
        let mut asm = cg.run();
        asm.loop_bound = *loop_bound;
        if arch.optimize_code {
            peephole_asm(&mut asm);
            eliminate_dead_frame_stores(&mut asm);
        }
        functions.push(asm);
    }

    TepProgram {
        functions,
        entry,
        globals,
        ports: ir.ports.clone(),
        events: ir.events.clone(),
        conditions: ir.conditions.clone(),
        arch: arch.clone(),
        internal_words_used: next_internal,
        external_words_used: next_external,
    }
}

/// Static frame overlay: `base(callee) = max over callers of
/// (base(caller) + size(caller))`, computed over the combined user +
/// runtime call graph (which is a DAG — recursion is rejected by the
/// front end). The runtime's internal calls (`__divs` → `__divu`) and
/// the implicit calls from mul/div lowering are included.
fn overlay_frames(
    ir: &Program,
    runtime_ir: Option<&Program>,
    sizes: &[u16],
) -> Vec<u16> {
    let user_n = ir.functions.len();
    let total = sizes.len();
    // Edges: caller -> callee (global indices).
    let mut callees: Vec<Vec<usize>> = vec![Vec::new(); total];
    for (i, f) in ir.functions.iter().enumerate() {
        for inst in &f.insts {
            match inst {
                IrInst::Call { func, .. } => callees[i].push(*func as usize),
                // Mul/Div/Rem may lower to runtime calls; conservatively
                // link every runtime routine as a potential callee.
                IrInst::Bin { op: BinOp::Mul | BinOp::Div | BinOp::Rem, .. } => {
                    for r in user_n..total {
                        callees[i].push(r);
                    }
                }
                _ => {}
            }
        }
    }
    if let Some(rt) = runtime_ir {
        for (i, f) in rt.functions.iter().enumerate() {
            for inst in &f.insts {
                if let IrInst::Call { func, .. } = inst {
                    callees[user_n + i].push(user_n + *func as usize);
                }
            }
        }
    }
    // Longest-path relaxation over the DAG (|V| passes suffice).
    let mut base = vec![0u16; total];
    for _ in 0..total {
        let mut changed = false;
        for caller in 0..total {
            for &callee in &callees[caller] {
                let want = base[caller] + sizes[caller];
                if base[callee] < want {
                    base[callee] = want;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    base
}

/// Which software-runtime routines an architecture needs for a program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct RuntimeSet {
    /// Widths needing software multiply.
    mul_widths: Vec<u8>,
    /// (width, signed) needing software divide.
    div_widths: Vec<(u8, bool)>,
    /// (width, signed) needing software remainder.
    rem_widths: Vec<(u8, bool)>,
}

impl RuntimeSet {
    fn required(ir: &Program, arch: &TepArch) -> Self {
        let mut set = RuntimeSet::default();
        if arch.calc.muldiv {
            return set;
        }
        for f in &ir.functions {
            for inst in &f.insts {
                if let IrInst::Bin { op, dst, lhs, rhs } = inst {
                    let w = runtime_width(
                        f.vreg_type(*dst).width.max(f.vreg_type(*lhs).width).max(f.vreg_type(*rhs).width),
                    );
                    let signed = f.vreg_type(*lhs).signed || f.vreg_type(*rhs).signed;
                    match op {
                        BinOp::Mul
                            if !set.mul_widths.contains(&w) => {
                                set.mul_widths.push(w);
                            }
                        BinOp::Div
                            if !set.div_widths.contains(&(w, signed)) => {
                                set.div_widths.push((w, signed));
                            }
                        BinOp::Rem
                            if !set.rem_widths.contains(&(w, signed)) => {
                                set.rem_widths.push((w, signed));
                            }
                        _ => {}
                    }
                }
            }
        }
        // Signed div/rem wrappers call the unsigned ones.
        for &(w, s) in set.div_widths.clone().iter().chain(set.rem_widths.clone().iter()) {
            if s && !set.div_widths.contains(&(w, false)) {
                set.div_widths.push((w, false));
            }
        }
        set.mul_widths.sort_unstable();
        set.div_widths.sort_unstable();
        set.rem_widths.sort_unstable();
        set
    }

    fn is_empty(&self) -> bool {
        self.mul_widths.is_empty() && self.div_widths.is_empty() && self.rem_widths.is_empty()
    }

    /// Generates the runtime as action-language source and compiles it.
    fn compile(&self) -> Option<Program> {
        if self.is_empty() {
            return None;
        }
        let mut src = String::new();
        for &w in &self.mul_widths {
            // Shift-add multiply; low bits are sign-agnostic.
            src.push_str(&format!(
                r#"
uint:{w} __mulu_{w}(uint:{w} a, uint:{w} b) {{
    uint:{w} res = 0;
    uint:8 i = {w};
    while (i > 0) {{
        if (b & 1) {{ res = res + a; }}
        a = a << 1;
        b = b >> 1;
        i = i - 1;
    }}
    return res;
}}
"#
            ));
        }
        for &(w, signed) in &self.div_widths {
            if !signed {
                src.push_str(&unsigned_divmod_src(w));
            }
        }
        for &(w, signed) in &self.div_widths {
            if signed {
                src.push_str(&format!(
                    r#"
int:{w} __divs_{w}(int:{w} a, int:{w} b) {{
    uint:1 sa = a < 0;
    uint:1 sb = b < 0;
    uint:{w} ua = a;
    uint:{w} ub = b;
    if (sa) {{ ua = 0 - ua; }}
    if (sb) {{ ub = 0 - ub; }}
    uint:{w} q = __divu_{w}(ua, ub);
    if (sa != sb) {{ return 0 - q; }}
    return q;
}}
"#
                ));
            }
        }
        for &(w, signed) in &self.rem_widths {
            if signed {
                src.push_str(&format!(
                    r#"
int:{w} __rems_{w}(int:{w} a, int:{w} b) {{
    uint:1 sa = a < 0;
    uint:{w} ua = a;
    uint:{w} ub = b;
    if (sa) {{ ua = 0 - ua; }}
    if (b < 0) {{ ub = 0 - ub; }}
    uint:{w} r = __remu_{w}(ua, ub);
    if (sa) {{ return 0 - r; }}
    return r;
}}
"#
                ));
            }
        }
        // Unsigned rem bodies (and any divu pulled in only by rem).
        for &(w, signed) in &self.rem_widths {
            if !signed && !self.div_widths.contains(&(w, false)) {
                src.push_str(&unsigned_divmod_src(w));
            }
        }
        Some(pscp_action_lang::compile(&src).expect("runtime library must compile"))
    }
}

/// `__divu_w` / `__remu_w`: restoring division, one bit per iteration.
fn unsigned_divmod_src(w: u8) -> String {
    format!(
        r#"
uint:{w} __divu_{w}(uint:{w} a, uint:{w} b) {{
    uint:{w} q = 0;
    uint:{w} r = 0;
    uint:8 i = {w};
    while (i > 0) {{
        r = (r << 1) | ((a >> ({w} - 1)) & 1);
        a = a << 1;
        q = q << 1;
        if (r >= b) {{ r = r - b; q = q | 1; }}
        i = i - 1;
    }}
    return q;
}}
uint:{w} __remu_{w}(uint:{w} a, uint:{w} b) {{
    uint:{w} r = 0;
    uint:8 i = {w};
    while (i > 0) {{
        r = (r << 1) | ((a >> ({w} - 1)) & 1);
        a = a << 1;
        if (r >= b) {{ r = r - b; }}
        i = i - 1;
    }}
    return r;
}}
"#
    )
}

/// The runtime's loops iterate exactly `width` times.
fn runtime_loop_bound(name: &str) -> Option<u64> {
    name.rsplit('_').next().and_then(|w| w.parse::<u64>().ok())
}

/// Widths the runtime is generated for (snapped up to 8/16/32).
fn runtime_width(w: u8) -> u8 {
    match w {
        0..=8 => 8,
        9..=16 => 16,
        _ => 32,
    }
}

fn runtime_name(op: BinOp, w: u8, signed: bool) -> String {
    match (op, signed) {
        (BinOp::Mul, _) => format!("__mulu_{w}"),
        (BinOp::Div, false) => format!("__divu_{w}"),
        (BinOp::Div, true) => format!("__divs_{w}"),
        (BinOp::Rem, false) => format!("__remu_{w}"),
        (BinOp::Rem, true) => format!("__rems_{w}"),
        _ => unreachable!("no runtime for {op:?}"),
    }
}

struct FnCodegen<'a> {
    arch: &'a TepArch,
    entry: &'a BTreeMap<String, u32>,
    globals: &'a [GlobalPlace],
    frame_base: u16,
    frame_bases: &'a [u16],
    ir_fn: &'a ir::Function,
    runtime: &'a RuntimeSet,
    runtime_base: u32,
    call_offset: u32,
    /// `Some(k)` for virtual registers defined exactly once, by a
    /// `Const k`: every read inlines to `Ldi k` and the definition is
    /// not materialised at all.
    const_of: Vec<Option<i64>>,
}

/// Single-definition constant analysis for operand inlining.
fn const_analysis(f: &ir::Function) -> Vec<Option<i64>> {
    let mut defs = vec![0u32; f.vreg_count()];
    let mut value: Vec<Option<i64>> = vec![None; f.vreg_count()];
    for inst in &f.insts {
        if let Some(d) = inst.def() {
            defs[d.0 as usize] += 1;
            value[d.0 as usize] = match inst {
                IrInst::Const { value, .. } => Some(*value),
                _ => None,
            };
        }
    }
    // Parameters are implicit definitions.
    for p in 0..f.params.len() {
        defs[p] += 1;
        value[p] = None;
    }
    value
        .into_iter()
        .zip(defs)
        .map(|(v, d)| if d == 1 { v } else { None })
        .collect()
}

impl FnCodegen<'_> {
    fn home(&self, v: VReg) -> Storage {
        Storage::Internal(self.frame_base + v.0 as u16)
    }

    fn ty(&self, v: VReg) -> Scalar {
        self.ir_fn.vreg_type(v)
    }

    fn run(&self) -> AsmFunction {
        let f = self.ir_fn;
        let mut code: Vec<AsmInst> = Vec::new();
        // Map: IR pc -> asm index of its first instruction.
        let mut ir_to_asm: Vec<u32> = Vec::with_capacity(f.insts.len() + 1);
        // (asm index, ir target pc) fixups.
        let mut fixups: Vec<(usize, usize)> = Vec::new();

        let mut prev_def: Option<VReg> = None;
        for inst in &f.insts {
            ir_to_asm.push(code.len() as u32);
            self.lower_inst(inst, &mut code, &mut fixups, prev_def);
            prev_def = inst.def();
        }
        ir_to_asm.push(code.len() as u32);
        // Safety net terminator.
        code.push(AsmInst::new(Instr::Return, 1, false));

        for (at, ir_pc) in fixups {
            code[at].instr.set_branch_target(ir_to_asm[ir_pc]);
        }

        AsmFunction {
            name: f.name.clone(),
            param_count: f.params.len() as u8,
            frame: (0..f.vreg_count())
                .map(|i| Storage::Internal(self.frame_base + i as u16))
                .collect(),
            code,
            loop_bound: None,
        }
    }

    fn lower_inst(
        &self,
        inst: &IrInst,
        code: &mut Vec<AsmInst>,
        fixups: &mut Vec<(usize, usize)>,
        prev_def: Option<VReg>,
    ) {
        let f = self.ir_fn;
        match inst {
            IrInst::Const { dst, value } => {
                // Fully inlined constants need no materialised home.
                if self.const_of[dst.0 as usize].is_some() {
                    return;
                }
                let t = self.ty(*dst);
                code.push(AsmInst::new(Instr::Ldi(t.wrap(*value)), t.width, t.signed));
                self.store(*dst, code);
            }
            IrInst::Copy { dst, src } => {
                self.load(*src, code);
                self.store(*dst, code);
            }
            IrInst::Bin { op, dst, lhs, rhs } => {
                // Accumulator chaining: when the previous instruction's
                // result is the left operand of a commutative operation,
                // swap the operands — the `Store h; Load h` pair the
                // swap creates is then folded by the peephole.
                let commutative = matches!(
                    op,
                    BinOp::Add
                        | BinOp::Mul
                        | BinOp::And
                        | BinOp::Or
                        | BinOp::Xor
                        | BinOp::CmpEq
                        | BinOp::CmpNe
                );
                let (lhs, rhs) = if commutative && prev_def == Some(*lhs) && lhs != rhs {
                    (*rhs, *lhs)
                } else {
                    (*lhs, *rhs)
                };
                self.lower_bin(*op, *dst, lhs, rhs, code);
            }
            IrInst::Un { op, dst, src } => {
                self.load(*src, code);
                let t = self.ty(*dst);
                match op {
                    ir::UnOp::Not => {
                        code.push(AsmInst::new(Instr::Alu(AluOp::Not), t.width, t.signed));
                    }
                    ir::UnOp::Neg => {
                        if self.arch.calc.twos_complement {
                            code.push(AsmInst::new(Instr::Alu(AluOp::Neg), t.width, t.signed));
                        } else {
                            // -x = ~x + 1
                            code.push(AsmInst::new(Instr::Alu(AluOp::Not), t.width, t.signed));
                            code.push(AsmInst::new(Instr::Tao, t.width, t.signed));
                            code.push(AsmInst::new(Instr::Ldi(1), t.width, t.signed));
                            code.push(AsmInst::new(Instr::Alu(AluOp::Add), t.width, t.signed));
                        }
                    }
                }
                self.store(*dst, code);
            }
            IrInst::LoadGlobal { dst, slot } => {
                let g = &self.globals[*slot as usize];
                code.push(AsmInst::new(Instr::Load(g.storage), g.ty.width, g.ty.signed));
                self.store(*dst, code);
            }
            IrInst::StoreGlobal { slot, src } => {
                let g = &self.globals[*slot as usize];
                self.load(*src, code);
                code.push(AsmInst::new(Instr::Store(g.storage), g.ty.width, g.ty.signed));
            }
            IrInst::LoadIndexed { dst, base, index } => {
                let g = &self.globals[*base as usize];
                self.load(*index, code);
                code.push(AsmInst::new(
                    Instr::LoadIndexed(g.storage),
                    g.ty.width,
                    g.ty.signed,
                ));
                self.store(*dst, code);
            }
            IrInst::StoreIndexed { base, index, src } => {
                let g = &self.globals[*base as usize];
                self.load(*index, code);
                code.push(AsmInst::new(Instr::Tao, 16, false));
                self.load(*src, code);
                code.push(AsmInst::new(
                    Instr::StoreIndexed(g.storage),
                    g.ty.width,
                    g.ty.signed,
                ));
            }
            IrInst::PortRead { dst, port } => {
                let t = self.ty(*dst);
                code.push(AsmInst::new(Instr::PortRead(*port as u16), t.width, t.signed));
                self.store(*dst, code);
            }
            IrInst::PortWrite { port, src } => {
                self.load(*src, code);
                let t = self.ty(*src);
                code.push(AsmInst::new(Instr::PortWrite(*port as u16), t.width, t.signed));
            }
            IrInst::ReadCondition { dst, cond } => {
                code.push(AsmInst::new(Instr::ReadCond(*cond as u16), 1, false));
                self.store(*dst, code);
            }
            IrInst::SetCondition { cond, src } => {
                self.load(*src, code);
                code.push(AsmInst::new(Instr::SetCond(*cond as u16), 1, false));
            }
            IrInst::RaiseEvent { event } => {
                code.push(AsmInst::new(Instr::RaiseEvent(*event as u16), 1, false));
            }
            IrInst::Call { func, args, dst } => {
                self.emit_call(*func + self.call_offset, args, *dst, code);
            }
            IrInst::Ret { value } => {
                if let Some(v) = value {
                    self.load(*v, code);
                }
                code.push(AsmInst::new(Instr::Return, 1, false));
            }
            IrInst::Jump { target } => {
                let at = code.len();
                code.push(AsmInst::new(Instr::Jump(0), 1, false));
                fixups.push((at, f.label_pos(*target)));
            }
            IrInst::Branch { cond, if_true, if_false } => {
                self.load(*cond, code);
                let at = code.len();
                code.push(AsmInst::new(Instr::JumpIfNotZero(0), 1, false));
                fixups.push((at, f.label_pos(*if_true)));
                let at2 = code.len();
                code.push(AsmInst::new(Instr::Jump(0), 1, false));
                fixups.push((at2, f.label_pos(*if_false)));
            }
        }
    }

    fn load(&self, v: VReg, code: &mut Vec<AsmInst>) {
        let t = self.ty(v);
        // Single-definition constants are rematerialised instead of
        // loaded: `Ldi k` is cheaper than a RAM access, and the stored
        // definition disappears entirely.
        if let Some(k) = self.const_of[v.0 as usize] {
            code.push(AsmInst::new(Instr::Ldi(t.wrap(k)), t.width, t.signed));
            return;
        }
        code.push(AsmInst::new(Instr::Load(self.home(v)), t.width, t.signed));
    }

    fn store(&self, v: VReg, code: &mut Vec<AsmInst>) {
        let t = self.ty(v);
        code.push(AsmInst::new(Instr::Store(self.home(v)), t.width, t.signed));
    }

    fn lower_bin(&self, op: BinOp, dst: VReg, lhs: VReg, rhs: VReg, code: &mut Vec<AsmInst>) {
        let t = self.ty(dst);
        let lt = self.ty(lhs);
        let rt = self.ty(rhs);

        // Software runtime for mul/div/rem on M/D-less machines.
        if matches!(op, BinOp::Mul | BinOp::Div | BinOp::Rem) && !self.arch.calc.muldiv {
            let w = runtime_width(t.width.max(lt.width).max(rt.width));
            let signed = lt.signed || rt.signed;
            let name = runtime_name(op, w, signed && op != BinOp::Mul);
            let idx = self.entry[&name];
            self.emit_raw_call(idx, &[lhs, rhs], Some(dst), code);
            return;
        }

        if op.is_compare() {
            let signed = lt.signed || rt.signed;
            let cmp = match op {
                BinOp::CmpEq => CmpOp::Eq,
                BinOp::CmpNe => CmpOp::Ne,
                BinOp::CmpLt => CmpOp::Lt,
                BinOp::CmpLe => CmpOp::Le,
                _ => unreachable!(),
            };
            let w = lt.width.max(rt.width);
            self.load(rhs, code);
            code.push(AsmInst::new(Instr::Tao, w, signed));
            self.load(lhs, code);
            if self.arch.calc.comparator {
                code.push(AsmInst::new(Instr::Cmp { op: cmp, signed }, w, signed));
            } else {
                self.expand_cmp(cmp, w, signed, code);
            }
            self.store(dst, code);
            return;
        }

        let alu = match op {
            BinOp::Add => AluOp::Add,
            BinOp::Sub => AluOp::Sub,
            BinOp::Mul => AluOp::Mul,
            BinOp::Div => AluOp::Div,
            BinOp::Rem => AluOp::Rem,
            BinOp::And => AluOp::And,
            BinOp::Or => AluOp::Or,
            BinOp::Xor => AluOp::Xor,
            BinOp::Shl => AluOp::Shl,
            BinOp::Shr => {
                if lt.signed {
                    AluOp::Sar
                } else {
                    AluOp::Shr
                }
            }
            _ => unreachable!("compares handled above"),
        };
        self.load(rhs, code);
        code.push(AsmInst::new(Instr::Tao, rt.width, rt.signed));
        self.load(lhs, code);
        code.push(AsmInst::new(Instr::Alu(alu), t.width, t.signed));
        self.store(dst, code);
    }

    /// Comparator-less compare: subtract at widened precision, then test
    /// the sign / zero with branches.
    fn expand_cmp(&self, cmp: CmpOp, w: u8, signed: bool, code: &mut Vec<AsmInst>) {
        // Entry state: ACC = lhs, OP = rhs.
        // Exact difference needs w+2 bits: with mixed signedness the
        // worst case is (2^w - 1) - (-2^(w-1)), which exceeds w+1 signed
        // bits.
        let wide = w + 2;
        match cmp {
            CmpOp::Eq | CmpOp::Ne => {
                code.push(AsmInst::new(Instr::Alu(AluOp::Xor), w, false));
                // ACC = lhs ^ rhs; == 0 iff equal.
                let base = code.len() as u32;
                if cmp == CmpOp::Eq {
                    // jz -> 1 else 0
                    code.push(AsmInst::new(Instr::JumpIfZero(base + 3), 1, false));
                    code.push(AsmInst::new(Instr::Ldi(0), 1, false));
                    code.push(AsmInst::new(Instr::Jump(base + 4), 1, false));
                    code.push(AsmInst::new(Instr::Ldi(1), 1, false));
                } else {
                    code.push(AsmInst::new(Instr::JumpIfZero(base + 3), 1, false));
                    code.push(AsmInst::new(Instr::Ldi(1), 1, false));
                    code.push(AsmInst::new(Instr::Jump(base + 4), 1, false));
                    code.push(AsmInst::new(Instr::Ldi(0), 1, false));
                }
            }
            CmpOp::Lt | CmpOp::Le => {
                // The subtraction is carried out at widened precision so
                // it is exact for both signed and unsigned operands; the
                // sign bit of the widened difference then decides.
                //   lt(a, b)  <=>  a - b < 0
                //   le(a, b)  <=>  a - b - 1 < 0
                let _ = signed; // widening makes signedness irrelevant
                code.push(AsmInst::new(Instr::Alu(AluOp::Sub), wide, true));
                let test_width = if cmp == CmpOp::Le {
                    let w2 = wide + 1;
                    code.push(AsmInst::new(Instr::Tao, w2, true)); // OP = diff
                    code.push(AsmInst::new(Instr::Ldi(-1), w2, true));
                    code.push(AsmInst::new(Instr::Alu(AluOp::Add), w2, true));
                    w2
                } else {
                    wide
                };
                // Sign test: ACC = diff & SIGN_MASK, nonzero iff negative.
                code.push(AsmInst::new(Instr::Tao, test_width, true)); // OP = diff
                code.push(AsmInst::new(
                    Instr::Ldi(1i64 << (test_width - 1)),
                    test_width,
                    false,
                ));
                code.push(AsmInst::new(Instr::Alu(AluOp::And), test_width, false));
                let base = code.len() as u32;
                code.push(AsmInst::new(Instr::JumpIfNotZero(base + 3), 1, false));
                code.push(AsmInst::new(Instr::Ldi(0), 1, false));
                code.push(AsmInst::new(Instr::Jump(base + 4), 1, false));
                code.push(AsmInst::new(Instr::Ldi(1), 1, false));
            }
        }
    }

    fn emit_call(&self, func: u32, args: &[VReg], dst: Option<VReg>, code: &mut Vec<AsmInst>) {
        self.emit_raw_call(func, args, dst, code);
    }

    fn emit_raw_call(
        &self,
        func: u32,
        args: &[VReg],
        dst: Option<VReg>,
        code: &mut Vec<AsmInst>,
    ) {
        // Arguments are stored into the callee's frame (params live in
        // its first slots). Static frames are safe: no recursion.
        let callee_base = self.frame_bases[func as usize];
        for (i, &a) in args.iter().enumerate() {
            let t = self.ty(a);
            self.load(a, code);
            code.push(AsmInst::new(
                Instr::Store(Storage::Internal(callee_base + i as u16)),
                t.width,
                t.signed,
            ));
        }
        code.push(AsmInst::new(Instr::Call(func), 1, false));
        let _ = self.runtime_base;
        let _ = self.runtime;
        if let Some(d) = dst {
            self.store(d, code);
        }
    }
}

/// Removes stores to the routine's own frame slots that are never read
/// back. The accumulator codegen materialises every intermediate result
/// in its frame home; once loads are folded (peephole, fused
/// instructions), many of those homes become write-only. Parameter
/// slots are kept — callers write them. Frame overlay keeps callee
/// frames disjoint from the caller's own slots, so the analysis is
/// per-function.
pub fn eliminate_dead_frame_stores(f: &mut AsmFunction) {
    use std::collections::BTreeSet;
    let own: BTreeSet<Storage> = f.frame.iter().copied().collect();
    let params: BTreeSet<Storage> =
        f.frame.iter().take(f.param_count as usize).copied().collect();
    let mut read: BTreeSet<Storage> = BTreeSet::new();
    for inst in &f.code {
        match &inst.instr {
            Instr::Load(s) => {
                read.insert(*s);
            }
            Instr::AluMem { src, .. } => {
                read.insert(*src);
            }
            _ => {}
        }
    }
    let mut removed = false;
    for inst in f.code.iter_mut() {
        if let Instr::Store(s) = inst.instr {
            if own.contains(&s) && !params.contains(&s) && !read.contains(&s) {
                inst.instr = Instr::Nop;
                removed = true;
            }
        }
    }
    if removed {
        compact_nops(f);
    }
}

/// Drops `Nop`s, remapping branch targets.
fn compact_nops(f: &mut AsmFunction) {
    let mut new_index = vec![0u32; f.code.len() + 1];
    let mut n = 0u32;
    for (i, inst) in f.code.iter().enumerate() {
        new_index[i] = n;
        if !matches!(inst.instr, Instr::Nop) {
            n += 1;
        }
    }
    new_index[f.code.len()] = n;
    let old = std::mem::take(&mut f.code);
    for mut inst in old {
        if matches!(inst.instr, Instr::Nop) {
            continue;
        }
        if let Some(t) = inst.instr.branch_target() {
            inst.instr.set_branch_target(new_index[t as usize]);
        }
        f.code.push(inst);
    }
}

/// Assembler-level peephole: jump chains, jumps-to-next, and
/// store/load-same-location pairs (the result is still in ACC).
pub fn peephole_asm(f: &mut AsmFunction) {
    // 1. Collapse jump chains: a branch to an unconditional `Jump t`
    //    retargets to `t` (bounded to avoid cycles).
    for i in 0..f.code.len() {
        if let Some(mut t) = f.code[i].instr.branch_target() {
            let mut hops = 0;
            while hops < 8 {
                match f.code.get(t as usize).map(|x| &x.instr) {
                    Some(Instr::Jump(t2)) if *t2 != t => {
                        t = *t2;
                        hops += 1;
                    }
                    _ => break,
                }
            }
            f.code[i].instr.set_branch_target(t);
        }
    }

    // 2. Remove `Store X; Load X` pairs when X is not loaded again
    //    *immediately* needed — conservatively: replace the Load with Nop
    //    only when no branch targets the Load. (The Store stays: the slot
    //    may be read later.)
    let mut is_target = vec![false; f.code.len() + 1];
    for inst in &f.code {
        if let Some(t) = inst.instr.branch_target() {
            if (t as usize) < is_target.len() {
                is_target[t as usize] = true;
            }
        }
    }
    for i in 0..f.code.len().saturating_sub(1) {
        let (a, b) = (&f.code[i].instr, &f.code[i + 1].instr);
        if let (Instr::Store(sa), Instr::Load(sb)) = (a, b) {
            if sa == sb && !is_target[i + 1] {
                f.code[i + 1].instr = Instr::Nop;
                f.code[i + 1].width = 1;
            }
        }
    }

    // 3. Drop Nops and jumps-to-next by rebuilding with an index map.
    let mut keep: Vec<bool> = Vec::with_capacity(f.code.len());
    for (i, inst) in f.code.iter().enumerate() {
        let drop = matches!(inst.instr, Instr::Nop)
            || matches!(inst.instr, Instr::Jump(t) if t as usize == i + 1);
        keep.push(!drop);
    }
    // Never drop a branch target position entirely — map to next kept.
    let mut new_index = vec![0u32; f.code.len() + 1];
    let mut n = 0u32;
    for i in 0..f.code.len() {
        new_index[i] = n;
        if keep[i] {
            n += 1;
        }
    }
    new_index[f.code.len()] = n;
    let old = std::mem::take(&mut f.code);
    for (i, mut inst) in old.into_iter().enumerate() {
        if !keep[i] {
            continue;
        }
        if let Some(t) = inst.instr.branch_target() {
            inst.instr.set_branch_target(new_index[t as usize]);
        }
        f.code.push(inst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_action_lang::compile;

    #[test]
    fn compiles_simple_function() {
        let ir = compile("int:16 add(int:16 a, int:16 b) { return a + b; }").unwrap();
        let p = compile_program(&ir, &TepArch::md16_unoptimized(), &CodegenOptions::default());
        let f = &p.functions[p.function_index("add").unwrap() as usize];
        assert!(f.code.iter().any(|i| matches!(i.instr, Instr::Alu(AluOp::Add))));
        assert!(f.code.iter().any(|i| matches!(i.instr, Instr::Return)));
    }

    #[test]
    fn muldiv_expands_on_minimal_arch() {
        let ir = compile("int:16 f(int:16 a, int:16 b) { return a * b / 3; }").unwrap();
        let minimal = compile_program(&ir, &TepArch::minimal(), &CodegenOptions::default());
        assert!(minimal.function_index("__mulu_16").is_some());
        assert!(minimal.function_index("__divs_16").is_some());
        let f = &minimal.functions[minimal.function_index("f").unwrap() as usize];
        assert!(
            !f.code.iter().any(|i| matches!(i.instr, Instr::Alu(AluOp::Mul | AluOp::Div))),
            "no hw mul/div on minimal arch"
        );

        let md = compile_program(&ir, &TepArch::md16_unoptimized(), &CodegenOptions::default());
        assert!(md.function_index("__mulu_16").is_none(), "no runtime with hw M/D");
    }

    #[test]
    fn runtime_loop_bounds_recorded() {
        let ir = compile("uint:8 f(uint:8 a) { return a * 3; }").unwrap();
        let p = compile_program(&ir, &TepArch::minimal(), &CodegenOptions::default());
        let rt = &p.functions[p.function_index("__mulu_8").unwrap() as usize];
        assert_eq!(rt.loop_bound, Some(8));
    }

    #[test]
    fn globals_placed_by_class_and_promotion() {
        let ir = compile("int:16 g;\nint:16 h;\nvoid f() { g = h + 1; }").unwrap();
        let ext = compile_program(&ir, &TepArch::md16_unoptimized(), &CodegenOptions::default());
        assert!(matches!(ext.globals[0].storage, Storage::External(_)));

        let mut opts = CodegenOptions::default();
        opts.global_promotions.insert(0, StorageClass::Register);
        opts.global_promotions.insert(1, StorageClass::Internal);
        let promoted = compile_program(&ir, &TepArch::md16_optimized(), &opts);
        assert!(matches!(promoted.globals[0].storage, Storage::Register(_)));
        assert!(matches!(promoted.globals[1].storage, Storage::Internal(_)));
    }

    #[test]
    fn peephole_removes_store_load_pairs() {
        let ir = compile("int:16 f(int:16 a) { int:16 x = a + 1; return x + 2; }").unwrap();
        let unopt =
            compile_program(&ir, &TepArch::md16_unoptimized(), &CodegenOptions::default());
        let opt = compile_program(&ir, &TepArch::md16_optimized(), &CodegenOptions::default());
        let fu = &unopt.functions[unopt.function_index("f").unwrap() as usize];
        let fo = &opt.functions[opt.function_index("f").unwrap() as usize];
        assert!(fo.code.len() < fu.code.len(), "{} !< {}", fo.code.len(), fu.code.len());
    }

    #[test]
    fn branch_targets_valid_after_peephole() {
        let src = r#"
            int:16 f(int:16 n) {
                int:16 s = 0;
                while (n > 0) { if (n & 1) { s += n; } n = n - 1; }
                return s;
            }
        "#;
        let ir = compile(src).unwrap();
        for arch in [TepArch::md16_optimized(), TepArch::md16_unoptimized(), TepArch::minimal()]
        {
            let p = compile_program(&ir, &arch, &CodegenOptions::default());
            for f in &p.functions {
                for inst in &f.code {
                    if let Some(t) = inst.instr.branch_target() {
                        assert!(
                            (t as usize) <= f.code.len(),
                            "target {t} out of range in {}",
                            f.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn comparator_less_arch_avoids_cmp() {
        let ir = compile("uint:1 f(int:8 a, int:8 b) { return a < b; }").unwrap();
        let p = compile_program(&ir, &TepArch::minimal(), &CodegenOptions::default());
        let f = &p.functions[p.function_index("f").unwrap() as usize];
        assert!(!f.code.iter().any(|i| matches!(i.instr, Instr::Cmp { .. })));
    }
}
