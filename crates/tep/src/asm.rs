//! Textual assembler listing (disassembler) for compiled programs.
//!
//! The paper's flow keeps three software representations — C code,
//! assembler code, microinstructions (§2). This module renders the
//! middle one for inspection, reports, and snapshot tests.

use crate::codegen::TepProgram;
use crate::isa::{AsmFunction, Instr};
use crate::timing::CostModel;
use std::fmt::Write as _;

/// Renders one routine as an assembler listing with per-instruction
/// cycle costs.
pub fn listing(f: &AsmFunction, cost: &CostModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}: ; {} params, frame {} words", f.name, f.param_count, f.frame.len());
    for (pc, inst) in f.code.iter().enumerate() {
        let text = render(&inst.instr);
        let c = cost.cost(inst);
        let _ = writeln!(out, "  {pc:4}: {text:<24} ; w{:<2} {c} cy", inst.width);
    }
    out
}

/// Renders a whole program.
pub fn program_listing(p: &TepProgram) -> String {
    let cost = CostModel::new(&p.arch);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; TEP program: {} routines, {} instructions, bus {} bits, M/D {}",
        p.functions.len(),
        p.instruction_count(),
        p.arch.calc.width,
        if p.arch.calc.muldiv { "yes" } else { "no" },
    );
    for g in &p.globals {
        let _ = writeln!(out, "; global {:<20} {} init {}", g.name, g.storage, g.init);
    }
    for f in &p.functions {
        out.push('\n');
        out.push_str(&listing(f, &cost));
    }
    out
}

/// Renders a single instruction in assembler syntax.
pub fn render(i: &Instr) -> String {
    match i {
        Instr::Nop => "nop".into(),
        Instr::Ldi(v) => format!("ldi   {v}"),
        Instr::Load(s) => format!("ld    {s}"),
        Instr::Store(s) => format!("st    {s}"),
        Instr::LoadIndexed(s) => format!("ldx   {s}+acc"),
        Instr::StoreIndexed(s) => format!("stx   {s}+op"),
        Instr::Tao => "tao".into(),
        Instr::Alu(op) => format!("{op}"),
        Instr::Cmp { op, signed } => {
            format!("cmp{}{op}", if *signed { "s" } else { "u" })
        }
        Instr::Jump(t) => format!("jmp   {t}"),
        Instr::JumpIfZero(t) => format!("jz    {t}"),
        Instr::JumpIfNotZero(t) => format!("jnz   {t}"),
        Instr::Call(f) => format!("call  fn{f}"),
        Instr::Return => "ret".into(),
        Instr::PortRead(p) => format!("in    p{p}"),
        Instr::PortWrite(p) => format!("out   p{p}"),
        Instr::ReadCond(c) => format!("rdc   c{c}"),
        Instr::SetCond(c) => format!("stc   c{c}"),
        Instr::RaiseEvent(e) => format!("raise e{e}"),
        Instr::Custom(id) => format!("cust  #{id}"),
        Instr::AluMem { op, src } => format!("{op}m  {src}"),
        Instr::Halt => "halt".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::TepArch;
    use crate::codegen::{compile_program, CodegenOptions};

    #[test]
    fn listing_contains_all_routines() {
        let ir = pscp_action_lang::compile(
            "int:16 g;\nint:16 f(int:16 a) { g = a * 2; return g; }",
        )
        .unwrap();
        let p = compile_program(&ir, &TepArch::md16_unoptimized(), &CodegenOptions::default());
        let text = program_listing(&p);
        assert!(text.contains("f:"));
        assert!(text.contains("global g"));
        assert!(text.contains("mul"));
        assert!(text.contains("cy"));
    }

    #[test]
    fn render_covers_every_variant() {
        use crate::isa::{AluOp, CmpOp, Storage};
        let all = [
            Instr::Nop,
            Instr::Ldi(5),
            Instr::Load(Storage::Register(1)),
            Instr::Store(Storage::Internal(2)),
            Instr::LoadIndexed(Storage::External(3)),
            Instr::StoreIndexed(Storage::Internal(4)),
            Instr::Tao,
            Instr::Alu(AluOp::Add),
            Instr::Cmp { op: CmpOp::Lt, signed: true },
            Instr::Jump(1),
            Instr::JumpIfZero(2),
            Instr::JumpIfNotZero(3),
            Instr::Call(0),
            Instr::Return,
            Instr::PortRead(1),
            Instr::PortWrite(2),
            Instr::ReadCond(3),
            Instr::SetCond(4),
            Instr::RaiseEvent(5),
            Instr::Custom(0),
            Instr::Halt,
        ];
        for i in &all {
            assert!(!render(i).is_empty());
        }
    }
}
