//! Instruction cost model and static worst-case execution time (WCET).
//!
//! Costs come from the microprogram lengths (§3.2): one microinstruction
//! per clock cycle. Operands wider than the data bus are processed in
//! bus-wide limbs, multiplying the data-path portion of the cost; the
//! multi-cycle M/D unit scales quadratically with the limb count, like
//! the partial-product structure it models.
//!
//! The WCET analysis walks a routine's instruction stream as a
//! control-flow DAG (longest path over branches) with back edges
//! collapsed into loop super-nodes whose body cost is multiplied by the
//! loop bound. "If possible, the transition lengths are derived from the
//! assembler code of their associated routines" (§4) — this is that
//! derivation; charts can still override with explicit `cost`
//! annotations.

use crate::arch::TepArch;
use crate::codegen::TepProgram;
use crate::isa::{AsmFunction, AsmInst, Instr};
use crate::microcode::{micro_len, InstrKind};
use std::collections::{BTreeMap, BTreeSet};

/// Per-instruction cycle-cost model for one architecture.
#[derive(Debug, Clone)]
pub struct CostModel {
    arch: TepArch,
}

impl CostModel {
    /// Builds the cost model for an architecture.
    pub fn new(arch: &TepArch) -> Self {
        CostModel { arch: arch.clone() }
    }

    /// The architecture this model describes.
    pub fn arch(&self) -> &TepArch {
        &self.arch
    }

    /// Cycles consumed by one instruction (excluding callee time for
    /// `Call`).
    pub fn cost(&self, inst: &AsmInst) -> u64 {
        let kind = InstrKind::of(&inst.instr);
        let mut base = micro_len(kind, self.arch.optimize_code) as u64;
        // Pipelined fetch (§6 extension): straight-line instructions
        // overlap the fetch µop with the predecessor's execution; taken
        // control transfers pay the hazard instead (cost unchanged).
        if self.arch.pipelined
            && !matches!(
                kind,
                InstrKind::Jump | InstrKind::JumpCond | InstrKind::Call | InstrKind::Return
            )
        {
            base = base.saturating_sub(1).max(1);
        }
        let limbs = self.arch.limbs(inst.width.max(1)) as u64;
        match kind {
            // Control flow, condition/event traffic and custom fused ops
            // are width-independent.
            InstrKind::Nop
            | InstrKind::Jump
            | InstrKind::JumpCond
            | InstrKind::Call
            | InstrKind::Return
            | InstrKind::ReadCond
            | InstrKind::SetCond
            | InstrKind::RaiseEvent
            | InstrKind::Custom
            | InstrKind::Halt => base,
            // Data ports "always move a complete data word" (§3.2).
            InstrKind::PortRead | InstrKind::PortWrite => base,
            // The M/D unit iterates over partial products: quadratic in
            // the limb count.
            InstrKind::AluMul => base * limbs * limbs,
            InstrKind::AluDiv => base * limbs * limbs + limbs,
            // Everything else processes one limb per pass.
            _ => base * limbs,
        }
    }

    /// Total cost of a straight-line instruction slice (no control flow).
    pub fn straight_line(&self, code: &[AsmInst]) -> u64 {
        code.iter().map(|i| self.cost(i)).sum()
    }
}

/// Result of analysing a whole program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WcetReport {
    /// Per-function worst-case cycles (including callees).
    pub per_function: BTreeMap<String, u64>,
    /// Cost provenance: the instruction kinds each routine's WCET
    /// depends on, callees included. A routine's WCET can only change
    /// between two architectures/code generations if the per-cycle cost
    /// of one of these kinds changes or the routine's instruction
    /// stream itself changes — incremental consumers use this to reason
    /// about which architectural knobs touch which routines.
    pub provenance: BTreeMap<String, BTreeSet<InstrKind>>,
}

impl WcetReport {
    /// WCET of a routine by name.
    pub fn of(&self, name: &str) -> Option<u64> {
        self.per_function.get(name).copied()
    }

    /// The instruction kinds a routine's WCET depends on (callees
    /// included), if the routine exists.
    pub fn depends_on(&self, name: &str) -> Option<&BTreeSet<InstrKind>> {
        self.provenance.get(name)
    }

    /// Routines whose WCET may be affected by a cost change to any of
    /// `kinds`, in name order.
    pub fn affected_by<'a>(
        &'a self,
        kinds: &'a BTreeSet<InstrKind>,
    ) -> impl Iterator<Item = &'a str> + 'a {
        self.provenance
            .iter()
            .filter(|(_, deps)| !deps.is_disjoint(kinds))
            .map(|(name, _)| name.as_str())
    }

    /// Routines present in either report whose WCET differs between
    /// `self` and `other`.
    pub fn changed_routines<'a>(
        &'a self,
        other: &'a WcetReport,
    ) -> impl Iterator<Item = &'a str> + 'a {
        self.per_function
            .iter()
            .filter(move |(name, w)| other.of(name) != Some(**w))
            .map(|(name, _)| name.as_str())
            .chain(
                other
                    .per_function
                    .keys()
                    .filter(|name| !self.per_function.contains_key(*name))
                    .map(|name| name.as_str()),
            )
    }
}

/// Static WCET analysis over a compiled program.
#[derive(Debug, Clone)]
pub struct WcetAnalysis {
    cost: CostModel,
    /// Iteration bound assumed for loops without an annotation.
    pub default_loop_bound: u64,
}

impl WcetAnalysis {
    /// Creates the analysis with the paper-ish default loop bound of 16
    /// (one iteration per operand bit, the dominant loop shape in this
    /// domain).
    pub fn new(arch: &TepArch) -> Self {
        WcetAnalysis { cost: CostModel::new(arch), default_loop_bound: 16 }
    }

    /// Overrides the default loop bound.
    pub fn with_default_loop_bound(mut self, bound: u64) -> Self {
        self.default_loop_bound = bound;
        self
    }

    /// Analyses every function, callees before callers.
    ///
    /// # Panics
    ///
    /// Panics if the program's call graph is cyclic (the action-language
    /// front end rejects recursion, so this cannot happen for compiled
    /// programs).
    pub fn analyze(&self, program: &TepProgram) -> WcetReport {
        let mut per_function: BTreeMap<String, u64> = BTreeMap::new();
        let mut provenance: BTreeMap<String, BTreeSet<InstrKind>> = BTreeMap::new();
        let mut done: Vec<Option<u64>> = vec![None; program.functions.len()];
        let mut kinds_done: Vec<Option<BTreeSet<InstrKind>>> =
            vec![None; program.functions.len()];

        // Iterate to fixpoint in bounded passes (call graph is a DAG, so
        // |functions| passes suffice).
        for _ in 0..=program.functions.len() {
            let mut progressed = false;
            for (fi, f) in program.functions.iter().enumerate() {
                if done[fi].is_some() {
                    continue;
                }
                if let Some(w) = self.function_wcet(f, &done, program) {
                    done[fi] = Some(w);
                    per_function.insert(f.name.clone(), w);
                    let kinds = function_kinds(f, &kinds_done);
                    provenance.insert(f.name.clone(), kinds.clone());
                    kinds_done[fi] = Some(kinds);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        assert!(
            done.iter().all(Option::is_some),
            "call graph not a DAG or dangling callee"
        );
        WcetReport { per_function, provenance }
    }

    /// WCET of a single function given already-computed callees; `None`
    /// when a callee is not yet resolved.
    fn function_wcet(
        &self,
        f: &AsmFunction,
        callees: &[Option<u64>],
        program: &TepProgram,
    ) -> Option<u64> {
        // Per-instruction cost including callee WCET for calls.
        let mut costs = Vec::with_capacity(f.code.len());
        for inst in &f.code {
            let mut c = self.cost.cost(inst);
            if let Instr::Call(target) = inst.instr {
                c += callees.get(target as usize).copied().flatten()?;
            }
            costs.push(c);
        }
        let bound = f.loop_bound.unwrap_or(self.default_loop_bound).max(1);
        let _ = program;
        Some(range_wcet(&f.code, &costs, 0, f.code.len(), bound))
    }
}

/// The instruction kinds a function's WCET depends on: its own
/// instructions plus (transitively) those of every callee. Callees are
/// resolved in the same fixpoint order as the WCET itself, so a
/// function's kinds are only computed once all its callees' are known.
fn function_kinds(f: &AsmFunction, callees: &[Option<BTreeSet<InstrKind>>]) -> BTreeSet<InstrKind> {
    let mut kinds = BTreeSet::new();
    for inst in &f.code {
        kinds.insert(InstrKind::of(&inst.instr));
        if let Instr::Call(target) = inst.instr {
            if let Some(Some(callee)) = callees.get(target as usize) {
                kinds.extend(callee.iter().copied());
            }
        }
    }
    kinds
}

/// Longest-path cost of `code[lo..hi)` with back edges collapsed into
/// bounded loop super-nodes. Assumes well-nested loops, which our code
/// generator guarantees.
fn range_wcet(code: &[AsmInst], costs: &[u64], lo: usize, hi: usize, bound: u64) -> u64 {
    // Top-level loops in the range: back edge (src -> head) with
    // head <= src; keep only those not nested inside another.
    let mut loops: Vec<(usize, usize)> = Vec::new(); // (head, back_src)
    for (i, inst) in code.iter().enumerate().take(hi).skip(lo) {
        if let Some(t) = inst.instr.branch_target() {
            let t = t as usize;
            if t <= i && t >= lo {
                loops.push((t, i));
            }
        }
    }
    // Merge overlapping/nested into outermost.
    loops.sort();
    let mut top: Vec<(usize, usize)> = Vec::new();
    for (h, s) in loops {
        match top.last_mut() {
            Some((_, ls)) if h <= *ls => {
                // Nested or overlapping: extend the existing loop.
                if s > *ls {
                    *ls = s;
                }
            }
            _ => top.push((h, s)),
        }
    }

    // Longest path, backwards DP over positions lo..hi.
    let mut wc = vec![0u64; hi - lo + 1];
    let pos = |i: usize| i - lo;
    for i in (lo..hi).rev() {
        // Position inside a top-level loop but not its head: skipped —
        // handled via the super-node at the head.
        if let Some(&(h, s)) = top.iter().find(|&&(h, s)| i >= h && i <= s) {
            if i != h {
                continue;
            }
            // Super-node: body = longest path through [h, s] without the
            // back edges, times bound — plus one extra body traversal to
            // cover the final loop-header evaluation that exits the loop.
            let body = range_wcet_body(code, costs, h, s + 1, bound);
            let after = wc[pos(s + 1)];
            wc[pos(i)] = (bound + 1) * body + after;
            continue;
        }
        let c = costs[i];
        let inst = &code[i].instr;
        let next = |j: usize| -> u64 {
            if j >= hi {
                0
            } else if let Some(&(h, _)) = top.iter().find(|&&(h, s)| j > h && j <= s) {
                // Jumping into the middle of a loop: approximate with the
                // loop head's super-node cost.
                wc[pos(h)]
            } else {
                wc[pos(j)]
            }
        };
        wc[pos(i)] = match inst {
            Instr::Jump(t) => c + next(*t as usize),
            Instr::JumpIfZero(t) | Instr::JumpIfNotZero(t) => {
                c + next(*t as usize).max(next(i + 1))
            }
            Instr::Return | Instr::Halt => c,
            _ => c + next(i + 1),
        };
    }
    wc[0]
}

/// Longest path through one loop body `[lo, hi)` ignoring its back edges
/// (recursing for inner loops).
fn range_wcet_body(code: &[AsmInst], costs: &[u64], lo: usize, hi: usize, bound: u64) -> u64 {
    // Inner loops strictly inside (lo, hi): recurse through range_wcet on
    // a version that can't see the outer back edge. We temporarily treat
    // back edges targeting `lo` from inside as loop-terminating jumps by
    // masking them out.
    let mut masked: Vec<AsmInst> = code[lo..hi].to_vec();
    for inst in masked.iter_mut() {
        if let Some(t) = inst.instr.branch_target() {
            let t = t as usize;
            if t == lo {
                // Back edge of this loop: end of one iteration.
                inst.instr = match inst.instr {
                    Instr::Jump(_) => Instr::Jump(masked_end(hi, lo)),
                    Instr::JumpIfZero(_) => Instr::JumpIfZero(masked_end(hi, lo)),
                    Instr::JumpIfNotZero(_) => Instr::JumpIfNotZero(masked_end(hi, lo)),
                    ref other => other.clone(),
                };
            } else {
                // Rebase other targets into the slice.
                inst.instr.set_branch_target(t.saturating_sub(lo) as u32);
            }
        }
    }
    let local_costs: Vec<u64> = costs[lo..hi].to_vec();
    range_wcet(&masked, &local_costs, 0, masked.len(), bound)
}

fn masked_end(hi: usize, lo: usize) -> u32 {
    (hi - lo) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::TepArch;
    use crate::isa::{AluOp, AsmInst, Instr, Storage};

    fn inst(i: Instr) -> AsmInst {
        AsmInst::new(i, 16, true)
    }

    fn func(code: Vec<AsmInst>, bound: Option<u64>) -> AsmFunction {
        AsmFunction {
            name: "t".into(),
            param_count: 0,
            frame: Vec::new(),
            code,
            loop_bound: bound,
        }
    }

    fn wcet_of(f: AsmFunction, arch: &TepArch) -> u64 {
        let program = TepProgram::for_tests(vec![f], arch.clone());
        WcetAnalysis::new(arch).analyze(&program).of("t").unwrap()
    }

    #[test]
    fn straight_line_sums_costs() {
        let arch = TepArch::md16_unoptimized();
        let cm = CostModel::new(&arch);
        let code = vec![
            inst(Instr::Ldi(1)),
            inst(Instr::Tao),
            inst(Instr::Alu(AluOp::Add)),
            inst(Instr::Return),
        ];
        let expected: u64 = code.iter().map(|i| cm.cost(i)).sum();
        assert_eq!(wcet_of(func(code, None), &arch), expected);
    }

    #[test]
    fn branch_takes_worst_arm() {
        let arch = TepArch::md16_unoptimized();
        let cm = CostModel::new(&arch);
        // 0: jz 3 ; 1: nop ; 2: jmp 6 ; 3: nop ; 4: nop ; 5: nop ; 6: ret
        let code = vec![
            inst(Instr::JumpIfZero(3)),
            inst(Instr::Nop),
            inst(Instr::Jump(6)),
            inst(Instr::Nop),
            inst(Instr::Nop),
            inst(Instr::Nop),
            inst(Instr::Return),
        ];
        let w = wcet_of(func(code.clone(), None), &arch);
        let long_arm = cm.cost(&code[0])
            + cm.cost(&code[3]) * 3
            + cm.cost(&code[6]);
        assert_eq!(w, long_arm);
    }

    #[test]
    fn loop_multiplied_by_bound() {
        let arch = TepArch::md16_unoptimized();
        let cm = CostModel::new(&arch);
        // 0: nop ; 1: nop(body) ; 2: jnz 1 ; 3: ret
        let code = vec![
            inst(Instr::Nop),
            inst(Instr::Nop),
            inst(Instr::JumpIfNotZero(1)),
            inst(Instr::Return),
        ];
        let w8 = wcet_of(func(code.clone(), Some(8)), &arch);
        let w16 = wcet_of(func(code.clone(), Some(16)), &arch);
        let body = cm.cost(&code[1]) + cm.cost(&code[2]);
        // bound + 1 body traversals: the final header evaluation that
        // exits the loop is bounded by one extra pass.
        assert_eq!(w8, cm.cost(&code[0]) + (8 + 1) * body + cm.cost(&code[3]));
        assert_eq!(w16 - w8, 8 * body);
    }

    #[test]
    fn nested_loops_multiply() {
        let arch = TepArch::md16_unoptimized();
        // 0: nop
        // 1: nop           (outer body start)
        // 2: nop           (inner body)
        // 3: jnz 2         (inner back edge)
        // 4: jnz 1         (outer back edge)
        // 5: ret
        let code = vec![
            inst(Instr::Nop),
            inst(Instr::Nop),
            inst(Instr::Nop),
            inst(Instr::JumpIfNotZero(2)),
            inst(Instr::JumpIfNotZero(1)),
            inst(Instr::Return),
        ];
        let w2 = wcet_of(func(code.clone(), Some(2)), &arch);
        let w4 = wcet_of(func(code.clone(), Some(4)), &arch);
        // Cost grows superlinearly with the bound (nested loops).
        assert!(w4 > 2 * w2, "w2={w2} w4={w4}");
    }

    #[test]
    fn wide_operands_cost_more_on_narrow_bus() {
        let narrow = TepArch::minimal(); // 8-bit
        let wide = TepArch::md16_unoptimized(); // 16-bit
        let cm8 = CostModel::new(&narrow);
        let cm16 = CostModel::new(&wide);
        let add16 = AsmInst::new(Instr::Alu(AluOp::Add), 16, true);
        assert!(cm8.cost(&add16) > cm16.cost(&add16));
        let jmp = AsmInst::new(Instr::Jump(0), 16, false);
        assert_eq!(
            cm8.cost(&jmp),
            micro_len(InstrKind::Jump, false) as u64,
            "control flow does not limb-scale"
        );
    }

    #[test]
    fn hw_divide_quadratic_in_limbs() {
        let arch = TepArch::md16_unoptimized();
        let cm = CostModel::new(&arch);
        let div16 = AsmInst::new(Instr::Alu(AluOp::Div), 16, true);
        let div32 = AsmInst::new(Instr::Alu(AluOp::Div), 32, true);
        assert!(cm.cost(&div32) >= 4 * cm.cost(&div16) - 8);
    }

    #[test]
    fn optimized_code_is_cheaper() {
        let unopt = TepArch::md16_unoptimized();
        let opt = TepArch::md16_optimized();
        let code = vec![
            inst(Instr::Load(Storage::Internal(0))),
            inst(Instr::Tao),
            inst(Instr::Load(Storage::Internal(1))),
            inst(Instr::Alu(AluOp::Add)),
            inst(Instr::Store(Storage::Internal(2))),
            inst(Instr::Return),
        ];
        let wu = wcet_of(func(code.clone(), None), &unopt);
        let wo = wcet_of(func(code, None), &opt);
        assert!(wo < wu, "peepholed microcode must be faster: {wo} vs {wu}");
    }

    #[test]
    fn provenance_tracks_instruction_kinds() {
        let arch = TepArch::md16_unoptimized();
        let code = vec![
            inst(Instr::Ldi(1)),
            inst(Instr::Tao),
            inst(Instr::Alu(AluOp::Mul)),
            inst(Instr::Return),
        ];
        let program = TepProgram::for_tests(vec![func(code, None)], arch.clone());
        let report = WcetAnalysis::new(&arch).analyze(&program);
        let deps = report.depends_on("t").expect("provenance recorded");
        for k in [InstrKind::Ldi, InstrKind::Tao, InstrKind::AluMul, InstrKind::Return] {
            assert!(deps.contains(&k), "missing {k:?} in {deps:?}");
        }
        assert!(!deps.contains(&InstrKind::AluDiv));
        // affected_by finds the routine through any of its kinds.
        let probe: std::collections::BTreeSet<InstrKind> = [InstrKind::AluMul].into();
        assert_eq!(report.affected_by(&probe).collect::<Vec<_>>(), vec!["t"]);
        let miss: std::collections::BTreeSet<InstrKind> = [InstrKind::AluShift].into();
        assert_eq!(report.affected_by(&miss).count(), 0);
    }

    #[test]
    fn provenance_includes_callee_kinds() {
        let arch = TepArch::md16_unoptimized();
        let leaf = AsmFunction {
            name: "leaf".into(),
            param_count: 0,
            frame: Vec::new(),
            code: vec![inst(Instr::Alu(AluOp::Div)), inst(Instr::Return)],
            loop_bound: None,
        };
        let top = AsmFunction {
            name: "top".into(),
            param_count: 0,
            frame: Vec::new(),
            code: vec![inst(Instr::Call(0)), inst(Instr::Return)],
            loop_bound: None,
        };
        let program = TepProgram::for_tests(vec![leaf, top], arch.clone());
        let report = WcetAnalysis::new(&arch).analyze(&program);
        let top_deps = report.depends_on("top").unwrap();
        assert!(top_deps.contains(&InstrKind::AluDiv), "callee kinds propagate");
        assert!(top_deps.contains(&InstrKind::Call));
        assert!(!report.depends_on("leaf").unwrap().contains(&InstrKind::Call));
    }

    #[test]
    fn changed_routines_diffs_reports() {
        let unopt = TepArch::md16_unoptimized();
        let opt = TepArch::md16_optimized();
        let code = vec![
            inst(Instr::Load(Storage::Internal(0))),
            inst(Instr::Alu(AluOp::Add)),
            inst(Instr::Return),
        ];
        let pu = TepProgram::for_tests(vec![func(code.clone(), None)], unopt.clone());
        let po = TepProgram::for_tests(vec![func(code, None)], opt.clone());
        let ru = WcetAnalysis::new(&unopt).analyze(&pu);
        let ro = WcetAnalysis::new(&opt).analyze(&po);
        assert_eq!(ru.changed_routines(&ro).collect::<Vec<_>>(), vec!["t"]);
        assert_eq!(ru.changed_routines(&ru).count(), 0);
    }

    #[test]
    fn calls_include_callee_wcet() {
        let arch = TepArch::md16_unoptimized();
        let leaf = AsmFunction {
            name: "leaf".into(),
            param_count: 0,
            frame: Vec::new(),
            code: vec![inst(Instr::Nop), inst(Instr::Nop), inst(Instr::Return)],
            loop_bound: None,
        };
        let top = AsmFunction {
            name: "top".into(),
            param_count: 0,
            frame: Vec::new(),
            code: vec![inst(Instr::Call(0)), inst(Instr::Return)],
            loop_bound: None,
        };
        let program = TepProgram::for_tests(vec![leaf, top], arch.clone());
        let report = WcetAnalysis::new(&arch).analyze(&program);
        let cm = CostModel::new(&arch);
        assert_eq!(
            report.of("top").unwrap(),
            report.of("leaf").unwrap()
                + cm.cost(&inst(Instr::Call(0)))
                + cm.cost(&inst(Instr::Return))
        );
    }
}
