//! Instruction cost model and static worst-case execution time (WCET).
//!
//! Costs come from the microprogram lengths (§3.2): one microinstruction
//! per clock cycle. Operands wider than the data bus are processed in
//! bus-wide limbs, multiplying the data-path portion of the cost; the
//! multi-cycle M/D unit scales quadratically with the limb count, like
//! the partial-product structure it models.
//!
//! The WCET analysis walks a routine's instruction stream as a
//! control-flow DAG (longest path over branches) with back edges
//! collapsed into loop super-nodes whose body cost is multiplied by the
//! loop bound. "If possible, the transition lengths are derived from the
//! assembler code of their associated routines" (§4) — this is that
//! derivation; charts can still override with explicit `cost`
//! annotations.

use crate::arch::TepArch;
use crate::codegen::TepProgram;
use crate::isa::{AsmFunction, AsmInst, Instr};
use crate::microcode::{micro_len, InstrKind};
use std::collections::{BTreeMap, BTreeSet};

/// Per-instruction cycle-cost model for one architecture.
#[derive(Debug, Clone)]
pub struct CostModel {
    arch: TepArch,
    /// Effective base cycles per kind, indexed by the kind's position
    /// in [`InstrKind::ALL`]. Synthesising (and optionally peepholing)
    /// a microprogram per [`CostModel::cost`] call would dominate the
    /// WCET analysis; the table pays that once per model.
    base: [u64; InstrKind::ALL.len()],
}

impl CostModel {
    /// Builds the cost model for an architecture.
    pub fn new(arch: &TepArch) -> Self {
        let mut base = [0u64; InstrKind::ALL.len()];
        for (slot, &kind) in base.iter_mut().zip(InstrKind::ALL.iter()) {
            *slot = Self::compute_effective_base(arch, kind);
        }
        CostModel { arch: arch.clone(), base }
    }

    /// The architecture this model describes.
    pub fn arch(&self) -> &TepArch {
        &self.arch
    }

    /// Base cycle count of one instruction kind before the width/limb
    /// scaling: the microprogram length, with the pipelined-fetch
    /// overlap already applied.
    fn effective_base(&self, kind: InstrKind) -> u64 {
        self.base[kind as usize]
    }

    fn compute_effective_base(arch: &TepArch, kind: InstrKind) -> u64 {
        let mut base = micro_len(kind, arch.optimize_code) as u64;
        // Pipelined fetch (§6 extension): straight-line instructions
        // overlap the fetch µop with the predecessor's execution; taken
        // control transfers pay the hazard instead (cost unchanged).
        if arch.pipelined
            && !matches!(
                kind,
                InstrKind::Jump | InstrKind::JumpCond | InstrKind::Call | InstrKind::Return
            )
        {
            base = base.saturating_sub(1).max(1);
        }
        base
    }

    /// Whether a kind's cost scales with the operand width (via the
    /// bus-limb count). Mirrors the `match` in [`CostModel::cost`].
    fn width_scaled(kind: InstrKind) -> bool {
        !matches!(
            kind,
            InstrKind::Nop
                | InstrKind::Jump
                | InstrKind::JumpCond
                | InstrKind::Call
                | InstrKind::Return
                | InstrKind::ReadCond
                | InstrKind::SetCond
                | InstrKind::RaiseEvent
                | InstrKind::Custom
                | InstrKind::Halt
                | InstrKind::PortRead
                | InstrKind::PortWrite
        )
    }

    /// The instruction kinds whose per-instruction cost differs between
    /// `self` and `prev` for *some* operand width. `cost` is a function
    /// of (kind, width) only — the base microprogram length plus, for
    /// width-scaled kinds, the bus-limb multiplier — so a kind is
    /// unchanged exactly when its effective base matches and (if
    /// width-scaled) the bus width does too. This is the cost-model
    /// side of `WcetReport` provenance: routines whose kind sets are
    /// disjoint from this set cannot change WCET between the two
    /// models unless their instruction stream changed.
    pub fn changed_kinds(&self, prev: &CostModel) -> BTreeSet<InstrKind> {
        let width_changed = self.arch.calc.width != prev.arch.calc.width;
        InstrKind::ALL
            .iter()
            .copied()
            .filter(|&k| {
                self.effective_base(k) != prev.effective_base(k)
                    || (Self::width_scaled(k) && width_changed)
            })
            .collect()
    }

    /// Cycles consumed by one instruction (excluding callee time for
    /// `Call`).
    pub fn cost(&self, inst: &AsmInst) -> u64 {
        let kind = InstrKind::of(&inst.instr);
        let base = self.effective_base(kind);
        let limbs = self.arch.limbs(inst.width.max(1)) as u64;
        match kind {
            // Control flow, condition/event traffic and custom fused ops
            // are width-independent.
            InstrKind::Nop
            | InstrKind::Jump
            | InstrKind::JumpCond
            | InstrKind::Call
            | InstrKind::Return
            | InstrKind::ReadCond
            | InstrKind::SetCond
            | InstrKind::RaiseEvent
            | InstrKind::Custom
            | InstrKind::Halt => base,
            // Data ports "always move a complete data word" (§3.2).
            InstrKind::PortRead | InstrKind::PortWrite => base,
            // The M/D unit iterates over partial products: quadratic in
            // the limb count.
            InstrKind::AluMul => base * limbs * limbs,
            InstrKind::AluDiv => base * limbs * limbs + limbs,
            // Everything else processes one limb per pass.
            _ => base * limbs,
        }
    }

    /// Total cost of a straight-line instruction slice (no control flow).
    pub fn straight_line(&self, code: &[AsmInst]) -> u64 {
        code.iter().map(|i| self.cost(i)).sum()
    }
}

/// Result of analysing a whole program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WcetReport {
    /// Per-function worst-case cycles (including callees).
    pub per_function: BTreeMap<String, u64>,
    /// Cost provenance: the instruction kinds each routine's WCET
    /// depends on, callees included. A routine's WCET can only change
    /// between two architectures/code generations if the per-cycle cost
    /// of one of these kinds changes or the routine's instruction
    /// stream itself changes — incremental consumers use this to reason
    /// about which architectural knobs touch which routines.
    pub provenance: BTreeMap<String, BTreeSet<InstrKind>>,
}

impl WcetReport {
    /// WCET of a routine by name.
    pub fn of(&self, name: &str) -> Option<u64> {
        self.per_function.get(name).copied()
    }

    /// The instruction kinds a routine's WCET depends on (callees
    /// included), if the routine exists.
    pub fn depends_on(&self, name: &str) -> Option<&BTreeSet<InstrKind>> {
        self.provenance.get(name)
    }

    /// Routines whose WCET may be affected by a cost change to any of
    /// `kinds`, in name order.
    pub fn affected_by<'a>(
        &'a self,
        kinds: &'a BTreeSet<InstrKind>,
    ) -> impl Iterator<Item = &'a str> + 'a {
        self.provenance
            .iter()
            .filter(|(_, deps)| !deps.is_disjoint(kinds))
            .map(|(name, _)| name.as_str())
    }

    /// Routines present in either report whose WCET differs between
    /// `self` and `other`.
    pub fn changed_routines<'a>(
        &'a self,
        other: &'a WcetReport,
    ) -> impl Iterator<Item = &'a str> + 'a {
        self.per_function
            .iter()
            .filter(move |(name, w)| other.of(name) != Some(**w))
            .map(|(name, _)| name.as_str())
            .chain(
                other
                    .per_function
                    .keys()
                    .filter(|name| !self.per_function.contains_key(*name))
                    .map(|name| name.as_str()),
            )
    }
}

/// Static WCET analysis over a compiled program.
#[derive(Debug, Clone)]
pub struct WcetAnalysis {
    cost: CostModel,
    /// Iteration bound assumed for loops without an annotation.
    pub default_loop_bound: u64,
}

impl WcetAnalysis {
    /// Creates the analysis with the paper-ish default loop bound of 16
    /// (one iteration per operand bit, the dominant loop shape in this
    /// domain).
    pub fn new(arch: &TepArch) -> Self {
        WcetAnalysis { cost: CostModel::new(arch), default_loop_bound: 16 }
    }

    /// Overrides the default loop bound.
    pub fn with_default_loop_bound(mut self, bound: u64) -> Self {
        self.default_loop_bound = bound;
        self
    }

    /// Analyses every function, callees before callers.
    ///
    /// # Panics
    ///
    /// Panics if the program's call graph is cyclic (the action-language
    /// front end rejects recursion, so this cannot happen for compiled
    /// programs).
    pub fn analyze(&self, program: &TepProgram) -> WcetReport {
        let mut per_function: BTreeMap<String, u64> = BTreeMap::new();
        let mut provenance: BTreeMap<String, BTreeSet<InstrKind>> = BTreeMap::new();
        let mut done: Vec<Option<u64>> = vec![None; program.functions.len()];
        let mut kinds_done: Vec<Option<BTreeSet<InstrKind>>> =
            vec![None; program.functions.len()];

        // Iterate to fixpoint in bounded passes (call graph is a DAG, so
        // |functions| passes suffice).
        for _ in 0..=program.functions.len() {
            let mut progressed = false;
            for (fi, f) in program.functions.iter().enumerate() {
                if done[fi].is_some() {
                    continue;
                }
                if let Some(w) = self.function_wcet(f, &done, program) {
                    done[fi] = Some(w);
                    per_function.insert(f.name.clone(), w);
                    let kinds = function_kinds(f, &kinds_done);
                    provenance.insert(f.name.clone(), kinds.clone());
                    kinds_done[fi] = Some(kinds);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        assert!(
            done.iter().all(Option::is_some),
            "call graph not a DAG or dangling callee"
        );
        WcetReport { per_function, provenance }
    }

    /// Incremental re-analysis against a previous run.
    ///
    /// A routine reuses its previous WCET and provenance when its
    /// instruction stream is byte-identical to the previous program's
    /// routine of the same name, none of the kinds it (transitively)
    /// depends on changed cost between the two models
    /// ([`CostModel::changed_kinds`]), and every callee's WCET is
    /// unchanged. Everything else — and everything downstream of a
    /// change — is re-analysed with the usual fixpoint. The result is
    /// always identical to a fresh [`WcetAnalysis::analyze`]; the
    /// previous run only short-circuits work, never changes answers.
    pub fn analyze_incremental(
        &self,
        program: &TepProgram,
        prev_analysis: &WcetAnalysis,
        prev_program: &TepProgram,
        prev: &WcetReport,
    ) -> WcetReport {
        if self.default_loop_bound != prev_analysis.default_loop_bound {
            return self.analyze(program);
        }
        let changed_kinds = self.cost.changed_kinds(&prev_analysis.cost);
        // A global cost change (pipelined fetch, peephole, bus width)
        // invalidates every data-bearing routine; skip the per-function
        // reuse bookkeeping instead of paying for it and reusing
        // nothing.
        if changed_kinds.len() >= InstrKind::ALL.len() / 2 {
            return self.analyze(program);
        }

        let mut per_function: BTreeMap<String, u64> = BTreeMap::new();
        let mut provenance: BTreeMap<String, BTreeSet<InstrKind>> = BTreeMap::new();
        let mut done: Vec<Option<u64>> = vec![None; program.functions.len()];
        let mut kinds_done: Vec<Option<BTreeSet<InstrKind>>> =
            vec![None; program.functions.len()];
        // `unchanged[i]`: function i is decided and its WCET equals the
        // previous report's — callers may then reuse their own result.
        let mut unchanged: Vec<bool> = vec![false; program.functions.len()];

        for _ in 0..=program.functions.len() {
            let mut progressed = false;
            for (fi, f) in program.functions.iter().enumerate() {
                if done[fi].is_some() {
                    continue;
                }
                // All callees must be decided first, both to reuse
                // (their `unchanged` verdicts) and to recompute (their
                // WCETs).
                let callees_decided = f.code.iter().all(|inst| {
                    if let Instr::Call(t) = inst.instr {
                        done.get(t as usize).copied().flatten().is_some()
                    } else {
                        true
                    }
                });
                if !callees_decided {
                    continue;
                }

                let reusable = prev_program
                    .function_index(&f.name)
                    .map(|pi| &prev_program.functions[pi as usize])
                    .filter(|pf| pf.code == f.code && pf.loop_bound == f.loop_bound)
                    .and_then(|_| {
                        let deps = prev.provenance.get(&f.name)?;
                        let w = prev.per_function.get(&f.name)?;
                        (deps.is_disjoint(&changed_kinds)
                            && f.code.iter().all(|inst| match inst.instr {
                                // The callee index must still name the
                                // same routine — equal code bytes don't
                                // guarantee that across runtime-set
                                // changes.
                                Instr::Call(t) => {
                                    unchanged[t as usize]
                                        && prev_program
                                            .functions
                                            .get(t as usize)
                                            .map(|pf| pf.name.as_str())
                                            == program
                                                .functions
                                                .get(t as usize)
                                                .map(|nf| nf.name.as_str())
                                }
                                _ => true,
                            }))
                        .then(|| (*w, deps.clone()))
                    });

                let (w, kinds) = match reusable {
                    Some((w, kinds)) => {
                        unchanged[fi] = true;
                        (w, kinds)
                    }
                    None => {
                        let Some(w) = self.function_wcet(f, &done, program) else {
                            continue;
                        };
                        let kinds = function_kinds(f, &kinds_done);
                        // Callers reuse both the previous value and the
                        // previous provenance, so "unchanged" must mean
                        // both coincide (code equality keeps transitive
                        // kind sets honest too).
                        unchanged[fi] = prev_program
                            .function_index(&f.name)
                            .map(|pi| &prev_program.functions[pi as usize])
                            .is_some_and(|pf| pf.code == f.code)
                            && prev.per_function.get(&f.name) == Some(&w)
                            && prev.provenance.get(&f.name) == Some(&kinds);
                        (w, kinds)
                    }
                };
                done[fi] = Some(w);
                per_function.insert(f.name.clone(), w);
                provenance.insert(f.name.clone(), kinds.clone());
                kinds_done[fi] = Some(kinds);
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        assert!(
            done.iter().all(Option::is_some),
            "call graph not a DAG or dangling callee"
        );
        WcetReport { per_function, provenance }
    }

    /// WCET of a single function given already-computed callees; `None`
    /// when a callee is not yet resolved.
    fn function_wcet(
        &self,
        f: &AsmFunction,
        callees: &[Option<u64>],
        program: &TepProgram,
    ) -> Option<u64> {
        // Per-instruction cost including callee WCET for calls.
        let mut costs = Vec::with_capacity(f.code.len());
        for inst in &f.code {
            let mut c = self.cost.cost(inst);
            if let Instr::Call(target) = inst.instr {
                c += callees.get(target as usize).copied().flatten()?;
            }
            costs.push(c);
        }
        let bound = f.loop_bound.unwrap_or(self.default_loop_bound).max(1);
        let _ = program;
        Some(range_wcet(&f.code, &costs, 0, f.code.len(), bound))
    }
}

/// The instruction kinds a function's WCET depends on: its own
/// instructions plus (transitively) those of every callee. Callees are
/// resolved in the same fixpoint order as the WCET itself, so a
/// function's kinds are only computed once all its callees' are known.
fn function_kinds(f: &AsmFunction, callees: &[Option<BTreeSet<InstrKind>>]) -> BTreeSet<InstrKind> {
    let mut kinds = BTreeSet::new();
    for inst in &f.code {
        kinds.insert(InstrKind::of(&inst.instr));
        if let Instr::Call(target) = inst.instr {
            if let Some(Some(callee)) = callees.get(target as usize) {
                kinds.extend(callee.iter().copied());
            }
        }
    }
    kinds
}

/// Longest-path cost of `code[lo..hi)` with back edges collapsed into
/// bounded loop super-nodes. Assumes well-nested loops, which our code
/// generator guarantees.
fn range_wcet(code: &[AsmInst], costs: &[u64], lo: usize, hi: usize, bound: u64) -> u64 {
    // Top-level loops in the range: back edge (src -> head) with
    // head <= src; keep only those not nested inside another.
    let mut loops: Vec<(usize, usize)> = Vec::new(); // (head, back_src)
    for (i, inst) in code.iter().enumerate().take(hi).skip(lo) {
        if let Some(t) = inst.instr.branch_target() {
            let t = t as usize;
            if t <= i && t >= lo {
                loops.push((t, i));
            }
        }
    }
    // Merge overlapping/nested into outermost.
    loops.sort();
    let mut top: Vec<(usize, usize)> = Vec::new();
    for (h, s) in loops {
        match top.last_mut() {
            Some((_, ls)) if h <= *ls => {
                // Nested or overlapping: extend the existing loop.
                if s > *ls {
                    *ls = s;
                }
            }
            _ => top.push((h, s)),
        }
    }

    // Longest path, backwards DP over positions lo..hi.
    let mut wc = vec![0u64; hi - lo + 1];
    let pos = |i: usize| i - lo;
    for i in (lo..hi).rev() {
        // Position inside a top-level loop but not its head: skipped —
        // handled via the super-node at the head.
        if let Some(&(h, s)) = top.iter().find(|&&(h, s)| i >= h && i <= s) {
            if i != h {
                continue;
            }
            // Super-node: body = longest path through [h, s] without the
            // back edges, times bound — plus one extra body traversal to
            // cover the final loop-header evaluation that exits the loop.
            let body = range_wcet_body(code, costs, h, s + 1, bound);
            let after = wc[pos(s + 1)];
            wc[pos(i)] = (bound + 1) * body + after;
            continue;
        }
        let c = costs[i];
        let inst = &code[i].instr;
        let next = |j: usize| -> u64 {
            if j >= hi {
                0
            } else if let Some(&(h, _)) = top.iter().find(|&&(h, s)| j > h && j <= s) {
                // Jumping into the middle of a loop: approximate with the
                // loop head's super-node cost.
                wc[pos(h)]
            } else {
                wc[pos(j)]
            }
        };
        wc[pos(i)] = match inst {
            Instr::Jump(t) => c + next(*t as usize),
            Instr::JumpIfZero(t) | Instr::JumpIfNotZero(t) => {
                c + next(*t as usize).max(next(i + 1))
            }
            Instr::Return | Instr::Halt => c,
            _ => c + next(i + 1),
        };
    }
    wc[0]
}

/// Longest path through one loop body `[lo, hi)` ignoring its back edges
/// (recursing for inner loops).
fn range_wcet_body(code: &[AsmInst], costs: &[u64], lo: usize, hi: usize, bound: u64) -> u64 {
    // Inner loops strictly inside (lo, hi): recurse through range_wcet on
    // a version that can't see the outer back edge. We temporarily treat
    // back edges targeting `lo` from inside as loop-terminating jumps by
    // masking them out.
    let mut masked: Vec<AsmInst> = code[lo..hi].to_vec();
    for inst in masked.iter_mut() {
        if let Some(t) = inst.instr.branch_target() {
            let t = t as usize;
            if t == lo {
                // Back edge of this loop: end of one iteration.
                inst.instr = match inst.instr {
                    Instr::Jump(_) => Instr::Jump(masked_end(hi, lo)),
                    Instr::JumpIfZero(_) => Instr::JumpIfZero(masked_end(hi, lo)),
                    Instr::JumpIfNotZero(_) => Instr::JumpIfNotZero(masked_end(hi, lo)),
                    ref other => other.clone(),
                };
            } else {
                // Rebase other targets into the slice.
                inst.instr.set_branch_target(t.saturating_sub(lo) as u32);
            }
        }
    }
    let local_costs: Vec<u64> = costs[lo..hi].to_vec();
    range_wcet(&masked, &local_costs, 0, masked.len(), bound)
}

fn masked_end(hi: usize, lo: usize) -> u32 {
    (hi - lo) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::TepArch;
    use crate::isa::{AluOp, AsmInst, Instr, Storage};

    fn inst(i: Instr) -> AsmInst {
        AsmInst::new(i, 16, true)
    }

    fn func(code: Vec<AsmInst>, bound: Option<u64>) -> AsmFunction {
        AsmFunction {
            name: "t".into(),
            param_count: 0,
            frame: Vec::new(),
            code,
            loop_bound: bound,
        }
    }

    fn wcet_of(f: AsmFunction, arch: &TepArch) -> u64 {
        let program = TepProgram::for_tests(vec![f], arch.clone());
        WcetAnalysis::new(arch).analyze(&program).of("t").unwrap()
    }

    #[test]
    fn straight_line_sums_costs() {
        let arch = TepArch::md16_unoptimized();
        let cm = CostModel::new(&arch);
        let code = vec![
            inst(Instr::Ldi(1)),
            inst(Instr::Tao),
            inst(Instr::Alu(AluOp::Add)),
            inst(Instr::Return),
        ];
        let expected: u64 = code.iter().map(|i| cm.cost(i)).sum();
        assert_eq!(wcet_of(func(code, None), &arch), expected);
    }

    #[test]
    fn branch_takes_worst_arm() {
        let arch = TepArch::md16_unoptimized();
        let cm = CostModel::new(&arch);
        // 0: jz 3 ; 1: nop ; 2: jmp 6 ; 3: nop ; 4: nop ; 5: nop ; 6: ret
        let code = vec![
            inst(Instr::JumpIfZero(3)),
            inst(Instr::Nop),
            inst(Instr::Jump(6)),
            inst(Instr::Nop),
            inst(Instr::Nop),
            inst(Instr::Nop),
            inst(Instr::Return),
        ];
        let w = wcet_of(func(code.clone(), None), &arch);
        let long_arm = cm.cost(&code[0])
            + cm.cost(&code[3]) * 3
            + cm.cost(&code[6]);
        assert_eq!(w, long_arm);
    }

    #[test]
    fn loop_multiplied_by_bound() {
        let arch = TepArch::md16_unoptimized();
        let cm = CostModel::new(&arch);
        // 0: nop ; 1: nop(body) ; 2: jnz 1 ; 3: ret
        let code = vec![
            inst(Instr::Nop),
            inst(Instr::Nop),
            inst(Instr::JumpIfNotZero(1)),
            inst(Instr::Return),
        ];
        let w8 = wcet_of(func(code.clone(), Some(8)), &arch);
        let w16 = wcet_of(func(code.clone(), Some(16)), &arch);
        let body = cm.cost(&code[1]) + cm.cost(&code[2]);
        // bound + 1 body traversals: the final header evaluation that
        // exits the loop is bounded by one extra pass.
        assert_eq!(w8, cm.cost(&code[0]) + (8 + 1) * body + cm.cost(&code[3]));
        assert_eq!(w16 - w8, 8 * body);
    }

    #[test]
    fn nested_loops_multiply() {
        let arch = TepArch::md16_unoptimized();
        // 0: nop
        // 1: nop           (outer body start)
        // 2: nop           (inner body)
        // 3: jnz 2         (inner back edge)
        // 4: jnz 1         (outer back edge)
        // 5: ret
        let code = vec![
            inst(Instr::Nop),
            inst(Instr::Nop),
            inst(Instr::Nop),
            inst(Instr::JumpIfNotZero(2)),
            inst(Instr::JumpIfNotZero(1)),
            inst(Instr::Return),
        ];
        let w2 = wcet_of(func(code.clone(), Some(2)), &arch);
        let w4 = wcet_of(func(code.clone(), Some(4)), &arch);
        // Cost grows superlinearly with the bound (nested loops).
        assert!(w4 > 2 * w2, "w2={w2} w4={w4}");
    }

    #[test]
    fn wide_operands_cost_more_on_narrow_bus() {
        let narrow = TepArch::minimal(); // 8-bit
        let wide = TepArch::md16_unoptimized(); // 16-bit
        let cm8 = CostModel::new(&narrow);
        let cm16 = CostModel::new(&wide);
        let add16 = AsmInst::new(Instr::Alu(AluOp::Add), 16, true);
        assert!(cm8.cost(&add16) > cm16.cost(&add16));
        let jmp = AsmInst::new(Instr::Jump(0), 16, false);
        assert_eq!(
            cm8.cost(&jmp),
            micro_len(InstrKind::Jump, false) as u64,
            "control flow does not limb-scale"
        );
    }

    #[test]
    fn hw_divide_quadratic_in_limbs() {
        let arch = TepArch::md16_unoptimized();
        let cm = CostModel::new(&arch);
        let div16 = AsmInst::new(Instr::Alu(AluOp::Div), 16, true);
        let div32 = AsmInst::new(Instr::Alu(AluOp::Div), 32, true);
        assert!(cm.cost(&div32) >= 4 * cm.cost(&div16) - 8);
    }

    #[test]
    fn optimized_code_is_cheaper() {
        let unopt = TepArch::md16_unoptimized();
        let opt = TepArch::md16_optimized();
        let code = vec![
            inst(Instr::Load(Storage::Internal(0))),
            inst(Instr::Tao),
            inst(Instr::Load(Storage::Internal(1))),
            inst(Instr::Alu(AluOp::Add)),
            inst(Instr::Store(Storage::Internal(2))),
            inst(Instr::Return),
        ];
        let wu = wcet_of(func(code.clone(), None), &unopt);
        let wo = wcet_of(func(code, None), &opt);
        assert!(wo < wu, "peepholed microcode must be faster: {wo} vs {wu}");
    }

    #[test]
    fn provenance_tracks_instruction_kinds() {
        let arch = TepArch::md16_unoptimized();
        let code = vec![
            inst(Instr::Ldi(1)),
            inst(Instr::Tao),
            inst(Instr::Alu(AluOp::Mul)),
            inst(Instr::Return),
        ];
        let program = TepProgram::for_tests(vec![func(code, None)], arch.clone());
        let report = WcetAnalysis::new(&arch).analyze(&program);
        let deps = report.depends_on("t").expect("provenance recorded");
        for k in [InstrKind::Ldi, InstrKind::Tao, InstrKind::AluMul, InstrKind::Return] {
            assert!(deps.contains(&k), "missing {k:?} in {deps:?}");
        }
        assert!(!deps.contains(&InstrKind::AluDiv));
        // affected_by finds the routine through any of its kinds.
        let probe: std::collections::BTreeSet<InstrKind> = [InstrKind::AluMul].into();
        assert_eq!(report.affected_by(&probe).collect::<Vec<_>>(), vec!["t"]);
        let miss: std::collections::BTreeSet<InstrKind> = [InstrKind::AluShift].into();
        assert_eq!(report.affected_by(&miss).count(), 0);
    }

    #[test]
    fn provenance_includes_callee_kinds() {
        let arch = TepArch::md16_unoptimized();
        let leaf = AsmFunction {
            name: "leaf".into(),
            param_count: 0,
            frame: Vec::new(),
            code: vec![inst(Instr::Alu(AluOp::Div)), inst(Instr::Return)],
            loop_bound: None,
        };
        let top = AsmFunction {
            name: "top".into(),
            param_count: 0,
            frame: Vec::new(),
            code: vec![inst(Instr::Call(0)), inst(Instr::Return)],
            loop_bound: None,
        };
        let program = TepProgram::for_tests(vec![leaf, top], arch.clone());
        let report = WcetAnalysis::new(&arch).analyze(&program);
        let top_deps = report.depends_on("top").unwrap();
        assert!(top_deps.contains(&InstrKind::AluDiv), "callee kinds propagate");
        assert!(top_deps.contains(&InstrKind::Call));
        assert!(!report.depends_on("leaf").unwrap().contains(&InstrKind::Call));
    }

    #[test]
    fn changed_routines_diffs_reports() {
        let unopt = TepArch::md16_unoptimized();
        let opt = TepArch::md16_optimized();
        let code = vec![
            inst(Instr::Load(Storage::Internal(0))),
            inst(Instr::Alu(AluOp::Add)),
            inst(Instr::Return),
        ];
        let pu = TepProgram::for_tests(vec![func(code.clone(), None)], unopt.clone());
        let po = TepProgram::for_tests(vec![func(code, None)], opt.clone());
        let ru = WcetAnalysis::new(&unopt).analyze(&pu);
        let ro = WcetAnalysis::new(&opt).analyze(&po);
        assert_eq!(ru.changed_routines(&ro).collect::<Vec<_>>(), vec!["t"]);
        assert_eq!(ru.changed_routines(&ru).count(), 0);
    }

    #[test]
    fn calls_include_callee_wcet() {
        let arch = TepArch::md16_unoptimized();
        let leaf = AsmFunction {
            name: "leaf".into(),
            param_count: 0,
            frame: Vec::new(),
            code: vec![inst(Instr::Nop), inst(Instr::Nop), inst(Instr::Return)],
            loop_bound: None,
        };
        let top = AsmFunction {
            name: "top".into(),
            param_count: 0,
            frame: Vec::new(),
            code: vec![inst(Instr::Call(0)), inst(Instr::Return)],
            loop_bound: None,
        };
        let program = TepProgram::for_tests(vec![leaf, top], arch.clone());
        let report = WcetAnalysis::new(&arch).analyze(&program);
        let cm = CostModel::new(&arch);
        assert_eq!(
            report.of("top").unwrap(),
            report.of("leaf").unwrap()
                + cm.cost(&inst(Instr::Call(0)))
                + cm.cost(&inst(Instr::Return))
        );
    }

    #[test]
    fn changed_kinds_tracks_cost_model_knobs() {
        let base = CostModel::new(&TepArch::md16_unoptimized());
        assert!(base.changed_kinds(&base).is_empty());

        // Calculation-unit flips (M/D, shifter, ...) change what the code
        // generator *emits*, not what an instruction kind costs — the
        // cost model is a function of (kind, width) only, so they must
        // not show up here. The codegen cache catches them via the code
        // bytes instead.
        let mut no_md = TepArch::md16_unoptimized();
        no_md.calc.muldiv = false;
        assert!(CostModel::new(&no_md).changed_kinds(&base).is_empty());

        // A bus-width change rescales every width-scaled kind but leaves
        // control flow alone.
        let mut w8 = TepArch::md16_unoptimized();
        w8.calc.width = 8;
        let diff = CostModel::new(&w8).changed_kinds(&base);
        assert!(diff.contains(&InstrKind::AluSimple), "{diff:?}");
        assert!(!diff.contains(&InstrKind::Jump), "{diff:?}");

        // Pipelining shaves a cycle off nearly every microprogram — the
        // global invalidation the analyze_incremental early-out keys on.
        let mut piped = TepArch::md16_unoptimized();
        piped.pipelined = true;
        let diff = CostModel::new(&piped).changed_kinds(&base);
        assert!(diff.len() >= InstrKind::ALL.len() / 2, "{diff:?}");
    }

    #[test]
    fn incremental_analysis_matches_full() {
        let arch = TepArch::md16_unoptimized();
        let leaf = AsmFunction {
            name: "leaf".into(),
            param_count: 0,
            frame: Vec::new(),
            code: vec![inst(Instr::Alu(AluOp::Add)), inst(Instr::Return)],
            loop_bound: None,
        };
        let top = AsmFunction {
            name: "top".into(),
            param_count: 0,
            frame: Vec::new(),
            code: vec![inst(Instr::Call(0)), inst(Instr::Return)],
            loop_bound: None,
        };
        let prev_prog = TepProgram::for_tests(vec![leaf.clone(), top.clone()], arch.clone());
        let prev_an = WcetAnalysis::new(&arch);
        let prev_rep = prev_an.analyze(&prev_prog);

        // Nothing changed: the previous report is reproduced verbatim
        // (value *and* provenance — callers reuse both).
        assert_eq!(
            prev_an.analyze_incremental(&prev_prog, &prev_an, &prev_prog, &prev_rep),
            prev_rep
        );

        // Editing the leaf must propagate into its (byte-identical)
        // caller rather than reusing the caller's stale WCET.
        let mut leaf2 = leaf.clone();
        leaf2.code.insert(0, inst(Instr::Alu(AluOp::Mul)));
        let edited = TepProgram::for_tests(vec![leaf2, top], arch.clone());
        let inc = prev_an.analyze_incremental(&edited, &prev_an, &prev_prog, &prev_rep);
        assert_eq!(inc, prev_an.analyze(&edited));
        assert!(inc.of("top").unwrap() > prev_rep.of("top").unwrap());

        // A pipelining flip invalidates the cost model globally (the
        // early-out path) and still agrees with a fresh analysis.
        let mut piped_arch = arch.clone();
        piped_arch.pipelined = true;
        let piped_an = WcetAnalysis::new(&piped_arch);
        assert_eq!(
            piped_an.analyze_incremental(&prev_prog, &prev_an, &prev_prog, &prev_rep),
            piped_an.analyze(&prev_prog)
        );
    }
}
