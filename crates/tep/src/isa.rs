//! The assembler-level TEP instruction set.
//!
//! The basic instruction set (§3.2) "includes load and store
//! instructions, basic arithmetic and logic instructions, shift
//! instructions, jump instructions, and port instructions. Further
//! operations reset the transition registers, perform calls to the
//! transition routines, and communicate with the SLA."
//!
//! The TEP is an accumulator machine: binary operations combine the
//! accumulator `ACC` with the second operand register `OP`
//! (`ACC <- ACC op OP`); `Tao` transfers `ACC` into `OP`.
//!
//! Every instruction records the operand *width* it must process; when
//! that width exceeds the architecture's data-bus width the instruction
//! is executed over several bus-wide limbs, which multiplies its
//! microprogram cost (see [`crate::timing::CostModel`]).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Where a value lives. The component library offers "fast, but more
/// expensive registers, moderately fast and moderately expensive internal
/// RAM, and slower, but cheaper external RAM" (§3.3); the storage
/// promotion optimisation moves operands up this hierarchy.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum Storage {
    /// A register-file register (fastest).
    Register(u8),
    /// On-chip RAM word address.
    Internal(u16),
    /// External RAM word address (slowest).
    External(u16),
}

impl fmt::Display for Storage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Storage::Register(r) => write!(f, "r{r}"),
            Storage::Internal(a) => write!(f, "iram[{a}]"),
            Storage::External(a) => write!(f, "xram[{a}]"),
        }
    }
}

/// ALU operations (`ACC <- ACC op OP`, unary ops use `ACC` only).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum AluOp {
    /// `ACC + OP`
    Add,
    /// `ACC - OP`
    Sub,
    /// `ACC & OP`
    And,
    /// `ACC | OP`
    Or,
    /// `ACC ^ OP`
    Xor,
    /// `~ACC` (unary)
    Not,
    /// `-ACC` (unary; requires a two's-complement-capable ALU)
    Neg,
    /// `ACC << OP` (requires a shifter)
    Shl,
    /// `ACC >> OP`, logical (requires a shifter)
    Shr,
    /// `ACC >> OP`, arithmetic (requires a shifter)
    Sar,
    /// `ACC * OP` (requires the M/D calculation unit)
    Mul,
    /// `ACC / OP` (requires the M/D calculation unit)
    Div,
    /// `ACC % OP` (requires the M/D calculation unit)
    Rem,
}

impl AluOp {
    /// Requires the multiply/divide extension of the calculation unit.
    pub fn needs_muldiv(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::Div | AluOp::Rem)
    }

    /// Requires the barrel/serial shifter block.
    pub fn needs_shifter(self) -> bool {
        matches!(self, AluOp::Shl | AluOp::Shr | AluOp::Sar)
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Not => "not",
            AluOp::Neg => "neg",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
        };
        f.write_str(s)
    }
}

/// Comparison kinds for [`Instr::Cmp`] (`ACC <- ACC cmp OP ? 1 : 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
        })
    }
}

/// One assembler-level instruction. Branch targets are indices into the
/// owning function's instruction vector; `func` operands index the
/// program's function table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// No operation.
    Nop,
    /// `ACC <- imm`
    Ldi(i64),
    /// `ACC <- storage`
    Load(Storage),
    /// `storage <- ACC`
    Store(Storage),
    /// `ACC <- mem[base + ACC]` — indexed load for array access; the
    /// storage selects the memory bank of `base`.
    LoadIndexed(Storage),
    /// `mem[base + OP] <- ACC` — indexed store (index pre-loaded in OP).
    StoreIndexed(Storage),
    /// `OP <- ACC`
    Tao,
    /// `ACC <- ACC op OP` (or unary on ACC).
    Alu(AluOp),
    /// `ACC <- (ACC cmp OP) ? 1 : 0`; `signed` picks the comparison.
    /// Requires a comparator-equipped calculation unit; expanded by the
    /// code generator otherwise.
    Cmp {
        /// Comparison kind.
        op: CmpOp,
        /// Signed comparison?
        signed: bool,
    },
    /// Unconditional jump to instruction index.
    Jump(u32),
    /// Jump when `ACC == 0`.
    JumpIfZero(u32),
    /// Jump when `ACC != 0`.
    JumpIfNotZero(u32),
    /// Call a routine by function-table index ("perform calls to the
    /// transition routines").
    Call(u32),
    /// Return (result, if any, in `ACC`).
    Return,
    /// `ACC <- data port`
    PortRead(u16),
    /// `data port <- ACC`
    PortWrite(u16),
    /// `ACC <- condition bit` (from the local condition cache).
    ReadCond(u16),
    /// `condition bit <- (ACC != 0)` (into the local condition cache).
    SetCond(u16),
    /// Raise an event in the CR (visible next configuration cycle) —
    /// one of the operations that "communicate with the SLA".
    RaiseEvent(u16),
    /// A custom fused instruction generated from an expression pattern
    /// (§3.3/§4); semantics live in the architecture's custom-op table.
    Custom(u16),
    /// Fused memory-operand ALU instruction, the workhorse custom
    /// operation extracted from the assembler code (§3.3): performs
    /// `OP <- ACC; ACC <- mem[src] op OP` in one instruction, replacing
    /// the three-instruction `Tao; Load src; Alu op` idiom.
    AluMem {
        /// The ALU operation.
        op: AluOp,
        /// The memory operand.
        src: Storage,
    },
    /// End of transition: signal the scheduler and stop.
    Halt,
}

/// The instruction's slot in the observability kind counters
/// (`pscp_obs::metrics::TEP_INSTR`); the order and the display names
/// in `pscp_obs::metrics::TEP_KIND_NAMES` mirror the variant order
/// here (pinned by a test below).
pub fn kind_index(i: &Instr) -> usize {
    match i {
        Instr::Nop => 0,
        Instr::Ldi(_) => 1,
        Instr::Load(_) => 2,
        Instr::Store(_) => 3,
        Instr::LoadIndexed(_) => 4,
        Instr::StoreIndexed(_) => 5,
        Instr::Tao => 6,
        Instr::Alu(_) => 7,
        Instr::Cmp { .. } => 8,
        Instr::Jump(_) => 9,
        Instr::JumpIfZero(_) => 10,
        Instr::JumpIfNotZero(_) => 11,
        Instr::Call(_) => 12,
        Instr::Return => 13,
        Instr::PortRead(_) => 14,
        Instr::PortWrite(_) => 15,
        Instr::ReadCond(_) => 16,
        Instr::SetCond(_) => 17,
        Instr::RaiseEvent(_) => 18,
        Instr::Custom(_) => 19,
        Instr::AluMem { .. } => 20,
        Instr::Halt => 21,
    }
}

impl Instr {
    /// The branch target, if this is a control-transfer within the
    /// function.
    pub fn branch_target(&self) -> Option<u32> {
        match self {
            Instr::Jump(t) | Instr::JumpIfZero(t) | Instr::JumpIfNotZero(t) => Some(*t),
            _ => None,
        }
    }

    /// Rewrites the branch target (used by the assembler-level peephole).
    pub fn set_branch_target(&mut self, t: u32) {
        match self {
            Instr::Jump(x) | Instr::JumpIfZero(x) | Instr::JumpIfNotZero(x) => *x = t,
            _ => {}
        }
    }
}

/// An instruction together with its operand width and signedness.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsmInst {
    /// The operation.
    pub instr: Instr,
    /// Operand width in bits; limb expansion happens when it exceeds the
    /// data-bus width.
    pub width: u8,
    /// Whether the accumulator result wraps as a signed value of `width`
    /// bits (two's complement) or unsigned.
    pub signed: bool,
}

impl AsmInst {
    /// Convenience constructor.
    pub fn new(instr: Instr, width: u8, signed: bool) -> Self {
        AsmInst { instr, width, signed }
    }

    /// Wraps a raw accumulator value into this instruction's domain.
    pub fn wrap(&self, v: i64) -> i64 {
        let width = self.width.min(63) as u32;
        let mask: u64 = if width >= 64 { u64::MAX } else { (1u64 << width) - 1 };
        let t = (v as u64) & mask;
        if self.signed && width > 0 && t & (1 << (width - 1)) != 0 {
            (t | !mask) as i64
        } else {
            t as i64
        }
    }
}

/// One compiled routine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsmFunction {
    /// Routine name (matches the action-language function).
    pub name: String,
    /// Number of parameters (passed in the frame's first slots).
    pub param_count: u8,
    /// Storage locations of the parameter/virtual-register frame.
    pub frame: Vec<Storage>,
    /// Instruction stream.
    pub code: Vec<AsmInst>,
    /// Worst-case iteration bound applying to every loop in this routine,
    /// when statically known (set for the synthesised software mul/div
    /// runtime, whose loops iterate exactly `width` times). `None` makes
    /// the WCET analysis fall back to its configured default bound.
    pub loop_bound: Option<u64>,
}

impl AsmFunction {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when the function has no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_target_roundtrip() {
        let mut i = Instr::JumpIfZero(7);
        assert_eq!(i.branch_target(), Some(7));
        i.set_branch_target(9);
        assert_eq!(i.branch_target(), Some(9));
        assert_eq!(Instr::Halt.branch_target(), None);
    }

    #[test]
    fn alu_feature_requirements() {
        assert!(AluOp::Mul.needs_muldiv());
        assert!(!AluOp::Add.needs_muldiv());
        assert!(AluOp::Shl.needs_shifter());
        assert!(!AluOp::Xor.needs_shifter());
    }

    #[test]
    fn storage_display() {
        assert_eq!(Storage::Register(3).to_string(), "r3");
        assert_eq!(Storage::Internal(10).to_string(), "iram[10]");
        assert_eq!(Storage::External(5).to_string(), "xram[5]");
    }

    #[test]
    fn kind_index_matches_obs_slot_names() {
        use pscp_obs::metrics::{TEP_KINDS, TEP_KIND_NAMES};
        // One representative per variant, in variant order; the name
        // table over in pscp-obs must line up slot for slot.
        let reps: [(Instr, &str); TEP_KINDS] = [
            (Instr::Nop, "nop"),
            (Instr::Ldi(0), "ldi"),
            (Instr::Load(Storage::Register(0)), "load"),
            (Instr::Store(Storage::Register(0)), "store"),
            (Instr::LoadIndexed(Storage::Internal(0)), "load_indexed"),
            (Instr::StoreIndexed(Storage::Internal(0)), "store_indexed"),
            (Instr::Tao, "tao"),
            (Instr::Alu(AluOp::Add), "alu"),
            (Instr::Cmp { op: CmpOp::Eq, signed: false }, "cmp"),
            (Instr::Jump(0), "jump"),
            (Instr::JumpIfZero(0), "jump_if_zero"),
            (Instr::JumpIfNotZero(0), "jump_if_not_zero"),
            (Instr::Call(0), "call"),
            (Instr::Return, "return"),
            (Instr::PortRead(0), "port_read"),
            (Instr::PortWrite(0), "port_write"),
            (Instr::ReadCond(0), "read_cond"),
            (Instr::SetCond(0), "set_cond"),
            (Instr::RaiseEvent(0), "raise_event"),
            (Instr::Custom(0), "custom"),
            (Instr::AluMem { op: AluOp::Add, src: Storage::Register(0) }, "alu_mem"),
            (Instr::Halt, "halt"),
        ];
        for (slot, (inst, name)) in reps.iter().enumerate() {
            assert_eq!(kind_index(inst), slot, "{name} slot");
            assert_eq!(TEP_KIND_NAMES[slot], *name);
        }
    }
}
