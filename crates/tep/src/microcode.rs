//! Microprogrammed control: microinstruction format, per-instruction
//! microprograms, ROM/decoder synthesis, and the microcode peephole.
//!
//! "Each instruction of the TEP is represented by a microprogram
//! containing a sequence of microinstructions. … In the basic TEP,
//! microinstructions are 16 bits wide. The first eight bits represent
//! the control signals, and the other eight bit indicate the address of
//! the next microinstruction. The eight control bits are further divided
//! into 3 bits to denote the group of control signals, and 5 bits to
//! encode the control signals." (§3.2, Table 1)
//!
//! The *unoptimised* microprograms end in an explicit jump back to the
//! fetch sequence and carry conservative sequencing microinstructions;
//! the first optimisation step of §4 — "a peephole optimization step
//! removes redundant jumps from the microprogram sequences" — is
//! implemented by [`peephole`].

use crate::isa::{AluOp, Instr, Storage};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The five control-signal groups of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Group {
    /// Arithmetic ALU controls (group bits `001`, signals `01x00`).
    AluArith,
    /// Logical ALU controls (group bits `001`, signals `000xx`).
    AluLogic,
    /// Shift controls (group bits `010`).
    Shift,
    /// Single-signal strobes (group bits `011`).
    Single,
    /// Address-bus controls (group bits `100`).
    AddressBus,
    /// Jump/branch controls (group bits `101`).
    Jump,
}

impl Group {
    /// The 3-bit group field.
    pub fn bits(self) -> u8 {
        match self {
            Group::AluArith | Group::AluLogic => 0b001,
            Group::Shift => 0b010,
            Group::Single => 0b011,
            Group::AddressBus => 0b100,
            Group::Jump => 0b101,
        }
    }
}

impl fmt::Display for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Group::AluArith => "arithmetic",
            Group::AluLogic => "logical",
            Group::Shift => "shift",
            Group::Single => "single signals",
            Group::AddressBus => "address bus",
            Group::Jump => "jump, branch",
        })
    }
}

/// One 16-bit microinstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MicroInstr {
    /// Control-signal group.
    pub group: Group,
    /// 5-bit encoded control signal.
    pub signal: u8,
    /// 8-bit next-microinstruction address (0 = back to fetch).
    pub next: u8,
}

impl MicroInstr {
    /// Encodes into the 16-bit word format: `[group:3][signal:5][next:8]`.
    pub fn encode(self) -> u16 {
        ((self.group.bits() as u16) << 13) | (((self.signal & 0x1f) as u16) << 8) | self.next as u16
    }
}

/// Instruction kinds for microprogram lookup (operands stripped; memory
/// instructions split by storage class because their microprograms
/// differ).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum InstrKind {
    /// No-op.
    Nop,
    /// Load immediate.
    Ldi,
    /// Load from register file.
    LoadReg,
    /// Load from internal RAM.
    LoadInt,
    /// Load from external RAM.
    LoadExt,
    /// Store to register file.
    StoreReg,
    /// Store to internal RAM.
    StoreInt,
    /// Store to external RAM.
    StoreExt,
    /// Indexed load, internal RAM.
    LoadIdxInt,
    /// Indexed load, external RAM.
    LoadIdxExt,
    /// Indexed store, internal RAM.
    StoreIdxInt,
    /// Indexed store, external RAM.
    StoreIdxExt,
    /// ACC→OP transfer.
    Tao,
    /// Simple ALU op (add/sub/logic/neg/not).
    AluSimple,
    /// Shift.
    AluShift,
    /// Hardware multiply.
    AluMul,
    /// Hardware divide/remainder.
    AluDiv,
    /// Hardware compare.
    Cmp,
    /// Unconditional jump.
    Jump,
    /// Conditional jump.
    JumpCond,
    /// Subroutine call.
    Call,
    /// Subroutine return.
    Return,
    /// Data-port read.
    PortRead,
    /// Data-port write.
    PortWrite,
    /// Condition-cache read.
    ReadCond,
    /// Condition-cache write.
    SetCond,
    /// Event raise (SLA communication).
    RaiseEvent,
    /// Application-specific fused instruction.
    Custom,
    /// Fused memory-operand ALU, register-file operand.
    AluMemReg,
    /// Fused memory-operand ALU, internal-RAM operand.
    AluMemInt,
    /// Fused memory-operand ALU, external-RAM operand.
    AluMemExt,
    /// End of transition.
    Halt,
}

impl InstrKind {
    /// Every instruction kind, for cost-model diffing.
    pub const ALL: [InstrKind; 32] = [
        InstrKind::Nop,
        InstrKind::Ldi,
        InstrKind::LoadReg,
        InstrKind::LoadInt,
        InstrKind::LoadExt,
        InstrKind::StoreReg,
        InstrKind::StoreInt,
        InstrKind::StoreExt,
        InstrKind::LoadIdxInt,
        InstrKind::LoadIdxExt,
        InstrKind::StoreIdxInt,
        InstrKind::StoreIdxExt,
        InstrKind::Tao,
        InstrKind::AluSimple,
        InstrKind::AluShift,
        InstrKind::AluMul,
        InstrKind::AluDiv,
        InstrKind::Cmp,
        InstrKind::Jump,
        InstrKind::JumpCond,
        InstrKind::Call,
        InstrKind::Return,
        InstrKind::PortRead,
        InstrKind::PortWrite,
        InstrKind::ReadCond,
        InstrKind::SetCond,
        InstrKind::RaiseEvent,
        InstrKind::Custom,
        InstrKind::AluMemReg,
        InstrKind::AluMemInt,
        InstrKind::AluMemExt,
        InstrKind::Halt,
    ];

    /// Classifies an assembler instruction.
    pub fn of(instr: &Instr) -> InstrKind {
        match instr {
            Instr::Nop => InstrKind::Nop,
            Instr::Ldi(_) => InstrKind::Ldi,
            Instr::Load(Storage::Register(_)) => InstrKind::LoadReg,
            Instr::Load(Storage::Internal(_)) => InstrKind::LoadInt,
            Instr::Load(Storage::External(_)) => InstrKind::LoadExt,
            Instr::Store(Storage::Register(_)) => InstrKind::StoreReg,
            Instr::Store(Storage::Internal(_)) => InstrKind::StoreInt,
            Instr::Store(Storage::External(_)) => InstrKind::StoreExt,
            Instr::LoadIndexed(Storage::External(_)) => InstrKind::LoadIdxExt,
            Instr::LoadIndexed(_) => InstrKind::LoadIdxInt,
            Instr::StoreIndexed(Storage::External(_)) => InstrKind::StoreIdxExt,
            Instr::StoreIndexed(_) => InstrKind::StoreIdxInt,
            Instr::Tao => InstrKind::Tao,
            Instr::Alu(op) => match op {
                AluOp::Mul => InstrKind::AluMul,
                AluOp::Div | AluOp::Rem => InstrKind::AluDiv,
                AluOp::Shl | AluOp::Shr | AluOp::Sar => InstrKind::AluShift,
                _ => InstrKind::AluSimple,
            },
            Instr::Cmp { .. } => InstrKind::Cmp,
            Instr::Jump(_) => InstrKind::Jump,
            Instr::JumpIfZero(_) | Instr::JumpIfNotZero(_) => InstrKind::JumpCond,
            Instr::Call(_) => InstrKind::Call,
            Instr::Return => InstrKind::Return,
            Instr::PortRead(_) => InstrKind::PortRead,
            Instr::PortWrite(_) => InstrKind::PortWrite,
            Instr::ReadCond(_) => InstrKind::ReadCond,
            Instr::SetCond(_) => InstrKind::SetCond,
            Instr::RaiseEvent(_) => InstrKind::RaiseEvent,
            Instr::Custom(_) => InstrKind::Custom,
            Instr::AluMem { src: Storage::Register(_), .. } => InstrKind::AluMemReg,
            Instr::AluMem { src: Storage::Internal(_), .. } => InstrKind::AluMemInt,
            Instr::AluMem { src: Storage::External(_), .. } => InstrKind::AluMemExt,
            Instr::Halt => InstrKind::Halt,
        }
    }

    /// All kinds (for exhaustive ROM synthesis and tests).
    pub fn all() -> impl Iterator<Item = InstrKind> {
        [
            InstrKind::Nop,
            InstrKind::Ldi,
            InstrKind::LoadReg,
            InstrKind::LoadInt,
            InstrKind::LoadExt,
            InstrKind::StoreReg,
            InstrKind::StoreInt,
            InstrKind::StoreExt,
            InstrKind::LoadIdxInt,
            InstrKind::LoadIdxExt,
            InstrKind::StoreIdxInt,
            InstrKind::StoreIdxExt,
            InstrKind::Tao,
            InstrKind::AluSimple,
            InstrKind::AluShift,
            InstrKind::AluMul,
            InstrKind::AluDiv,
            InstrKind::Cmp,
            InstrKind::Jump,
            InstrKind::JumpCond,
            InstrKind::Call,
            InstrKind::Return,
            InstrKind::PortRead,
            InstrKind::PortWrite,
            InstrKind::ReadCond,
            InstrKind::SetCond,
            InstrKind::RaiseEvent,
            InstrKind::Custom,
            InstrKind::AluMemReg,
            InstrKind::AluMemInt,
            InstrKind::AluMemExt,
            InstrKind::Halt,
        ]
        .into_iter()
    }
}

/// Builds the (unoptimised) microprogram for an instruction kind.
///
/// Every sequence begins with the shared 2-µop fetch/decode prologue
/// (accounted inside the sequence), performs its data movement and
/// operation steps, and — unoptimised — ends with a redundant explicit
/// jump back to fetch plus a conservative sequencing µop on multi-step
/// operations. [`peephole`] removes exactly those.
pub fn microprogram(kind: InstrKind) -> Vec<MicroInstr> {
    use Group::*;
    // (group, signal) steps of the operative part, after the 2-step
    // fetch/decode prologue and before the redundant epilogue.
    let body: &[(Group, u8)] = match kind {
        InstrKind::Nop => &[],
        InstrKind::Ldi => &[(AddressBus, 0x01)],
        InstrKind::LoadReg => &[(Single, 0x04)],
        InstrKind::LoadInt => &[(AddressBus, 0x03), (Single, 0x05)],
        InstrKind::LoadExt => {
            &[
                (AddressBus, 0x06),
                (AddressBus, 0x07),
                (Single, 0x08),
                (Single, 0x09),
                (AddressBus, 0x0a),
                (Single, 0x0b),
            ]
        }
        InstrKind::StoreReg => &[(Single, 0x0c)],
        InstrKind::StoreInt => &[(AddressBus, 0x03), (Single, 0x0e)],
        InstrKind::StoreExt => {
            &[
                (AddressBus, 0x06),
                (AddressBus, 0x0f),
                (Single, 0x10),
                (Single, 0x11),
                (AddressBus, 0x12),
                (Single, 0x13),
            ]
        }
        InstrKind::LoadIdxInt => {
            &[(AluArith, 0x08), (AddressBus, 0x03), (AddressBus, 0x04), (Single, 0x05)]
        }
        InstrKind::LoadIdxExt => {
            &[
                (AluArith, 0x08),
                (AddressBus, 0x06),
                (AddressBus, 0x07),
                (Single, 0x08),
                (Single, 0x09),
                (AddressBus, 0x0a),
                (Single, 0x0b),
            ]
        }
        InstrKind::StoreIdxInt => {
            &[(AluArith, 0x08), (AddressBus, 0x03), (AddressBus, 0x0d), (Single, 0x0e)]
        }
        InstrKind::StoreIdxExt => {
            &[
                (AluArith, 0x08),
                (AddressBus, 0x06),
                (AddressBus, 0x0f),
                (Single, 0x10),
                (Single, 0x11),
                (AddressBus, 0x12),
                (Single, 0x13),
            ]
        }
        InstrKind::Tao => &[(Single, 0x14)],
        InstrKind::AluSimple => &[(AluArith, 0x08)],
        InstrKind::AluShift => &[(Shift, 0x01)],
        InstrKind::AluMul => {
            // Multi-cycle booth-style multiply on the M/D unit.
            &[
                (AluArith, 0x0c),
                (AluArith, 0x0c),
                (AluArith, 0x0c),
                (AluArith, 0x0c),
                (AluArith, 0x0c),
                (AluArith, 0x0c),
                (Single, 0x15),
                (Single, 0x16),
            ]
        }
        InstrKind::AluDiv => {
            // Restoring divide: longer than multiply.
            &[
                (AluArith, 0x0d),
                (AluArith, 0x0d),
                (AluArith, 0x0d),
                (AluArith, 0x0d),
                (AluArith, 0x0d),
                (AluArith, 0x0d),
                (AluArith, 0x0d),
                (AluArith, 0x0d),
                (AluArith, 0x0d),
                (AluArith, 0x0d),
                (Single, 0x15),
                (Single, 0x16),
            ]
        }
        InstrKind::Cmp => &[(AluLogic, 0x02)],
        InstrKind::Jump => &[(Jump, 0x01)],
        InstrKind::JumpCond => &[(AluLogic, 0x01), (Jump, 0x02)],
        InstrKind::Call => &[(AddressBus, 0x14), (Single, 0x17), (Jump, 0x03), (Single, 0x18)],
        InstrKind::Return => &[(AddressBus, 0x15), (Jump, 0x04)],
        InstrKind::PortRead => &[(AddressBus, 0x16), (Single, 0x19)],
        InstrKind::PortWrite => &[(AddressBus, 0x16), (Single, 0x1a)],
        InstrKind::ReadCond => &[(AddressBus, 0x17), (Single, 0x1b)],
        InstrKind::SetCond => &[(AddressBus, 0x17), (Single, 0x1c)],
        InstrKind::RaiseEvent => &[(AddressBus, 0x18), (Single, 0x1d), (Single, 0x1e)],
        InstrKind::Custom => &[(AluArith, 0x1f)],
        // Fused mem-operand ALU: operand fetch overlapped with the
        // OP<-ACC transfer, then a single ALU step.
        InstrKind::AluMemReg => &[(Single, 0x14), (AluArith, 0x08)],
        InstrKind::AluMemInt => &[(AddressBus, 0x03), (Single, 0x14), (AluArith, 0x08)],
        InstrKind::AluMemExt => {
            &[
                (AddressBus, 0x06),
                (Single, 0x14),
                (Single, 0x08),
                (AddressBus, 0x0a),
                (AluArith, 0x08),
            ]
        }
        InstrKind::Halt => &[(Single, 0x1f)],
    };

    let mut seq = Vec::with_capacity(body.len() + 4);
    // Fetch/decode prologue.
    seq.push(MicroInstr { group: AddressBus, signal: 0x00, next: 0 });
    seq.push(MicroInstr { group: Single, signal: 0x01, next: 0 });
    for &(group, signal) in body {
        seq.push(MicroInstr { group, signal, next: 0 });
    }
    // Redundant epilogue the peephole removes: a conservative sequencing
    // µop on multi-step operations, then an explicit jump to fetch.
    if body.len() >= 2 {
        seq.push(MicroInstr { group: Single, signal: 0x00, next: 0 });
    }
    seq.push(MicroInstr { group: Jump, signal: 0x00, next: 0 });
    // Chain next-addresses (relative; ROM layout renumbers).
    for i in 0..seq.len() {
        seq[i].next = if i + 1 < seq.len() { (i + 1) as u8 } else { 0 };
    }
    seq
}

/// Removes the redundant jump-to-fetch and conservative sequencing µops
/// from a microprogram ("a peephole optimization step removes redundant
/// jumps from the microprogram sequences", §4), and overlaps the decode
/// step with the ROM dispatch (the opcode directly addresses the entry,
/// so the separate decode µop disappears).
pub fn peephole(mut seq: Vec<MicroInstr>) -> Vec<MicroInstr> {
    // Trailing explicit jump to fetch is redundant: the last operative
    // µinstruction's next-address field already returns to fetch.
    if let Some(last) = seq.last() {
        if last.group == Group::Jump && last.signal == 0x00 {
            seq.pop();
        }
    }
    // A pure sequencing µop (Single/0x00) before the end is also dead.
    if seq.len() > 2 {
        if let Some(last) = seq.last() {
            if last.group == Group::Single && last.signal == 0x00 {
                seq.pop();
            }
        }
    }
    // Decode overlap: drop the second prologue µop (Single/0x01).
    if seq.len() > 1 && seq[1].group == Group::Single && seq[1].signal == 0x01 {
        seq.remove(1);
    }
    for i in 0..seq.len() {
        let n = if i + 1 < seq.len() { (i + 1) as u8 } else { 0 };
        seq[i].next = n;
    }
    seq
}

/// Microprogram length (= cycle count) for a kind under an architecture.
pub fn micro_len(kind: InstrKind, optimized: bool) -> u32 {
    let seq = microprogram(kind);
    let seq = if optimized { peephole(seq) } else { seq };
    seq.len() as u32
}

/// A synthesised microprogram ROM plus its opcode dispatch table.
///
/// "The final set of selected library elements for a PSCP version
/// determines the set of microinstructions needed for the application.
/// The specific microprogram decoder for this application can therefore
/// be easily synthesized." (§4)
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicrocodeRom {
    /// Opcode → ROM entry address.
    pub entries: BTreeMap<InstrKind, u16>,
    /// ROM contents.
    pub words: Vec<MicroInstr>,
    /// Whether peepholed sequences were used.
    pub optimized: bool,
}

impl MicrocodeRom {
    /// Synthesises the ROM for exactly the instruction kinds an
    /// application uses.
    pub fn synthesize(kinds: &BTreeSet<InstrKind>, optimized: bool) -> Self {
        let mut entries = BTreeMap::new();
        let mut words = Vec::new();
        for &kind in kinds {
            let mut seq = microprogram(kind);
            if optimized {
                seq = peephole(seq);
            }
            let base = words.len() as u16;
            entries.insert(kind, base);
            let len = seq.len();
            for (i, mut w) in seq.into_iter().enumerate() {
                w.next = if i + 1 < len { (base as usize + i + 1) as u8 } else { 0 };
                words.push(w);
            }
        }
        MicrocodeRom { entries, words, optimized }
    }

    /// Number of 16-bit ROM words.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Number of distinct control signals used (drives decoder area).
    pub fn distinct_signals(&self) -> usize {
        self.words
            .iter()
            .map(|w| (w.group.bits(), w.signal))
            .collect::<BTreeSet<_>>()
            .len()
    }
}

/// Renders the microcode format summary of Table 1.
pub fn format_table1() -> String {
    let rows = [
        ("arithmetic", "001", "01x00"),
        ("logical", "001", "000xx"),
        ("shift", "010", "0xxxx"),
        ("single signals", "011", "xxxxx"),
        ("address bus", "100", "0xxxx"),
        ("jump, branch", "101", "0xxxx"),
    ];
    let mut out = String::from("Symbolic          Encoding\n");
    for (name, grp, sig) in rows {
        out.push_str(&format!("{name:<17} {grp} {sig}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_have_microprograms() {
        for kind in InstrKind::all() {
            let seq = microprogram(kind);
            assert!(seq.len() >= 3, "{kind:?} too short: {}", seq.len());
            assert!(seq.len() <= 18, "{kind:?} too long: {}", seq.len());
        }
    }

    #[test]
    fn peephole_strictly_shrinks() {
        for kind in InstrKind::all() {
            let unopt = microprogram(kind);
            let opt = peephole(unopt.clone());
            assert!(opt.len() < unopt.len(), "{kind:?} not shrunk");
            assert!(opt.len() + 3 >= unopt.len(), "{kind:?} shrunk too much");
        }
    }

    #[test]
    fn costs_reflect_storage_hierarchy() {
        assert!(micro_len(InstrKind::LoadReg, true) < micro_len(InstrKind::LoadInt, true));
        assert!(micro_len(InstrKind::LoadInt, true) < micro_len(InstrKind::LoadExt, true));
    }

    #[test]
    fn muldiv_are_multicycle() {
        assert!(micro_len(InstrKind::AluMul, true) > micro_len(InstrKind::AluSimple, true));
        assert!(micro_len(InstrKind::AluDiv, true) > micro_len(InstrKind::AluMul, true));
    }

    #[test]
    fn encoding_fits_16_bits() {
        for kind in InstrKind::all() {
            for w in microprogram(kind) {
                let e = w.encode();
                assert_eq!(e >> 13, w.group.bits() as u16);
                assert_eq!((e >> 8) & 0x1f, (w.signal & 0x1f) as u16);
            }
        }
    }

    #[test]
    fn rom_synthesis_covers_kinds_and_chains() {
        let kinds: BTreeSet<InstrKind> =
            [InstrKind::Ldi, InstrKind::AluSimple, InstrKind::Halt].into_iter().collect();
        let rom = MicrocodeRom::synthesize(&kinds, true);
        assert_eq!(rom.entries.len(), 3);
        // Entry addresses in range, chains stay inside the ROM.
        for (&kind, &base) in &rom.entries {
            let len = micro_len(kind, true) as usize;
            assert!(base as usize + len <= rom.words.len());
        }
        // Optimised ROM is smaller than unoptimised.
        let unopt = MicrocodeRom::synthesize(&kinds, false);
        assert!(rom.word_count() < unopt.word_count());
    }

    #[test]
    fn custom_ops_are_short() {
        // "These instructions execute within one clock cycle" — plus the
        // fetch µop, the optimised form is 2 µops.
        assert_eq!(micro_len(InstrKind::Custom, true), 2);
    }

    #[test]
    fn table1_renders_all_groups() {
        let t = format_table1();
        for g in ["arithmetic", "logical", "shift", "single signals", "address bus", "jump"] {
            assert!(t.contains(g), "missing {g}");
        }
    }
}
