//! TEP architecture description.
//!
//! "The TEP of an application is derived from a library of elements
//! consisting of hardware building blocks and associated microinstruction
//! sequences. The main library elements are calculation units of varying
//! size and functionality. There are units with or without associated
//! register files, and units with or without shifting capabilities.
//! Several styles of ALUs … are available." (§3.3)
//!
//! A [`TepArch`] value pins down one point in that design space; the
//! iterative optimiser of the core crate mutates it.

use crate::isa::AluOp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Storage classes of the component library, ordered fastest-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StorageClass {
    /// Register file (fast, expensive).
    Register,
    /// On-chip RAM (moderate).
    Internal,
    /// External RAM (slow, cheap).
    External,
}

impl fmt::Display for StorageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StorageClass::Register => "register",
            StorageClass::Internal => "internal RAM",
            StorageClass::External => "external RAM",
        })
    }
}

/// Calculation-unit configuration (the datapath core of Fig. 3).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CalcUnit {
    /// Data-bus / ALU width in bits (the basic TEP is 8).
    pub width: u8,
    /// Hardware multiply/divide extension ("calculation units with extra
    /// multiply/division capability", §5).
    pub muldiv: bool,
    /// Dedicated comparator (inserted by the `if (a == b)` pattern rule).
    pub comparator: bool,
    /// Two's-complement negate path (inserted by the `x = -x` pattern).
    pub twos_complement: bool,
    /// Shifter block.
    pub shifter: bool,
}

impl CalcUnit {
    /// The minimal 8-bit unit of the basic TEP.
    pub fn minimal() -> Self {
        CalcUnit {
            width: 8,
            muldiv: false,
            comparator: false,
            twos_complement: false,
            shifter: true,
        }
    }

    /// The 16-bit multiply/divide unit of the paper's final architecture.
    pub fn md16() -> Self {
        CalcUnit {
            width: 16,
            muldiv: true,
            comparator: true,
            twos_complement: true,
            shifter: true,
        }
    }

    /// Whether the unit executes `op` natively.
    pub fn supports(&self, op: AluOp) -> bool {
        match op {
            _ if op.needs_muldiv() => self.muldiv,
            _ if op.needs_shifter() => self.shifter,
            AluOp::Neg => self.twos_complement,
            _ => true,
        }
    }
}

impl Default for CalcUnit {
    fn default() -> Self {
        CalcUnit::minimal()
    }
}

/// A custom fused instruction: a short expression DAG executed in a
/// single clock cycle. "Simple components such as shifters and registers
/// can be combined to custom operations, which are derived from the
/// assembler code. These instructions execute within one clock cycle.
/// Care must be taken that such instructions do not become the critical
/// paths inside the TEP." (§3.3)
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CustomOp {
    /// Human-readable pattern, e.g. `acc*4+op`.
    pub name: String,
    /// The fused operation sequence (applied to ACC with OP as the
    /// second operand of each step).
    pub steps: Vec<CustomStep>,
    /// Estimated combinational depth in gate levels (checked against the
    /// architecture's critical-path budget).
    pub depth: u8,
}

/// One step of a custom op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CustomStep {
    /// Apply an ALU op with OP as right operand.
    WithOp(AluOp),
    /// Apply an ALU op with an immediate right operand.
    WithImm(AluOp, i64),
}

/// A complete TEP architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TepArch {
    /// The calculation unit.
    pub calc: CalcUnit,
    /// Register-file size (0 = no register file).
    pub register_file: u8,
    /// On-chip RAM words.
    pub internal_ram_words: u16,
    /// External RAM words available.
    pub external_ram_words: u16,
    /// Storage class used for program globals (promoted by the
    /// optimiser).
    pub global_storage: StorageClass,
    /// Storage class used for routine frames (locals / virtual
    /// registers).
    pub frame_storage: StorageClass,
    /// Custom instructions synthesised for this application.
    pub custom_ops: Vec<CustomOp>,
    /// Maximum combinational depth (gate levels) allowed in one clock
    /// cycle — limits custom-op fusion so they "do not become the
    /// critical paths inside the TEP".
    pub max_custom_depth: u8,
    /// Whether the assembler/microcode peephole optimisations are applied
    /// (off reproduces the "unoptimized code" rows of Table 4).
    pub optimize_code: bool,
    /// Whether application-specific fused instructions are extracted
    /// from the assembler code (§3.3 custom operations). Part of the
    /// "optimized code" configuration in Table 4.
    pub custom_instructions: bool,
    /// Pipelined microinstruction fetch: the next microinstruction is
    /// fetched while the current one executes, saving one cycle per
    /// instruction on straight-line code (taken control transfers pay a
    /// one-cycle hazard bubble instead). This is the "pipelined versions
    /// of the PSCP architecture" extension the paper lists as future
    /// work (§6) — off in every Table 4 configuration.
    pub pipelined: bool,
}

impl TepArch {
    /// The minimal functional TEP: 8-bit bus, no M/D, no comparator, no
    /// register file, globals in external RAM, unoptimised code.
    pub fn minimal() -> Self {
        TepArch {
            calc: CalcUnit::minimal(),
            register_file: 0,
            internal_ram_words: 128,
            external_ram_words: 1024,
            global_storage: StorageClass::External,
            frame_storage: StorageClass::Internal,
            custom_ops: Vec::new(),
            max_custom_depth: 6,
            optimize_code: false,
            custom_instructions: false,
            pipelined: false,
        }
    }

    /// The paper's improved TEP: 16-bit M/D calculation unit, small
    /// register file, still unoptimised code (Table 4 row 2).
    pub fn md16_unoptimized() -> Self {
        TepArch {
            calc: CalcUnit::md16(),
            register_file: 4,
            internal_ram_words: 256,
            external_ram_words: 1024,
            global_storage: StorageClass::External,
            frame_storage: StorageClass::Internal,
            custom_ops: Vec::new(),
            max_custom_depth: 6,
            optimize_code: false,
            custom_instructions: false,
            pipelined: false,
        }
    }

    /// The optimised 16-bit M/D TEP (Table 4 row 3): peephole, storage
    /// promotion and custom-instruction extraction applied.
    pub fn md16_optimized() -> Self {
        TepArch {
            global_storage: StorageClass::Internal,
            frame_storage: StorageClass::Internal,
            // "additional registers" are part of the paper's final
            // solution (§5).
            register_file: 16,
            optimize_code: true,
            custom_instructions: true,
            ..TepArch::md16_unoptimized()
        }
    }

    /// Looks up a custom op by id.
    pub fn custom_op(&self, id: u16) -> Option<&CustomOp> {
        self.custom_ops.get(id as usize)
    }

    /// Number of bus-wide limbs needed for a `width`-bit operand.
    pub fn limbs(&self, width: u8) -> u32 {
        width.div_ceil(self.calc.width) as u32
    }
}

impl Default for TepArch {
    fn default() -> Self {
        TepArch::minimal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_lacks_muldiv() {
        let a = TepArch::minimal();
        assert!(!a.calc.supports(AluOp::Mul));
        assert!(a.calc.supports(AluOp::Add));
        assert!(!a.calc.supports(AluOp::Neg));
    }

    #[test]
    fn md16_supports_everything() {
        let a = TepArch::md16_optimized();
        for op in [AluOp::Mul, AluOp::Div, AluOp::Neg, AluOp::Shl, AluOp::Add] {
            assert!(a.calc.supports(op), "{op}");
        }
    }

    #[test]
    fn limb_counts() {
        let a = TepArch::minimal(); // 8-bit bus
        assert_eq!(a.limbs(8), 1);
        assert_eq!(a.limbs(9), 2);
        assert_eq!(a.limbs(16), 2);
        assert_eq!(a.limbs(32), 4);
        let b = TepArch::md16_unoptimized(); // 16-bit bus
        assert_eq!(b.limbs(16), 1);
        assert_eq!(b.limbs(32), 2);
    }

    #[test]
    fn storage_class_ordering_fastest_first() {
        assert!(StorageClass::Register < StorageClass::Internal);
        assert!(StorageClass::Internal < StorageClass::External);
    }
}
