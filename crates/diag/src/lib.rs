//! Shared spanned-diagnostics model for the PSCP frontends.
//!
//! Every pass of the statechart and action-language pipelines — and the
//! system-level binding in `pscp-core` — reports problems through one
//! [`Diagnostic`] shape: a severity, a stable code, a start/end
//! [`Span`], a message, and optional notes. Passes push into a
//! [`DiagnosticSink`] and *keep going* instead of returning on the
//! first error; the sink remembers emission order (the legacy fail-fast
//! adapters surface exactly the first emitted error) and
//! [`DiagnosticSink::finish`] produces the user-facing report:
//! span-sorted and deduplicated, so the same source always yields the
//! same list regardless of which pass found what first.
//!
//! The crate is dependency-free on purpose: the wire codec in
//! `pscp_core::serve::wire` encodes diagnostics canonically by hand, so
//! an in-process compile and a `Compile` frame over the wire produce
//! byte-identical diagnostic lists.

use std::fmt;

/// How bad a diagnostic is. `Error` blocks compilation; `Warning`
/// (lint findings) never does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Compilation fails when at least one of these is present.
    Error,
    /// Advisory only; the compile still produces a system.
    Warning,
}

impl Severity {
    /// Stable wire byte for this severity.
    pub fn code(self) -> u8 {
        match self {
            Severity::Error => 0,
            Severity::Warning => 1,
        }
    }

    /// Inverse of [`Severity::code`].
    pub fn from_code(c: u8) -> Option<Self> {
        match c {
            0 => Some(Severity::Error),
            1 => Some(Severity::Warning),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        })
    }
}

/// Which layer of the pipeline produced a diagnostic. This is the
/// provenance the one-report-per-compile contract depends on: chart,
/// action and system findings all land in the same list, still
/// attributable to their layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Source {
    /// Statechart text: parse, builder, validation, trigger resolution.
    Chart,
    /// Action-language text: lex, parse, semantic analysis.
    Action,
    /// System-level binding and TEP storage/codegen budgets.
    System,
}

impl Source {
    /// Stable wire byte for this provenance.
    pub fn code(self) -> u8 {
        match self {
            Source::Chart => 0,
            Source::Action => 1,
            Source::System => 2,
        }
    }

    /// Inverse of [`Source::code`].
    pub fn from_code(c: u8) -> Option<Self> {
        match c {
            0 => Some(Source::Chart),
            1 => Some(Source::Action),
            2 => Some(Source::System),
            _ => None,
        }
    }
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Source::Chart => "chart",
            Source::Action => "action",
            Source::System => "system",
        })
    }
}

/// A position in source text. Lines and columns are 1-based; `offset`
/// is the 0-based byte offset. Line 0 means "no position" (errors that
/// concern the chart as a whole, or system-level findings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pos {
    pub line: u32,
    pub column: u32,
    pub offset: u32,
}

impl Pos {
    pub fn new(line: u32, column: u32, offset: u32) -> Self {
        Pos { line, column, offset }
    }
}

/// A half-open source range `[start, end)`. A zero (default) span means
/// the diagnostic has no source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    pub start: Pos,
    pub end: Pos,
}

impl Span {
    /// A span with no position — sorts before every real span.
    pub const NONE: Span = Span {
        start: Pos { line: 0, column: 0, offset: 0 },
        end: Pos { line: 0, column: 0, offset: 0 },
    };

    pub fn new(start: Pos, end: Pos) -> Self {
        Span { start, end }
    }

    /// A zero-width span at one position.
    pub fn point(line: u32, column: u32, offset: u32) -> Self {
        let p = Pos::new(line, column, offset);
        Span { start: p, end: p }
    }

    /// Whether this span carries a real position.
    pub fn is_known(&self) -> bool {
        self.start.line != 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.start.line, self.start.column)
    }
}

/// One finding: severity, provenance, stable code, span, message and
/// optional notes. Codes are stable across releases (documented per
/// emitting crate): `SCxxx` for statechart, `ALxxx` for action-lang,
/// `PSxxx` for system-level binding/budget findings.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Diagnostic {
    pub severity: Severity,
    pub source: Source,
    pub code: String,
    pub span: Span,
    pub message: String,
    pub notes: Vec<String>,
}

impl Diagnostic {
    pub fn error(source: Source, code: &str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            source,
            code: code.to_string(),
            span: Span::NONE,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    pub fn warning(source: Source, code: &str, message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Warning, ..Diagnostic::error(source, code, message) }
    }

    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }

    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// The sort key used for the final report: position first, then
    /// severity (errors ahead of warnings at the same spot), then code
    /// and text so equal-position findings order deterministically.
    fn sort_key(&self) -> (Span, Severity, Source, &str, &str, &[String]) {
        (self.span, self.severity, self.source, &self.code, &self.message, &self.notes)
    }

    /// One-line rendering: `error[SC205] at 3:1: message`.
    pub fn render(&self) -> String {
        let mut s = if self.span.is_known() {
            format!("{}[{}] at {}: {}", self.severity, self.code, self.span, self.message)
        } else {
            format!("{}[{}]: {}", self.severity, self.code, self.message)
        };
        for note in &self.notes {
            s.push_str("\n  note: ");
            s.push_str(note);
        }
        s
    }

    /// Multi-line rendering with the offending source line and a caret
    /// underline from the span's start to its end (clamped to the
    /// line). Used by `pscp-serve check`.
    pub fn render_with_source(&self, source: &str) -> String {
        let mut out = self.render();
        if !self.span.is_known() {
            return out;
        }
        let line_no = self.span.start.line as usize;
        let Some(line) = source.lines().nth(line_no - 1) else {
            return out;
        };
        let start_col = self.span.start.column.max(1) as usize;
        let width = line.chars().count().max(start_col);
        let end_col = if self.span.end.line == self.span.start.line {
            (self.span.end.column as usize).clamp(start_col, width + 1)
        } else {
            width + 1
        };
        let carets = (end_col - start_col).max(1);
        out.push_str(&format!(
            "\n  {line_no:4} | {line}\n       | {}{}",
            " ".repeat(start_col - 1),
            "^".repeat(carets)
        ));
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Sorts a diagnostic list by span/severity/code/message and removes
/// exact duplicates. This is the canonical report order: every path to
/// the same findings (in-process, over the wire, repeated runs) yields
/// the same bytes.
pub fn sort_dedup(diags: &mut Vec<Diagnostic>) {
    diags.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    diags.dedup();
}

/// Accumulates diagnostics across passes.
///
/// Emission order is preserved (the legacy single-error adapters return
/// exactly the first emitted error); [`DiagnosticSink::finish`] hands
/// out the sorted, deduplicated report.
#[derive(Debug, Default, Clone)]
pub struct DiagnosticSink {
    diags: Vec<Diagnostic>,
    errors: usize,
    first_error: Option<usize>,
}

impl DiagnosticSink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, d: Diagnostic) {
        if d.severity == Severity::Error {
            if self.first_error.is_none() {
                self.first_error = Some(self.diags.len());
            }
            self.errors += 1;
        }
        self.diags.push(d);
    }

    /// Convenience: push an error with a span.
    pub fn error(&mut self, source: Source, code: &str, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::error(source, code, message).with_span(span));
    }

    /// Convenience: push a warning with a span.
    pub fn warning(&mut self, source: Source, code: &str, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::warning(source, code, message).with_span(span));
    }

    pub fn has_errors(&self) -> bool {
        self.errors > 0
    }

    pub fn error_count(&self) -> usize {
        self.errors
    }

    pub fn len(&self) -> usize {
        self.diags.len()
    }

    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// The first *error* in emission order — what the legacy fail-fast
    /// entry points would have returned.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.first_error.map(|i| &self.diags[i])
    }

    /// Diagnostics in emission order (pre-sort).
    pub fn emitted(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Consumes the sink and returns the canonical report: span-sorted,
    /// deduplicated.
    pub fn finish(self) -> Vec<Diagnostic> {
        let mut diags = self.diags;
        sort_dedup(&mut diags);
        diags
    }
}

/// Renders a full report (one diagnostic per block) with source
/// excerpts, followed by an `N error(s), M warning(s)` summary line.
pub fn render_report(diags: &[Diagnostic], source: &str) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render_with_source(source));
        out.push('\n');
    }
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    let warnings = diags.len() - errors;
    out.push_str(&format!("{errors} error(s), {warnings} warning(s)\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(code: &str, line: u32, col: u32) -> Diagnostic {
        Diagnostic::error(Source::Chart, code, format!("problem {code}"))
            .with_span(Span::point(line, col, 0))
    }

    #[test]
    fn sink_tracks_first_error_in_emission_order() {
        let mut sink = DiagnosticSink::new();
        sink.push(Diagnostic::warning(Source::Chart, "SC900", "lint"));
        sink.push(d("SC205", 9, 1));
        sink.push(d("SC202", 2, 3));
        assert_eq!(sink.first_error().unwrap().code, "SC205");
        assert!(sink.has_errors());
        assert_eq!(sink.error_count(), 2);
    }

    #[test]
    fn finish_sorts_by_span_and_dedups() {
        let mut sink = DiagnosticSink::new();
        sink.push(d("SC205", 9, 1));
        sink.push(d("SC202", 2, 3));
        sink.push(d("SC202", 2, 3));
        let report = sink.finish();
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].code, "SC202");
        assert_eq!(report[1].code, "SC205");
    }

    #[test]
    fn unknown_span_sorts_first_and_renders_bare() {
        let mut sink = DiagnosticSink::new();
        sink.push(d("SC205", 1, 1));
        sink.push(Diagnostic::error(Source::Chart, "SC201", "chart is empty"));
        let report = sink.finish();
        assert_eq!(report[0].code, "SC201");
        assert_eq!(report[0].render(), "error[SC201]: chart is empty");
    }

    #[test]
    fn caret_rendering_underlines_the_span() {
        let src = "chart C\nbadtoken here\n";
        let diag = Diagnostic::error(Source::Chart, "SC101", "unexpected token")
            .with_span(Span::new(Pos::new(2, 1, 8), Pos::new(2, 9, 16)));
        let rendered = diag.render_with_source(src);
        assert!(rendered.contains("badtoken here"));
        assert!(rendered.contains("^^^^^^^^"));
        assert!(!rendered.contains("^^^^^^^^^"));
    }

    #[test]
    fn errors_sort_before_warnings_at_the_same_span() {
        let mut sink = DiagnosticSink::new();
        sink.warning(Source::Chart, "SC900", Span::point(1, 1, 0), "lint");
        sink.error(Source::Chart, "SC205", Span::point(1, 1, 0), "missing default");
        let report = sink.finish();
        assert_eq!(report[0].severity, Severity::Error);
    }
}
