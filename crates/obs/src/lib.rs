//! Observability substrate for the PSCP workspace.
//!
//! Three layers, all designed around a single cheap runtime gate so the
//! PR-1 allocation-free hot path is untouched when observability is
//! off (the default):
//!
//! * [`metrics`] — a hand-rolled registry of atomic [`metrics::Counter`]s
//!   and fixed-bucket log2 [`metrics::Histogram`]s. Every mutator checks
//!   the global flag word first; disabled, a counter update is one
//!   relaxed atomic load and a predictable branch.
//! * [`trace`] — per-thread fixed-capacity ring-buffer span recording
//!   (no locks on the hot path) with a Chrome `trace_event` JSON
//!   exporter; the output loads in `chrome://tracing` / Perfetto with
//!   one lane per named worker thread.
//! * [`vcd`] — a deterministic Value Change Dump writer (no timestamps
//!   or tool banners in the header, so output is golden-file friendly).
//!   Capture is explicit opt-in: callers attach a probe, the flag word
//!   only decides whether drivers do so.
//!
//! Configuration comes from three environment variables, read once:
//!
//! * `PSCP_OBS` — comma-separated layer list: `metrics`, `trace`,
//!   `vcd`, or `all`. Unset or empty means everything is off.
//! * `PSCP_OBS_DIR` — directory where drivers place exported artifacts
//!   (trace JSON, metrics snapshots, VCD files). Default `target/obs`.
//! * `PSCP_OBS_SAMPLE` — span sampling period `N` for the high-rate
//!   per-cycle/per-scenario spans recorded via
//!   [`trace::span_sampled`]: only every `N`th index is recorded.
//!   Default 1 (record everything); larger values make always-on
//!   tracing viable on hot paths.
//!
//! Tests and benchmarks can override the environment with
//! [`set_flags`], which also lets one process measure the same workload
//! with observability off, metrics-only, and full tracing.

pub mod json;
pub mod metrics;
pub mod trace;
pub mod vcd;

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Environment variable selecting the enabled layers.
pub const OBS_ENV: &str = "PSCP_OBS";
/// Environment variable naming the artifact output directory.
pub const OBS_DIR_ENV: &str = "PSCP_OBS_DIR";
/// Environment variable setting the sampled-span period.
pub const OBS_SAMPLE_ENV: &str = "PSCP_OBS_SAMPLE";

/// Flag bit: atomic counters and histograms record.
pub const METRICS: u8 = 1 << 0;
/// Flag bit: span guards record into the per-thread rings.
pub const TRACE: u8 = 1 << 1;
/// Flag bit: drivers should attach waveform probes.
pub const VCD: u8 = 1 << 2;

/// All three layers at once.
pub const ALL: u8 = METRICS | TRACE | VCD;
/// Sentinel: the environment has not been consulted yet.
const UNINIT: u8 = u8::MAX;

static FLAGS: AtomicU8 = AtomicU8::new(UNINIT);

/// Parses a `PSCP_OBS`-style comma-separated layer list. Unknown
/// tokens are ignored; `all` enables every layer.
pub fn parse_flags(spec: &str) -> u8 {
    let mut f = 0;
    for tok in spec.split(',') {
        match tok.trim() {
            "metrics" => f |= METRICS,
            "trace" => f |= TRACE,
            "vcd" => f |= VCD,
            "all" => f |= ALL,
            _ => {}
        }
    }
    f
}

/// The flag word parsed from `PSCP_OBS` (whatever the process
/// environment says right now, ignoring [`set_flags`] overrides).
pub fn env_flags() -> u8 {
    std::env::var(OBS_ENV).map(|v| parse_flags(&v)).unwrap_or(0)
}

/// The active flag word. First call reads `PSCP_OBS`; later calls are
/// a single relaxed atomic load.
#[inline]
pub fn flags() -> u8 {
    let f = FLAGS.load(Ordering::Relaxed);
    if f != UNINIT {
        f
    } else {
        init_flags()
    }
}

#[cold]
fn init_flags() -> u8 {
    let parsed = env_flags();
    // First writer wins so a concurrent `set_flags` is not clobbered.
    match FLAGS.compare_exchange(UNINIT, parsed, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => parsed,
        Err(current) => current,
    }
}

/// Overrides the flag word for the whole process, bypassing the
/// environment. Intended for tests and benchmarks that toggle layers
/// mid-run.
pub fn set_flags(f: u8) {
    FLAGS.store(f & ALL, Ordering::Relaxed);
}

/// Sampling period for [`trace::span_sampled`]; 0 doubles as the
/// "environment not consulted yet" sentinel (a period of 0 would be
/// meaningless anyway).
static SAMPLE: AtomicU64 = AtomicU64::new(0);

/// The sampled-span period. First call reads `PSCP_OBS_SAMPLE` (unset,
/// empty, unparsable or zero → 1); later calls are a single relaxed
/// atomic load.
#[inline]
pub fn sample_every() -> u64 {
    let n = SAMPLE.load(Ordering::Relaxed);
    if n != 0 {
        n
    } else {
        init_sample()
    }
}

#[cold]
fn init_sample() -> u64 {
    let parsed = std::env::var(OBS_SAMPLE_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1);
    // First writer wins so a concurrent `set_sample` is not clobbered.
    match SAMPLE.compare_exchange(0, parsed, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => parsed,
        Err(current) => current,
    }
}

/// Overrides the sampled-span period for the whole process, bypassing
/// the environment (0 is clamped to 1). Intended for tests and
/// benchmarks.
pub fn set_sample(n: u64) {
    SAMPLE.store(n.max(1), Ordering::Relaxed);
}

/// Whether the metrics layer records.
#[inline]
pub fn metrics_enabled() -> bool {
    flags() & METRICS != 0
}

/// Whether the tracing layer records.
#[inline]
pub fn trace_enabled() -> bool {
    flags() & TRACE != 0
}

/// Whether drivers should capture waveforms.
#[inline]
pub fn vcd_enabled() -> bool {
    flags() & VCD != 0
}

/// The artifact output directory (`PSCP_OBS_DIR`, default
/// `target/obs`). Callers create it.
pub fn obs_dir() -> PathBuf {
    std::env::var_os(OBS_DIR_ENV)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/obs"))
}

/// A wall-clock stopwatch that only arms when metrics are enabled;
/// disarmed it costs one branch and reports zero.
#[derive(Debug)]
pub struct StopWatch(Option<std::time::Instant>);

impl StopWatch {
    /// Starts timing iff metrics are enabled.
    #[inline]
    pub fn start() -> Self {
        StopWatch(if metrics_enabled() { Some(std::time::Instant::now()) } else { None })
    }

    /// Nanoseconds since [`StopWatch::start`], or 0 when disarmed.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.0.map_or(0, |t| t.elapsed().as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags_tokens() {
        assert_eq!(parse_flags(""), 0);
        assert_eq!(parse_flags("metrics"), METRICS);
        assert_eq!(parse_flags("trace,vcd"), TRACE | VCD);
        assert_eq!(parse_flags(" metrics , trace "), METRICS | TRACE);
        assert_eq!(parse_flags("all"), ALL);
        assert_eq!(parse_flags("bogus,metrics"), METRICS);
    }

    #[test]
    fn obs_dir_defaults() {
        // The test environment never sets PSCP_OBS_DIR for unit tests.
        if std::env::var_os(OBS_DIR_ENV).is_none() {
            assert_eq!(obs_dir(), PathBuf::from("target/obs"));
        }
    }
}
