//! Per-thread span tracing with Chrome `trace_event` export.
//!
//! Recording is lock-free on the hot path: each thread owns a
//! fixed-capacity ring buffer ([`RING_CAPACITY`] completed spans;
//! oldest dropped on overflow) that is folded into a global collector
//! when the thread exits — scoped pool workers therefore flush
//! automatically — or when [`flush_current_thread`] /
//! [`export_chrome_trace`] runs on the thread.
//!
//! Threads are grouped into *lanes* by name ([`set_thread_lane`]):
//! lanes map to stable Chrome thread ids, so short-lived scoped
//! workers recreated across sequential batches merge into one
//! `chrome://tracing` / Perfetto row instead of leaking a lane per
//! spawn. (Same-named lanes must not overlap in time; the pool spawns
//! satisfy that because batches are sequential.)

use std::cell::RefCell;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::JsonWriter;

/// Completed spans retained per thread; overflow drops the oldest.
pub const RING_CAPACITY: usize = 65_536;

#[derive(Clone, Copy, Debug)]
struct SpanRecord {
    name: &'static str,
    start_ns: u64,
    dur_ns: u64,
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

#[inline]
fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Lane name → stable tid registry. The tid is the registration index.
static LANES: Mutex<Vec<String>> = Mutex::new(Vec::new());

fn lane_tid(name: &str) -> u64 {
    let mut lanes = LANES.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(i) = lanes.iter().position(|l| l == name) {
        i as u64
    } else {
        lanes.push(name.to_string());
        (lanes.len() - 1) as u64
    }
}

struct ThreadBuf {
    tid: u64,
    ring: Vec<SpanRecord>,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl ThreadBuf {
    fn push(&mut self, rec: SpanRecord) {
        if self.ring.len() < RING_CAPACITY {
            self.ring.push(rec);
        } else {
            self.ring[self.head] = rec;
            self.head = (self.head + 1) % RING_CAPACITY;
            self.dropped += 1;
        }
    }

    fn into_chronological(self) -> (u64, Vec<SpanRecord>, u64) {
        let mut records = self.ring;
        records.rotate_left(self.head);
        (self.tid, records, self.dropped)
    }
}

/// Flushes the thread's ring into the collector at thread exit.
struct BufHolder(RefCell<Option<ThreadBuf>>);

impl Drop for BufHolder {
    fn drop(&mut self) {
        if let Some(buf) = self.0.borrow_mut().take() {
            collect(buf);
        }
    }
}

thread_local! {
    static HOLDER: BufHolder = const { BufHolder(RefCell::new(None)) };
}

struct LaneEvents {
    tid: u64,
    records: Vec<SpanRecord>,
    dropped: u64,
}

static COLLECTED: Mutex<Vec<LaneEvents>> = Mutex::new(Vec::new());

fn collect(buf: ThreadBuf) {
    let (tid, records, dropped) = buf.into_chronological();
    if records.is_empty() && dropped == 0 {
        return;
    }
    let mut all = COLLECTED.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(lane) = all.iter_mut().find(|l| l.tid == tid) {
        lane.records.extend(records);
        lane.dropped += dropped;
    } else {
        all.push(LaneEvents { tid, records, dropped });
    }
}

fn next_anonymous_lane() -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    format!("thread-{}", SEQ.fetch_add(1, Ordering::Relaxed))
}

fn with_buf(f: impl FnOnce(&mut ThreadBuf)) {
    // `try_with` so spans during thread teardown are silently dropped.
    let _ = HOLDER.try_with(|h| {
        let mut slot = h.0.borrow_mut();
        let buf = slot.get_or_insert_with(|| ThreadBuf {
            tid: lane_tid(&next_anonymous_lane()),
            ring: Vec::new(),
            head: 0,
            dropped: 0,
        });
        f(buf);
    });
}

/// Names the calling thread's lane. Threads sharing a name share a
/// Chrome lane (tid). Call before recording spans.
pub fn set_thread_lane(name: &str) {
    let tid = lane_tid(name);
    let _ = HOLDER.try_with(|h| {
        let mut slot = h.0.borrow_mut();
        match slot.as_mut() {
            Some(buf) => buf.tid = tid,
            None => {
                *slot = Some(ThreadBuf { tid, ring: Vec::new(), head: 0, dropped: 0 });
            }
        }
    });
}

/// [`set_thread_lane`] with an indexed name (`"{prefix}-{index}"`).
pub fn set_thread_lane_indexed(prefix: &str, index: usize) {
    set_thread_lane(&format!("{prefix}-{index}"));
}

/// An in-flight span; records on drop. Disarmed (free) when tracing is
/// off at construction.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start_ns: u64,
    armed: bool,
}

/// Opens a span named `name`; the returned guard records the span into
/// the thread's ring when dropped. When tracing is disabled this is a
/// flag load and nothing else.
#[inline]
pub fn span(name: &'static str) -> Span {
    if crate::trace_enabled() {
        Span { name, start_ns: now_ns(), armed: true }
    } else {
        Span { name, start_ns: 0, armed: false }
    }
}

/// Opens a sampled span: records only when tracing is enabled *and*
/// `index` falls on the `PSCP_OBS_SAMPLE` period (every `N`th index,
/// anchored at 0). High-rate call sites — the per-configuration-cycle
/// machine step, the per-scenario pool span — pass a monotonically
/// increasing index so a period of `N` keeps exactly one span in `N`
/// and the rest cost a flag load.
#[inline]
pub fn span_sampled(name: &'static str, index: u64) -> Span {
    if crate::trace_enabled() && index.is_multiple_of(crate::sample_every()) {
        Span { name, start_ns: now_ns(), armed: true }
    } else {
        Span { name, start_ns: 0, armed: false }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            let end = now_ns();
            let rec =
                SpanRecord { name: self.name, start_ns: self.start_ns, dur_ns: end - self.start_ns };
            with_buf(|buf| buf.push(rec));
        }
    }
}

/// Opens a span guard: `let _s = obs::span!("compile");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name)
    };
}

/// Folds the calling thread's ring into the collector now. Threads
/// also flush at exit via TLS destructors, but a `thread::scope` join
/// can complete before those destructors run — a scoped worker whose
/// spans must be visible to the joining thread calls this explicitly
/// before its closure returns.
pub fn flush_current_thread() {
    let _ = HOLDER.try_with(|h| {
        if let Some(buf) = h.0.borrow_mut().take() {
            collect(buf);
        }
    });
}

/// Discards everything collected so far plus the calling thread's
/// ring. Lane tids persist so later traces keep stable lanes.
pub fn clear() {
    let _ = HOLDER.try_with(|h| *h.0.borrow_mut() = None);
    COLLECTED.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
}

/// Number of distinct lanes holding at least one collected span
/// (flushes the calling thread first).
pub fn collected_lane_count() -> usize {
    flush_current_thread();
    COLLECTED.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
}

/// Total spans collected across lanes (flushes the calling thread
/// first).
pub fn collected_span_count() -> usize {
    flush_current_thread();
    COLLECTED
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|l| l.records.len())
        .sum()
}

/// Renders everything collected as a Chrome `trace_event` JSON
/// document (object form, `traceEvents` array) that loads in
/// `chrome://tracing` and Perfetto. Spans become `"ph":"X"` complete
/// events; each lane gets a `thread_name` metadata record.
pub fn export_chrome_trace() -> String {
    flush_current_thread();
    let lanes = LANES.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
    let all = COLLECTED.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("displayTimeUnit").string("ms");
    w.key("traceEvents").begin_array();
    for lane in all.iter() {
        let name = lanes
            .get(lane.tid as usize)
            .map(String::as_str)
            .unwrap_or("unknown");
        w.begin_object();
        w.key("ph").string("M");
        w.key("name").string("thread_name");
        w.key("pid").u64(1);
        w.key("tid").u64(lane.tid);
        w.key("args").begin_object().key("name").string(name).end_object();
        w.end_object();
        for rec in &lane.records {
            w.begin_object();
            w.key("ph").string("X");
            w.key("name").string(rec.name);
            w.key("cat").string("pscp");
            w.key("pid").u64(1);
            w.key("tid").u64(lane.tid);
            // trace_event timestamps are microseconds (fractions allowed).
            w.key("ts").f64(rec.start_ns as f64 / 1000.0);
            w.key("dur").f64(rec.dur_ns as f64 / 1000.0);
            w.end_object();
        }
        if lane.dropped > 0 {
            // Surface ring overflow in the trace itself.
            w.begin_object();
            w.key("ph").string("I");
            w.key("name").string("spans_dropped");
            w.key("cat").string("pscp");
            w.key("pid").u64(1);
            w.key("tid").u64(lane.tid);
            w.key("ts").f64(0.0);
            w.key("s").string("t");
            w.key("args").begin_object().key("count").u64(lane.dropped).end_object();
            w.end_object();
        }
    }
    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
        crate::metrics::flag_lock()
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _g = flag_lock();
        let prev = crate::flags();
        crate::set_flags(0);
        clear();
        {
            let _s = span("idle");
        }
        assert_eq!(collected_span_count(), 0);
        crate::set_flags(prev);
    }

    #[test]
    fn sampled_spans_record_every_nth_index() {
        let _g = flag_lock();
        let prev = crate::flags();
        crate::set_flags(crate::TRACE);
        crate::set_sample(3);
        clear();
        set_thread_lane("sampler");
        for i in 0..10u64 {
            let _s = span_sampled("cycle", i);
        }
        flush_current_thread();
        // Indices 0, 3, 6, 9 fall on the period.
        assert_eq!(collected_span_count(), 4);

        // Period 1 records everything again.
        crate::set_sample(1);
        clear();
        set_thread_lane("sampler");
        for i in 0..5u64 {
            let _s = span_sampled("cycle", i);
        }
        flush_current_thread();
        assert_eq!(collected_span_count(), 5);

        // Tracing off beats any period.
        crate::set_flags(0);
        crate::set_sample(1);
        clear();
        {
            let _s = span_sampled("cycle", 0);
        }
        assert_eq!(collected_span_count(), 0);
        crate::set_flags(prev);
    }

    #[test]
    fn spans_from_named_threads_export_as_lanes() {
        let _g = flag_lock();
        let prev = crate::flags();
        crate::set_flags(crate::TRACE);
        clear();
        set_thread_lane("main");
        {
            let _s = crate::span!("outer");
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        std::thread::scope(|s| {
            for i in 0..2 {
                s.spawn(move || {
                    set_thread_lane_indexed("worker", i);
                    let _s = span("job");
                    std::thread::sleep(std::time::Duration::from_micros(50));
                });
            }
        });
        assert!(collected_lane_count() >= 3);
        let text = export_chrome_trace();
        let doc = json::parse(&text).expect("trace JSON parses");
        let events = doc.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let lanes = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .count();
        assert!(lanes >= 3, "expected >=3 thread_name records, got {lanes}");
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(|n| n.as_str()) == Some("job")));
        // Same-named lanes reuse the tid across scoped spawns.
        let w0 = lane_tid("worker-0");
        assert_eq!(lane_tid("worker-0"), w0);
        clear();
        crate::set_flags(prev);
    }
}
