//! A minimal, dependency-free JSON writer and reader.
//!
//! The vendored `serde_json` stand-in only round-trips types with
//! derive impls, so the observability exporters (metrics snapshots,
//! Chrome traces) and the `obs_report` pretty-printer carry their own
//! tiny JSON layer: [`JsonWriter`] emits with correct escaping and
//! comma placement, [`parse`] reads any well-formed document into a
//! [`JsonValue`] tree.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Scope {
    Object,
    Array,
}

/// An incremental JSON emitter handling commas and escaping; scopes
/// are explicit (`begin_object` / `end_object`, `begin_array` /
/// `end_array`) and keys are separate from values.
#[derive(Default)]
pub struct JsonWriter {
    buf: String,
    stack: Vec<(Scope, bool /* has at least one element */)>,
    pending_key: bool,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn before_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some((_, has_elem)) = self.stack.last_mut() {
            if *has_elem {
                self.buf.push(',');
            }
            *has_elem = true;
        }
    }

    /// Emits an object key; the next call must emit its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        if let Some((Scope::Object, has_elem)) = self.stack.last_mut() {
            if *has_elem {
                self.buf.push(',');
            }
            *has_elem = true;
        }
        escape_into(&mut self.buf, k);
        self.buf.push(':');
        self.pending_key = true;
        self
    }

    /// Opens `{`.
    pub fn begin_object(&mut self) -> &mut Self {
        self.before_value();
        self.buf.push('{');
        self.stack.push((Scope::Object, false));
        self
    }

    /// Closes `}`.
    pub fn end_object(&mut self) -> &mut Self {
        // The pop must happen outside the assertion — release builds
        // compile `debug_assert!` bodies out entirely.
        let closed = self.stack.pop();
        debug_assert_eq!(closed.map(|(s, _)| s), Some(Scope::Object));
        self.buf.push('}');
        self
    }

    /// Opens `[`.
    pub fn begin_array(&mut self) -> &mut Self {
        self.before_value();
        self.buf.push('[');
        self.stack.push((Scope::Array, false));
        self
    }

    /// Closes `]`.
    pub fn end_array(&mut self) -> &mut Self {
        let closed = self.stack.pop();
        debug_assert_eq!(closed.map(|(s, _)| s), Some(Scope::Array));
        self.buf.push(']');
        self
    }

    /// Emits a string value.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.before_value();
        escape_into(&mut self.buf, s);
        self
    }

    /// Emits an unsigned integer value.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.before_value();
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Emits a float value (`null` when not finite).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.before_value();
        if v.is_finite() {
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Emits a boolean value.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.before_value();
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Emits pre-rendered JSON verbatim as one value.
    pub fn raw(&mut self, json: &str) -> &mut Self {
        self.before_value();
        self.buf.push_str(json);
        self
    }

    /// The rendered document.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unclosed JSON scope");
        self.buf
    }
}

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements when this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The text when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, when numeric.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }
}

/// Parses a JSON document. Returns a message with a byte offset on
/// malformed input.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_emits_nested_document() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name").string("a \"b\"\n");
        w.key("n").u64(7);
        w.key("xs").begin_array().u64(1).u64(2).end_array();
        w.key("sub").begin_object().key("ok").bool(true).end_object();
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"a \"b\"\n","n":7,"xs":[1,2],"sub":{"ok":true}}"#
        );
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("s").string("tab\there");
        w.key("arr").begin_array().f64(1.5).bool(false).end_array();
        w.end_object();
        let doc = parse(&w.finish()).unwrap();
        assert_eq!(doc.get("s").and_then(JsonValue::as_str), Some("tab\there"));
        assert_eq!(doc.get("arr").and_then(JsonValue::as_array).map(<[_]>::len), Some(2));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
    }
}
