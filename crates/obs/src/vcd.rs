//! A deterministic Value Change Dump (VCD) writer.
//!
//! Output is golden-file friendly: no `$date`/`$version` banners, a
//! fixed `1 ns` timescale (one nanosecond per PSCP clock cycle), and
//! values emitted only when they change. Usage:
//!
//! 1. declare signals with [`VcdWriter::add_signal`] and set their
//!    initial values with [`VcdWriter::change`];
//! 2. per sample point call [`VcdWriter::set_time`] then
//!    [`VcdWriter::change`] for whatever moved;
//! 3. [`VcdWriter::finish`] returns the document.

use std::fmt::Write as _;

/// Handle of a declared signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalId(usize);

#[derive(Debug)]
struct Signal {
    name: String,
    width: u32,
    code: String,
    last: Option<u64>,
}

/// Incremental VCD document builder.
#[derive(Debug, Default)]
pub struct VcdWriter {
    signals: Vec<Signal>,
    out: String,
    header_done: bool,
    /// Time set by the caller; the `#t` line is emitted lazily with
    /// the first change at that time.
    pending_time: Option<u64>,
    time_written: bool,
}

/// Short identifier code for signal `i` over the printable ASCII
/// alphabet VCD uses (`!`..`~`).
fn id_code(mut i: usize) -> String {
    let mut code = String::new();
    loop {
        code.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            return code;
        }
        i -= 1;
    }
}

/// Replaces characters VCD identifiers cannot contain.
fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_whitespace() { '_' } else { c }).collect()
}

impl VcdWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a signal (before the first [`VcdWriter::set_time`]).
    /// `width` is in bits; 1-bit signals dump as scalars.
    pub fn add_signal(&mut self, name: &str, width: u32) -> SignalId {
        assert!(!self.header_done, "signals must be declared before the first set_time");
        let id = SignalId(self.signals.len());
        self.signals.push(Signal {
            name: sanitize(name),
            width: width.max(1),
            code: id_code(id.0),
            last: None,
        });
        id
    }

    fn write_header(&mut self) {
        self.out.push_str("$timescale 1 ns $end\n$scope module pscp $end\n");
        for s in &self.signals {
            let _ = writeln!(self.out, "$var wire {} {} {} $end", s.width, s.code, s.name);
        }
        self.out.push_str("$upscope $end\n$enddefinitions $end\n#0\n$dumpvars\n");
        for i in 0..self.signals.len() {
            let v = self.signals[i].last.unwrap_or(0);
            self.write_value(i, v);
        }
        self.out.push_str("$end\n");
        self.header_done = true;
    }

    fn write_value(&mut self, i: usize, v: u64) {
        let s = &self.signals[i];
        if s.width == 1 {
            let _ = writeln!(self.out, "{}{}", v & 1, s.code);
        } else {
            let _ = writeln!(self.out, "b{:b} {}", v, s.code);
        }
    }

    /// Starts a new sample point at absolute time `t` (monotonically
    /// increasing). Writes the header on first call; initial values
    /// recorded so far become the `$dumpvars` section.
    pub fn set_time(&mut self, t: u64) {
        if !self.header_done {
            self.write_header();
        }
        self.pending_time = Some(t);
        self.time_written = false;
    }

    /// Records `value` for `sig`. Before the first `set_time` this
    /// sets the signal's initial value; afterwards it emits a change
    /// line iff the value differs from the last one written.
    pub fn change(&mut self, sig: SignalId, value: u64) {
        let i = sig.0;
        let masked = if self.signals[i].width >= 64 {
            value
        } else {
            value & ((1u64 << self.signals[i].width) - 1)
        };
        if !self.header_done {
            self.signals[i].last = Some(masked);
            return;
        }
        if self.signals[i].last == Some(masked) {
            return;
        }
        if !self.time_written {
            if let Some(t) = self.pending_time {
                let _ = writeln!(self.out, "#{t}");
                self.time_written = true;
            }
        }
        self.signals[i].last = Some(masked);
        self.write_value(i, masked);
    }

    /// Renders the document (writes the header even if no sample point
    /// was ever recorded).
    pub fn finish(mut self) -> String {
        if !self.header_done {
            self.write_header();
        }
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_codes_are_printable_and_distinct() {
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!!");
        let codes: Vec<String> = (0..300).map(id_code).collect();
        let mut dedup = codes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len());
    }

    #[test]
    fn emits_only_changes_after_dumpvars() {
        let mut w = VcdWriter::new();
        let clk = w.add_signal("clk", 1);
        let bus = w.add_signal("bus", 8);
        w.change(clk, 0);
        w.change(bus, 5);
        w.set_time(10);
        w.change(clk, 1);
        w.change(bus, 5); // unchanged: no line
        w.set_time(20);
        w.change(clk, 1); // unchanged: no line, and no #20 marker
        w.set_time(30);
        w.change(clk, 0);
        w.change(bus, 0x2a);
        let text = w.finish();
        assert_eq!(
            text,
            "$timescale 1 ns $end\n\
             $scope module pscp $end\n\
             $var wire 1 ! clk $end\n\
             $var wire 8 \" bus $end\n\
             $upscope $end\n\
             $enddefinitions $end\n\
             #0\n\
             $dumpvars\n\
             0!\n\
             b101 \"\n\
             $end\n\
             #10\n\
             1!\n\
             #30\n\
             0!\n\
             b101010 \"\n"
        );
    }

    #[test]
    fn wide_values_mask_to_width() {
        let mut w = VcdWriter::new();
        let s = w.add_signal("nibble", 4);
        w.change(s, 0);
        w.set_time(1);
        w.change(s, 0xff);
        assert!(w.finish().contains("b1111 !"));
    }
}
