//! Gated atomic counters and log2 histograms.
//!
//! Every mutator first checks [`crate::metrics_enabled`]; with metrics
//! off the cost is one relaxed atomic load of the flag word and a
//! predictable branch — no stores, no allocation. The well-known
//! instruments below are plain statics (the registry is the explicit
//! list in [`snapshot`], not a lock-protected map), so recording never
//! takes a lock either.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crate::json::JsonWriter;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (usable in statics).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` when metrics are enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::metrics_enabled() {
            self.0.fetch_add(n, Relaxed);
        }
    }

    /// Adds 1 when metrics are enabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` unconditionally — for flushing locally batched counts
    /// that were themselves accumulated under the gate.
    #[inline]
    pub fn add_flushed(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }

    /// Zeroes the counter.
    pub fn reset(&self) {
        self.0.store(0, Relaxed);
    }
}

/// Bucket count of [`Histogram`]: one bucket for zero plus one per
/// power of two up to `u64::MAX`.
pub const HIST_BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram: bucket 0 holds the value 0, bucket
/// `i >= 1` holds values in `[2^(i-1), 2^i - 1]`; `u64::MAX` lands in
/// bucket 64. `sum` wraps on overflow.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A zeroed histogram (usable in statics).
    pub const fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }

    /// The bucket index a value falls into.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The `[lo, hi]` value range covered by bucket `i`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Records a sample when metrics are enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::metrics_enabled() {
            self.count.fetch_add(1, Relaxed);
            self.sum.fetch_add(v, Relaxed);
            self.buckets[Self::bucket_index(v)].fetch_add(1, Relaxed);
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Wrapping sum of samples recorded.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Sample count of bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Relaxed)
    }

    /// Zeroes every cell.
    pub fn reset(&self) {
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
    }
}

/// Slots of a [`PerWorker`] instrument; workers beyond the last slot
/// share it.
pub const WORKER_SLOTS: usize = 16;

/// A counter fanned out per pool worker.
#[derive(Debug)]
pub struct PerWorker(pub [Counter; WORKER_SLOTS]);

impl PerWorker {
    /// Zeroed slots (usable in statics).
    pub const fn new() -> Self {
        PerWorker([const { Counter::new() }; WORKER_SLOTS])
    }

    /// Adds `n` to `worker`'s slot (clamped to the last slot).
    #[inline]
    pub fn add(&self, worker: usize, n: u64) {
        self.0[worker.min(WORKER_SLOTS - 1)].add(n);
    }

    /// The value of `worker`'s slot.
    pub fn get(&self, worker: usize) -> u64 {
        self.0[worker.min(WORKER_SLOTS - 1)].get()
    }

    fn reset(&self) {
        self.0.iter().for_each(Counter::reset);
    }

    /// Slot values up to the last non-zero slot.
    pub fn values(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.0.iter().map(Counter::get).collect();
        while v.last() == Some(&0) {
            v.pop();
        }
        v
    }
}

impl Default for PerWorker {
    fn default() -> Self {
        Self::new()
    }
}

// --- Well-known instruments -------------------------------------------------

/// Optimiser memo lookups that found an entry.
pub static MEMO_HITS: Counter = Counter::new();
/// Optimiser memo lookups that missed.
pub static MEMO_MISSES: Counter = Counter::new();
/// Memo files that existed but were unreadable, corrupt, or
/// stale-versioned and were discarded for a cold start.
pub static MEMO_CORRUPT_RECOVERIES: Counter = Counter::new();

/// `TimingGraph::revalidate` invocations (including full fallbacks).
pub static REVALIDATE_CALLS: Counter = Counter::new();
/// Revalidations that fell back to a full evaluation (TEP count
/// changed).
pub static REVALIDATE_FULL_FALLBACKS: Counter = Counter::new();
/// Event cycles re-priced by dirty-set revalidation.
pub static CYCLES_REPRICED: Counter = Counter::new();
/// Event cycles copied unchanged from the base evaluation.
pub static CYCLES_COPIED: Counter = Counter::new();
/// Dirty-set size per incremental revalidation.
pub static REVALIDATE_DIRTY: Histogram = Histogram::new();

/// Improvement steps taken by `optimize()`.
pub static OPT_STEPS: Counter = Counter::new();
/// Candidates evaluated across all optimisation steps.
pub static OPT_CANDIDATES: Counter = Counter::new();
/// Staged candidate count per optimisation step.
pub static OPT_STEP_CANDIDATES: Histogram = Histogram::new();
/// Wall-clock nanoseconds spent compiling candidate systems.
pub static OPT_COMPILE_NS: Counter = Counter::new();
/// Wall-clock nanoseconds spent in timing validation of candidates.
pub static OPT_VALIDATE_NS: Counter = Counter::new();
/// Per-candidate compile wall-clock nanoseconds (one sample per
/// candidate system built during `optimize()`).
pub static OPT_CANDIDATE_COMPILE_NS: Histogram = Histogram::new();

/// Per-routine codegen cache lookups that served a reusable body.
pub static COMPILE_CACHE_HITS: Counter = Counter::new();
/// Per-routine codegen cache lookups that missed and compiled fresh.
pub static COMPILE_CACHE_MISSES: Counter = Counter::new();
/// Cached bodies that failed structural validation (stale or poisoned
/// entries) and were discarded before a fresh recompile.
pub static COMPILE_CACHE_INVALIDATIONS: Counter = Counter::new();

/// Configuration cycles stepped by `PscpMachine`.
pub static MACHINE_STEPS: Counter = Counter::new();
/// Transitions fired across all machine steps.
pub static MACHINE_TRANSITIONS: Counter = Counter::new();

/// `CompiledNet` arena evaluations.
pub static SLA_NET_EVALS: Counter = Counter::new();

/// Scenarios completed per `SimPool` worker.
pub static POOL_SCENARIOS: PerWorker = PerWorker::new();
/// Machine steps executed per `SimPool` worker.
pub static POOL_STEPS: PerWorker = PerWorker::new();
/// Queue polls that found no work, per `SimPool` worker.
pub static POOL_IDLE_POLLS: PerWorker = PerWorker::new();

/// Scenario-server connections accepted.
pub static SERVE_CONNECTIONS: Counter = Counter::new();
/// Scenario-server protocol errors (malformed frames, credit
/// violations, system mismatches) that ended a connection.
pub static SERVE_ERRORS: Counter = Counter::new();
/// Client-side submissions that had to wait for a credit frame.
pub static SERVE_CREDIT_STALLS: Counter = Counter::new();
/// `Compile` frames served (successful or not).
pub static SERVE_COMPILES: Counter = Counter::new();
/// `Compile` frames whose sources failed to compile (the `Diagnostics`
/// reply carried errors and no fingerprint).
pub static SERVE_COMPILE_ERRORS: Counter = Counter::new();
/// Frames received by the server, per connection slot.
pub static SERVE_FRAMES_IN: PerWorker = PerWorker::new();
/// Frames written by the server, per connection slot.
pub static SERVE_FRAMES_OUT: PerWorker = PerWorker::new();
/// Per-connection in-flight scenario count, sampled at each submit
/// receipt. Bounded by the negotiated credit window — the backpressure
/// tests pin every sample at or below it.
pub static SERVE_INFLIGHT: Histogram = Histogram::new();
/// Shared job-queue depth, sampled at each enqueue.
pub static SERVE_QUEUE_DEPTH: Histogram = Histogram::new();

/// Instruction-kind slots of [`TEP_INSTR`]. The order mirrors
/// `pscp_tep::isa::Instr` variant order (pinned by a test over there).
pub const TEP_KINDS: usize = 22;

/// Display names of the TEP instruction kinds, in slot order.
pub static TEP_KIND_NAMES: [&str; TEP_KINDS] = [
    "nop",
    "ldi",
    "load",
    "store",
    "load_indexed",
    "store_indexed",
    "tao",
    "alu",
    "cmp",
    "jump",
    "jump_if_zero",
    "jump_if_not_zero",
    "call",
    "return",
    "port_read",
    "port_write",
    "read_cond",
    "set_cond",
    "raise_event",
    "custom",
    "alu_mem",
    "halt",
];

/// Executed-instruction counts by kind, across every TEP machine.
pub static TEP_INSTR: [Counter; TEP_KINDS] = [const { Counter::new() }; TEP_KINDS];

/// Folds a machine-local kind-count array (accumulated under the
/// metrics gate) into the global [`TEP_INSTR`] counters.
pub fn flush_tep_instr(counts: &[u64]) {
    for (c, &n) in TEP_INSTR.iter().zip(counts) {
        if n > 0 {
            c.add_flushed(n);
        }
    }
}

// --- Snapshot ---------------------------------------------------------------

/// Point-in-time values of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    pub name: &'static str,
    pub count: u64,
    pub sum: u64,
    /// `(lo, hi, samples)` for each non-empty bucket.
    pub buckets: Vec<(u64, u64, u64)>,
}

/// Point-in-time values of every well-known instrument.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Scalar counters, in declaration order.
    pub counters: Vec<(&'static str, u64)>,
    /// Per-worker counters: values indexed by worker slot.
    pub per_worker: Vec<(&'static str, Vec<u64>)>,
    /// Executed TEP instructions by kind (non-zero kinds only).
    pub tep_instr: Vec<(&'static str, u64)>,
    /// Histograms (recorded ones only).
    pub histograms: Vec<HistogramSnapshot>,
}

const SCALARS: &[(&str, &Counter)] = &[
    ("memo_hits", &MEMO_HITS),
    ("memo_misses", &MEMO_MISSES),
    ("memo_corrupt_recoveries", &MEMO_CORRUPT_RECOVERIES),
    ("revalidate_calls", &REVALIDATE_CALLS),
    ("revalidate_full_fallbacks", &REVALIDATE_FULL_FALLBACKS),
    ("cycles_repriced", &CYCLES_REPRICED),
    ("cycles_copied", &CYCLES_COPIED),
    ("opt_steps", &OPT_STEPS),
    ("opt_candidates", &OPT_CANDIDATES),
    ("opt_compile_ns", &OPT_COMPILE_NS),
    ("opt_validate_ns", &OPT_VALIDATE_NS),
    ("compile_cache_hits", &COMPILE_CACHE_HITS),
    ("compile_cache_misses", &COMPILE_CACHE_MISSES),
    ("compile_cache_invalidations", &COMPILE_CACHE_INVALIDATIONS),
    ("machine_steps", &MACHINE_STEPS),
    ("machine_transitions", &MACHINE_TRANSITIONS),
    ("sla_net_evals", &SLA_NET_EVALS),
    ("serve_connections", &SERVE_CONNECTIONS),
    ("serve_errors", &SERVE_ERRORS),
    ("serve_credit_stalls", &SERVE_CREDIT_STALLS),
    ("serve_compiles", &SERVE_COMPILES),
    ("serve_compile_errors", &SERVE_COMPILE_ERRORS),
];

const PER_WORKER: &[(&str, &PerWorker)] = &[
    ("pool_scenarios", &POOL_SCENARIOS),
    ("pool_steps", &POOL_STEPS),
    ("pool_idle_polls", &POOL_IDLE_POLLS),
    ("serve_frames_in", &SERVE_FRAMES_IN),
    ("serve_frames_out", &SERVE_FRAMES_OUT),
];

const HISTOGRAMS: &[(&str, &Histogram)] = &[
    ("revalidate_dirty", &REVALIDATE_DIRTY),
    ("opt_step_candidates", &OPT_STEP_CANDIDATES),
    ("opt_candidate_compile_ns", &OPT_CANDIDATE_COMPILE_NS),
    ("serve_inflight", &SERVE_INFLIGHT),
    ("serve_queue_depth", &SERVE_QUEUE_DEPTH),
];

/// Captures the current value of every well-known instrument.
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        counters: SCALARS.iter().map(|&(n, c)| (n, c.get())).collect(),
        per_worker: PER_WORKER.iter().map(|&(n, w)| (n, w.values())).collect(),
        tep_instr: TEP_KIND_NAMES
            .iter()
            .zip(&TEP_INSTR)
            .filter(|(_, c)| c.get() > 0)
            .map(|(&n, c)| (n, c.get()))
            .collect(),
        histograms: HISTOGRAMS
            .iter()
            .filter(|(_, h)| h.count() > 0)
            .map(|&(name, h)| HistogramSnapshot {
                name,
                count: h.count(),
                sum: h.sum(),
                buckets: (0..HIST_BUCKETS)
                    .filter(|&i| h.bucket(i) > 0)
                    .map(|i| {
                        let (lo, hi) = Histogram::bucket_range(i);
                        (lo, hi, h.bucket(i))
                    })
                    .collect(),
            })
            .collect(),
    }
}

/// Zeroes every well-known instrument.
pub fn reset_all() {
    SCALARS.iter().for_each(|(_, c)| c.reset());
    PER_WORKER.iter().for_each(|(_, w)| w.reset());
    TEP_INSTR.iter().for_each(Counter::reset);
    HISTOGRAMS.iter().for_each(|(_, h)| h.reset());
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON document (the format
    /// `obs_report` and the bench tooling consume).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("counters").begin_object();
        for &(name, v) in &self.counters {
            w.key(name).u64(v);
        }
        w.end_object();
        w.key("per_worker").begin_object();
        for (name, values) in &self.per_worker {
            w.key(name).begin_array();
            for &v in values {
                w.u64(v);
            }
            w.end_array();
        }
        w.end_object();
        w.key("tep_instr").begin_object();
        for &(name, v) in &self.tep_instr {
            w.key(name).u64(v);
        }
        w.end_object();
        w.key("histograms").begin_object();
        for h in &self.histograms {
            w.key(h.name).begin_object();
            w.key("count").u64(h.count);
            w.key("sum").u64(h.sum);
            w.key("buckets").begin_array();
            for &(lo, hi, n) in &h.buckets {
                w.begin_object();
                w.key("lo").u64(lo);
                w.key("hi").u64(hi);
                w.key("n").u64(n);
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_object();
        w.end_object();
        w.finish()
    }
}

/// Serialises tests that flip the global flag word.
#[cfg(test)]
pub(crate) fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1 << 63), 64);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_ranges_tile_the_domain() {
        assert_eq!(Histogram::bucket_range(0), (0, 0));
        assert_eq!(Histogram::bucket_range(1), (1, 1));
        assert_eq!(Histogram::bucket_range(2), (2, 3));
        assert_eq!(Histogram::bucket_range(64), (1 << 63, u64::MAX));
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = Histogram::bucket_range(i);
            assert!(lo <= hi);
            assert_eq!(Histogram::bucket_index(lo), i);
            assert_eq!(Histogram::bucket_index(hi), i);
            if i + 1 < HIST_BUCKETS {
                assert_eq!(hi + 1, Histogram::bucket_range(i + 1).0);
            }
        }
    }

    #[test]
    fn histogram_records_extremes_when_enabled() {
        let _g = super::flag_lock();
        let prev = crate::flags();
        crate::set_flags(crate::METRICS);
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(64), 1);
        // Wrapping sum: 0 + u64::MAX.
        assert_eq!(h.sum(), u64::MAX);
        crate::set_flags(prev);
    }

    #[test]
    fn counter_is_inert_when_disabled() {
        let _g = super::flag_lock();
        let prev = crate::flags();
        crate::set_flags(0);
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 0);
        crate::set_flags(crate::METRICS);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        crate::set_flags(prev);
    }

    #[test]
    fn snapshot_json_parses_and_lists_counters() {
        let _g = super::flag_lock();
        let prev = crate::flags();
        crate::set_flags(crate::METRICS);
        reset_all();
        MEMO_HITS.add(3);
        REVALIDATE_DIRTY.record(5);
        flush_tep_instr(&{
            let mut a = [0u64; TEP_KINDS];
            a[1] = 9; // ldi
            a
        });
        let snap = snapshot();
        let doc = crate::json::parse(&snap.to_json()).unwrap();
        assert_eq!(
            doc.get("counters").and_then(|c| c.get("memo_hits")).and_then(|v| v.as_u64()),
            Some(3)
        );
        assert_eq!(
            doc.get("tep_instr").and_then(|c| c.get("ldi")).and_then(|v| v.as_u64()),
            Some(9)
        );
        assert!(doc.get("histograms").and_then(|h| h.get("revalidate_dirty")).is_some());
        reset_all();
        crate::set_flags(prev);
    }
}
