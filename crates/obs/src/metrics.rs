//! Gated atomic counters and log2 histograms.
//!
//! Every mutator first checks [`crate::metrics_enabled`]; with metrics
//! off the cost is one relaxed atomic load of the flag word and a
//! predictable branch — no stores, no allocation. The well-known
//! instruments below are plain statics (the registry is the explicit
//! list in [`snapshot`], not a lock-protected map), so recording never
//! takes a lock either.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crate::json::JsonWriter;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (usable in statics).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` when metrics are enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::metrics_enabled() {
            self.0.fetch_add(n, Relaxed);
        }
    }

    /// Adds 1 when metrics are enabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` unconditionally — for flushing locally batched counts
    /// that were themselves accumulated under the gate.
    #[inline]
    pub fn add_flushed(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }

    /// Zeroes the counter.
    pub fn reset(&self) {
        self.0.store(0, Relaxed);
    }
}

/// Bucket count of [`Histogram`]: one bucket for zero plus one per
/// power of two up to `u64::MAX`.
pub const HIST_BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram: bucket 0 holds the value 0, bucket
/// `i >= 1` holds values in `[2^(i-1), 2^i - 1]`; `u64::MAX` lands in
/// bucket 64. `sum` wraps on overflow.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A zeroed histogram (usable in statics).
    pub const fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }

    /// The bucket index a value falls into.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The `[lo, hi]` value range covered by bucket `i`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Records a sample when metrics are enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::metrics_enabled() {
            self.count.fetch_add(1, Relaxed);
            self.sum.fetch_add(v, Relaxed);
            self.buckets[Self::bucket_index(v)].fetch_add(1, Relaxed);
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Wrapping sum of samples recorded.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Sample count of bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Relaxed)
    }

    /// Zeroes every cell.
    pub fn reset(&self) {
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
    }
}

impl Histogram {
    /// Reads every cell of this histogram exactly once into a local
    /// image. Count is derived from the bucket pass — not the `count`
    /// atomic — so the image is always internally consistent even
    /// while writers are racing: a record landing between two reads
    /// can skew `sum` by one sample's value but can never make
    /// `count != Σ buckets`.
    fn consistent_cells(&self) -> ([u64; HIST_BUCKETS], u64, u64) {
        let mut cells = [0u64; HIST_BUCKETS];
        let mut count = 0u64;
        for (local, cell) in cells.iter_mut().zip(&self.buckets) {
            let n = cell.load(Relaxed);
            *local = n;
            count += n;
        }
        (cells, count, self.sum.load(Relaxed))
    }
}

/// Slots of a [`PerWorker`] instrument; workers beyond the last slot
/// share it.
pub const WORKER_SLOTS: usize = 16;

/// A counter fanned out per pool worker.
#[derive(Debug)]
pub struct PerWorker(pub [Counter; WORKER_SLOTS]);

impl PerWorker {
    /// Zeroed slots (usable in statics).
    pub const fn new() -> Self {
        PerWorker([const { Counter::new() }; WORKER_SLOTS])
    }

    /// Adds `n` to `worker`'s slot (clamped to the last slot).
    #[inline]
    pub fn add(&self, worker: usize, n: u64) {
        self.0[worker.min(WORKER_SLOTS - 1)].add(n);
    }

    /// The value of `worker`'s slot.
    pub fn get(&self, worker: usize) -> u64 {
        self.0[worker.min(WORKER_SLOTS - 1)].get()
    }

    fn reset(&self) {
        self.0.iter().for_each(Counter::reset);
    }

    /// Slot values up to the last non-zero slot.
    pub fn values(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.0.iter().map(Counter::get).collect();
        while v.last() == Some(&0) {
            v.pop();
        }
        v
    }
}

impl Default for PerWorker {
    fn default() -> Self {
        Self::new()
    }
}

/// A histogram fanned out per pool worker, merged into one
/// [`HistogramSnapshot`] at scrape time. Workers beyond the last slot
/// share it — same clamping as [`PerWorker`].
#[derive(Debug)]
pub struct PerWorkerHist(pub [Histogram; WORKER_SLOTS]);

impl PerWorkerHist {
    /// Zeroed slots (usable in statics).
    pub const fn new() -> Self {
        PerWorkerHist([const { Histogram::new() }; WORKER_SLOTS])
    }

    /// Records a sample into `worker`'s slot (clamped to the last
    /// slot) when metrics are enabled.
    #[inline]
    pub fn record(&self, worker: usize, v: u64) {
        self.0[worker.min(WORKER_SLOTS - 1)].record(v);
    }

    /// The slot a worker index lands in (clamped).
    pub fn slot(&self, worker: usize) -> &Histogram {
        &self.0[worker.min(WORKER_SLOTS - 1)]
    }

    /// Merges every slot into one snapshot with a consistent pass:
    /// each slot's cells are read exactly once into a local image
    /// before summing, and the merged count is derived from the bucket
    /// reads rather than the slots' own `count` atomics. Two workers
    /// sharing the clamped last slot are therefore counted exactly
    /// once, and a slot recording mid-merge can never produce
    /// `count != Σ buckets` in the result.
    pub fn merged(&self, name: &str) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        let mut count = 0u64;
        let mut sum = 0u64;
        for slot in &self.0 {
            let (cells, slot_count, slot_sum) = slot.consistent_cells();
            for (acc, n) in buckets.iter_mut().zip(cells) {
                *acc += n;
            }
            count += slot_count;
            sum = sum.wrapping_add(slot_sum);
        }
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum,
            buckets: (0..HIST_BUCKETS)
                .filter(|&i| buckets[i] > 0)
                .map(|i| {
                    let (lo, hi) = Histogram::bucket_range(i);
                    (lo, hi, buckets[i])
                })
                .collect(),
        }
    }

    fn reset(&self) {
        self.0.iter().for_each(Histogram::reset);
    }
}

impl Default for PerWorkerHist {
    fn default() -> Self {
        Self::new()
    }
}

// --- Well-known instruments -------------------------------------------------

/// Optimiser memo lookups that found an entry.
pub static MEMO_HITS: Counter = Counter::new();
/// Optimiser memo lookups that missed.
pub static MEMO_MISSES: Counter = Counter::new();
/// Memo files that existed but were unreadable, corrupt, or
/// stale-versioned and were discarded for a cold start.
pub static MEMO_CORRUPT_RECOVERIES: Counter = Counter::new();

/// `TimingGraph::revalidate` invocations (including full fallbacks).
pub static REVALIDATE_CALLS: Counter = Counter::new();
/// Revalidations that fell back to a full evaluation (TEP count
/// changed).
pub static REVALIDATE_FULL_FALLBACKS: Counter = Counter::new();
/// Event cycles re-priced by dirty-set revalidation.
pub static CYCLES_REPRICED: Counter = Counter::new();
/// Event cycles copied unchanged from the base evaluation.
pub static CYCLES_COPIED: Counter = Counter::new();
/// Dirty-set size per incremental revalidation.
pub static REVALIDATE_DIRTY: Histogram = Histogram::new();

/// Improvement steps taken by `optimize()`.
pub static OPT_STEPS: Counter = Counter::new();
/// Candidates evaluated across all optimisation steps.
pub static OPT_CANDIDATES: Counter = Counter::new();
/// Staged candidate count per optimisation step.
pub static OPT_STEP_CANDIDATES: Histogram = Histogram::new();
/// Wall-clock nanoseconds spent compiling candidate systems.
pub static OPT_COMPILE_NS: Counter = Counter::new();
/// Wall-clock nanoseconds spent in timing validation of candidates.
pub static OPT_VALIDATE_NS: Counter = Counter::new();
/// Per-candidate compile wall-clock nanoseconds (one sample per
/// candidate system built during `optimize()`).
pub static OPT_CANDIDATE_COMPILE_NS: Histogram = Histogram::new();

/// Per-routine codegen cache lookups that served a reusable body.
pub static COMPILE_CACHE_HITS: Counter = Counter::new();
/// Per-routine codegen cache lookups that missed and compiled fresh.
pub static COMPILE_CACHE_MISSES: Counter = Counter::new();
/// Cached bodies that failed structural validation (stale or poisoned
/// entries) and were discarded before a fresh recompile.
pub static COMPILE_CACHE_INVALIDATIONS: Counter = Counter::new();

/// Configuration cycles stepped by `PscpMachine`.
pub static MACHINE_STEPS: Counter = Counter::new();
/// Transitions fired across all machine steps.
pub static MACHINE_TRANSITIONS: Counter = Counter::new();

/// `CompiledNet` arena evaluations.
pub static SLA_NET_EVALS: Counter = Counter::new();

/// Scenarios completed per `SimPool` worker.
pub static POOL_SCENARIOS: PerWorker = PerWorker::new();
/// Machine steps executed per `SimPool` worker.
pub static POOL_STEPS: PerWorker = PerWorker::new();
/// Queue polls that found no work, per `SimPool` worker.
pub static POOL_IDLE_POLLS: PerWorker = PerWorker::new();

/// Scenario-server connections accepted.
pub static SERVE_CONNECTIONS: Counter = Counter::new();
/// Scenario-server protocol errors (malformed frames, credit
/// violations, system mismatches) that ended a connection.
pub static SERVE_ERRORS: Counter = Counter::new();
/// Client-side submissions that had to wait for a credit frame.
pub static SERVE_CREDIT_STALLS: Counter = Counter::new();
/// `Compile` frames served (successful or not).
pub static SERVE_COMPILES: Counter = Counter::new();
/// `Compile` frames whose sources failed to compile (the `Diagnostics`
/// reply carried errors and no fingerprint).
pub static SERVE_COMPILE_ERRORS: Counter = Counter::new();
/// Frames received by the server, per connection slot.
pub static SERVE_FRAMES_IN: PerWorker = PerWorker::new();
/// Frames written by the server, per connection slot.
pub static SERVE_FRAMES_OUT: PerWorker = PerWorker::new();
/// Per-connection in-flight scenario count, sampled at each submit
/// receipt. Bounded by the negotiated credit window — the backpressure
/// tests pin every sample at or below it.
pub static SERVE_INFLIGHT: Histogram = Histogram::new();
/// Shared job-queue depth, sampled at each enqueue.
pub static SERVE_QUEUE_DEPTH: Histogram = Histogram::new();
/// Nanoseconds a scenario sat in the shared queue before a shard
/// worker dequeued it, per worker slot.
pub static SERVE_QUEUE_NS: PerWorkerHist = PerWorkerHist::new();
/// Nanoseconds a shard worker spent simulating a scenario (gang lanes
/// share their rig's wall time), per worker slot.
pub static SERVE_SIM_NS: PerWorkerHist = PerWorkerHist::new();
/// Nanoseconds spent projecting and encoding one outcome frame.
pub static SERVE_ENCODE_NS: Histogram = Histogram::new();
/// `Stats` frames served (remote telemetry scrapes).
pub static SERVE_STATS_SCRAPES: Counter = Counter::new();

/// `Explore` frames served (wire-driven explorations).
pub static SERVE_EXPLORES: Counter = Counter::new();

/// State-space explorations run (`pscp_core::explore`).
pub static EXPLORE_RUNS: Counter = Counter::new();
/// Distinct states discovered across all explorations.
pub static EXPLORE_STATES: Counter = Counter::new();
/// Transitions (state, symbol) → state expanded.
pub static EXPLORE_EDGES: Counter = Counter::new();
/// Successor states already in the visited set (dedup hits).
pub static EXPLORE_DEDUP_HITS: Counter = Counter::new();
/// Deadlocked states reported.
pub static EXPLORE_DEADLOCKS: Counter = Counter::new();
/// Safety-predicate violations reported.
pub static EXPLORE_VIOLATIONS: Counter = Counter::new();
/// BFS frontier width at each depth layer.
pub static EXPLORE_FRONTIER: Histogram = Histogram::new();
/// Final BFS depth of each exploration.
pub static EXPLORE_DEPTH: Histogram = Histogram::new();
/// Wall nanoseconds per exploration run.
pub static EXPLORE_RUN_NS: Histogram = Histogram::new();

/// Instruction-kind slots of [`TEP_INSTR`]. The order mirrors
/// `pscp_tep::isa::Instr` variant order (pinned by a test over there).
pub const TEP_KINDS: usize = 22;

/// Display names of the TEP instruction kinds, in slot order.
pub static TEP_KIND_NAMES: [&str; TEP_KINDS] = [
    "nop",
    "ldi",
    "load",
    "store",
    "load_indexed",
    "store_indexed",
    "tao",
    "alu",
    "cmp",
    "jump",
    "jump_if_zero",
    "jump_if_not_zero",
    "call",
    "return",
    "port_read",
    "port_write",
    "read_cond",
    "set_cond",
    "raise_event",
    "custom",
    "alu_mem",
    "halt",
];

/// Executed-instruction counts by kind, across every TEP machine.
pub static TEP_INSTR: [Counter; TEP_KINDS] = [const { Counter::new() }; TEP_KINDS];

/// Folds a machine-local kind-count array (accumulated under the
/// metrics gate) into the global [`TEP_INSTR`] counters.
pub fn flush_tep_instr(counts: &[u64]) {
    for (c, &n) in TEP_INSTR.iter().zip(counts) {
        if n > 0 {
            c.add_flushed(n);
        }
    }
}

// --- Snapshot ---------------------------------------------------------------

/// Point-in-time values of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    /// `(lo, hi, samples)` for each non-empty bucket.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl HistogramSnapshot {
    /// An upper-bound estimate of the `q`-quantile (0.0..=1.0): the
    /// high edge of the first bucket whose cumulative count reaches
    /// `q * count`. Log2 buckets make this exact to within one power
    /// of two — plenty for a p50/p99 console readout.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for &(_, hi, n) in &self.buckets {
            cum += n;
            if cum >= target {
                return hi;
            }
        }
        self.buckets.last().map_or(0, |&(_, hi, _)| hi)
    }

    /// Bucket-wise difference against an earlier scrape of the same
    /// histogram: monotonic counts subtract saturating, the wrapping
    /// sum subtracts wrapping, buckets absent earlier pass through.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let earlier_n = |lo: u64| {
            earlier.buckets.iter().find(|&&(l, _, _)| l == lo).map_or(0, |&(_, _, n)| n)
        };
        HistogramSnapshot {
            name: self.name.clone(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.wrapping_sub(earlier.sum),
            buckets: self
                .buckets
                .iter()
                .map(|&(lo, hi, n)| (lo, hi, n.saturating_sub(earlier_n(lo))))
                .filter(|&(_, _, n)| n > 0)
                .collect(),
        }
    }
}

/// Point-in-time values of every well-known instrument. Names are
/// owned strings so a snapshot decoded off the wire (the `Stats`
/// frame) is the same type — and byte-identically re-encodable — as
/// one taken in-process.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Scalar counters, in declaration order.
    pub counters: Vec<(String, u64)>,
    /// Per-worker counters: values indexed by worker slot.
    pub per_worker: Vec<(String, Vec<u64>)>,
    /// Executed TEP instructions by kind (non-zero kinds only).
    pub tep_instr: Vec<(String, u64)>,
    /// Histograms (recorded ones only).
    pub histograms: Vec<HistogramSnapshot>,
}

const SCALARS: &[(&str, &Counter)] = &[
    ("memo_hits", &MEMO_HITS),
    ("memo_misses", &MEMO_MISSES),
    ("memo_corrupt_recoveries", &MEMO_CORRUPT_RECOVERIES),
    ("revalidate_calls", &REVALIDATE_CALLS),
    ("revalidate_full_fallbacks", &REVALIDATE_FULL_FALLBACKS),
    ("cycles_repriced", &CYCLES_REPRICED),
    ("cycles_copied", &CYCLES_COPIED),
    ("opt_steps", &OPT_STEPS),
    ("opt_candidates", &OPT_CANDIDATES),
    ("opt_compile_ns", &OPT_COMPILE_NS),
    ("opt_validate_ns", &OPT_VALIDATE_NS),
    ("compile_cache_hits", &COMPILE_CACHE_HITS),
    ("compile_cache_misses", &COMPILE_CACHE_MISSES),
    ("compile_cache_invalidations", &COMPILE_CACHE_INVALIDATIONS),
    ("machine_steps", &MACHINE_STEPS),
    ("machine_transitions", &MACHINE_TRANSITIONS),
    ("sla_net_evals", &SLA_NET_EVALS),
    ("serve_connections", &SERVE_CONNECTIONS),
    ("serve_errors", &SERVE_ERRORS),
    ("serve_credit_stalls", &SERVE_CREDIT_STALLS),
    ("serve_compiles", &SERVE_COMPILES),
    ("serve_compile_errors", &SERVE_COMPILE_ERRORS),
    ("serve_stats_scrapes", &SERVE_STATS_SCRAPES),
    ("serve_explores", &SERVE_EXPLORES),
    ("explore_runs", &EXPLORE_RUNS),
    ("explore_states", &EXPLORE_STATES),
    ("explore_edges", &EXPLORE_EDGES),
    ("explore_dedup_hits", &EXPLORE_DEDUP_HITS),
    ("explore_deadlocks", &EXPLORE_DEADLOCKS),
    ("explore_violations", &EXPLORE_VIOLATIONS),
];

const PER_WORKER: &[(&str, &PerWorker)] = &[
    ("pool_scenarios", &POOL_SCENARIOS),
    ("pool_steps", &POOL_STEPS),
    ("pool_idle_polls", &POOL_IDLE_POLLS),
    ("serve_frames_in", &SERVE_FRAMES_IN),
    ("serve_frames_out", &SERVE_FRAMES_OUT),
];

const HISTOGRAMS: &[(&str, &Histogram)] = &[
    ("revalidate_dirty", &REVALIDATE_DIRTY),
    ("opt_step_candidates", &OPT_STEP_CANDIDATES),
    ("opt_candidate_compile_ns", &OPT_CANDIDATE_COMPILE_NS),
    ("serve_inflight", &SERVE_INFLIGHT),
    ("serve_queue_depth", &SERVE_QUEUE_DEPTH),
    ("serve_encode_ns", &SERVE_ENCODE_NS),
    ("explore_frontier", &EXPLORE_FRONTIER),
    ("explore_depth", &EXPLORE_DEPTH),
    ("explore_run_ns", &EXPLORE_RUN_NS),
];

const PER_WORKER_HISTS: &[(&str, &PerWorkerHist)] = &[
    ("serve_queue_ns", &SERVE_QUEUE_NS),
    ("serve_sim_ns", &SERVE_SIM_NS),
];

/// Captures the current value of every well-known instrument.
pub fn snapshot() -> MetricsSnapshot {
    let mut histograms: Vec<HistogramSnapshot> = HISTOGRAMS
        .iter()
        .filter(|(_, h)| h.count() > 0)
        .map(|&(name, h)| {
            // Consistent pass: derive count from one bucket read per
            // cell, same contract as `PerWorkerHist::merged`.
            let (cells, count, sum) = h.consistent_cells();
            HistogramSnapshot {
                name: name.to_string(),
                count,
                sum,
                buckets: (0..HIST_BUCKETS)
                    .filter(|&i| cells[i] > 0)
                    .map(|i| {
                        let (lo, hi) = Histogram::bucket_range(i);
                        (lo, hi, cells[i])
                    })
                    .collect(),
            }
        })
        .collect();
    histograms.extend(
        PER_WORKER_HISTS
            .iter()
            .map(|&(name, h)| h.merged(name))
            .filter(|h| h.count > 0),
    );
    MetricsSnapshot {
        counters: SCALARS.iter().map(|&(n, c)| (n.to_string(), c.get())).collect(),
        per_worker: PER_WORKER.iter().map(|&(n, w)| (n.to_string(), w.values())).collect(),
        tep_instr: TEP_KIND_NAMES
            .iter()
            .zip(&TEP_INSTR)
            .filter(|(_, c)| c.get() > 0)
            .map(|(&n, c)| (n.to_string(), c.get()))
            .collect(),
        histograms,
    }
}

/// Zeroes every well-known instrument.
pub fn reset_all() {
    SCALARS.iter().for_each(|(_, c)| c.reset());
    PER_WORKER.iter().for_each(|(_, w)| w.reset());
    TEP_INSTR.iter().for_each(Counter::reset);
    HISTOGRAMS.iter().for_each(|(_, h)| h.reset());
    PER_WORKER_HISTS.iter().for_each(|(_, h)| h.reset());
}

impl MetricsSnapshot {
    /// The difference between this snapshot and an `earlier` one:
    /// monotonic counters subtract saturating, per-worker slots
    /// element-wise, histograms bucket-wise
    /// ([`HistogramSnapshot::delta`]). Instruments absent from the
    /// earlier snapshot pass through whole, so two scrapes of a live
    /// server compose directly into rates (`delta / dt`).
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let scalar = |v: &[(String, u64)], name: &str| {
            v.iter().find(|(n, _)| n == name).map_or(0, |&(_, x)| x)
        };
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(n, v)| (n.clone(), v.saturating_sub(scalar(&earlier.counters, n))))
                .collect(),
            per_worker: self
                .per_worker
                .iter()
                .map(|(n, values)| {
                    let base = earlier.per_worker.iter().find(|(en, _)| en == n);
                    let diffed = values
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| {
                            let b = base.and_then(|(_, bv)| bv.get(i)).copied().unwrap_or(0);
                            v.saturating_sub(b)
                        })
                        .collect();
                    (n.clone(), diffed)
                })
                .collect(),
            tep_instr: self
                .tep_instr
                .iter()
                .map(|(n, v)| (n.clone(), v.saturating_sub(scalar(&earlier.tep_instr, n))))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|h| match earlier.histograms.iter().find(|eh| eh.name == h.name) {
                    Some(eh) => h.delta(eh),
                    None => h.clone(),
                })
                .filter(|h| h.count > 0)
                .collect(),
        }
    }

    /// Looks up a scalar counter by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |&(_, v)| v)
    }

    /// Looks up a per-worker counter's slot values by name.
    pub fn per_worker_values(&self, name: &str) -> &[u64] {
        self.per_worker
            .iter()
            .find(|(n, _)| n == name)
            .map_or(&[][..], |(_, v)| v.as_slice())
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Renders the snapshot as a JSON document (the format
    /// `obs_report` and the bench tooling consume).
    pub fn to_json(&self) -> String {
        self.to_json_with(&[])
    }

    /// [`to_json`](Self::to_json) plus a `gauges` object for
    /// point-in-time values that are not monotonic counters (the
    /// serve-level uptime/connection/queue gauges a wire scrape
    /// carries). The document is versioned: `version` 2 is the first
    /// shape with the key (the PR-4 shape without it reads as v1).
    pub fn to_json_with(&self, gauges: &[(&str, u64)]) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("version").u64(2);
        if !gauges.is_empty() {
            w.key("gauges").begin_object();
            for &(name, v) in gauges {
                w.key(name).u64(v);
            }
            w.end_object();
        }
        w.key("counters").begin_object();
        for (name, v) in &self.counters {
            w.key(name).u64(*v);
        }
        w.end_object();
        w.key("per_worker").begin_object();
        for (name, values) in &self.per_worker {
            w.key(name).begin_array();
            for &v in values {
                w.u64(v);
            }
            w.end_array();
        }
        w.end_object();
        w.key("tep_instr").begin_object();
        for (name, v) in &self.tep_instr {
            w.key(name).u64(*v);
        }
        w.end_object();
        w.key("histograms").begin_object();
        for h in &self.histograms {
            w.key(&h.name).begin_object();
            w.key("count").u64(h.count);
            w.key("sum").u64(h.sum);
            w.key("buckets").begin_array();
            for &(lo, hi, n) in &h.buckets {
                w.begin_object();
                w.key("lo").u64(lo);
                w.key("hi").u64(hi);
                w.key("n").u64(n);
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_object();
        w.end_object();
        w.finish()
    }
}

/// Serialises tests that flip the global flag word.
#[cfg(test)]
pub(crate) fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1 << 63), 64);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_ranges_tile_the_domain() {
        assert_eq!(Histogram::bucket_range(0), (0, 0));
        assert_eq!(Histogram::bucket_range(1), (1, 1));
        assert_eq!(Histogram::bucket_range(2), (2, 3));
        assert_eq!(Histogram::bucket_range(64), (1 << 63, u64::MAX));
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = Histogram::bucket_range(i);
            assert!(lo <= hi);
            assert_eq!(Histogram::bucket_index(lo), i);
            assert_eq!(Histogram::bucket_index(hi), i);
            if i + 1 < HIST_BUCKETS {
                assert_eq!(hi + 1, Histogram::bucket_range(i + 1).0);
            }
        }
    }

    #[test]
    fn histogram_records_extremes_when_enabled() {
        let _g = super::flag_lock();
        let prev = crate::flags();
        crate::set_flags(crate::METRICS);
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(64), 1);
        // Wrapping sum: 0 + u64::MAX.
        assert_eq!(h.sum(), u64::MAX);
        crate::set_flags(prev);
    }

    #[test]
    fn counter_is_inert_when_disabled() {
        let _g = super::flag_lock();
        let prev = crate::flags();
        crate::set_flags(0);
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 0);
        crate::set_flags(crate::METRICS);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        crate::set_flags(prev);
    }

    #[test]
    fn per_worker_hist_merge_counts_each_slot_once() {
        let _g = super::flag_lock();
        let prev = crate::flags();
        crate::set_flags(crate::METRICS);
        let h = PerWorkerHist::new();
        h.record(0, 1);
        h.record(3, 100);
        // Worker 15 and worker 20 both clamp into the last slot — the
        // merge must count that slot exactly once, never per worker.
        h.record(WORKER_SLOTS - 1, 7);
        h.record(20, 7);
        let m = h.merged("t");
        assert_eq!(m.count, 4);
        assert_eq!(m.buckets.iter().map(|&(_, _, n)| n).sum::<u64>(), m.count);
        assert_eq!(m.sum, 1 + 100 + 7 + 7);
        let shared = m.buckets.iter().find(|&&(lo, hi, _)| lo <= 7 && 7 <= hi).unwrap();
        assert_eq!(shared.2, 2, "clamped workers share one slot, counted once");
        crate::set_flags(prev);
    }

    #[test]
    fn per_worker_hist_merge_count_matches_buckets_under_races() {
        // The consistency contract: even with writers racing the
        // merge, count always equals the sum of the merged buckets.
        let _g = super::flag_lock();
        let prev = crate::flags();
        crate::set_flags(crate::METRICS);
        static H: PerWorkerHist = PerWorkerHist::new();
        H.reset();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for w in 0..4usize {
                let stop = &stop;
                s.spawn(move || {
                    let mut v = 1u64;
                    while !stop.load(Relaxed) {
                        H.record(w, v);
                        v = v.wrapping_mul(7).wrapping_add(1) % 4096;
                    }
                });
            }
            for _ in 0..200 {
                let m = H.merged("race");
                assert_eq!(
                    m.buckets.iter().map(|&(_, _, n)| n).sum::<u64>(),
                    m.count,
                    "merged count must equal the bucket sum"
                );
            }
            stop.store(true, Relaxed);
        });
        H.reset();
        crate::set_flags(prev);
    }

    #[test]
    fn snapshot_delta_composes_into_rates() {
        let earlier = MetricsSnapshot {
            counters: vec![("machine_steps".into(), 100), ("serve_errors".into(), 1)],
            per_worker: vec![("pool_scenarios".into(), vec![10, 20])],
            tep_instr: vec![("ldi".into(), 50)],
            histograms: vec![HistogramSnapshot {
                name: "serve_sim_ns".into(),
                count: 3,
                sum: 12,
                buckets: vec![(2, 3, 2), (4, 7, 1)],
            }],
        };
        let later = MetricsSnapshot {
            counters: vec![("machine_steps".into(), 250), ("serve_errors".into(), 1)],
            // A later snapshot can expose a slot the earlier one
            // trimmed (values() drops trailing zeros).
            per_worker: vec![("pool_scenarios".into(), vec![15, 20, 5])],
            tep_instr: vec![("ldi".into(), 80), ("alu".into(), 4)],
            histograms: vec![HistogramSnapshot {
                name: "serve_sim_ns".into(),
                count: 5,
                sum: 40,
                buckets: vec![(2, 3, 2), (4, 7, 2), (8, 15, 1)],
            }],
        };
        let d = later.delta(&earlier);
        assert_eq!(d.counter("machine_steps"), 150);
        assert_eq!(d.counter("serve_errors"), 0);
        assert_eq!(d.per_worker_values("pool_scenarios"), &[5, 0, 5]);
        assert_eq!(d.tep_instr, vec![("ldi".to_string(), 30), ("alu".to_string(), 4)]);
        let h = d.histogram("serve_sim_ns").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 28);
        assert_eq!(h.buckets, vec![(4, 7, 1), (8, 15, 1)]);
        // Self-delta is empty: counters zero, histograms dropped.
        let zero = later.delta(&later);
        assert_eq!(zero.counter("machine_steps"), 0);
        assert!(zero.histograms.is_empty());
    }

    #[test]
    fn quantile_walks_log2_buckets() {
        let h = HistogramSnapshot {
            name: "q".into(),
            count: 100,
            sum: 0,
            buckets: vec![(1, 1, 50), (2, 3, 40), (1024, 2047, 10)],
        };
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(0.9), 3);
        assert_eq!(h.quantile(0.99), 2047);
        assert_eq!(h.quantile(1.0), 2047);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn snapshot_json_parses_and_lists_counters() {
        let _g = super::flag_lock();
        let prev = crate::flags();
        crate::set_flags(crate::METRICS);
        reset_all();
        MEMO_HITS.add(3);
        REVALIDATE_DIRTY.record(5);
        flush_tep_instr(&{
            let mut a = [0u64; TEP_KINDS];
            a[1] = 9; // ldi
            a
        });
        let snap = snapshot();
        let doc = crate::json::parse(&snap.to_json()).unwrap();
        assert_eq!(
            doc.get("counters").and_then(|c| c.get("memo_hits")).and_then(|v| v.as_u64()),
            Some(3)
        );
        assert_eq!(
            doc.get("tep_instr").and_then(|c| c.get("ldi")).and_then(|v| v.as_u64()),
            Some(9)
        );
        assert!(doc.get("histograms").and_then(|h| h.get("revalidate_dirty")).is_some());
        reset_all();
        crate::set_flags(prev);
    }
}
