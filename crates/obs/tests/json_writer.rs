//! Regression tests for `JsonWriter` scope handling. The original
//! `end_object`/`end_array` popped the scope stack *inside* a
//! `debug_assert_eq!`, so release builds never popped and every
//! element after a closed container lost its comma. Run under
//! `--release` too (tier-1 does) to keep that from coming back.

use pscp_obs::json::{parse, JsonWriter};

#[test]
fn commas_survive_closed_containers() {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("a").begin_array();
    w.u64(1).u64(2);
    w.end_array();
    w.key("b").begin_object();
    w.key("x").u64(3);
    w.end_object();
    w.key("c").u64(4);
    w.end_object();
    assert_eq!(w.finish(), r#"{"a":[1,2],"b":{"x":3},"c":4}"#);
}

#[test]
fn nested_arrays_of_objects_round_trip() {
    let mut w = JsonWriter::new();
    w.begin_array();
    for i in 0..3u64 {
        w.begin_object();
        w.key("i").u64(i);
        w.key("tags").begin_array();
        w.string("a").string("b");
        w.end_array();
        w.end_object();
    }
    w.end_array();
    let text = w.finish();
    let doc = parse(&text).expect("round-trips through own parser");
    let items = doc.as_array().unwrap();
    assert_eq!(items.len(), 3);
    assert_eq!(items[2].get("i").and_then(|v| v.as_u64()), Some(2));
}
