//! The extended-statechart data model.
//!
//! A [`Chart`] owns arenas of [`State`]s and [`Transition`]s plus the
//! declarations of [`EventDecl`]s, [`ConditionDecl`]s and
//! [`DataPortDecl`]s. States reference each other through copyable index
//! handles ([`StateId`]); this keeps the whole chart `Clone + Send` and
//! makes graph algorithms cheap.

use crate::trigger::Expr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Handle to a [`State`] inside its owning [`Chart`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// Index into [`Chart::states`] iteration order.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a handle from a raw index (for deserialised data).
    pub fn from_index(i: usize) -> Self {
        StateId(i as u32)
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Handle to a [`Transition`] inside its owning [`Chart`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TransitionId(pub(crate) u32);

impl TransitionId {
    /// Index into [`Chart::transitions`] iteration order.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a handle from a raw index.
    pub fn from_index(i: usize) -> Self {
        TransitionId(i as u32)
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Handle to an [`EventDecl`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventId(pub(crate) u32);

impl EventId {
    /// Index into [`Chart::events`].
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a handle from a raw index.
    pub fn from_index(i: usize) -> Self {
        EventId(i as u32)
    }
}

/// Handle to a [`ConditionDecl`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConditionId(pub(crate) u32);

impl ConditionId {
    /// Index into [`Chart::conditions`].
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a handle from a raw index.
    pub fn from_index(i: usize) -> Self {
        ConditionId(i as u32)
    }
}

/// The three flavours of a state in a statechart hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StateKind {
    /// A leaf state with no substructure.
    Basic,
    /// Exclusive-or decomposition: exactly one child is active at a time.
    Or,
    /// Parallel (orthogonal) decomposition: all children are active together.
    And,
}

impl fmt::Display for StateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateKind::Basic => write!(f, "basicstate"),
            StateKind::Or => write!(f, "orstate"),
            StateKind::And => write!(f, "andstate"),
        }
    }
}

/// A state node in the chart hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct State {
    /// Unique state name.
    pub name: String,
    /// Basic / OR / AND.
    pub kind: StateKind,
    /// Containing state, `None` only for the root.
    pub parent: Option<StateId>,
    /// Child states, in declaration order.
    pub children: Vec<StateId>,
    /// For OR-states: the default (initial) child.
    pub default: Option<StateId>,
    /// For OR-states: shallow-history entry. When the region is
    /// re-entered by default completion, the most recently active child
    /// is entered instead of the default. In the exclusivity-set CR
    /// encoding this is free hardware: the region's field simply keeps
    /// its last value while inactive.
    pub history: bool,
    /// Marks an off-page connector (`@Name` in the figures): the state is a
    /// reference stitched in from another diagram page. Purely descriptive.
    pub is_reference: bool,
    /// Routines executed every time the state is entered (Statemate-style
    /// static reactions; run after the transition's own actions).
    pub entry_actions: Vec<ActionCall>,
    /// Routines executed every time the state is exited (run before the
    /// transition's own actions).
    pub exit_actions: Vec<ActionCall>,
}

impl State {
    /// True for leaf states.
    pub fn is_basic(&self) -> bool {
        self.kind == StateKind::Basic
    }
}

/// Direction of an external port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortDirection {
    /// Into the chart.
    Input,
    /// Out of the chart.
    Output,
    /// Both directions.
    Bidirectional,
}

impl fmt::Display for PortDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortDirection::Input => write!(f, "in"),
            PortDirection::Output => write!(f, "out"),
            PortDirection::Bidirectional => write!(f, "bidir"),
        }
    }
}

/// Declaration of an event, with the PSCP extensions: bit width, the
/// external port delivering it, and the arrival-period timing constraint
/// (Table 2 of the paper) expressed in reference-clock cycles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventDecl {
    /// Unique event name.
    pub name: String,
    /// Width in bits (events are usually single-bit pulses).
    pub width: u8,
    /// Name of the external port delivering the event, if any.
    pub port: Option<String>,
    /// Arrival period in reference-clock cycles: the event recurs at most
    /// this often and must be consumed within one period.
    pub period: Option<u64>,
    /// True when the event can only be raised internally (by an action).
    pub internal: bool,
}

/// Declaration of a condition (a persistent boolean, unlike the
/// single-cycle events).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConditionDecl {
    /// Unique condition name.
    pub name: String,
    /// Width in bits (conditions may be small enumerations).
    pub width: u8,
    /// Name of the external port carrying the condition, if any.
    pub port: Option<String>,
    /// Initial value at reset.
    pub initial: bool,
}

/// Declaration of an external data port (Fig. 2b `Port` records).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataPortDecl {
    /// Unique port name.
    pub name: String,
    /// Word width in bits.
    pub width: u8,
    /// Port address in the generated port architecture.
    pub address: u16,
    /// Transfer direction.
    pub direction: PortDirection,
}

/// A single action invocation on a transition label (`DeltaT(MX)`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionCall {
    /// Routine name, resolved against the action-language program.
    pub function: String,
    /// Textual arguments, passed through to the action compiler.
    pub args: Vec<String>,
}

impl fmt::Display for ActionCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.function, self.args.join(", "))
    }
}

/// A transition between two states.
///
/// The label follows the statechart convention
/// `trigger [guard] / action1(), action2()`: the *trigger* is a boolean
/// expression over events, the *guard* a boolean expression over
/// conditions, and the *actions* are calls into transition routines
/// written in the extended-C action language.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transition {
    /// Source state.
    pub source: StateId,
    /// Target state.
    pub target: StateId,
    /// Event expression enabling the transition; `None` means the
    /// transition is triggered by guard alone (evaluated every cycle).
    pub trigger: Option<Expr>,
    /// Condition expression gating the transition.
    pub guard: Option<Expr>,
    /// Action routines executed when the transition fires.
    pub actions: Vec<ActionCall>,
    /// Explicit execution-time annotation in cycles, used by the timing
    /// validator when no compiled routine is available ("otherwise explicit
    /// timing constraints must be specified", §4).
    pub explicit_cost: Option<u64>,
}

/// An extended statechart: the complete specification unit the PSCP flow
/// consumes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chart {
    pub(crate) name: String,
    pub(crate) states: Vec<State>,
    pub(crate) transitions: Vec<Transition>,
    pub(crate) events: Vec<EventDecl>,
    pub(crate) conditions: Vec<ConditionDecl>,
    pub(crate) data_ports: Vec<DataPortDecl>,
    pub(crate) root: StateId,
}

impl Chart {
    /// Chart name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The unique root state.
    pub fn root(&self) -> StateId {
        self.root
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Accesses a state by handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this chart.
    pub fn state(&self, id: StateId) -> &State {
        &self.states[id.index()]
    }

    /// Accesses a transition by handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this chart.
    pub fn transition(&self, id: TransitionId) -> &Transition {
        &self.transitions[id.index()]
    }

    /// Accesses an event declaration by handle.
    pub fn event(&self, id: EventId) -> &EventDecl {
        &self.events[id.index()]
    }

    /// Accesses a condition declaration by handle.
    pub fn condition(&self, id: ConditionId) -> &ConditionDecl {
        &self.conditions[id.index()]
    }

    /// Iterates over state handles in arena order.
    pub fn state_ids(&self) -> impl ExactSizeIterator<Item = StateId> + '_ {
        (0..self.states.len() as u32).map(StateId)
    }

    /// Iterates over states in arena order.
    pub fn states(&self) -> impl ExactSizeIterator<Item = &State> + '_ {
        self.states.iter()
    }

    /// Iterates over transition handles in arena order.
    pub fn transition_ids(&self) -> impl ExactSizeIterator<Item = TransitionId> + '_ {
        (0..self.transitions.len() as u32).map(TransitionId)
    }

    /// Iterates over transitions in arena order.
    pub fn transitions(&self) -> impl ExactSizeIterator<Item = &Transition> + '_ {
        self.transitions.iter()
    }

    /// Iterates over event handles.
    pub fn event_ids(&self) -> impl ExactSizeIterator<Item = EventId> + '_ {
        (0..self.events.len() as u32).map(EventId)
    }

    /// Iterates over event declarations.
    pub fn events(&self) -> impl ExactSizeIterator<Item = &EventDecl> + '_ {
        self.events.iter()
    }

    /// Iterates over condition handles.
    pub fn condition_ids(&self) -> impl ExactSizeIterator<Item = ConditionId> + '_ {
        (0..self.conditions.len() as u32).map(ConditionId)
    }

    /// Iterates over condition declarations.
    pub fn conditions(&self) -> impl ExactSizeIterator<Item = &ConditionDecl> + '_ {
        self.conditions.iter()
    }

    /// Iterates over data-port declarations.
    pub fn data_ports(&self) -> impl ExactSizeIterator<Item = &DataPortDecl> + '_ {
        self.data_ports.iter()
    }

    /// Resolves a state name.
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.states.iter().position(|s| s.name == name).map(|i| StateId(i as u32))
    }

    /// Resolves an event name.
    pub fn event_by_name(&self, name: &str) -> Option<EventId> {
        self.events.iter().position(|e| e.name == name).map(|i| EventId(i as u32))
    }

    /// Resolves a condition name.
    pub fn condition_by_name(&self, name: &str) -> Option<ConditionId> {
        self.conditions.iter().position(|c| c.name == name).map(|i| ConditionId(i as u32))
    }

    /// Outgoing transitions of a state, in declaration order.
    pub fn outgoing(&self, s: StateId) -> impl Iterator<Item = TransitionId> + '_ {
        self.transitions
            .iter()
            .enumerate()
            .filter(move |(_, t)| t.source == s)
            .map(|(i, _)| TransitionId(i as u32))
    }

    /// Incoming transitions of a state, in declaration order.
    pub fn incoming(&self, s: StateId) -> impl Iterator<Item = TransitionId> + '_ {
        self.transitions
            .iter()
            .enumerate()
            .filter(move |(_, t)| t.target == s)
            .map(|(i, _)| TransitionId(i as u32))
    }
}
