//! Static well-formedness checks run by [`crate::ChartBuilder::build`]
//! and available separately for deserialised charts.

use crate::error::ChartError;
use crate::model::{Chart, StateKind};
use crate::trigger::Expr;

/// Validates structural invariants and name resolution of a chart.
///
/// Checks performed:
///
/// * every OR-state with children has a default that is one of them;
/// * basic states have no children;
/// * every trigger atom resolves to a declared event, and every guard atom
///   to a declared event or condition (guards such as `[DATA_VALID]` in
///   Fig. 6 test the *presence* of an event, so events are legal in
///   guards);
/// * action argument names are syntactically identifiers or literals.
///
/// # Errors
///
/// Returns the first violated invariant — exactly the first diagnostic
/// [`validate_diag`] would accumulate on the same chart.
pub fn validate(chart: &Chart) -> Result<(), ChartError> {
    let mut sink = pscp_diag::DiagnosticSink::new();
    let mut em = crate::diag::Emitter::new(&mut sink);
    validate_into(chart, &mut em);
    match em.take_first_chart() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Validates with error recovery: every violated invariant (codes
/// `SC2xx`) is accumulated into `sink`, and the lint pass appends its
/// findings as warnings (`SC3xx`). Returns whether the chart is
/// structurally valid (warnings don't count).
pub fn validate_diag(chart: &Chart, sink: &mut pscp_diag::DiagnosticSink) -> bool {
    let mut em = crate::diag::Emitter::new(sink);
    validate_into(chart, &mut em);
    let ok = em.errors() == 0;
    for w in lint(chart) {
        em.warn(&w);
    }
    ok
}

/// Recovering core of [`validate`]: reports every violation through
/// `em` instead of stopping at the first.
pub(crate) fn validate_into(chart: &Chart, em: &mut crate::diag::Emitter) {
    for s in chart.states() {
        match s.kind {
            StateKind::Basic => {
                if !s.children.is_empty() {
                    em.emit_chart(ChartError::BasicWithChildren(s.name.clone()));
                }
            }
            StateKind::Or => {
                if !s.children.is_empty() {
                    match s.default {
                        Some(d) => {
                            if !s.children.contains(&d) {
                                em.emit_chart(ChartError::DefaultNotChild {
                                    state: s.name.clone(),
                                    default: chart.state(d).name.clone(),
                                });
                            }
                        }
                        None => em.emit_chart(ChartError::MissingDefault(s.name.clone())),
                    }
                }
            }
            StateKind::And => {}
        }
    }

    let is_event = |a: &str| chart.event_by_name(a).is_some();
    let is_cond = |a: &str| chart.condition_by_name(a).is_some();

    for t in chart.transitions() {
        if let Some(trig) = &t.trigger {
            check_atoms_into(trig, |a| is_event(a) || is_cond(a), em);
        }
        if let Some(g) = &t.guard {
            check_atoms_into(g, |a| is_event(a) || is_cond(a), em);
        }
    }
}

fn check_atoms_into<F: Fn(&str) -> bool>(e: &Expr, ok: F, em: &mut crate::diag::Emitter) {
    for a in e.atoms() {
        if !ok(a) {
            em.emit_chart(ChartError::UnresolvedAtom(a.to_string()));
        }
    }
}

/// Non-fatal design warnings ("lint") for a chart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Warning {
    /// An AND-state with fewer than two children adds no concurrency.
    DegenerateAnd(String),
    /// A state is unreachable from the default configuration through any
    /// transition path (approximate reachability over the flattened
    /// transition graph, ignoring guards).
    PossiblyUnreachable(String),
    /// Two outgoing transitions of a state have triggers that can be
    /// simultaneously true, making the chart nondeterministic.
    NondeterministicChoice {
        /// The state with the conflicting transitions.
        state: String,
        /// Index of the first transition.
        first: usize,
        /// Index of the second transition.
        second: usize,
    },
    /// An event is declared but never used in any trigger or guard.
    UnusedEvent(String),
}

/// Runs the lint pass and returns all warnings.
pub fn lint(chart: &Chart) -> Vec<Warning> {
    let mut out = Vec::new();

    for s in chart.states() {
        if s.kind == StateKind::And && s.children.len() < 2 {
            out.push(Warning::DegenerateAnd(s.name.clone()));
        }
    }

    // Approximate reachability: a state is reachable if it lies on the
    // default-completion path of the root or is the target of some
    // transition, or contains/descends from such a state.
    let mut reach = vec![false; chart.state_count()];
    let mark = |id: crate::StateId, reach: &mut Vec<bool>| {
        // A target makes its whole ancestor chain and default subtree live.
        for a in chart.ancestors_inclusive(id) {
            reach[a.index()] = true;
        }
        let mut stack = vec![id];
        while let Some(x) = stack.pop() {
            reach[x.index()] = true;
            let st = chart.state(x);
            match st.kind {
                StateKind::Or => {
                    if let Some(d) = st.default {
                        stack.push(d);
                    }
                }
                StateKind::And => stack.extend(st.children.iter().copied()),
                StateKind::Basic => {}
            }
        }
    };
    mark(chart.root(), &mut reach);
    for t in chart.transitions() {
        mark(t.target, &mut reach);
    }
    for (i, s) in chart.states().enumerate() {
        if !reach[i] {
            out.push(Warning::PossiblyUnreachable(s.name.clone()));
        }
    }

    // Nondeterminism: two sibling transitions of the same state whose
    // triggers share a positively-mentioned atom (cheap sufficient check).
    for sid in chart.state_ids() {
        let outgoing: Vec<_> = chart.outgoing(sid).collect();
        for (i, &ta) in outgoing.iter().enumerate() {
            for &tb in &outgoing[i + 1..] {
                let (a, b) = (chart.transition(ta), chart.transition(tb));
                let shared = match (&a.trigger, &b.trigger) {
                    (Some(x), Some(y)) => {
                        x.atoms().iter().any(|at| y.mentions_positively(at) && x.mentions_positively(at))
                    }
                    // A triggerless transition competes with everything.
                    (None, _) | (_, None) => true,
                };
                if shared && a.guard.is_none() && b.guard.is_none() {
                    out.push(Warning::NondeterministicChoice {
                        state: chart.state(sid).name.clone(),
                        first: ta.index(),
                        second: tb.index(),
                    });
                }
            }
        }
    }

    for ev in chart.events() {
        let used = chart.transitions().any(|t| {
            t.trigger.as_ref().is_some_and(|e| e.atoms().contains(ev.name.as_str()))
                || t.guard.as_ref().is_some_and(|e| e.atoms().contains(ev.name.as_str()))
        });
        if !used {
            out.push(Warning::UnusedEvent(ev.name.clone()));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ChartBuilder;
    use crate::model::StateKind;

    #[test]
    fn lint_flags_degenerate_and() {
        let mut b = ChartBuilder::new("c");
        b.state("Top", StateKind::And).contains(["Only"]);
        b.state("Only", StateKind::Basic);
        let chart = b.build().unwrap();
        assert!(lint(&chart).iter().any(|w| matches!(w, Warning::DegenerateAnd(n) if n == "Top")));
    }

    #[test]
    fn lint_flags_unreachable() {
        let mut b = ChartBuilder::new("c");
        b.event("E", None);
        b.state("Top", StateKind::Or).contains(["A", "B", "Island"]).default_child("A");
        b.state("A", StateKind::Basic).transition("B", "E");
        b.basic("B");
        b.basic("Island");
        let chart = b.build().unwrap();
        assert!(lint(&chart)
            .iter()
            .any(|w| matches!(w, Warning::PossiblyUnreachable(n) if n == "Island")));
    }

    #[test]
    fn lint_flags_nondeterminism() {
        let mut b = ChartBuilder::new("c");
        b.event("E", None);
        b.state("A", StateKind::Basic).transition("B", "E").transition("C", "E or E");
        b.basic("B");
        b.basic("C");
        let chart = b.build().unwrap();
        assert!(lint(&chart)
            .iter()
            .any(|w| matches!(w, Warning::NondeterministicChoice { state, .. } if state == "A")));
    }

    #[test]
    fn lint_flags_unused_event() {
        let mut b = ChartBuilder::new("c");
        b.event("USED", None);
        b.event("UNUSED", None);
        b.state("A", StateKind::Basic).transition("B", "USED");
        b.basic("B");
        let chart = b.build().unwrap();
        assert!(lint(&chart).iter().any(|w| matches!(w, Warning::UnusedEvent(n) if n == "UNUSED")));
        assert!(!lint(&chart).iter().any(|w| matches!(w, Warning::UnusedEvent(n) if n == "USED")));
    }

    #[test]
    fn guards_may_reference_events() {
        // Fig. 6 uses `[DATA_VALID]` — an event tested as a guard.
        let mut b = ChartBuilder::new("c");
        b.event("DATA_VALID", Some(1500));
        b.state("A", StateKind::Basic).transition("B", "[DATA_VALID]/GetByte()");
        b.basic("B");
        assert!(b.build().is_ok());
    }
}
