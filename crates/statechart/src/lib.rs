//! Extended-statechart front end for the PSCP codesign flow.
//!
//! Statecharts (Harel, 1987) extend finite state machines with hierarchy
//! (OR-states), concurrency (AND-states) and broadcast events. The PSCP
//! flow (Pyttel/Sedlmeier/Veith, DATE'98) further extends them with
//! external *ports* for events, conditions and data, and with arrival-period
//! timing constraints on events — those extensions are what make a
//! hardware/software implementation possible.
//!
//! This crate provides:
//!
//! * [`model`] — the chart data model: states (basic / OR / AND),
//!   transitions with `trigger[guard]/actions` labels, event / condition /
//!   data-port declarations, and timing constraints.
//! * [`builder`] — a programmatic [`builder::ChartBuilder`] for constructing
//!   charts in Rust code.
//! * [`parse`] — the textual statechart language of the paper (Fig. 2a),
//!   extended with declaration syntax for events, conditions and ports.
//! * [`trigger`] — the boolean trigger/guard expression language
//!   (`INIT or ALLRESET`, `not (X_PULSE or Y_PULSE)`, …).
//! * [`hierarchy`] — structural queries: ancestors, least common ancestor,
//!   orthogonality, scopes.
//! * [`semantics`] — a reference step-semantics executor (configurations,
//!   enabled-transition computation, exit/entry sets, default completion).
//! * [`intern`] — name → id tables resolving environment-supplied event
//!   and condition names without per-lookup scans.
//! * [`encoding`] — exclusivity-set state encoding and the configuration
//!   register (CR) layout used by the SLA and the PSCP hardware.
//! * [`validate`] — static well-formedness checks.
//! * [`pretty`] — pretty-printer emitting the textual format back out.
//!
//! # Example
//!
//! ```
//! use pscp_statechart::parse::parse_chart;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = r#"
//!     event TICK period 100;
//!     orstate Root { contains Off, On; default Off; }
//!     basicstate Off {
//!         transition { target On; label "TICK"; }
//!     }
//!     basicstate On {
//!         transition { target Off; label "TICK"; }
//!     }
//! "#;
//! let chart = parse_chart(src)?;
//! assert_eq!(chart.states().count(), 3);
//! # Ok(())
//! # }
//! ```

pub mod builder;
pub mod diag;
pub mod encoding;
pub mod error;
pub mod hierarchy;
pub mod intern;
pub mod model;
pub mod parse;
pub mod pretty;
pub mod semantics;
pub mod trigger;
pub mod validate;

pub use builder::ChartBuilder;
pub use error::{ChartError, ParseError};
pub use model::{
    Chart, ConditionDecl, ConditionId, DataPortDecl, EventDecl, EventId, PortDirection, State,
    StateId, StateKind, Transition, TransitionId,
};
pub use trigger::Expr;
