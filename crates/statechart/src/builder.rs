//! Programmatic construction of [`Chart`]s.
//!
//! The builder mirrors the textual format: states are declared flat and
//! connected by `contains` lists of child *names*; transitions carry
//! textual labels that are parsed with [`crate::trigger::parse_expr`].
//! [`ChartBuilder::build`] resolves all names, infers undeclared children
//! as basic states, attaches an implicit root when several top-level
//! states exist, and runs the full validation suite.

use crate::error::ChartError;
use crate::model::{
    ActionCall, Chart, ConditionDecl, DataPortDecl, EventDecl, PortDirection, State, StateId,
    StateKind, Transition,
};
use crate::trigger::{parse_expr, Expr};
use std::collections::{BTreeMap, BTreeSet};

/// Name of the implicit root OR-state created when a chart declares
/// several top-level states.
pub const IMPLICIT_ROOT: &str = "__root";

#[derive(Debug, Clone)]
struct PendingState {
    name: String,
    kind: StateKind,
    contains: Vec<String>,
    default: Option<String>,
    is_reference: bool,
    history: bool,
    entry_actions: Vec<ActionCall>,
    exit_actions: Vec<ActionCall>,
    transitions: Vec<PendingTransition>,
}

#[derive(Debug, Clone)]
struct PendingTransition {
    target: String,
    trigger: Option<Expr>,
    guard: Option<Expr>,
    actions: Vec<ActionCall>,
    explicit_cost: Option<u64>,
}

/// Incremental chart constructor. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct ChartBuilder {
    name: String,
    states: Vec<PendingState>,
    events: Vec<EventDecl>,
    conditions: Vec<ConditionDecl>,
    data_ports: Vec<DataPortDecl>,
    default_first_child: bool,
}

impl ChartBuilder {
    /// Creates an empty builder for a chart with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ChartBuilder { name: name.into(), default_first_child: true, ..Default::default() }
    }

    /// Renames the chart being built (used by the `chart Name;` directive
    /// of the textual format).
    pub fn set_name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = name.into();
        self
    }

    /// When enabled (the default), an OR-state without an explicit
    /// `default` uses its first child, matching common statechart tools.
    /// Disable to make a missing default a hard error.
    pub fn default_first_child(&mut self, yes: bool) -> &mut Self {
        self.default_first_child = yes;
        self
    }

    /// Declares an event. `period` is the arrival-period timing constraint
    /// in reference-clock cycles (Table 2), or `None` when unconstrained.
    pub fn event(&mut self, name: impl Into<String>, period: Option<u64>) -> &mut Self {
        self.events.push(EventDecl {
            name: name.into(),
            width: 1,
            port: None,
            period,
            internal: false,
        });
        self
    }

    /// Declares an internal event (raised only by actions, no port).
    pub fn internal_event(&mut self, name: impl Into<String>) -> &mut Self {
        self.events.push(EventDecl {
            name: name.into(),
            width: 1,
            port: None,
            period: None,
            internal: true,
        });
        self
    }

    /// Declares an event with full control over the declaration record.
    pub fn event_decl(&mut self, decl: EventDecl) -> &mut Self {
        self.events.push(decl);
        self
    }

    /// Declares a condition with reset value `initial`.
    pub fn condition(&mut self, name: impl Into<String>, initial: bool) -> &mut Self {
        self.conditions.push(ConditionDecl { name: name.into(), width: 1, port: None, initial });
        self
    }

    /// Declares a condition with full control over the declaration record.
    pub fn condition_decl(&mut self, decl: ConditionDecl) -> &mut Self {
        self.conditions.push(decl);
        self
    }

    /// Declares an external data port.
    pub fn data_port(
        &mut self,
        name: impl Into<String>,
        width: u8,
        address: u16,
        direction: PortDirection,
    ) -> &mut Self {
        self.data_ports.push(DataPortDecl { name: name.into(), width, address, direction });
        self
    }

    /// Declares a state and returns a scoped sub-builder for its contents.
    pub fn state(&mut self, name: impl Into<String>, kind: StateKind) -> StateScope<'_> {
        self.states.push(PendingState {
            name: name.into(),
            kind,
            contains: Vec::new(),
            default: None,
            is_reference: false,
            history: false,
            entry_actions: Vec::new(),
            exit_actions: Vec::new(),
            transitions: Vec::new(),
        });
        let idx = self.states.len() - 1;
        StateScope { builder: self, idx }
    }

    /// Shorthand: declares a basic state with no transitions.
    pub fn basic(&mut self, name: impl Into<String>) -> &mut Self {
        self.state(name, StateKind::Basic);
        self
    }

    /// Resolves names, infers implicit basic states, validates, and
    /// produces the finished [`Chart`].
    ///
    /// # Errors
    ///
    /// Returns the first structural error found: duplicate or unknown
    /// names, containment cycles or multiple parents, missing OR defaults,
    /// unresolvable label atoms, and the other cases in [`ChartError`] —
    /// exactly the first diagnostic [`ChartBuilder::build_diag`] would
    /// accumulate.
    pub fn build(&self) -> Result<Chart, ChartError> {
        let mut sink = pscp_diag::DiagnosticSink::new();
        let mut em = crate::diag::Emitter::new(&mut sink);
        match self.build_into(&mut em) {
            Some(chart) => Ok(chart),
            None => Err(em
                .take_first_chart()
                .expect("failed build must carry a chart error")),
        }
    }

    /// Builds with error recovery: every structural problem is
    /// accumulated into `sink` (codes `SC2xx`) instead of stopping at
    /// the first, and lint findings are appended as warnings (`SC3xx`).
    /// Returns the chart only when this build added no errors.
    pub fn build_diag(&self, sink: &mut pscp_diag::DiagnosticSink) -> Option<Chart> {
        let mut em = crate::diag::Emitter::new(sink);
        let chart = self.build_into(&mut em)?;
        for w in crate::validate::lint(&chart) {
            em.warn(&w);
        }
        Some(chart)
    }

    /// Recovering core of [`ChartBuilder::build`]: check order matches
    /// the historical fail-fast sequence (so the first emitted error is
    /// the legacy error), but each failure degrades locally — duplicate
    /// definitions keep the first, a second parent is ignored, a bad
    /// default falls back to the first child — and the walk continues.
    /// Containment cycles abort structure assembly (nothing downstream
    /// is meaningful on cyclic containment). Returns the chart only
    /// when nothing was emitted.
    pub(crate) fn build_into(&self, em: &mut crate::diag::Emitter) -> Option<Chart> {
        let errors_at_entry = em.errors();
        let mut this = self.clone();
        if this.states.is_empty() {
            em.emit_chart(ChartError::Empty);
            return None;
        }

        // Merge `reference;` declarations (off-page connectors) into
        // their definitions: a name may be declared on several pages as
        // long as at most one declaration is not a reference. The
        // definition supplies kind/children/default/history; every
        // declaration contributes its transitions and entry/exit
        // actions, in page order.
        {
            let mut merged: Vec<PendingState> = Vec::new();
            let mut index: BTreeMap<String, usize> = BTreeMap::new();
            for s in this.states.drain(..) {
                match index.get(&s.name) {
                    None => {
                        index.insert(s.name.clone(), merged.len());
                        merged.push(s);
                    }
                    Some(&i) => {
                        let dst = &mut merged[i];
                        if !dst.is_reference && !s.is_reference {
                            // Recovery: keep the first definition; the
                            // duplicate still contributes its reactions.
                            em.emit_chart(ChartError::DuplicateName(s.name.clone()));
                        }
                        if dst.is_reference && !s.is_reference {
                            // The definition arrived second: take its
                            // structure, keep the reference's reactions
                            // first (outer pages declare outer behaviour).
                            dst.kind = s.kind;
                            dst.contains = s.contains;
                            dst.default = s.default;
                            dst.history = s.history;
                            dst.is_reference = false;
                        }
                        dst.transitions.extend(s.transitions);
                        dst.entry_actions.extend(s.entry_actions);
                        dst.exit_actions.extend(s.exit_actions);
                    }
                }
            }
            this.states = merged;
        }

        // Duplicate detection across namespaces.
        let mut seen = BTreeSet::new();
        for s in &this.states {
            if !seen.insert(s.name.clone()) {
                em.emit_chart(ChartError::DuplicateName(s.name.clone()));
            }
        }
        let mut seen_ec = BTreeSet::new();
        for n in this.events.iter().map(|e| &e.name).chain(this.conditions.iter().map(|c| &c.name))
        {
            if !seen_ec.insert(n.clone()) {
                em.emit_chart(ChartError::DuplicateName(n.clone()));
            }
        }

        // Infer any state that is referenced (as child or transition
        // target) but never declared as a basic state.
        let declared: BTreeSet<String> = this.states.iter().map(|s| s.name.clone()).collect();
        let mut inferred = BTreeSet::new();
        for s in &this.states {
            for c in &s.contains {
                if !declared.contains(c) {
                    inferred.insert(c.clone());
                }
            }
            for t in &s.transitions {
                if !declared.contains(&t.target) {
                    inferred.insert(t.target.clone());
                }
            }
        }
        for name in inferred {
            this.states.push(PendingState {
                name,
                kind: StateKind::Basic,
                contains: Vec::new(),
                default: None,
                is_reference: false,
                history: false,
                entry_actions: Vec::new(),
                exit_actions: Vec::new(),
                transitions: Vec::new(),
            });
        }

        let index: BTreeMap<String, usize> =
            this.states.iter().enumerate().map(|(i, s)| (s.name.clone(), i)).collect();

        // Assign parents; detect multiple parents.
        let mut parent: Vec<Option<usize>> = vec![None; this.states.len()];
        for (i, s) in this.states.iter().enumerate() {
            for c in &s.contains {
                let ci = index[c];
                if parent[ci].is_some() {
                    // Recovery: the first parent wins.
                    em.emit_chart(ChartError::MultipleParents(c.clone()));
                    continue;
                }
                if ci == i {
                    // Recovery: drop the self-containment edge.
                    em.emit_chart(ChartError::ContainmentCycle(c.clone()));
                    continue;
                }
                parent[ci] = Some(i);
            }
        }

        // Cycle detection by walking up with a step bound. A cycle makes
        // every downstream structural stage meaningless, so this is the
        // one fatal case: report and stop.
        for start in 0..this.states.len() {
            let mut cur = start;
            let mut steps = 0usize;
            while let Some(p) = parent[cur] {
                cur = p;
                steps += 1;
                if steps > this.states.len() {
                    em.emit_chart(ChartError::ContainmentCycle(this.states[start].name.clone()));
                    return None;
                }
            }
        }

        // Root handling: a single orphan is the root, otherwise an
        // implicit OR root adopts all orphans.
        let orphans: Vec<usize> =
            (0..this.states.len()).filter(|&i| parent[i].is_none()).collect();
        let root_idx = if orphans.len() == 1 {
            orphans[0]
        } else {
            this.states.push(PendingState {
                name: IMPLICIT_ROOT.to_string(),
                kind: StateKind::Or,
                contains: orphans.iter().map(|&i| this.states[i].name.clone()).collect(),
                default: Some(this.states[orphans[0]].name.clone()),
                is_reference: false,
                history: false,
                entry_actions: Vec::new(),
                exit_actions: Vec::new(),
                transitions: Vec::new(),
            });
            let ri = this.states.len() - 1;
            parent.push(None);
            for &o in &orphans {
                parent[o] = Some(ri);
            }
            ri
        };

        // Materialise states.
        let index: BTreeMap<String, usize> =
            this.states.iter().enumerate().map(|(i, s)| (s.name.clone(), i)).collect();
        let mut states: Vec<State> = Vec::with_capacity(this.states.len());
        for (i, p) in this.states.iter().enumerate() {
            if p.kind == StateKind::Basic && !p.contains.is_empty() {
                em.emit_chart(ChartError::BasicWithChildren(p.name.clone()));
            }
            let children: Vec<StateId> =
                p.contains.iter().map(|c| StateId(index[c] as u32)).collect();
            let default = match (&p.default, p.kind) {
                (Some(d), StateKind::Or) => match index.get(d) {
                    Some(&di) => {
                        let did = StateId(di as u32);
                        if children.contains(&did) {
                            Some(did)
                        } else {
                            // Recovery: fall back to the first child.
                            em.emit_chart(ChartError::DefaultNotChild {
                                state: p.name.clone(),
                                default: d.clone(),
                            });
                            children.first().copied()
                        }
                    }
                    None => {
                        em.emit_chart(ChartError::UnknownState(d.clone()));
                        children.first().copied()
                    }
                },
                (None, StateKind::Or) => {
                    if let Some(first) = children.first().copied() {
                        if !this.default_first_child {
                            em.emit_chart(ChartError::MissingDefault(p.name.clone()));
                        }
                        Some(first)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            if p.kind == StateKind::Or && children.is_empty() {
                // An OR-state with no children degenerates to basic.
            }
            states.push(State {
                name: p.name.clone(),
                kind: p.kind,
                parent: parent[i].map(|pi| StateId(pi as u32)),
                children,
                default,
                is_reference: p.is_reference,
                history: p.history,
                entry_actions: p.entry_actions.clone(),
                exit_actions: p.exit_actions.clone(),
            });
        }

        // Materialise transitions.
        let mut transitions = Vec::new();
        for (i, p) in this.states.iter().enumerate() {
            for t in &p.transitions {
                let Some(&target) = index.get(&t.target) else {
                    // Unreachable (targets are inferred), kept defensive.
                    em.emit_chart(ChartError::UnknownState(t.target.clone()));
                    continue;
                };
                transitions.push(Transition {
                    source: StateId(i as u32),
                    target: StateId(target as u32),
                    trigger: t.trigger.clone(),
                    guard: t.guard.clone(),
                    actions: t.actions.clone(),
                    explicit_cost: t.explicit_cost,
                });
            }
        }

        let chart = Chart {
            name: this.name.clone(),
            states,
            transitions,
            events: this.events.clone(),
            conditions: this.conditions.clone(),
            data_ports: this.data_ports.clone(),
            root: StateId(root_idx as u32),
        };
        crate::validate::validate_into(&chart, em);
        if em.errors() > errors_at_entry {
            return None;
        }
        Some(chart)
    }
}

/// Scoped access to one pending state during building.
#[derive(Debug)]
pub struct StateScope<'a> {
    builder: &'a mut ChartBuilder,
    idx: usize,
}

impl StateScope<'_> {
    fn state(&mut self) -> &mut PendingState {
        &mut self.builder.states[self.idx]
    }

    /// Adds child states by name (declared elsewhere or inferred basic).
    pub fn contains<I, S>(&mut self, names: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        self.state().contains.extend(names);
        self
    }

    /// Sets the default child of an OR-state.
    pub fn default_child(&mut self, name: impl Into<String>) -> &mut Self {
        let n = name.into();
        self.state().default = Some(n);
        self
    }

    /// Marks the state as an off-page reference (`@Name`).
    pub fn reference(&mut self) -> &mut Self {
        self.state().is_reference = true;
        self
    }

    /// Gives an OR-state a shallow-history connector: default completion
    /// re-enters the most recently active child.
    pub fn history(&mut self) -> &mut Self {
        self.state().history = true;
        self
    }

    /// Adds an entry action, `"Routine(arg, ...)"`.
    ///
    /// # Panics
    ///
    /// Panics if the call fails to parse.
    pub fn on_entry(&mut self, call: &str) -> &mut Self {
        let parsed = parse_label(&format!("/{call}")).expect("invalid entry action");
        self.state().entry_actions.extend(parsed.actions);
        self
    }

    /// Adds an exit action, `"Routine(arg, ...)"`.
    ///
    /// # Panics
    ///
    /// Panics if the call fails to parse.
    pub fn on_exit(&mut self, call: &str) -> &mut Self {
        let parsed = parse_label(&format!("/{call}")).expect("invalid exit action");
        self.state().exit_actions.extend(parsed.actions);
        self
    }

    /// Adds a transition with a textual `trigger[guard]/actions` label.
    ///
    /// # Panics
    ///
    /// Panics if the label fails to parse; use [`StateScope::try_transition`]
    /// for fallible construction.
    pub fn transition(&mut self, target: impl Into<String>, label: &str) -> &mut Self {
        self.try_transition(target, label, None).expect("invalid transition label")
    }

    /// Adds a transition with a textual label and an explicit cycle-cost
    /// annotation for the timing validator.
    ///
    /// # Panics
    ///
    /// Panics if the label fails to parse.
    pub fn transition_costed(
        &mut self,
        target: impl Into<String>,
        label: &str,
        cost: u64,
    ) -> &mut Self {
        self.try_transition(target, label, Some(cost)).expect("invalid transition label")
    }

    /// Fallible version of [`StateScope::transition`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error in `label`.
    pub fn try_transition(
        &mut self,
        target: impl Into<String>,
        label: &str,
        explicit_cost: Option<u64>,
    ) -> Result<&mut Self, String> {
        let parsed = parse_label(label)?;
        self.state().transitions.push(PendingTransition {
            target: target.into(),
            trigger: parsed.trigger,
            guard: parsed.guard,
            actions: parsed.actions,
            explicit_cost,
        });
        Ok(self)
    }
}

/// The three parts of a parsed transition label.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedLabel {
    /// Event expression, if present.
    pub trigger: Option<Expr>,
    /// Condition expression, if present.
    pub guard: Option<Expr>,
    /// Action calls, possibly empty.
    pub actions: Vec<ActionCall>,
}

/// Parses a full transition label `trigger [guard] / actions`.
///
/// All three parts are optional: `"TICK"`, `"[MOVE]"`, `"/Stop()"`,
/// `"E [C] / F(x), G()"` and the empty label are all valid.
///
/// # Errors
///
/// Returns a description of the first syntax error.
pub fn parse_label(label: &str) -> Result<ParsedLabel, String> {
    let label = label.trim();
    let (head, action_text) = match split_top_level(label, '/') {
        Some((h, a)) => (h.trim(), Some(a.trim())),
        None => (label, None),
    };

    // Split guard `[...]` off the head.
    let (trigger_text, guard_text) = match head.find('[') {
        Some(open) => {
            let close = head.rfind(']').ok_or_else(|| "unterminated `[` in label".to_string())?;
            if close < open {
                return Err("mismatched `[` `]` in label".to_string());
            }
            (head[..open].trim(), Some(head[open + 1..close].trim()))
        }
        None => (head, None),
    };

    let trigger = if trigger_text.is_empty() {
        None
    } else {
        Some(parse_expr(trigger_text).map_err(|e| format!("trigger: {e}"))?)
    };
    let guard = match guard_text {
        Some(g) if !g.is_empty() => Some(parse_expr(g).map_err(|e| format!("guard: {e}"))?),
        _ => None,
    };
    let actions = match action_text {
        Some(a) if !a.is_empty() => parse_actions(a)?,
        _ => Vec::new(),
    };
    Ok(ParsedLabel { trigger, guard, actions })
}

/// Splits at the first top-level (not inside parentheses/brackets)
/// occurrence of `sep`.
fn split_top_level(s: &str, sep: char) -> Option<(&str, &str)> {
    let mut depth = 0i32;
    for (i, c) in s.char_indices() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            c if c == sep && depth == 0 => return Some((&s[..i], &s[i + 1..])),
            _ => {}
        }
    }
    None
}

fn parse_actions(text: &str) -> Result<Vec<ActionCall>, String> {
    let mut out = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let open = rest
            .find('(')
            .ok_or_else(|| format!("expected `(` in action call near `{rest}`"))?;
        let name = rest[..open].trim();
        if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(format!("invalid action name `{name}`"));
        }
        let close = find_matching_paren(rest, open)
            .ok_or_else(|| format!("unterminated `(` in action call `{name}`"))?;
        let args_text = &rest[open + 1..close];
        let args: Vec<String> = if args_text.trim().is_empty() {
            Vec::new()
        } else {
            args_text.split(',').map(|a| a.trim().to_string()).collect()
        };
        out.push(ActionCall { function: name.to_string(), args });
        rest = rest[close + 1..].trim();
        if let Some(stripped) = rest.strip_prefix([',', ';']) {
            rest = stripped.trim();
        }
    }
    Ok(out)
}

fn find_matching_paren(s: &str, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, c) in s.char_indices().skip(open) {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StateKind;

    #[test]
    fn parse_label_full_form() {
        let l = parse_label("INIT or ALLRESET/InitializeAll()").unwrap();
        assert!(l.trigger.is_some());
        assert!(l.guard.is_none());
        assert_eq!(l.actions.len(), 1);
        assert_eq!(l.actions[0].function, "InitializeAll");
        assert!(l.actions[0].args.is_empty());
    }

    #[test]
    fn parse_label_guard_only() {
        let l = parse_label("[XFINISH and YFINISH and PHIFINISH]").unwrap();
        assert!(l.trigger.is_none());
        assert!(l.guard.is_some());
        assert!(l.actions.is_empty());
    }

    #[test]
    fn parse_label_guarded_event_with_action() {
        let l = parse_label("[DATA_VALID]/GetByte()").unwrap();
        assert!(l.trigger.is_none());
        assert_eq!(l.guard.unwrap().to_string(), "DATA_VALID");
        assert_eq!(l.actions[0].function, "GetByte");
    }

    #[test]
    fn parse_label_multi_arg_action() {
        let l =
            parse_label("not (X_PULSE or Y_PULSE)/PhiParameters(PhiParams, NewPhi, OldPhi)")
                .unwrap();
        assert_eq!(l.actions[0].args, vec!["PhiParams", "NewPhi", "OldPhi"]);
    }

    #[test]
    fn parse_label_action_only_and_empty() {
        let l = parse_label("/StartMotor(MX, XParams)").unwrap();
        assert!(l.trigger.is_none());
        assert_eq!(l.actions[0].function, "StartMotor");
        let l = parse_label("").unwrap();
        assert_eq!(l, ParsedLabel::default());
    }

    #[test]
    fn parse_label_multiple_actions() {
        let l = parse_label("E/F(), G(a), H(b, c)").unwrap();
        assert_eq!(l.actions.len(), 3);
        assert_eq!(l.actions[2].args, vec!["b", "c"]);
    }

    #[test]
    fn parse_label_errors() {
        assert!(parse_label("E/noparens").is_err());
        assert!(parse_label("[unclosed").is_err());
        assert!(parse_label("E or /F()").is_err());
    }

    #[test]
    fn build_simple_chart() {
        let mut b = ChartBuilder::new("toggle");
        b.event("TICK", Some(100));
        b.state("Root", StateKind::Or).contains(["Off", "On"]).default_child("Off");
        b.state("Off", StateKind::Basic).transition("On", "TICK");
        b.state("On", StateKind::Basic).transition("Off", "TICK");
        let chart = b.build().unwrap();
        assert_eq!(chart.state_count(), 3);
        assert_eq!(chart.transition_count(), 2);
        let root = chart.state(chart.root());
        assert_eq!(root.name, "Root");
        assert_eq!(root.children.len(), 2);
    }

    #[test]
    fn infers_undeclared_children_as_basic() {
        let mut b = ChartBuilder::new("c");
        b.event("E", None);
        b.state("Top", StateKind::Or).contains(["A", "B"]).default_child("A");
        b.state("A", StateKind::Basic).transition("B", "E");
        let chart = b.build().unwrap();
        let bid = chart.state_by_name("B").unwrap();
        assert_eq!(chart.state(bid).kind, StateKind::Basic);
        assert_eq!(chart.state(bid).parent, Some(chart.state_by_name("Top").unwrap()));
    }

    #[test]
    fn implicit_root_adopts_orphans() {
        let mut b = ChartBuilder::new("c");
        b.event("E", None);
        b.state("A", StateKind::Basic).transition("B", "E");
        b.basic("B");
        let chart = b.build().unwrap();
        assert_eq!(chart.state(chart.root()).name, IMPLICIT_ROOT);
        assert_eq!(chart.state(chart.root()).children.len(), 2);
    }

    #[test]
    fn duplicate_state_rejected() {
        let mut b = ChartBuilder::new("c");
        b.basic("A");
        b.basic("A");
        assert_eq!(b.build().unwrap_err(), ChartError::DuplicateName("A".into()));
    }

    #[test]
    fn multiple_parents_rejected() {
        let mut b = ChartBuilder::new("c");
        b.state("P1", StateKind::Or).contains(["X"]);
        b.state("P2", StateKind::Or).contains(["X", "Y"]);
        assert_eq!(b.build().unwrap_err(), ChartError::MultipleParents("X".into()));
    }

    #[test]
    fn containment_cycle_rejected() {
        let mut b = ChartBuilder::new("c");
        b.state("A", StateKind::Or).contains(["B"]);
        b.state("B", StateKind::Or).contains(["A"]);
        assert!(matches!(b.build().unwrap_err(), ChartError::ContainmentCycle(_)));
    }

    #[test]
    fn self_containment_rejected() {
        let mut b = ChartBuilder::new("c");
        b.state("A", StateKind::Or).contains(["A"]);
        assert!(matches!(b.build().unwrap_err(), ChartError::ContainmentCycle(_)));
    }

    #[test]
    fn default_must_be_child() {
        let mut b = ChartBuilder::new("c");
        b.state("Top", StateKind::Or).contains(["A"]).default_child("Elsewhere");
        b.basic("Elsewhere");
        assert!(matches!(b.build().unwrap_err(), ChartError::DefaultNotChild { .. }));
    }

    #[test]
    fn empty_chart_rejected() {
        assert_eq!(ChartBuilder::new("c").build().unwrap_err(), ChartError::Empty);
    }

    #[test]
    fn unresolved_label_atom_rejected() {
        let mut b = ChartBuilder::new("c");
        b.state("A", StateKind::Basic).transition("B", "NO_SUCH_EVENT");
        b.basic("B");
        assert!(matches!(b.build().unwrap_err(), ChartError::UnresolvedAtom(_)));
    }
}
