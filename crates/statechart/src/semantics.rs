//! Reference step semantics for extended statecharts.
//!
//! This executor defines the *functional* meaning of a chart against
//! which the synthesised SLA hardware and the full PSCP machine are
//! cross-checked. It follows the execution model of §3.1 of the paper:
//!
//! 1. at the beginning of a configuration cycle, external events are
//!    sampled (they live for exactly one cycle);
//! 2. the set of enabled, non-conflicting transitions is computed
//!    (the paper's SLA produces the transition addresses);
//! 3. all selected transitions execute: exit sets are left, targets and
//!    their default completions are entered, and action routines run —
//!    actions may raise events (visible *next* cycle) and set conditions
//!    (written back at the end of the cycle, like the condition caches);
//! 4. repeat.
//!
//! Conflicts are resolved by *outer-first* priority (a transition whose
//! scope is closer to the root preempts inner ones — this is what lets
//! `ERROR/Stop()` on `Operation` in Fig. 6 win over anything inside), and
//! by declaration order between equals.

use crate::model::{ActionCall, Chart, ConditionId, EventId, StateId, StateKind, TransitionId};
use crate::trigger::Expr;
use std::collections::BTreeSet;

/// One node of a resolved trigger/guard expression, stored in a flat
/// arena shared by the whole executor.
///
/// [`Expr`] keeps atoms as names, so evaluating one means a name → id
/// scan per atom — per transition, per cycle, on the hot path. The
/// resolution happens once in [`Executor::new`]; evaluation is pure id
/// lookups over the arena, and building it is a single `Vec` rather
/// than a box per node. Atoms naming neither an event nor a condition
/// evaluate to false, exactly like the unresolved path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResolvedOp {
    /// An atom naming a chart event.
    Event(EventId),
    /// An atom naming a chart condition.
    Condition(ConditionId),
    /// An atom naming nothing in the chart (always false).
    Unknown,
    /// Logical negation of the node at the given arena index.
    Not(u32),
    /// Logical conjunction.
    And(u32, u32),
    /// Logical disjunction.
    Or(u32, u32),
}

/// Appends the resolved form of `expr` to the arena; returns the root's
/// arena index.
fn resolve_expr(
    events: &crate::intern::EventNamesRef<'_>,
    conditions: &crate::intern::ConditionNamesRef<'_>,
    expr: &Expr,
    arena: &mut Vec<ResolvedOp>,
) -> u32 {
    let op = match expr {
        Expr::Atom(a) => {
            if let Some(e) = events.get(a) {
                ResolvedOp::Event(e)
            } else if let Some(c) = conditions.get(a) {
                ResolvedOp::Condition(c)
            } else {
                ResolvedOp::Unknown
            }
        }
        Expr::Not(e) => ResolvedOp::Not(resolve_expr(events, conditions, e, arena)),
        Expr::And(a, b) => ResolvedOp::And(
            resolve_expr(events, conditions, a, arena),
            resolve_expr(events, conditions, b, arena),
        ),
        Expr::Or(a, b) => ResolvedOp::Or(
            resolve_expr(events, conditions, a, arena),
            resolve_expr(events, conditions, b, arena),
        ),
    };
    arena.push(op);
    arena.len() as u32 - 1
}

/// Evaluates the arena node `root` against the current event set and
/// condition values (indexed by [`ConditionId::index`]).
fn eval_resolved(
    arena: &[ResolvedOp],
    root: u32,
    events: &BTreeSet<EventId>,
    conditions: &[bool],
) -> bool {
    match arena[root as usize] {
        ResolvedOp::Event(e) => events.contains(&e),
        ResolvedOp::Condition(c) => conditions[c.index()],
        ResolvedOp::Unknown => false,
        ResolvedOp::Not(x) => !eval_resolved(arena, x, events, conditions),
        ResolvedOp::And(a, b) => {
            eval_resolved(arena, a, events, conditions)
                && eval_resolved(arena, b, events, conditions)
        }
        ResolvedOp::Or(a, b) => {
            eval_resolved(arena, a, events, conditions)
                || eval_resolved(arena, b, events, conditions)
        }
    }
}

/// Precomputed per-transition selection data: arena roots of the
/// resolved trigger/guard and the priority key (scope depth,
/// declaration index) the selection sorts by.
#[derive(Debug, Clone, Copy)]
struct ResolvedTransition {
    trigger: Option<u32>,
    guard: Option<u32>,
    priority: (usize, usize),
}

/// A stable snapshot of which states are active.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Configuration {
    active: Vec<bool>,
}

impl Configuration {
    /// True when `s` is active.
    pub fn is_active(&self, s: StateId) -> bool {
        self.active[s.index()]
    }

    /// All active states, in arena order.
    pub fn active_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.active
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| StateId::from_index(i))
    }

    /// Active basic (leaf) states — the usual human-readable summary.
    pub fn active_leaves<'c>(&'c self, chart: &'c Chart) -> impl Iterator<Item = StateId> + 'c {
        self.active_states().filter(move |&s| chart.state(s).children.is_empty())
    }

    /// Checks the consistency invariants: the root is active; every
    /// active OR-state with children has exactly one active child; every
    /// active AND-state has all children active; children of inactive
    /// states are inactive.
    pub fn is_consistent(&self, chart: &Chart) -> bool {
        if !self.is_active(chart.root()) {
            return false;
        }
        for s in chart.state_ids() {
            let st = chart.state(s);
            let active_children = st.children.iter().filter(|&&c| self.is_active(c)).count();
            if self.is_active(s) {
                match st.kind {
                    StateKind::Or if !st.children.is_empty()
                        && active_children != 1 => {
                            return false;
                        }
                    StateKind::And
                        if active_children != st.children.len() => {
                            return false;
                        }
                    _ => {}
                }
            } else if active_children != 0 {
                return false;
            }
        }
        true
    }
}

/// Side effects requested by an action routine during reference
/// execution. The full PSCP machine runs compiled TEP code instead; this
/// hook exists so functional tests and co-simulations can model the same
/// effects.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ActionEffects {
    /// Events raised; visible in the *next* configuration cycle.
    pub raise: Vec<String>,
    /// Condition assignments, applied at end of cycle (condition-cache
    /// write-back).
    pub set_conditions: Vec<(String, bool)>,
    /// Events raised by id — same semantics as [`raise`](Self::raise)
    /// without the name resolution. Hosts that already hold chart ids
    /// (the PSCP machine) use these to keep the cycle loop free of
    /// string lookups.
    pub raise_ids: Vec<EventId>,
    /// Condition assignments by id — same semantics as
    /// [`set_conditions`](Self::set_conditions).
    pub set_condition_ids: Vec<(ConditionId, bool)>,
}

/// Where an action call originated, for [`Executor::step_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionSite {
    /// An exit action of `state`, run because `transition` fired.
    Exit {
        /// The exited state.
        state: StateId,
        /// The transition that caused the exit.
        transition: TransitionId,
    },
    /// An action on the transition's own label.
    Transition {
        /// The firing transition.
        transition: TransitionId,
    },
    /// An entry action of `state`, run because `transition` fired.
    Entry {
        /// The entered state.
        state: StateId,
        /// The transition that caused the entry.
        transition: TransitionId,
    },
}

impl ActionSite {
    /// The transition responsible for this action.
    pub fn transition(self) -> TransitionId {
        match self {
            ActionSite::Exit { transition, .. }
            | ActionSite::Transition { transition }
            | ActionSite::Entry { transition, .. } => transition,
        }
    }
}

/// What happened during one configuration cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepReport {
    /// Transitions that fired, in execution order.
    pub fired: Vec<TransitionId>,
    /// States exited this cycle.
    pub exited: Vec<StateId>,
    /// States entered this cycle.
    pub entered: Vec<StateId>,
    /// Action calls dispatched, in order.
    pub actions: Vec<ActionCall>,
    /// Events raised by actions (become visible next cycle).
    pub raised: Vec<EventId>,
}

/// The reference executor.
///
/// # Example
///
/// ```
/// use pscp_statechart::{ChartBuilder, StateKind};
/// use pscp_statechart::semantics::Executor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ChartBuilder::new("toggle");
/// b.event("TICK", None);
/// b.state("Top", StateKind::Or).contains(["Off", "On"]).default_child("Off");
/// b.state("Off", StateKind::Basic).transition("On", "TICK");
/// b.state("On", StateKind::Basic).transition("Off", "TICK");
/// let chart = b.build()?;
///
/// let mut exec = Executor::new(&chart);
/// let off = chart.state_by_name("Off").unwrap();
/// let on = chart.state_by_name("On").unwrap();
/// assert!(exec.configuration().is_active(off));
/// exec.step_named(["TICK"], |_| Default::default());
/// assert!(exec.configuration().is_active(on));
/// # Ok(())
/// # }
/// ```
/// A snapshot of an [`Executor`]'s semantic control state — everything
/// transition selection depends on. Captured by
/// [`Executor::control_state`], reinstated by
/// [`Executor::restore_control_state`]; the cycle counter is excluded
/// (it never influences behaviour).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlState {
    /// Active-state bitmap, indexed by [`StateId`] index.
    pub active: Vec<bool>,
    /// Condition values, indexed by [`ConditionId`] index.
    pub conditions: Vec<bool>,
    /// Internal events raised last cycle, sorted ascending by id.
    pub pending_internal: Vec<EventId>,
    /// Shallow-history memory per state (`None` = no memory).
    pub history: Vec<Option<StateId>>,
}

#[derive(Debug, Clone)]
pub struct Executor<'c> {
    chart: &'c Chart,
    config: Configuration,
    conditions: Vec<bool>,
    /// Events raised by actions during the previous cycle.
    pending_internal: BTreeSet<EventId>,
    /// Shallow-history memory: last active child of each history
    /// OR-state.
    history_memory: Vec<Option<StateId>>,
    /// Per-transition resolved triggers/guards and priority keys,
    /// computed once so selection does no name resolution per cycle.
    resolved: Vec<ResolvedTransition>,
    /// Arena backing the resolved expressions.
    expr_arena: Vec<ResolvedOp>,
    cycle: u64,
}

impl<'c> Executor<'c> {
    /// Creates an executor in the default configuration with conditions
    /// at their declared reset values.
    pub fn new(chart: &'c Chart) -> Self {
        let mut active = vec![false; chart.state_count()];
        let history_memory = vec![None; chart.state_count()];
        enter_with_defaults(chart, chart.root(), &mut active, &mut Vec::new(), &history_memory);
        let event_names = crate::intern::EventNamesRef::new(chart);
        let condition_names = crate::intern::ConditionNamesRef::new(chart);
        let mut expr_arena = Vec::new();
        let resolved = chart
            .transition_ids()
            .map(|tid| {
                let t = chart.transition(tid);
                ResolvedTransition {
                    trigger: t.trigger.as_ref().map(|e| {
                        resolve_expr(&event_names, &condition_names, e, &mut expr_arena)
                    }),
                    guard: t.guard.as_ref().map(|e| {
                        resolve_expr(&event_names, &condition_names, e, &mut expr_arena)
                    }),
                    priority: (
                        chart.depth(chart.transition_scope(t.source, t.target)),
                        tid.index(),
                    ),
                }
            })
            .collect();
        Executor {
            chart,
            config: Configuration { active },
            conditions: chart.conditions().map(|c| c.initial).collect(),
            pending_internal: BTreeSet::new(),
            history_memory,
            resolved,
            expr_arena,
            cycle: 0,
        }
    }

    /// Returns the executor to its post-construction state — default
    /// configuration, conditions at their declared reset values, no
    /// pending internal events, history memory cleared — while keeping
    /// the resolved-expression arenas built by [`Executor::new`]. A
    /// reset executor behaves byte-identically to a freshly constructed
    /// one.
    pub fn reset(&mut self) {
        let chart = self.chart;
        self.config.active.iter_mut().for_each(|a| *a = false);
        self.history_memory.iter_mut().for_each(|h| *h = None);
        enter_with_defaults(
            chart,
            chart.root(),
            &mut self.config.active,
            &mut Vec::new(),
            &self.history_memory,
        );
        self.conditions.clear();
        self.conditions.extend(chart.conditions().map(|c| c.initial));
        self.pending_internal.clear();
        self.cycle = 0;
    }

    /// The remembered child of a shallow-history OR-state, if any.
    pub fn history_of(&self, s: StateId) -> Option<StateId> {
        self.history_memory[s.index()]
    }

    /// Snapshots the semantic control state: active configuration,
    /// condition values, pending internal events (sorted), and history
    /// memory. The cycle counter and resolved-expression arenas are
    /// excluded — they never influence transition selection.
    pub fn control_state(&self) -> ControlState {
        ControlState {
            active: self.config.active.clone(),
            conditions: self.conditions.clone(),
            pending_internal: self.pending_internal.iter().copied().collect(),
            history: self.history_memory.clone(),
        }
    }

    /// Restores a [`control_state`](Executor::control_state) snapshot
    /// taken from an executor over the same chart. The cycle counter is
    /// left untouched.
    pub fn restore_control_state(&mut self, s: &ControlState) {
        self.config.active.copy_from_slice(&s.active);
        self.conditions.copy_from_slice(&s.conditions);
        self.pending_internal.clear();
        self.pending_internal.extend(s.pending_internal.iter().copied());
        self.history_memory.copy_from_slice(&s.history);
    }

    /// Current configuration.
    pub fn configuration(&self) -> &Configuration {
        &self.config
    }

    /// Number of configuration cycles executed so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current value of a condition.
    pub fn condition(&self, c: ConditionId) -> bool {
        self.conditions[c.index()]
    }

    /// Overrides a condition (models an external condition port).
    pub fn set_condition(&mut self, c: ConditionId, value: bool) {
        self.conditions[c.index()] = value;
    }

    /// Internal events raised by actions last cycle, still pending
    /// delivery in the next step.
    pub fn pending_events(&self) -> impl Iterator<Item = EventId> + '_ {
        self.pending_internal.iter().copied()
    }

    /// Computes the enabled, conflict-resolved transition set for a given
    /// event set without executing anything. This is exactly the set of
    /// addresses the SLA would emit into the Transition Address Table.
    pub fn select_transitions(&self, events: &BTreeSet<EventId>) -> Vec<TransitionId> {
        let chart = self.chart;
        let mut enabled: Vec<TransitionId> = chart
            .transition_ids()
            .filter(|&tid| {
                let rt = self.resolved[tid.index()];
                let holds = |root: Option<u32>| {
                    root.is_none_or(|r| {
                        eval_resolved(&self.expr_arena, r, events, &self.conditions)
                    })
                };
                self.config.is_active(chart.transition(tid).source)
                    && holds(rt.trigger)
                    && holds(rt.guard)
            })
            .collect();

        // Outer-first priority: sort by scope depth, then declaration
        // order; then greedily keep non-conflicting transitions.
        enabled.sort_by_key(|&tid| self.resolved[tid.index()].priority);

        let mut selected: Vec<TransitionId> = Vec::new();
        let mut claimed: Vec<BTreeSet<StateId>> = Vec::new();
        for tid in enabled {
            let t = chart.transition(tid);
            let scope = chart.transition_scope(t.source, t.target);
            let exits: BTreeSet<StateId> = chart
                .descendants_inclusive(scope)
                .into_iter()
                .filter(|&s| s != scope && self.config.is_active(s))
                .collect();
            // A transition whose scope is the whole root with an exit set
            // covering everything still conflicts correctly via overlap.
            if claimed.iter().all(|c| c.is_disjoint(&exits)) {
                claimed.push(exits);
                selected.push(tid);
            }
        }
        selected
    }

    /// Runs one configuration cycle with the given external events, using
    /// `effects` to model the action routines.
    pub fn step<F>(&mut self, external: &BTreeSet<EventId>, mut effects: F) -> StepReport
    where
        F: FnMut(&ActionCall) -> ActionEffects,
    {
        self.step_with(external, |_, call| effects(call))
    }

    /// Like [`Executor::step`], but the callback also learns *where* each
    /// action comes from — a state's exit action, the transition's own
    /// label, or a state's entry action — and which transition caused it.
    /// The full PSCP machine uses this to execute compiled routines in
    /// exactly the reference order and attribute their cycle costs.
    pub fn step_with<F>(&mut self, external: &BTreeSet<EventId>, mut effects: F) -> StepReport
    where
        F: FnMut(ActionSite, &ActionCall) -> ActionEffects,
    {
        let chart = self.chart;
        let mut events = external.clone();
        events.extend(self.pending_internal.iter().copied());
        self.pending_internal.clear();

        let selected = self.select_transitions(&events);
        let mut report = StepReport::default();
        let mut cond_writes: Vec<(ConditionId, bool)> = Vec::new();

        for tid in selected {
            let t = chart.transition(tid);
            let scope = chart.transition_scope(t.source, t.target);
            let exit_start = report.exited.len();
            let entry_start = report.entered.len();

            // Exit: deactivate everything strictly inside the scope that
            // is on the active path, recording shallow-history memory.
            for s in chart.descendants_inclusive(scope) {
                if s != scope && self.config.active[s.index()] {
                    self.config.active[s.index()] = false;
                    if let Some(p) = chart.state(s).parent {
                        if chart.state(p).history {
                            self.history_memory[p.index()] = Some(s);
                        }
                    }
                    report.exited.push(s);
                }
            }

            // Enter: activate the path scope -> target, then default
            // completion below the target; sibling AND components entered
            // along the way get their defaults too.
            let mut path: Vec<StateId> = Vec::new();
            let mut cur = t.target;
            while cur != scope {
                path.push(cur);
                match chart.state(cur).parent {
                    Some(p) => cur = p,
                    None => break,
                }
            }
            path.reverse();
            // When the scope itself is an AND-state (a transition crossing
            // parallel components of the root region), its other children
            // were exited above and must be default-entered again.
            let scope_state = chart.state(scope);
            if scope_state.kind == StateKind::And {
                let first_on_path = path.first().copied();
                for &c in &scope_state.children {
                    if Some(c) != first_on_path && !self.config.active[c.index()] {
                        enter_with_defaults(
                            chart,
                            c,
                            &mut self.config.active,
                            &mut report.entered,
                            &self.history_memory,
                        );
                    }
                }
            }
            for (i, &s) in path.iter().enumerate() {
                if !self.config.active[s.index()] {
                    self.config.active[s.index()] = true;
                    report.entered.push(s);
                }
                // When entering an AND-state on the way down, its other
                // children must be default-entered as well.
                let next_on_path = path.get(i + 1).copied();
                let st = chart.state(s);
                if st.kind == StateKind::And {
                    for &c in &st.children {
                        if Some(c) != next_on_path && !self.config.active[c.index()] {
                            enter_with_defaults(
                                chart,
                                c,
                                &mut self.config.active,
                                &mut report.entered,
                                &self.history_memory,
                            );
                        }
                    }
                }
            }
            // Default completion below the target itself.
            if !self.config.active[t.target.index()] {
                enter_with_defaults(
                    chart,
                    t.target,
                    &mut self.config.active,
                    &mut report.entered,
                    &self.history_memory,
                );
            } else {
                let st = chart.state(t.target);
                let completion: Vec<StateId> = match st.kind {
                    StateKind::And => st.children.clone(),
                    StateKind::Or => {
                        let child = if st.history {
                            self.history_memory[t.target.index()]
                                .filter(|c| st.children.contains(c))
                                .or(st.default)
                        } else {
                            st.default
                        };
                        child.into_iter().collect()
                    }
                    StateKind::Basic => Vec::new(),
                };
                for c in completion {
                    if !self.config.active[c.index()] {
                        enter_with_defaults(
                            chart,
                            c,
                            &mut self.config.active,
                            &mut report.entered,
                            &self.history_memory,
                        );
                    }
                }
            }

            // Actions, in the conventional order: exit actions of the
            // exited states, the transition's own label actions, entry
            // actions of the entered states. (The configuration bits were
            // already flipped above, which is unobservable to actions —
            // their effects are deferred to end of cycle.)
            let apply = |site: ActionSite,
                             call: &ActionCall,
                             effects: &mut F,
                             pending: &mut BTreeSet<EventId>,
                             report: &mut StepReport,
                             cond_writes: &mut Vec<(ConditionId, bool)>| {
                let eff = effects(site, call);
                for name in eff.raise {
                    if let Some(e) = chart.event_by_name(&name) {
                        pending.insert(e);
                        report.raised.push(e);
                    }
                }
                for e in eff.raise_ids {
                    pending.insert(e);
                    report.raised.push(e);
                }
                for (name, v) in eff.set_conditions {
                    if let Some(c) = chart.condition_by_name(&name) {
                        cond_writes.push((c, v));
                    }
                }
                cond_writes.extend(eff.set_condition_ids);
                report.actions.push(call.clone());
            };

            let exited_now: Vec<StateId> = report.exited[exit_start..].to_vec();
            for s in exited_now {
                for call in &chart.state(s).exit_actions {
                    apply(
                        ActionSite::Exit { state: s, transition: tid },
                        call,
                        &mut effects,
                        &mut self.pending_internal,
                        &mut report,
                        &mut cond_writes,
                    );
                }
            }
            for call in &t.actions {
                apply(
                    ActionSite::Transition { transition: tid },
                    call,
                    &mut effects,
                    &mut self.pending_internal,
                    &mut report,
                    &mut cond_writes,
                );
            }
            let entered_now: Vec<StateId> = report.entered[entry_start..].to_vec();
            for s in entered_now {
                for call in &chart.state(s).entry_actions {
                    apply(
                        ActionSite::Entry { state: s, transition: tid },
                        call,
                        &mut effects,
                        &mut self.pending_internal,
                        &mut report,
                        &mut cond_writes,
                    );
                }
            }
            report.fired.push(tid);
        }

        // Condition-cache write-back at end of cycle.
        for (c, v) in cond_writes {
            self.conditions[c.index()] = v;
        }

        self.cycle += 1;
        debug_assert!(self.config.is_consistent(chart), "inconsistent configuration after step");
        report
    }

    /// Runs one configuration cycle that the caller has already proven
    /// idle — no transition is enabled for `external` plus the pending
    /// internal events. The gang simulator uses this after its
    /// bit-sliced SLA pass reports no fire bit for a lane: the cycle
    /// still consumes the events (they live exactly one cycle, so the
    /// pending set clears) and advances the cycle counter, but skips
    /// transition selection entirely. Debug builds re-check the idle
    /// claim against [`select_transitions`](Self::select_transitions).
    pub fn step_idle(&mut self, external: &BTreeSet<EventId>) {
        debug_assert!(
            {
                let mut events = external.clone();
                events.extend(self.pending_internal.iter().copied());
                self.select_transitions(&events).is_empty()
            },
            "step_idle called on a cycle with enabled transitions"
        );
        self.pending_internal.clear();
        self.cycle += 1;
        debug_assert!(
            self.config.is_consistent(self.chart),
            "inconsistent configuration after idle step"
        );
    }

    /// Convenience wrapper: step with events given by name.
    pub fn step_named<I, S, F>(&mut self, events: I, effects: F) -> StepReport
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
        F: FnMut(&ActionCall) -> ActionEffects,
    {
        let set: BTreeSet<EventId> = events
            .into_iter()
            .filter_map(|n| self.chart.event_by_name(n.as_ref()))
            .collect();
        self.step(&set, effects)
    }
}

/// Activates `s` and recursively its default completion. Shallow-history
/// OR-states re-enter their remembered child instead of the default.
fn enter_with_defaults(
    chart: &Chart,
    s: StateId,
    active: &mut [bool],
    entered: &mut Vec<StateId>,
    history: &[Option<StateId>],
) {
    if !active[s.index()] {
        active[s.index()] = true;
        entered.push(s);
    }
    let st = chart.state(s);
    match st.kind {
        StateKind::Or => {
            let child = if st.history {
                history[s.index()]
                    .filter(|c| st.children.contains(c))
                    .or(st.default)
            } else {
                st.default
            };
            if let Some(d) = child {
                enter_with_defaults(chart, d, active, entered, history);
            }
        }
        StateKind::And => {
            for &c in &st.children {
                enter_with_defaults(chart, c, active, entered, history);
            }
        }
        StateKind::Basic => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ChartBuilder;
    use crate::model::StateKind;

    fn no_effects(_: &ActionCall) -> ActionEffects {
        ActionEffects::default()
    }

    fn motorish() -> Chart {
        // A small AND-chart in the spirit of Fig. 5: two motors running
        // in parallel, each waiting for its own pulse event.
        let mut b = ChartBuilder::new("motors");
        b.event("X_PULSE", Some(300));
        b.event("Y_PULSE", Some(300));
        b.event("GO", None);
        b.event("STOP_ALL", None);
        b.condition("MOVING", false);
        b.state("Top", StateKind::Or).contains(["Idle", "Move"]).default_child("Idle");
        b.state("Idle", StateKind::Basic).transition("Move", "GO/StartMotor(MX)");
        b.state("Move", StateKind::And).contains(["MX", "MY"]);
        {
            b.state("MX", StateKind::Or).contains(["RunX"]).default_child("RunX");
        }
        b.state("RunX", StateKind::Basic).transition("RunX", "X_PULSE/DeltaT(MX)");
        b.state("MY", StateKind::Or).contains(["RunY"]).default_child("RunY");
        b.state("RunY", StateKind::Basic).transition("RunY", "Y_PULSE/DeltaT(MY)");
        b.build().unwrap()
    }

    #[test]
    fn initial_configuration_is_default_completion() {
        let c = motorish();
        let e = Executor::new(&c);
        assert!(e.configuration().is_consistent(&c));
        assert!(e.configuration().is_active(c.state_by_name("Idle").unwrap()));
        assert!(!e.configuration().is_active(c.state_by_name("Move").unwrap()));
    }

    #[test]
    fn entering_and_state_enters_all_components() {
        let c = motorish();
        let mut e = Executor::new(&c);
        e.step_named(["GO"], no_effects);
        for n in ["Move", "MX", "MY", "RunX", "RunY"] {
            assert!(
                e.configuration().is_active(c.state_by_name(n).unwrap()),
                "{n} should be active"
            );
        }
        assert!(!e.configuration().is_active(c.state_by_name("Idle").unwrap()));
    }

    #[test]
    fn parallel_transitions_fire_in_same_cycle() {
        let c = motorish();
        let mut e = Executor::new(&c);
        e.step_named(["GO"], no_effects);
        let r = e.step_named(["X_PULSE", "Y_PULSE"], no_effects);
        assert_eq!(r.fired.len(), 2, "both orthogonal self-loops fire");
        assert_eq!(r.actions.len(), 2);
    }

    #[test]
    fn events_live_one_cycle() {
        let c = motorish();
        let mut e = Executor::new(&c);
        let r = e.step_named(["X_PULSE"], no_effects); // not in Move yet
        assert!(r.fired.is_empty());
        e.step_named(["GO"], no_effects);
        // The earlier X_PULSE is long gone.
        let r = e.step_named(Vec::<&str>::new(), no_effects);
        assert!(r.fired.is_empty());
    }

    #[test]
    fn raised_events_visible_next_cycle() {
        let mut b = ChartBuilder::new("relay");
        b.event("A", None);
        b.internal_event("B");
        b.state("S1", StateKind::Basic).transition("S2", "A/Raise()");
        b.state("S2", StateKind::Basic).transition("S3", "B");
        b.basic("S3");
        let c = b.build().unwrap();
        let mut e = Executor::new(&c);
        let raise = |call: &ActionCall| {
            if call.function == "Raise" {
                ActionEffects { raise: vec!["B".into()], ..Default::default() }
            } else {
                ActionEffects::default()
            }
        };
        e.step_named(["A"], raise);
        assert!(e.configuration().is_active(c.state_by_name("S2").unwrap()));
        // B was raised, fires now without external input.
        e.step_named(Vec::<&str>::new(), raise);
        assert!(e.configuration().is_active(c.state_by_name("S3").unwrap()));
    }

    #[test]
    fn outer_transition_preempts_inner() {
        // Like ERROR/Stop() on Operation in Fig. 6.
        let mut b = ChartBuilder::new("preempt");
        b.event("E", None);
        b.state("Top", StateKind::Or).contains(["Op", "Err"]).default_child("Op");
        b.state("Op", StateKind::Or).contains(["A", "B"]).default_child("A");
        {
            let mut s = b.state("A", StateKind::Basic);
            s.transition("B", "E");
        }
        b.basic("B");
        b.basic("Err");
        // Outer transition on the composite Op, same trigger.
        // Note: declared after the inner one, but outer priority wins.
        {
            // Need to re-open Op: builder keeps pending list, so add via a
            // second scope on a fresh builder instead.
        }
        let mut b2 = ChartBuilder::new("preempt");
        b2.event("E", None);
        b2.state("Top", StateKind::Or).contains(["Op", "Err"]).default_child("Op");
        b2.state("Op", StateKind::Or)
            .contains(["A", "B"])
            .default_child("A")
            .transition("Err", "E");
        b2.state("A", StateKind::Basic).transition("B", "E");
        b2.basic("B");
        b2.basic("Err");
        let c = b2.build().unwrap();
        let mut e = Executor::new(&c);
        let r = e.step_named(["E"], no_effects);
        assert_eq!(r.fired.len(), 1);
        assert!(e.configuration().is_active(c.state_by_name("Err").unwrap()));
        assert!(!e.configuration().is_active(c.state_by_name("B").unwrap()));
    }

    #[test]
    fn guard_blocks_until_condition_set() {
        let mut b = ChartBuilder::new("guard");
        b.event("E", None);
        b.condition("OK", false);
        b.state("A", StateKind::Basic).transition("B", "E [OK]");
        b.basic("B");
        let c = b.build().unwrap();
        let mut e = Executor::new(&c);
        e.step_named(["E"], no_effects);
        assert!(e.configuration().is_active(c.state_by_name("A").unwrap()));
        e.set_condition(c.condition_by_name("OK").unwrap(), true);
        e.step_named(["E"], no_effects);
        assert!(e.configuration().is_active(c.state_by_name("B").unwrap()));
    }

    #[test]
    fn condition_writes_apply_at_cycle_end() {
        // Two transitions in the same cycle: one sets a condition the
        // other one's guard tests. Write-back semantics mean the guard
        // still sees the old value this cycle.
        let mut b = ChartBuilder::new("wb");
        b.event("E", None);
        b.condition("C", false);
        b.state("P", StateKind::And).contains(["L", "R"]);
        b.state("L", StateKind::Or).contains(["L1", "L2"]).default_child("L1");
        b.state("L1", StateKind::Basic).transition("L2", "E/SetC()");
        b.basic("L2");
        b.state("R", StateKind::Or).contains(["R1", "R2"]).default_child("R1");
        b.state("R1", StateKind::Basic).transition("R2", "E [C]");
        b.basic("R2");
        let c = b.build().unwrap();
        let mut e = Executor::new(&c);
        let set_c = |call: &ActionCall| {
            if call.function == "SetC" {
                ActionEffects { set_conditions: vec![("C".into(), true)], ..Default::default() }
            } else {
                ActionEffects::default()
            }
        };
        let r = e.step_named(["E"], set_c);
        assert_eq!(r.fired.len(), 1, "guarded transition must not see the in-cycle write");
        assert!(e.configuration().is_active(c.state_by_name("R1").unwrap()));
        // Next cycle the condition is visible.
        e.step_named(["E"], set_c);
        assert!(e.configuration().is_active(c.state_by_name("R2").unwrap()));
    }

    #[test]
    fn triggerless_transition_fires_immediately() {
        // Fig. 5 XStart2 --/StartMotor()--> RunX is a completion
        // transition with actions only.
        let mut b = ChartBuilder::new("compl");
        b.event("GO", None);
        b.state("Top", StateKind::Or).contains(["Idle", "Start", "Run"]).default_child("Idle");
        b.state("Idle", StateKind::Basic).transition("Start", "GO");
        b.state("Start", StateKind::Basic).transition("Run", "/StartMotor(MX, XParams)");
        b.basic("Run");
        let c = b.build().unwrap();
        let mut e = Executor::new(&c);
        e.step_named(["GO"], no_effects);
        assert!(e.configuration().is_active(c.state_by_name("Start").unwrap()));
        let r = e.step_named(Vec::<&str>::new(), no_effects);
        assert_eq!(r.actions.len(), 1);
        assert!(e.configuration().is_active(c.state_by_name("Run").unwrap()));
    }

    #[test]
    fn reset_matches_fresh_executor() {
        let c = motorish();
        let all: Vec<String> = c.events().map(|ev| ev.name.clone()).collect();
        let walk = |e: &mut Executor| {
            let mut seed = 0xdeadbeefu64;
            let mut trace = Vec::new();
            for _ in 0..100 {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let mask = seed >> 32;
                let evs: Vec<&str> = all
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, n)| n.as_str())
                    .collect();
                let r = e.step_named(evs, no_effects);
                trace.push((r.fired.clone(), r.entered.clone(), r.exited.clone()));
            }
            trace
        };
        let mut fresh = Executor::new(&c);
        let reference = walk(&mut fresh);
        // A dirtied then reset executor replays the identical trace.
        let mut reused = Executor::new(&c);
        walk(&mut reused);
        reused.reset();
        assert_eq!(reused.cycle(), 0);
        assert_eq!(walk(&mut reused), reference);
        assert!(reused.configuration().is_consistent(&c));
    }

    #[test]
    fn configuration_stays_consistent_under_random_events() {
        let c = motorish();
        let mut e = Executor::new(&c);
        let all: Vec<String> = c.events().map(|ev| ev.name.clone()).collect();
        // Deterministic pseudo-random walk.
        let mut seed = 0x9e3779b9u64;
        for _ in 0..500 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let mask = seed >> 32;
            let evs: Vec<&str> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, n)| n.as_str())
                .collect();
            e.step_named(evs, no_effects);
            assert!(e.configuration().is_consistent(&c));
        }
    }
}
