//! Bridges the statechart's typed errors onto the shared
//! [`pscp_diag`] model.
//!
//! Stable codes: `SC101` for textual-format syntax errors, `SC201`..
//! `SC214` for the structural [`ChartError`] variants (one code per
//! variant), and `SC301`..`SC304` for the non-fatal lint
//! [`Warning`]s. The recovering pipeline reports every finding through
//! an [`Emitter`] that also keeps the *first* typed error verbatim, so
//! the legacy fail-fast entry points return exactly what they always
//! returned.

use crate::error::{ChartError, ParseError};
use crate::validate::Warning;
use pscp_diag::{Diagnostic, DiagnosticSink, Pos, Source};

/// Stable diagnostic code for a structural chart error.
pub fn chart_code(e: &ChartError) -> &'static str {
    match e {
        ChartError::UnknownState(_) => "SC201",
        ChartError::UnknownEvent(_) => "SC202",
        ChartError::UnknownCondition(_) => "SC203",
        ChartError::DuplicateName(_) => "SC204",
        ChartError::MultipleParents(_) => "SC205",
        ChartError::ContainmentCycle(_) => "SC206",
        ChartError::MissingDefault(_) => "SC207",
        ChartError::DefaultNotChild { .. } => "SC208",
        ChartError::BasicWithChildren(_) => "SC209",
        ChartError::DegenerateAnd(_) => "SC210",
        ChartError::NoRoot => "SC211",
        ChartError::DisconnectedTransition { .. } => "SC212",
        ChartError::UnresolvedAtom(_) => "SC213",
        ChartError::Empty => "SC214",
    }
}

/// Stable diagnostic code for a lint warning.
pub fn warning_code(w: &Warning) -> &'static str {
    match w {
        Warning::DegenerateAnd(_) => "SC301",
        Warning::PossiblyUnreachable(_) => "SC302",
        Warning::NondeterministicChoice { .. } => "SC303",
        Warning::UnusedEvent(_) => "SC304",
    }
}

/// Converts a structural error to a shared diagnostic (chart errors
/// carry no source position, so the span is unknown).
pub fn diagnostic_for_chart(e: &ChartError) -> Diagnostic {
    Diagnostic::error(Source::Chart, chart_code(e), e.to_string())
}

/// Converts a positioned syntax error to a shared diagnostic.
pub fn diagnostic_for_parse(e: &ParseError) -> Diagnostic {
    let span = if e.line == 0 {
        pscp_diag::Span::NONE
    } else {
        pscp_diag::Span::new(Pos::new(e.line, e.column, 0), Pos::new(e.line, e.column, 0))
    };
    Diagnostic::error(Source::Chart, "SC101", e.message.clone()).with_span(span)
}

/// Converts a lint warning to a shared (warning-severity) diagnostic.
pub fn diagnostic_for_warning(w: &Warning) -> Diagnostic {
    let message = match w {
        Warning::DegenerateAnd(n) => {
            format!("and-state `{n}` has fewer than two children")
        }
        Warning::PossiblyUnreachable(n) => format!("state `{n}` may be unreachable"),
        Warning::NondeterministicChoice { state, first, second } => format!(
            "state `{state}` has nondeterministic transitions #{first} and #{second}"
        ),
        Warning::UnusedEvent(n) => format!("event `{n}` is declared but never used"),
    };
    Diagnostic::warning(Source::Chart, warning_code(w), message)
}

/// The first typed error an [`Emitter`] saw, preserving which legacy
/// error type it was.
pub(crate) enum FirstError {
    /// A positioned syntax error.
    Parse(ParseError),
    /// A structural chart error.
    Chart(ChartError),
}

impl FirstError {
    /// Adapts to the parse entry points' error type (structural errors
    /// become position-less parse errors, as they always did).
    pub fn into_parse_error(self) -> ParseError {
        match self {
            FirstError::Parse(e) => e,
            FirstError::Chart(e) => ParseError::from(e),
        }
    }
}

/// Accumulates typed chart errors into a shared sink, remembering the
/// first one for the legacy adapters.
pub(crate) struct Emitter<'a> {
    sink: &'a mut DiagnosticSink,
    first: Option<FirstError>,
    errors: usize,
}

impl<'a> Emitter<'a> {
    pub fn new(sink: &'a mut DiagnosticSink) -> Self {
        Emitter { sink, first: None, errors: 0 }
    }

    /// Records a syntax error and keeps going.
    pub fn emit_parse(&mut self, e: ParseError) {
        self.sink.push(diagnostic_for_parse(&e));
        if self.first.is_none() {
            self.first = Some(FirstError::Parse(e));
        }
        self.errors += 1;
    }

    /// Records a structural error and keeps going.
    pub fn emit_chart(&mut self, e: ChartError) {
        self.sink.push(diagnostic_for_chart(&e));
        if self.first.is_none() {
            self.first = Some(FirstError::Chart(e));
        }
        self.errors += 1;
    }

    /// Records a non-fatal lint warning.
    pub fn warn(&mut self, w: &Warning) {
        self.sink.push(diagnostic_for_warning(w));
    }

    /// How many errors this emitter has seen (warnings excluded).
    pub fn errors(&self) -> usize {
        self.errors
    }

    /// The first typed error, surrendering it to the adapter.
    pub fn take_first(&mut self) -> Option<FirstError> {
        self.first.take()
    }

    /// The first typed error as a [`ChartError`], for the build/validate
    /// adapters (whose pipelines emit only structural errors).
    pub fn take_first_chart(&mut self) -> Option<ChartError> {
        match self.first.take() {
            Some(FirstError::Chart(e)) => Some(e),
            _ => None,
        }
    }
}
