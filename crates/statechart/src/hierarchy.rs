//! Structural queries over the state hierarchy.
//!
//! All queries are O(depth) or O(subtree); charts in this domain are small
//! (tens to hundreds of states), so no preprocessing is needed.

use crate::model::{Chart, StateId, StateKind};

impl Chart {
    /// Iterator over `s` and its ancestors up to the root, innermost first.
    pub fn ancestors_inclusive(&self, s: StateId) -> AncestorsInclusive<'_> {
        AncestorsInclusive { chart: self, cur: Some(s) }
    }

    /// Iterator over the proper ancestors of `s`, innermost first.
    pub fn ancestors(&self, s: StateId) -> AncestorsInclusive<'_> {
        AncestorsInclusive { chart: self, cur: self.state(s).parent }
    }

    /// Depth of `s` (root has depth 0).
    pub fn depth(&self, s: StateId) -> usize {
        self.ancestors(s).count()
    }

    /// True when `a` is a proper ancestor of `b`.
    pub fn is_ancestor(&self, a: StateId, b: StateId) -> bool {
        self.ancestors(b).any(|x| x == a)
    }

    /// True when `a` equals `b` or is a proper ancestor of `b`.
    pub fn is_ancestor_or_self(&self, a: StateId, b: StateId) -> bool {
        a == b || self.is_ancestor(a, b)
    }

    /// Least common ancestor of two states (may be one of them).
    pub fn lca(&self, a: StateId, b: StateId) -> StateId {
        if a == b {
            return a;
        }
        let mut seen: Vec<StateId> = self.ancestors_inclusive(a).collect();
        seen.reverse(); // root first
        let b_chain: Vec<StateId> = {
            let mut v: Vec<StateId> = self.ancestors_inclusive(b).collect();
            v.reverse();
            v
        };
        let mut last = self.root();
        for (x, y) in seen.iter().zip(b_chain.iter()) {
            if x == y {
                last = *x;
            } else {
                break;
            }
        }
        last
    }

    /// The *scope* of a transition from `src` to `dst`: the innermost
    /// OR-state that properly contains both. Exiting/entering happens
    /// strictly inside this scope.
    pub fn transition_scope(&self, src: StateId, dst: StateId) -> StateId {
        let mut scope = self.lca(src, dst);
        // If the LCA is one of the endpoints (self-loop into an ancestor),
        // widen to its parent; also widen past AND-states, since a
        // transition cannot re-dispatch a single AND child.
        while scope == src
            || scope == dst
            || self.state(scope).kind == StateKind::And && scope != self.root()
        {
            match self.state(scope).parent {
                Some(p) => scope = p,
                None => break,
            }
        }
        scope
    }

    /// True when `a` and `b` are orthogonal: distinct, neither contains
    /// the other, and their LCA is an AND-state (so both can be active at
    /// once, in different parallel components).
    pub fn orthogonal(&self, a: StateId, b: StateId) -> bool {
        if a == b || self.is_ancestor(a, b) || self.is_ancestor(b, a) {
            return false;
        }
        self.state(self.lca(a, b)).kind == StateKind::And
    }

    /// All states in the subtree rooted at `s`, preorder, including `s`.
    pub fn descendants_inclusive(&self, s: StateId) -> Vec<StateId> {
        let mut out = Vec::new();
        let mut stack = vec![s];
        while let Some(x) = stack.pop() {
            out.push(x);
            for &c in self.state(x).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Basic (leaf) states in the subtree rooted at `s`.
    pub fn leaves_under(&self, s: StateId) -> Vec<StateId> {
        self.descendants_inclusive(s)
            .into_iter()
            .filter(|&x| self.state(x).children.is_empty())
            .collect()
    }

    /// The parallel siblings of `s`: for each AND-state ancestor `p` of
    /// `s`, the children of `p` not on the path to `s`. These are the
    /// subtrees whose execution time the timing validator bounds while it
    /// explores the component containing `s` (Fig. 4).
    pub fn parallel_siblings(&self, s: StateId) -> Vec<StateId> {
        let mut out = Vec::new();
        let mut child = s;
        for p in self.ancestors(s) {
            if self.state(p).kind == StateKind::And {
                for &c in &self.state(p).children {
                    if c != child {
                        out.push(c);
                    }
                }
            }
            child = p;
        }
        out
    }

    /// Maximum nesting depth of the chart.
    pub fn max_depth(&self) -> usize {
        self.state_ids().map(|s| self.depth(s)).max().unwrap_or(0)
    }
}

/// Iterator created by [`Chart::ancestors_inclusive`].
#[derive(Debug)]
pub struct AncestorsInclusive<'a> {
    chart: &'a Chart,
    cur: Option<StateId>,
}

impl Iterator for AncestorsInclusive<'_> {
    type Item = StateId;

    fn next(&mut self) -> Option<StateId> {
        let cur = self.cur?;
        self.cur = self.chart.state(cur).parent;
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ChartBuilder;

    /// Builds the shape of the paper's Fig. 4:
    /// Assembly(OR) -> { Off, Operating(AND) -> { Idle?, ... } }
    /// Operating contains DataPreparation(OR) and Sibling(OR).
    fn fig4_like() -> Chart {
        let mut b = ChartBuilder::new("fig4");
        b.event("DATA_VALID", Some(1500));
        b.state("Assembly", crate::StateKind::Or)
            .contains(["Off", "Operating"])
            .default_child("Off");
        b.basic("Off");
        b.state("Operating", crate::StateKind::And)
            .contains(["DataPreparation", "Sibling"]);
        b.state("DataPreparation", crate::StateKind::Or)
            .contains(["OpReady", "Empty", "Bounds", "NoData"])
            .default_child("OpReady");
        b.state("Sibling", crate::StateKind::Or).contains(["Idle", "Run"]).default_child("Idle");
        b.state("OpReady", crate::StateKind::Basic).transition("Empty", "DATA_VALID");
        b.build().unwrap()
    }

    #[test]
    fn ancestors_and_depth() {
        let c = fig4_like();
        let op_ready = c.state_by_name("OpReady").unwrap();
        let chain: Vec<String> =
            c.ancestors(op_ready).map(|s| c.state(s).name.clone()).collect();
        assert_eq!(chain, vec!["DataPreparation", "Operating", "Assembly"]);
        assert_eq!(c.depth(op_ready), 3);
        assert_eq!(c.depth(c.root()), 0);
    }

    #[test]
    fn lca_cases() {
        let c = fig4_like();
        let op_ready = c.state_by_name("OpReady").unwrap();
        let empty = c.state_by_name("Empty").unwrap();
        let idle = c.state_by_name("Idle").unwrap();
        let off = c.state_by_name("Off").unwrap();
        let dp = c.state_by_name("DataPreparation").unwrap();
        let operating = c.state_by_name("Operating").unwrap();
        let assembly = c.state_by_name("Assembly").unwrap();

        assert_eq!(c.lca(op_ready, empty), dp);
        assert_eq!(c.lca(op_ready, idle), operating);
        assert_eq!(c.lca(op_ready, off), assembly);
        assert_eq!(c.lca(op_ready, op_ready), op_ready);
        assert_eq!(c.lca(op_ready, dp), dp);
    }

    #[test]
    fn orthogonality() {
        let c = fig4_like();
        let op_ready = c.state_by_name("OpReady").unwrap();
        let idle = c.state_by_name("Idle").unwrap();
        let empty = c.state_by_name("Empty").unwrap();
        let dp = c.state_by_name("DataPreparation").unwrap();
        assert!(c.orthogonal(op_ready, idle));
        assert!(!c.orthogonal(op_ready, empty)); // same OR region
        assert!(!c.orthogonal(op_ready, dp)); // containment
    }

    #[test]
    fn parallel_siblings_found() {
        let c = fig4_like();
        let op_ready = c.state_by_name("OpReady").unwrap();
        let sibs: Vec<String> =
            c.parallel_siblings(op_ready).iter().map(|&s| c.state(s).name.clone()).collect();
        assert_eq!(sibs, vec!["Sibling"]);
        let off = c.state_by_name("Off").unwrap();
        assert!(c.parallel_siblings(off).is_empty());
    }

    #[test]
    fn transition_scope_is_or_state() {
        let c = fig4_like();
        let op_ready = c.state_by_name("OpReady").unwrap();
        let empty = c.state_by_name("Empty").unwrap();
        let idle = c.state_by_name("Idle").unwrap();
        assert_eq!(c.transition_scope(op_ready, empty), c.state_by_name("DataPreparation").unwrap());
        // Crossing parallel components widens past the AND-state.
        assert_eq!(c.transition_scope(op_ready, idle), c.state_by_name("Assembly").unwrap());
    }

    #[test]
    fn descendants_and_leaves() {
        let c = fig4_like();
        let operating = c.state_by_name("Operating").unwrap();
        let leaves: Vec<String> =
            c.leaves_under(operating).iter().map(|&s| c.state(s).name.clone()).collect();
        assert_eq!(leaves, vec!["OpReady", "Empty", "Bounds", "NoData", "Idle", "Run"]);
        assert_eq!(c.descendants_inclusive(operating).len(), 9);
    }
}
