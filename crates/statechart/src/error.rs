//! Error types for chart construction, parsing and analysis.

use std::fmt;

/// Error produced while building or analysing a chart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChartError {
    /// A state name was referenced but never declared or created.
    UnknownState(String),
    /// An event name was referenced but never declared.
    UnknownEvent(String),
    /// A condition name was referenced but never declared.
    UnknownCondition(String),
    /// Two states (or two events, …) share a name.
    DuplicateName(String),
    /// A state is contained in more than one parent.
    MultipleParents(String),
    /// The containment relation has a cycle through the named state.
    ContainmentCycle(String),
    /// An OR-state has no default child.
    MissingDefault(String),
    /// The named default is not a child of the OR-state.
    DefaultNotChild { state: String, default: String },
    /// A basic state was given children.
    BasicWithChildren(String),
    /// An AND-state has fewer than two children.
    DegenerateAnd(String),
    /// The chart has no root (or several unrelated roots and autoroot off).
    NoRoot,
    /// A transition connects two states with no common ancestor scope.
    DisconnectedTransition { source: String, target: String },
    /// A trigger/guard atom could not be resolved to an event or condition.
    UnresolvedAtom(String),
    /// The chart is empty.
    Empty,
}

impl fmt::Display for ChartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChartError::UnknownState(n) => write!(f, "unknown state `{n}`"),
            ChartError::UnknownEvent(n) => write!(f, "unknown event `{n}`"),
            ChartError::UnknownCondition(n) => write!(f, "unknown condition `{n}`"),
            ChartError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            ChartError::MultipleParents(n) => {
                write!(f, "state `{n}` is contained in more than one parent")
            }
            ChartError::ContainmentCycle(n) => {
                write!(f, "containment cycle through state `{n}`")
            }
            ChartError::MissingDefault(n) => {
                write!(f, "or-state `{n}` has no default child")
            }
            ChartError::DefaultNotChild { state, default } => {
                write!(f, "default `{default}` is not a child of or-state `{state}`")
            }
            ChartError::BasicWithChildren(n) => {
                write!(f, "basic state `{n}` must not contain children")
            }
            ChartError::DegenerateAnd(n) => {
                write!(f, "and-state `{n}` needs at least two children")
            }
            ChartError::NoRoot => write!(f, "chart has no unique root state"),
            ChartError::DisconnectedTransition { source, target } => {
                write!(f, "transition `{source}` -> `{target}` spans disconnected subtrees")
            }
            ChartError::UnresolvedAtom(n) => {
                write!(f, "label atom `{n}` is neither an event nor a condition")
            }
            ChartError::Empty => write!(f, "chart contains no states"),
        }
    }
}

impl std::error::Error for ChartError {}

/// Error produced by the textual-format parser, with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub column: u32,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error at the given position.
    pub fn new(line: u32, column: u32, message: impl Into<String>) -> Self {
        ParseError { line, column, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<ChartError> for ParseError {
    fn from(e: ChartError) -> Self {
        ParseError::new(0, 0, e.to_string())
    }
}
