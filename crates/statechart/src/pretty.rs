//! Pretty-printer emitting the textual statechart format.
//!
//! `parse(to_text(chart))` reproduces an equivalent chart (states,
//! kinds, hierarchy, transitions, declarations); this is checked by the
//! round-trip tests in [`crate::parse`].

use crate::builder::IMPLICIT_ROOT;
use crate::model::{Chart, StateKind, Transition};
use std::fmt::Write as _;

/// Renders a chart in the textual format.
pub fn to_text(chart: &Chart) -> String {
    let mut out = String::new();
    if chart.name() != "chart" {
        let _ = writeln!(out, "chart {};", chart.name());
    }
    for e in chart.events() {
        let _ = write!(out, "event {}", e.name);
        if e.width != 1 {
            let _ = write!(out, " width {}", e.width);
        }
        if let Some(p) = &e.port {
            let _ = write!(out, " port {p}");
        }
        if let Some(per) = e.period {
            let _ = write!(out, " period {per}");
        }
        if e.internal {
            let _ = write!(out, " internal");
        }
        let _ = writeln!(out, ";");
    }
    for c in chart.conditions() {
        let _ = write!(out, "condition {}", c.name);
        if c.width != 1 {
            let _ = write!(out, " width {}", c.width);
        }
        if let Some(p) = &c.port {
            let _ = write!(out, " port {p}");
        }
        if c.initial {
            let _ = write!(out, " initial true");
        }
        let _ = writeln!(out, ";");
    }
    for p in chart.data_ports() {
        let _ = writeln!(out, "port {} width {} addr {} {};", p.name, p.width, p.address, p.direction);
    }
    let _ = writeln!(out);

    for sid in chart.state_ids() {
        let s = chart.state(sid);
        // The implicit root is reconstructed by the parser; don't print it.
        if s.name == IMPLICIT_ROOT {
            continue;
        }
        let has_body = !s.children.is_empty()
            || chart.outgoing(sid).next().is_some()
            || s.is_reference
            || !s.entry_actions.is_empty()
            || !s.exit_actions.is_empty();
        let _ = write!(out, "{} {}", s.kind, s.name);
        if !has_body {
            let _ = writeln!(out, " {{ }}");
            continue;
        }
        let _ = writeln!(out, " {{");
        if s.is_reference {
            let _ = writeln!(out, "    reference;");
        }
        if !s.children.is_empty() {
            let names: Vec<&str> =
                s.children.iter().map(|&c| chart.state(c).name.as_str()).collect();
            let _ = writeln!(out, "    contains {};", names.join(", "));
        }
        for call in &s.entry_actions {
            let _ = writeln!(out, "    entry \"{call}\";");
        }
        for call in &s.exit_actions {
            let _ = writeln!(out, "    exit \"{call}\";");
        }
        if let Some(d) = s.default {
            let _ = writeln!(out, "    default {};", chart.state(d).name);
        }
        if s.history {
            let _ = writeln!(out, "    history;");
        }
        for tid in chart.outgoing(sid) {
            let t = chart.transition(tid);
            let _ = writeln!(out, "    transition {{");
            let _ = writeln!(out, "        target {};", chart.state(t.target).name);
            let _ = writeln!(out, "        label \"{}\";", label_text(t));
            if let Some(c) = t.explicit_cost {
                let _ = writeln!(out, "        cost {c};");
            }
            let _ = writeln!(out, "    }}");
        }
        let _ = writeln!(out, "}}");
    }
    out
}

/// Reconstructs the `trigger[guard]/actions` label text of a transition.
pub fn label_text(t: &Transition) -> String {
    let mut s = String::new();
    if let Some(trig) = &t.trigger {
        let _ = write!(s, "{trig}");
    }
    if let Some(g) = &t.guard {
        let _ = write!(s, " [{g}]");
    }
    if !t.actions.is_empty() {
        let calls: Vec<String> = t.actions.iter().map(|a| a.to_string()).collect();
        let _ = write!(s, "/{}", calls.join(", "));
    }
    s.trim().to_string()
}

/// Renders the hierarchy as an indented tree (for reports and figures).
pub fn tree(chart: &Chart) -> String {
    let mut out = String::new();
    fn rec(chart: &Chart, s: crate::StateId, indent: usize, out: &mut String) {
        let st = chart.state(s);
        let kind = match st.kind {
            StateKind::Basic => "",
            StateKind::Or => " (or)",
            StateKind::And => " (and)",
        };
        let def = if chart
            .state(s)
            .parent
            .map(|p| chart.state(p).default == Some(s))
            .unwrap_or(false)
        {
            " *"
        } else {
            ""
        };
        let _ = writeln!(out, "{}{}{}{}", "  ".repeat(indent), st.name, kind, def);
        for &c in &st.children {
            rec(chart, c, indent + 1, out);
        }
    }
    rec(chart, chart.root(), 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ChartBuilder;
    use crate::model::StateKind;

    #[test]
    fn label_text_reconstruction() {
        let mut b = ChartBuilder::new("c");
        b.event("E", None);
        b.condition("C", false);
        b.state("A", StateKind::Basic).transition("B", "E [C]/F(x, y)");
        b.basic("B");
        let chart = b.build().unwrap();
        let t = chart.transitions().next().unwrap();
        assert_eq!(label_text(t), "E [C]/F(x, y)");
    }

    #[test]
    fn tree_renders_all_states() {
        let mut b = ChartBuilder::new("c");
        b.state("Top", StateKind::Or).contains(["A", "B"]).default_child("A");
        b.basic("A");
        b.basic("B");
        let chart = b.build().unwrap();
        let t = tree(&chart);
        assert!(t.contains("Top (or)"));
        assert!(t.contains("A *"), "default child marked: {t}");
        assert!(t.contains("B"));
    }
}
