//! Exclusivity-set state encoding and the configuration-register layout.
//!
//! The efficient state encoding of a chart "involves the generation of
//! exclusivity sets" (§2, after Drusinsky's single-block state-assignment
//! procedure): the children of every OR-state are mutually exclusive and
//! can therefore share one binary-encoded field of `ceil(log2(n))` bits,
//! while the children of AND-states are concurrent and need independent
//! fields. The resulting *state part*, together with one bit per event
//! and condition, forms the configuration register (CR) that the SLA
//! reads and writes (Fig. 1).
//!
//! A [`CrLayout`] maps every state to the conjunction of CR-bit literals
//! that is true exactly when the state is active —
//! [`CrLayout::activity_literals`] — which is precisely what the SLA
//! synthesiser needs to build its product terms. A one-hot encoding is
//! also provided for the area/latency ablation benchmarks.

use crate::model::{Chart, ConditionId, EventId, StateId, StateKind};
use crate::semantics::Configuration;
use serde::{Deserialize, Serialize};

/// State-encoding style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EncodingStyle {
    /// Exclusivity sets: one binary field per OR-state (the paper's
    /// encoding).
    Exclusivity,
    /// One flip-flop per state (baseline for the ablation).
    OneHot,
}

/// A binary field in the state part of the CR, owned by one OR-state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateField {
    /// The OR-state whose active child this field encodes.
    pub owner: StateId,
    /// Bit offset inside the CR.
    pub offset: u32,
    /// Field width in bits (`ceil(log2(children))`, may be 0).
    pub width: u32,
    /// `codes[i]` is the code assigned to `children[i]` of the owner.
    pub codes: Vec<u32>,
}

/// The complete configuration-register layout for a chart.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrLayout {
    style: EncodingStyle,
    /// Binary fields (exclusivity style) in hierarchy order.
    fields: Vec<StateField>,
    /// One-hot bit per state (one-hot style); `u32::MAX` when absent.
    onehot_bits: Vec<u32>,
    state_width: u32,
    /// Offset of each event's bit.
    event_offsets: Vec<u32>,
    /// Offset of each condition's bit (conditions may be wider than 1).
    condition_offsets: Vec<u32>,
    condition_widths: Vec<u32>,
    total_width: u32,
}

impl CrLayout {
    /// Builds the CR layout for `chart` with the chosen style.
    pub fn new(chart: &Chart, style: EncodingStyle) -> Self {
        let mut fields = Vec::new();
        let mut onehot_bits = vec![u32::MAX; chart.state_count()];
        let mut offset = 0u32;

        match style {
            EncodingStyle::Exclusivity => {
                // Preorder over the hierarchy gives stable field order.
                for s in chart.descendants_inclusive(chart.root()) {
                    let st = chart.state(s);
                    if st.kind == StateKind::Or && !st.children.is_empty() {
                        let n = st.children.len() as u32;
                        let width = 32 - (n - 1).leading_zeros().min(31);
                        let width = if n <= 1 { 0 } else { width };
                        // The default child always takes code 0, so a
                        // never-entered (all-zero) field decodes to the
                        // default — which also makes history fields work
                        // for free: an inactive region's field simply
                        // retains the last active child's code.
                        let default_idx = st
                            .default
                            .and_then(|d| st.children.iter().position(|&c| c == d))
                            .unwrap_or(0) as u32;
                        let codes: Vec<u32> = (0..n)
                            .map(|i| {
                                if i == default_idx {
                                    0
                                } else if i < default_idx {
                                    i + 1
                                } else {
                                    i
                                }
                            })
                            .collect();
                        fields.push(StateField { owner: s, offset, width, codes });
                        offset += width;
                    }
                }
            }
            EncodingStyle::OneHot => {
                for s in chart.state_ids() {
                    if s != chart.root() {
                        onehot_bits[s.index()] = offset;
                        offset += 1;
                    }
                }
            }
        }
        let state_width = offset;

        let mut event_offsets = Vec::with_capacity(chart.events().len());
        for _ev in chart.events() {
            event_offsets.push(offset);
            offset += 1;
        }
        let mut condition_offsets = Vec::new();
        let mut condition_widths = Vec::new();
        for c in chart.conditions() {
            condition_offsets.push(offset);
            condition_widths.push(c.width.max(1) as u32);
            offset += c.width.max(1) as u32;
        }

        CrLayout {
            style,
            fields,
            onehot_bits,
            state_width,
            event_offsets,
            condition_offsets,
            condition_widths,
            total_width: offset,
        }
    }

    /// Encoding style used.
    pub fn style(&self) -> EncodingStyle {
        self.style
    }

    /// Total CR width in bits.
    pub fn width(&self) -> u32 {
        self.total_width
    }

    /// Width of the state part.
    pub fn state_width(&self) -> u32 {
        self.state_width
    }

    /// Number of event bits.
    pub fn event_width(&self) -> u32 {
        self.event_offsets.len() as u32
    }

    /// Width of the condition part.
    pub fn condition_width(&self) -> u32 {
        self.condition_widths.iter().sum()
    }

    /// The binary fields of the state part (exclusivity style).
    pub fn fields(&self) -> &[StateField] {
        &self.fields
    }

    /// One-hot bit of a state (one-hot style only; `None` for the root
    /// or in exclusivity style).
    pub fn onehot_bit(&self, s: StateId) -> Option<u32> {
        match self.onehot_bits.get(s.index()) {
            Some(&b) if b != u32::MAX => Some(b),
            _ => None,
        }
    }

    /// Bit offset of an event's bit in the CR.
    pub fn event_bit(&self, e: EventId) -> u32 {
        self.event_offsets[e.index()]
    }

    /// Bit offset of a condition's least-significant bit in the CR.
    pub fn condition_bit(&self, c: ConditionId) -> u32 {
        self.condition_offsets[c.index()]
    }

    /// The conjunction of CR-bit literals `(bit, value)` that holds
    /// exactly when `s` is active. Empty for the root (always active).
    pub fn activity_literals(&self, chart: &Chart, s: StateId) -> Vec<(u32, bool)> {
        match self.style {
            EncodingStyle::OneHot => {
                // The full ancestor chain: history regions retain their
                // child bits while inactive, so a single bit is not
                // sufficient evidence of activity.
                let mut lits: Vec<(u32, bool)> = Vec::new();
                let mut cur = Some(s);
                while let Some(x) = cur {
                    if x == chart.root() {
                        break;
                    }
                    if let Some(&b) = self.onehot_bits.get(x.index()) {
                        if b != u32::MAX {
                            lits.push((b, true));
                        }
                    }
                    cur = chart.state(x).parent;
                }
                lits.sort_unstable();
                lits
            }
            EncodingStyle::Exclusivity => {
                let mut lits = Vec::new();
                let mut child = s;
                for anc in chart.ancestors(s) {
                    if chart.state(anc).kind == StateKind::Or {
                        if let Some(f) = self.fields.iter().find(|f| f.owner == anc) {
                            let idx = chart
                                .state(anc)
                                .children
                                .iter()
                                .position(|&c| c == child)
                                .expect("child on ancestor path");
                            let code = f.codes[idx];
                            for b in 0..f.width {
                                lits.push((f.offset + b, code & (1 << b) != 0));
                            }
                        }
                    }
                    child = anc;
                }
                lits.sort_unstable();
                lits
            }
        }
    }

    /// Encodes a configuration into CR state-part bits (events and
    /// conditions left zero).
    pub fn encode(&self, chart: &Chart, config: &Configuration) -> Vec<bool> {
        let mut bits = vec![false; self.total_width as usize];
        match self.style {
            EncodingStyle::Exclusivity => {
                for f in &self.fields {
                    if config.is_active(f.owner) {
                        let owner = chart.state(f.owner);
                        if let Some(idx) =
                            owner.children.iter().position(|&c| config.is_active(c))
                        {
                            let code = f.codes[idx];
                            for b in 0..f.width {
                                bits[(f.offset + b) as usize] = code & (1 << b) != 0;
                            }
                        }
                    }
                }
            }
            EncodingStyle::OneHot => {
                for s in chart.state_ids() {
                    let bit = self.onehot_bits[s.index()];
                    if bit != u32::MAX {
                        bits[bit as usize] = config.is_active(s);
                    }
                }
            }
        }
        bits
    }

    /// Decides from CR bits whether state `s` is active.
    pub fn is_active_in(&self, chart: &Chart, bits: &[bool], s: StateId) -> bool {
        // With exclusivity encoding an inactive subtree's fields are
        // dangling; activity therefore requires the *whole* literal chain.
        self.activity_literals(chart, s).iter().all(|&(bit, v)| bits[bit as usize] == v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ChartBuilder;
    use crate::semantics::Executor;

    fn sample() -> Chart {
        let mut b = ChartBuilder::new("enc");
        b.event("E", None);
        b.event("F", None);
        b.condition("C", false);
        b.state("Top", StateKind::Or).contains(["A", "P"]).default_child("A");
        b.basic("A");
        b.state("P", StateKind::And).contains(["L", "R"]);
        b.state("L", StateKind::Or)
            .contains(["L1", "L2", "L3"])
            .default_child("L1");
        b.basic("L1");
        b.basic("L2");
        b.basic("L3");
        b.state("R", StateKind::Or).contains(["R1", "R2"]).default_child("R1");
        b.basic("R1");
        b.basic("R2");
        b.build().unwrap()
    }

    #[test]
    fn exclusivity_width_is_logarithmic() {
        let c = sample();
        let l = CrLayout::new(&c, EncodingStyle::Exclusivity);
        // Top: 2 children -> 1 bit, L: 3 children -> 2 bits, R: 2 -> 1.
        assert_eq!(l.state_width(), 4);
        assert_eq!(l.event_width(), 2);
        assert_eq!(l.condition_width(), 1);
        assert_eq!(l.width(), 7);
    }

    #[test]
    fn onehot_width_is_linear() {
        let c = sample();
        let l = CrLayout::new(&c, EncodingStyle::OneHot);
        assert_eq!(l.state_width(), c.state_count() as u32 - 1);
    }

    #[test]
    fn exclusivity_beats_onehot_on_wide_or() {
        let mut b = ChartBuilder::new("wide");
        b.event("E", None);
        let names: Vec<String> = (0..16).map(|i| format!("S{i}")).collect();
        b.state("Top", StateKind::Or)
            .contains(names.iter().map(|s| s.as_str()))
            .default_child("S0");
        let c = b.build().unwrap();
        let ex = CrLayout::new(&c, EncodingStyle::Exclusivity);
        let oh = CrLayout::new(&c, EncodingStyle::OneHot);
        assert_eq!(ex.state_width(), 4);
        assert_eq!(oh.state_width(), 16);
    }

    #[test]
    fn activity_literals_chain_through_hierarchy() {
        let c = sample();
        let l = CrLayout::new(&c, EncodingStyle::Exclusivity);
        let root_lits = l.activity_literals(&c, c.root());
        assert!(root_lits.is_empty());
        let l2 = c.state_by_name("L2").unwrap();
        let lits = l.activity_literals(&c, l2);
        // L2 needs: Top field selects P (1 bit) + L field selects L2 (2 bits).
        assert_eq!(lits.len(), 3);
    }

    #[test]
    fn encode_decode_round_trip_both_styles() {
        let c = sample();
        for style in [EncodingStyle::Exclusivity, EncodingStyle::OneHot] {
            let l = CrLayout::new(&c, style);
            let mut exec = Executor::new(&c);
            // Walk through a few configurations.
            for evs in [vec![], vec!["E"], vec!["F"], vec!["E", "F"]] {
                exec.step_named(evs, |_| Default::default());
                let bits = l.encode(&c, exec.configuration());
                for s in c.state_ids() {
                    assert_eq!(
                        l.is_active_in(&c, &bits, s),
                        exec.configuration().is_active(s),
                        "style {style:?} state {}",
                        c.state(s).name
                    );
                }
            }
        }
    }

    #[test]
    fn single_child_or_needs_no_bits() {
        let mut b = ChartBuilder::new("c");
        b.state("Top", StateKind::Or).contains(["Only"]).default_child("Only");
        b.basic("Only");
        let c = b.build().unwrap();
        let l = CrLayout::new(&c, EncodingStyle::Exclusivity);
        assert_eq!(l.state_width(), 0);
        // Only is still decodably active.
        let exec = Executor::new(&c);
        let bits = l.encode(&c, exec.configuration());
        assert!(l.is_active_in(&c, &bits, c.state_by_name("Only").unwrap()));
    }
}
