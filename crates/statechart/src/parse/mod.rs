//! Parser for the textual statechart format (Fig. 2a of the paper),
//! extended with declaration syntax for events, conditions and data
//! ports so a chart is self-contained.
//!
//! ```text
//! // comment
//! chart PickupHead;                       // optional chart name
//! event DATA_VALID period 1500;          // arrival period in cycles
//! event X_PULSE port PE0 period 300;
//! event END_DATA internal;
//! condition MOVEMENT;                    // persistent boolean
//! condition OK initial true;
//! port Buffer width 8 addr 0x1CF bidir;  // external data port
//!
//! orstate DataPreparation {
//!     contains OpcodeReady, EmptyBuf, Bounds, NoData;
//!     default OpcodeReady;
//!     transition { target Idle1; label "INIT or ALLRESET/InitializeAll()"; }
//! }
//! andstate Operation {
//!     contains DataPreparation, ReachPosition;
//!     transition { target ErrState; label "ERROR/Stop()"; }
//! }
//! basicstate Errstate {
//!     transition { target Idle1; label "INIT or ALLRESET/InitializeAll()"; cost 50; }
//! }
//! ```
//!
//! Undeclared names appearing in `contains` lists or as transition
//! targets become implicit basic states, exactly as in the builder API.

mod lexer;

pub use lexer::{Lexer, Token, TokenKind};

use crate::builder::ChartBuilder;
use crate::diag::Emitter;
use crate::error::ParseError;
use crate::model::{Chart, ConditionDecl, EventDecl, PortDirection, StateKind};
use pscp_diag::DiagnosticSink;

/// Parses a chart from the textual format.
///
/// # Errors
///
/// Returns a [`ParseError`] with position information for syntax errors,
/// or a position-less one wrapping the structural [`crate::ChartError`]s
/// detected while assembling the chart — exactly the first diagnostic
/// [`parse_chart_diag`] would accumulate on the same input.
pub fn parse_chart(source: &str) -> Result<Chart, ParseError> {
    parse_chart_pages(&[source])
}

/// Parses a chart with error recovery: every syntax error is
/// accumulated into `sink` (code `SC101`) and parsing resumes at the
/// next declaration; structural errors from chart assembly (`SC2xx`)
/// and lint warnings (`SC3xx`) are appended. Returns the chart only
/// when this parse added no errors to the sink.
pub fn parse_chart_diag(source: &str, sink: &mut DiagnosticSink) -> Option<Chart> {
    parse_chart_pages_diag(&[source], sink)
}

/// Multi-page variant of [`parse_chart_diag`].
pub fn parse_chart_pages_diag(sources: &[&str], sink: &mut DiagnosticSink) -> Option<Chart> {
    let mut em = Emitter::new(sink);
    let chart = parse_pages_into(sources, &mut em)?;
    for w in crate::validate::lint(&chart) {
        em.warn(&w);
    }
    Some(chart)
}

/// Parses a chart split across several diagram *pages* — the paper's
/// figures reference states on other pages with `@Name` connectors
/// (Fig. 5 is the motion page referenced by Fig. 6's `@MoveX`,
/// `@MoveY`, `@MOVE_PHI`). Since the textual format declares states flat
/// and connects them by name, composition is concatenation: all pages
/// share one namespace, and a `reference;`-marked (or simply undeclared)
/// state on one page binds to its definition on another.
///
/// # Errors
///
/// Syntax errors carry the page index in the message; structural errors
/// (duplicate definitions across pages, unresolved names) come from the
/// final assembly.
pub fn parse_chart_pages(sources: &[&str]) -> Result<Chart, ParseError> {
    let mut sink = DiagnosticSink::new();
    let mut em = Emitter::new(&mut sink);
    match parse_pages_into(sources, &mut em) {
        Some(chart) => Ok(chart),
        None => Err(em
            .take_first()
            .expect("failed parse must carry an error")
            .into_parse_error()),
    }
}

/// Adds the page prefix legacy errors always carried.
fn page_err(page: usize, e: ParseError) -> ParseError {
    ParseError::new(e.line, e.column, format!("page {page}: {}", e.message))
}

/// Recovering core of the parse entry points: tokenises and parses
/// every page (each syntax error resumes at the next declaration), then
/// assembles the chart, so syntax *and* structural findings land in one
/// report. Returns the chart only when nothing was emitted.
fn parse_pages_into(sources: &[&str], em: &mut Emitter) -> Option<Chart> {
    let errors_at_entry = em.errors();
    let mut builder = ChartBuilder::new("chart");
    let mut named = false;
    for (i, src) in sources.iter().enumerate() {
        let mut errs = Vec::new();
        let tokens = Lexer::new(src).tokenize_diag(&mut errs);
        for e in errs {
            em.emit_parse(page_err(i, e));
        }
        let mut p = Parser { tokens, pos: 0 };
        p.parse_into_diag(&mut builder, &mut named, i, em);
    }
    let chart = builder.build_into(em);
    if em.errors() > errors_at_entry {
        return None;
    }
    chart
}

/// Keywords that may start a top-level declaration; the recovery points
/// of [`Parser::sync_toplevel`].
const TOPLEVEL_KWS: &[&str] =
    &["chart", "event", "condition", "port", "basicstate", "orstate", "andstate"];

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError::new(t.line, t.column, msg)
    }

    fn expect_punct(&mut self, ch: char) -> Result<(), ParseError> {
        match &self.peek().kind {
            TokenKind::Punct(c) if *c == ch => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected `{ch}`, found {other}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn expect_number(&mut self) -> Result<u64, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Number(n) => {
                self.bump();
                Ok(n)
            }
            other => Err(self.error(format!("expected number, found {other}"))),
        }
    }

    fn expect_string(&mut self) -> Result<String, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Str(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected string literal, found {other}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Parses one page's declarations into a shared builder, recovering
    /// at declaration granularity: a syntax error is reported through
    /// `em` and parsing resumes at the next top-level keyword.
    fn parse_into_diag(
        &mut self,
        builder: &mut ChartBuilder,
        named: &mut bool,
        page: usize,
        em: &mut Emitter,
    ) {
        while !matches!(self.peek().kind, TokenKind::Eof) {
            let before = self.pos;
            if let Err(e) = self.item(builder, named, page, em) {
                em.emit_parse(page_err(page, e));
                self.sync_toplevel(before);
            }
        }
    }

    /// Parses one top-level declaration.
    fn item(
        &mut self,
        builder: &mut ChartBuilder,
        named: &mut bool,
        page: usize,
        em: &mut Emitter,
    ) -> Result<(), ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(word) => match word.as_str() {
                "chart" => {
                    self.bump();
                    let name = self.expect_ident()?;
                    if *named {
                        return Err(self.error("duplicate `chart` directive"));
                    }
                    *named = true;
                    builder.set_name(name);
                    self.expect_punct(';')
                }
                "event" => {
                    self.bump();
                    let decl = self.parse_event_decl()?;
                    builder.event_decl(decl);
                    Ok(())
                }
                "condition" => {
                    self.bump();
                    let decl = self.parse_condition_decl()?;
                    builder.condition_decl(decl);
                    Ok(())
                }
                "port" => {
                    self.bump();
                    self.parse_port_decl(builder)
                }
                "basicstate" => {
                    self.bump();
                    self.parse_state(builder, StateKind::Basic, page, em)
                }
                "orstate" => {
                    self.bump();
                    self.parse_state(builder, StateKind::Or, page, em)
                }
                "andstate" => {
                    self.bump();
                    self.parse_state(builder, StateKind::And, page, em)
                }
                other => {
                    Err(self.error(format!("expected a declaration keyword, found `{other}`")))
                }
            },
            other => Err(self.error(format!("expected a declaration, found {other}"))),
        }
    }

    /// Skips ahead to the next plausible top-level declaration: a
    /// declaration keyword outside any braces, or end of input. Always
    /// makes progress past `before`.
    fn sync_toplevel(&mut self, before: usize) {
        if self.pos == before {
            self.bump();
        }
        let mut depth = 0u32;
        loop {
            match &self.peek().kind {
                TokenKind::Eof => return,
                TokenKind::Punct('{') => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    self.bump();
                }
                TokenKind::Ident(s) if depth == 0 && TOPLEVEL_KWS.contains(&s.as_str()) => {
                    return
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Skips to the end of a bad state-body item: past the next `;`
    /// outside nested braces, or to the `}` that closes the state (left
    /// for the caller), or end of input. Always makes progress past
    /// `before`.
    fn sync_state_item(&mut self, before: usize) {
        if self.pos == before {
            self.bump();
        }
        let mut depth = 0u32;
        loop {
            match &self.peek().kind {
                TokenKind::Eof => return,
                TokenKind::Punct(';') if depth == 0 => {
                    self.bump();
                    return;
                }
                TokenKind::Punct('{') => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::Punct('}') => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                    self.bump();
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn parse_event_decl(&mut self) -> Result<EventDecl, ParseError> {
        let name = self.expect_ident()?;
        let mut decl =
            EventDecl { name, width: 1, port: None, period: None, internal: false };
        loop {
            if self.eat_keyword("width") {
                decl.width = self.expect_number()? as u8;
            } else if self.eat_keyword("port") {
                decl.port = Some(self.expect_ident()?);
            } else if self.eat_keyword("period") {
                decl.period = Some(self.expect_number()?);
            } else if self.eat_keyword("internal") {
                decl.internal = true;
            } else {
                break;
            }
        }
        self.expect_punct(';')?;
        Ok(decl)
    }

    fn parse_condition_decl(&mut self) -> Result<ConditionDecl, ParseError> {
        let name = self.expect_ident()?;
        let mut decl = ConditionDecl { name, width: 1, port: None, initial: false };
        loop {
            if self.eat_keyword("width") {
                decl.width = self.expect_number()? as u8;
            } else if self.eat_keyword("port") {
                decl.port = Some(self.expect_ident()?);
            } else if self.eat_keyword("initial") {
                let v = self.expect_ident()?;
                decl.initial = match v.as_str() {
                    "true" => true,
                    "false" => false,
                    other => {
                        return Err(
                            self.error(format!("expected `true` or `false`, found `{other}`"))
                        )
                    }
                };
            } else {
                break;
            }
        }
        self.expect_punct(';')?;
        Ok(decl)
    }

    fn parse_port_decl(&mut self, builder: &mut ChartBuilder) -> Result<(), ParseError> {
        let name = self.expect_ident()?;
        let mut width = 8u8;
        let mut addr = 0u16;
        let mut dir = PortDirection::Bidirectional;
        loop {
            if self.eat_keyword("width") {
                width = self.expect_number()? as u8;
            } else if self.eat_keyword("addr") {
                addr = self.expect_number()? as u16;
            } else if self.eat_keyword("in") {
                dir = PortDirection::Input;
            } else if self.eat_keyword("out") {
                dir = PortDirection::Output;
            } else if self.eat_keyword("bidir") {
                dir = PortDirection::Bidirectional;
            } else {
                break;
            }
        }
        self.expect_punct(';')?;
        builder.data_port(name, width, addr, dir);
        Ok(())
    }

    fn parse_state(
        &mut self,
        builder: &mut ChartBuilder,
        kind: StateKind,
        page: usize,
        em: &mut Emitter,
    ) -> Result<(), ParseError> {
        let name = self.expect_ident()?;
        let mut scope = builder.state(name, kind);
        self.expect_punct('{')?;
        loop {
            match &self.peek().kind {
                TokenKind::Punct('}') => {
                    self.bump();
                    break;
                }
                TokenKind::Eof => {
                    return Err(self.error(format!(
                        "expected `contains`, `default`, `transition` or `}}`, found {}",
                        self.peek().kind
                    )))
                }
                _ => {}
            }
            let before = self.pos;
            if let Err(e) = self.state_item(&mut scope) {
                em.emit_parse(page_err(page, e));
                self.sync_state_item(before);
            }
        }
        Ok(())
    }

    /// Parses one item of a state body (`contains`, `default`,
    /// `reference`, `history`, `entry`, `exit`, or a transition block).
    fn state_item(&mut self, scope: &mut crate::builder::StateScope<'_>) -> Result<(), ParseError> {
        if self.eat_keyword("contains") {
            loop {
                let child = self.expect_ident()?;
                scope.contains([child]);
                match &self.peek().kind {
                    TokenKind::Punct(',') => {
                        self.bump();
                    }
                    _ => break,
                }
            }
            self.expect_punct(';')
        } else if self.eat_keyword("default") {
            let d = self.expect_ident()?;
            scope.default_child(d);
            self.expect_punct(';')
        } else if self.eat_keyword("reference") {
            scope.reference();
            self.expect_punct(';')
        } else if self.eat_keyword("history") {
            scope.history();
            self.expect_punct(';')
        } else if self.at_keyword("entry") {
            let kw = self.bump();
            let call = self.expect_string()?;
            self.expect_punct(';')?;
            crate::builder::parse_label(&format!("/{call}"))
                .map_err(|e| ParseError::new(kw.line, kw.column, format!("entry: {e}")))?;
            scope.on_entry(&call);
            Ok(())
        } else if self.at_keyword("exit") {
            let kw = self.bump();
            let call = self.expect_string()?;
            self.expect_punct(';')?;
            crate::builder::parse_label(&format!("/{call}"))
                .map_err(|e| ParseError::new(kw.line, kw.column, format!("exit: {e}")))?;
            scope.on_exit(&call);
            Ok(())
        } else if self.at_keyword("transition") {
            let kw = self.bump();
            self.expect_punct('{')?;
            let mut target: Option<String> = None;
            let mut label = String::new();
            let mut cost: Option<u64> = None;
            loop {
                if self.eat_keyword("target") {
                    target = Some(self.expect_ident()?);
                    self.expect_punct(';')?;
                } else if self.eat_keyword("label") {
                    label = self.expect_string()?;
                    self.expect_punct(';')?;
                } else if self.eat_keyword("cost") {
                    cost = Some(self.expect_number()?);
                    self.expect_punct(';')?;
                } else if matches!(&self.peek().kind, TokenKind::Punct('}')) {
                    self.bump();
                    break;
                } else {
                    return Err(self.error(format!(
                        "expected `target`, `label`, `cost` or `}}` in transition, found {}",
                        self.peek().kind
                    )));
                }
            }
            let target = target.ok_or_else(|| {
                ParseError::new(kw.line, kw.column, "transition is missing `target`")
            })?;
            scope
                .try_transition(target, &label, cost)
                .map_err(|e| self.error(format!("invalid label: {e}")))?;
            Ok(())
        } else {
            Err(self.error(format!(
                "expected `contains`, `default`, `transition` or `}}`, found {}",
                self.peek().kind
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StateKind;

    const FIG2A: &str = r#"
        // Events referenced in Fig. 2a labels.
        event INIT;
        event ALLRESET;
        event ERROR;

        basicstate Errstate {
            transition {
                target Idle1;
                label "INIT or ALLRESET/InitializeAll()";
            }
        }
        andstate Operation {
            contains DataPreparation, ReachPosition;
            transition {
                target Idle1;
                label "INIT or ALLRESET/InitializeAll()";
            }
            transition {
                target Errstate;
                label "ERROR/Stop()";
            }
        }
        orstate DataPreparation {
            contains OpcodeReady, EmptyBuf, Bounds, NoData;
            default OpcodeReady;
        }
    "#;

    #[test]
    fn parses_fig2a_shapes() {
        let chart = parse_chart(FIG2A).unwrap();
        let op = chart.state_by_name("Operation").unwrap();
        assert_eq!(chart.state(op).kind, StateKind::And);
        assert_eq!(chart.state(op).children.len(), 2);
        let dp = chart.state_by_name("DataPreparation").unwrap();
        assert_eq!(chart.state(dp).children.len(), 4);
        let def = chart.state(dp).default.unwrap();
        assert_eq!(chart.state(def).name, "OpcodeReady");
        // Implicit basic states inferred for targets/children.
        assert!(chart.state_by_name("Idle1").is_some());
        assert!(chart.state_by_name("ReachPosition").is_some());
        // Implicit root adopted the orphans.
        assert_eq!(chart.state(chart.root()).name, crate::builder::IMPLICIT_ROOT);
    }

    #[test]
    fn parses_declarations() {
        let src = r#"
            chart Demo;
            event DATA_VALID period 1500;
            event X_PULSE port PE0 period 300;
            event END internal;
            condition MOVEMENT;
            condition OK initial true;
            port Buffer width 8 addr 463 bidir;
            basicstate A {
                transition { target B; label "DATA_VALID"; cost 42; }
            }
        "#;
        let chart = parse_chart(src).unwrap();
        assert_eq!(chart.name(), "Demo");
        let dv = chart.event(chart.event_by_name("DATA_VALID").unwrap());
        assert_eq!(dv.period, Some(1500));
        let xp = chart.event(chart.event_by_name("X_PULSE").unwrap());
        assert_eq!(xp.port.as_deref(), Some("PE0"));
        let end = chart.event(chart.event_by_name("END").unwrap());
        assert!(end.internal);
        let ok = chart.condition(chart.condition_by_name("OK").unwrap());
        assert!(ok.initial);
        assert_eq!(chart.data_ports().next().unwrap().width, 8);
        let t = chart.transitions().next().unwrap();
        assert_eq!(t.explicit_cost, Some(42));
    }

    #[test]
    fn hex_numbers_accepted() {
        let src = "port P width 8 addr 0x1CF in;\nbasicstate A { }";
        let chart = parse_chart(src).unwrap();
        assert_eq!(chart.data_ports().next().unwrap().address, 0x1CF);
    }

    #[test]
    fn error_positions_reported() {
        let src = "basicstate A {\n  transition { label \"X\"; }\n}";
        let err = parse_chart(src).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("target"));
    }

    #[test]
    fn rejects_unknown_toplevel() {
        let err = parse_chart("frobnicate A;").unwrap_err();
        assert!(err.message.contains("frobnicate"));
    }

    #[test]
    fn rejects_bad_label() {
        let src = r#"basicstate A { transition { target B; label "E or"; } }"#;
        let err = parse_chart(src).unwrap_err();
        assert!(err.message.contains("invalid label"));
    }

    #[test]
    fn pretty_print_round_trip() {
        let chart = parse_chart(FIG2A).unwrap();
        let printed = crate::pretty::to_text(&chart);
        let reparsed = parse_chart(&printed).unwrap();
        assert_eq!(chart.state_count(), reparsed.state_count());
        assert_eq!(chart.transition_count(), reparsed.transition_count());
        for s in chart.states() {
            let rid = reparsed.state_by_name(&s.name).unwrap();
            assert_eq!(reparsed.state(rid).kind, s.kind, "state {}", s.name);
        }
    }
}
