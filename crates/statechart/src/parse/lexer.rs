//! Tokeniser for the textual statechart format.

use crate::error::ParseError;
use std::fmt;

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub column: u32,
}

/// Token kinds of the textual format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Decimal (`1500`) or hexadecimal (`0x1CF`) number.
    Number(u64),
    /// Double-quoted string (transition labels).
    Str(String),
    /// Single punctuation character: `{ } ; ,`.
    Punct(char),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Number(n) => write!(f, "number {n}"),
            TokenKind::Str(s) => write!(f, "string \"{s}\""),
            TokenKind::Punct(c) => write!(f, "`{c}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Streaming tokeniser. Usually driven through
/// [`crate::parse::parse_chart`]; exposed for tooling.
#[derive(Debug)]
pub struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    column: u32,
}

impl<'s> Lexer<'s> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'s str) -> Self {
        Lexer { src, bytes: src.as_bytes(), pos: 0, line: 1, column: 1 }
    }

    /// Tokenises the whole input, appending a final [`TokenKind::Eof`].
    ///
    /// Adapter over [`Lexer::tokenize_diag`]: the error returned is
    /// exactly the first one the recovering scan reports.
    ///
    /// # Errors
    ///
    /// Returns a positioned error for unterminated strings or characters
    /// outside the language.
    pub fn tokenize(self) -> Result<Vec<Token>, ParseError> {
        let mut errs = Vec::new();
        let toks = self.tokenize_diag(&mut errs);
        match errs.into_iter().next() {
            Some(e) => Err(e),
            None => Ok(toks),
        }
    }

    /// Tokenises the whole input, recovering from lexical errors: every
    /// problem is appended to `errs` and the scan keeps going (bad
    /// characters are skipped, overlong numbers become `0`, an
    /// unterminated string yields its partial text), so the parser
    /// always gets a complete, EOF-terminated token stream.
    pub(crate) fn tokenize_diag(mut self, errs: &mut Vec<ParseError>) -> Vec<Token> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (line, column) = (self.line, self.column);
            let Some(&b) = self.bytes.get(self.pos) else {
                out.push(Token { kind: TokenKind::Eof, line, column });
                return out;
            };
            let kind = match b {
                b'{' | b'}' | b';' | b',' => {
                    self.advance();
                    TokenKind::Punct(b as char)
                }
                b'"' => self.string(line, column, errs),
                b'0'..=b'9' => self.number(line, column, errs),
                c if c.is_ascii_alphabetic() || c == b'_' || c == b'@' => self.ident(),
                c => {
                    errs.push(ParseError::new(
                        line,
                        column,
                        format!("unexpected character `{}`", c as char),
                    ));
                    // Skip the byte (the whole run for a multi-byte
                    // character) and resume scanning.
                    self.advance();
                    while self.bytes.get(self.pos).is_some_and(|b| !b.is_ascii()) {
                        self.advance();
                    }
                    continue;
                }
            };
            out.push(Token { kind, line, column });
        }
    }

    fn advance(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        self.pos += 1;
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.bytes.get(self.pos) {
                Some(b) if b.is_ascii_whitespace() => self.advance(),
                Some(b'/') if self.bytes.get(self.pos + 1) == Some(&b'/') => {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.advance();
                    }
                }
                Some(b'/') if self.bytes.get(self.pos + 1) == Some(&b'*') => {
                    self.advance();
                    self.advance();
                    while self.pos + 1 < self.bytes.len()
                        && !(self.bytes[self.pos] == b'*' && self.bytes[self.pos + 1] == b'/')
                    {
                        self.advance();
                    }
                    if self.pos + 1 < self.bytes.len() {
                        self.advance();
                        self.advance();
                    }
                }
                _ => break,
            }
        }
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'@' {
                self.advance();
            } else {
                break;
            }
        }
        TokenKind::Ident(self.src[start..self.pos].to_string())
    }

    fn number(&mut self, line: u32, column: u32, errs: &mut Vec<ParseError>) -> TokenKind {
        let start = self.pos;
        let hex = self.bytes[self.pos] == b'0'
            && matches!(self.bytes.get(self.pos + 1), Some(b'x') | Some(b'X'));
        if hex {
            self.advance();
            self.advance();
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_hexdigit() && (hex || b.is_ascii_digit()) {
                self.advance();
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        let value = if hex {
            u64::from_str_radix(&text[2..], 16)
        } else {
            text.parse::<u64>()
        };
        TokenKind::Number(value.unwrap_or_else(|_| {
            errs.push(ParseError::new(line, column, format!("invalid number `{text}`")));
            0
        }))
    }

    fn string(&mut self, line: u32, column: u32, errs: &mut Vec<ParseError>) -> TokenKind {
        self.advance(); // opening quote
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = self.src[start..self.pos].to_string();
                self.advance(); // closing quote
                return TokenKind::Str(s);
            }
            self.advance();
        }
        errs.push(ParseError::new(line, column, "unterminated string literal"));
        TokenKind::Str(self.src[start..].to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src).tokenize().unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let k = kinds("orstate A { contains B, C; }");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("orstate".into()),
                TokenKind::Ident("A".into()),
                TokenKind::Punct('{'),
                TokenKind::Ident("contains".into()),
                TokenKind::Ident("B".into()),
                TokenKind::Punct(','),
                TokenKind::Ident("C".into()),
                TokenKind::Punct(';'),
                TokenKind::Punct('}'),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers_dec_and_hex() {
        assert_eq!(kinds("1500")[0], TokenKind::Number(1500));
        assert_eq!(kinds("0x1CF")[0], TokenKind::Number(0x1CF));
        assert_eq!(kinds("0X0a")[0], TokenKind::Number(10));
    }

    #[test]
    fn strings_and_positions() {
        let toks = Lexer::new("a\n  \"hello/world()\"").tokenize().unwrap();
        assert_eq!(toks[1].kind, TokenKind::Str("hello/world()".into()));
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].column, 3);
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("A // line comment\n/* block\ncomment */ B");
        assert_eq!(
            k,
            vec![TokenKind::Ident("A".into()), TokenKind::Ident("B".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        let e = Lexer::new("\"oops").tokenize().unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn bad_character_errors() {
        let e = Lexer::new("a $ b").tokenize().unwrap_err();
        assert!(e.message.contains('$'));
        assert_eq!(e.column, 3);
    }
}
