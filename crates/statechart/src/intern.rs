//! Name interning for the simulation hot path.
//!
//! [`Chart::event_by_name`] and [`Chart::condition_by_name`] are linear
//! scans over the declaration arrays — fine while building a chart,
//! wasteful when a co-simulation resolves the same environment-supplied
//! names every configuration cycle. A [`NameIndex`] is built once from
//! the declarations and answers lookups by binary search with no
//! hashing or allocation.
//!
//! [`Chart::event_by_name`]: crate::Chart::event_by_name
//! [`Chart::condition_by_name`]: crate::Chart::condition_by_name

use crate::model::{Chart, ConditionId, EventId};

/// A sorted name → index table for O(log n) allocation-free lookup.
///
/// Generic over the name storage: `NameIndex<String>` owns its names,
/// `NameIndex<&str>` borrows them (e.g. from the chart declarations) and
/// costs only one `Vec` to build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameIndex<S = String> {
    /// `(name, declaration index)`, sorted by name.
    entries: Vec<(S, u32)>,
}

impl<S: AsRef<str>> NameIndex<S> {
    /// Builds an index from `(name, index)` pairs. When a name occurs
    /// more than once the lowest index wins, matching the first-match
    /// behaviour of a linear scan.
    pub fn new<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, u32)>,
    {
        let mut entries: Vec<(S, u32)> = pairs.into_iter().collect();
        entries.sort_by(|a, b| a.0.as_ref().cmp(b.0.as_ref()).then(a.1.cmp(&b.1)));
        entries.dedup_by(|b, a| a.0.as_ref() == b.0.as_ref());
        NameIndex { entries }
    }

    /// Looks up a name.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.entries
            .binary_search_by(|(n, _)| n.as_ref().cmp(name))
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Number of distinct names.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the index holds no names.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// An interned event-name table for a chart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventNames(NameIndex);

impl EventNames {
    /// Builds the table from a chart's event declarations.
    pub fn new(chart: &Chart) -> Self {
        EventNames(NameIndex::new(
            chart.events().enumerate().map(|(i, e)| (e.name.clone(), i as u32)),
        ))
    }

    /// Resolves an event name; equivalent to
    /// [`Chart::event_by_name`](crate::Chart::event_by_name).
    pub fn get(&self, name: &str) -> Option<EventId> {
        self.0.get(name).map(EventId)
    }
}

/// An interned condition-name table for a chart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConditionNames(NameIndex);

impl ConditionNames {
    /// Builds the table from a chart's condition declarations.
    pub fn new(chart: &Chart) -> Self {
        ConditionNames(NameIndex::new(
            chart.conditions().enumerate().map(|(i, c)| (c.name.clone(), i as u32)),
        ))
    }

    /// Resolves a condition name; equivalent to
    /// [`Chart::condition_by_name`](crate::Chart::condition_by_name).
    pub fn get(&self, name: &str) -> Option<ConditionId> {
        self.0.get(name).map(ConditionId)
    }
}

/// An event-name table borrowing its names from the chart — buildable
/// per simulation run without cloning a single `String`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventNamesRef<'c>(NameIndex<&'c str>);

impl<'c> EventNamesRef<'c> {
    /// Builds the table from a chart's event declarations.
    pub fn new(chart: &'c Chart) -> Self {
        EventNamesRef(NameIndex::new(
            chart.events().enumerate().map(|(i, e)| (e.name.as_str(), i as u32)),
        ))
    }

    /// Resolves an event name; equivalent to
    /// [`Chart::event_by_name`](crate::Chart::event_by_name).
    pub fn get(&self, name: &str) -> Option<EventId> {
        self.0.get(name).map(EventId)
    }
}

/// A condition-name table borrowing its names from the chart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConditionNamesRef<'c>(NameIndex<&'c str>);

impl<'c> ConditionNamesRef<'c> {
    /// Builds the table from a chart's condition declarations.
    pub fn new(chart: &'c Chart) -> Self {
        ConditionNamesRef(NameIndex::new(
            chart.conditions().enumerate().map(|(i, c)| (c.name.as_str(), i as u32)),
        ))
    }

    /// Resolves a condition name; equivalent to
    /// [`Chart::condition_by_name`](crate::Chart::condition_by_name).
    pub fn get(&self, name: &str) -> Option<ConditionId> {
        self.0.get(name).map(ConditionId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ChartBuilder;
    use crate::model::StateKind;

    #[test]
    fn matches_linear_scan() {
        let mut b = ChartBuilder::new("t");
        b.event("ALPHA", None);
        b.event("BETA", Some(100));
        b.event("GAMMA", None);
        b.condition("OK", false);
        b.condition("ARMED", true);
        b.state("A", StateKind::Basic).transition("B", "ALPHA");
        b.basic("B");
        let chart = b.build().unwrap();

        let evs = EventNames::new(&chart);
        let conds = ConditionNames::new(&chart);
        let evs_ref = EventNamesRef::new(&chart);
        let conds_ref = ConditionNamesRef::new(&chart);
        for e in chart.events() {
            assert_eq!(evs.get(&e.name), chart.event_by_name(&e.name));
            assert_eq!(evs_ref.get(&e.name), chart.event_by_name(&e.name));
        }
        for c in chart.conditions() {
            assert_eq!(conds.get(&c.name), chart.condition_by_name(&c.name));
            assert_eq!(conds_ref.get(&c.name), chart.condition_by_name(&c.name));
        }
        assert_eq!(evs.get("NO_SUCH_EVENT"), None);
        assert_eq!(conds.get("NO_SUCH_COND"), None);
        assert_eq!(evs_ref.get("NO_SUCH_EVENT"), None);
        assert_eq!(conds_ref.get("NO_SUCH_COND"), None);
    }

    #[test]
    fn duplicate_names_keep_first_index() {
        let idx = NameIndex::new(vec![
            ("x".to_string(), 3),
            ("x".to_string(), 1),
            ("y".to_string(), 0),
        ]);
        assert_eq!(idx.get("x"), Some(1));
        assert_eq!(idx.get("y"), Some(0));
        assert_eq!(idx.len(), 2);
    }
}
