//! Boolean trigger/guard expressions on transition labels.
//!
//! The figures of the paper use labels such as `INIT or ALLRESET`,
//! `not (X_PULSE or Y_PULSE)` and guards like
//! `[XFINISH and YFINISH and PHIFINISH]`. Atoms are event or condition
//! names; the resolution against a concrete [`crate::Chart`] happens in
//! [`crate::validate`] and in the evaluation helpers here.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A boolean expression over named atoms (events or conditions).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// An event or condition name.
    Atom(String),
    /// Logical negation.
    Not(Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for an atom.
    pub fn atom(name: impl Into<String>) -> Self {
        Expr::Atom(name.into())
    }

    /// `not e`
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Self {
        Expr::Not(Box::new(e))
    }

    /// `a and b`
    pub fn and(a: Expr, b: Expr) -> Self {
        Expr::And(Box::new(a), Box::new(b))
    }

    /// `a or b`
    pub fn or(a: Expr, b: Expr) -> Self {
        Expr::Or(Box::new(a), Box::new(b))
    }

    /// Conjunction of all expressions in the iterator; `None` when empty.
    pub fn all<I: IntoIterator<Item = Expr>>(items: I) -> Option<Expr> {
        items.into_iter().reduce(Expr::and)
    }

    /// Disjunction of all expressions in the iterator; `None` when empty.
    pub fn any<I: IntoIterator<Item = Expr>>(items: I) -> Option<Expr> {
        items.into_iter().reduce(Expr::or)
    }

    /// Evaluates the expression with `truth(atom)` supplying atom values.
    pub fn eval<F: Fn(&str) -> bool + Copy>(&self, truth: F) -> bool {
        match self {
            Expr::Atom(a) => truth(a),
            Expr::Not(e) => !e.eval(truth),
            Expr::And(a, b) => a.eval(truth) && b.eval(truth),
            Expr::Or(a, b) => a.eval(truth) || b.eval(truth),
        }
    }

    /// Collects the set of atom names used in the expression.
    pub fn atoms(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut BTreeSet<&'a str>) {
        match self {
            Expr::Atom(a) => {
                out.insert(a.as_str());
            }
            Expr::Not(e) => e.collect_atoms(out),
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
        }
    }

    /// True if any *positive* (non-negated) occurrence of `name` exists.
    ///
    /// The timing validator uses this to find states whose outgoing
    /// transitions *consume* a given event: a transition triggered by
    /// `not X` does not consume `X`.
    pub fn mentions_positively(&self, name: &str) -> bool {
        self.polarity_mentions(name, true)
    }

    fn polarity_mentions(&self, name: &str, positive: bool) -> bool {
        match self {
            Expr::Atom(a) => positive && a == name,
            Expr::Not(e) => e.polarity_mentions(name, !positive),
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.polarity_mentions(name, positive) || b.polarity_mentions(name, positive)
            }
        }
    }

    /// Rewrites the expression to negation normal form (negations pushed
    /// onto atoms). Used by the SLA synthesiser before building product
    /// terms.
    pub fn to_nnf(&self) -> Nnf {
        fn go(e: &Expr, neg: bool) -> Nnf {
            match e {
                Expr::Atom(a) => Nnf::Literal { name: a.clone(), negated: neg },
                Expr::Not(inner) => go(inner, !neg),
                Expr::And(a, b) if !neg => Nnf::And(Box::new(go(a, false)), Box::new(go(b, false))),
                Expr::And(a, b) => Nnf::Or(Box::new(go(a, true)), Box::new(go(b, true))),
                Expr::Or(a, b) if !neg => Nnf::Or(Box::new(go(a, false)), Box::new(go(b, false))),
                Expr::Or(a, b) => Nnf::And(Box::new(go(a, true)), Box::new(go(b, true))),
            }
        }
        go(self, false)
    }

    /// Expands the expression into sum-of-products form: a list of product
    /// terms, each a list of `(atom, negated)` literals. The SLA is a
    /// two-level logic array, so every trigger/guard must be flattened to
    /// this form before synthesis.
    pub fn to_sop(&self) -> Vec<Vec<(String, bool)>> {
        self.to_nnf().to_sop()
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Atom(a) => write!(f, "{a}"),
            Expr::Not(e) => match **e {
                Expr::Atom(_) => write!(f, "not {e}"),
                _ => write!(f, "not ({e})"),
            },
            Expr::And(a, b) => {
                fmt_operand(a, f, true)?;
                write!(f, " and ")?;
                fmt_operand(b, f, true)
            }
            Expr::Or(a, b) => {
                fmt_operand(a, f, false)?;
                write!(f, " or ")?;
                fmt_operand(b, f, false)
            }
        }
    }
}

fn fmt_operand(e: &Expr, f: &mut fmt::Formatter<'_>, in_and: bool) -> fmt::Result {
    let needs_parens = matches!(e, Expr::Or(..)) && in_and;
    if needs_parens {
        write!(f, "({e})")
    } else {
        write!(f, "{e}")
    }
}

/// Negation normal form of an [`Expr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Nnf {
    /// A possibly-negated atom.
    Literal {
        /// Atom name.
        name: String,
        /// True when the literal is `not name`.
        negated: bool,
    },
    /// Conjunction.
    And(Box<Nnf>, Box<Nnf>),
    /// Disjunction.
    Or(Box<Nnf>, Box<Nnf>),
}

impl Nnf {
    /// Flattens into sum-of-products (distributes AND over OR).
    pub fn to_sop(&self) -> Vec<Vec<(String, bool)>> {
        match self {
            Nnf::Literal { name, negated } => vec![vec![(name.clone(), *negated)]],
            Nnf::Or(a, b) => {
                let mut out = a.to_sop();
                out.extend(b.to_sop());
                out
            }
            Nnf::And(a, b) => {
                let left = a.to_sop();
                let right = b.to_sop();
                let mut out = Vec::with_capacity(left.len() * right.len());
                for l in &left {
                    for r in &right {
                        let mut term = l.clone();
                        term.extend(r.iter().cloned());
                        out.push(term);
                    }
                }
                out
            }
        }
    }
}

/// Parses a trigger/guard expression.
///
/// Grammar (lowest to highest precedence):
///
/// ```text
/// expr   := term ("or" term)*
/// term   := factor ("and" factor)*
/// factor := "not" factor | "(" expr ")" | IDENT
/// ```
///
/// # Errors
///
/// Returns a message describing the first syntax error.
pub fn parse_expr(input: &str) -> Result<Expr, String> {
    let tokens = tokenize(input)?;
    let mut p = ExprParser { tokens: &tokens, pos: 0 };
    let e = p.expr()?;
    if p.pos != tokens.len() {
        return Err(format!("unexpected trailing input `{}`", p.peek_text()));
    }
    Ok(e)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Not,
    And,
    Or,
    LParen,
    RParen,
}

fn tokenize(input: &str) -> Result<Vec<Tok>, String> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '(' {
            chars.next();
            out.push(Tok::LParen);
        } else if c == ')' {
            chars.next();
            out.push(Tok::RParen);
        } else if c.is_alphanumeric() || c == '_' || c == '@' {
            let mut word = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_alphanumeric() || c == '_' || c == '@' {
                    word.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            out.push(match word.to_ascii_lowercase().as_str() {
                "not" => Tok::Not,
                "and" => Tok::And,
                "or" => Tok::Or,
                _ => Tok::Ident(word),
            });
        } else {
            return Err(format!("unexpected character `{c}` in expression"));
        }
    }
    Ok(out)
}

struct ExprParser<'a> {
    tokens: &'a [Tok],
    pos: usize,
}

impl ExprParser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn peek_text(&self) -> String {
        match self.peek() {
            Some(Tok::Ident(s)) => s.clone(),
            Some(t) => format!("{t:?}"),
            None => "<eof>".into(),
        }
    }

    fn expr(&mut self) -> Result<Expr, String> {
        let mut lhs = self.term()?;
        while self.peek() == Some(&Tok::Or) {
            self.pos += 1;
            let rhs = self.term()?;
            lhs = Expr::or(lhs, rhs);
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, String> {
        let mut lhs = self.factor()?;
        while self.peek() == Some(&Tok::And) {
            self.pos += 1;
            let rhs = self.factor()?;
            lhs = Expr::and(lhs, rhs);
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr, String> {
        match self.peek() {
            Some(Tok::Not) => {
                self.pos += 1;
                Ok(Expr::not(self.factor()?))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                if self.peek() != Some(&Tok::RParen) {
                    return Err("expected `)`".into());
                }
                self.pos += 1;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                let e = Expr::atom(name.clone());
                self.pos += 1;
                Ok(e)
            }
            other => Err(format!("expected expression, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_labels() {
        let e = parse_expr("INIT or ALLRESET").unwrap();
        assert_eq!(e, Expr::or(Expr::atom("INIT"), Expr::atom("ALLRESET")));

        let e = parse_expr("not (X_PULSE or Y_PULSE)").unwrap();
        assert!(e.eval(|a| a == "NEITHER"));
        assert!(!e.eval(|a| a == "X_PULSE"));

        let e = parse_expr("XFINISH and YFINISH and PHIFINISH").unwrap();
        assert!(e.eval(|_| true));
        assert!(!e.eval(|a| a != "YFINISH"));
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let e = parse_expr("A or B and C").unwrap();
        assert_eq!(e, Expr::or(Expr::atom("A"), Expr::and(Expr::atom("B"), Expr::atom("C"))));
    }

    #[test]
    fn display_round_trips() {
        for src in ["A or B", "not (A or B)", "A and (B or C)", "not A and B"] {
            let e = parse_expr(src).unwrap();
            let printed = e.to_string();
            let reparsed = parse_expr(&printed).unwrap();
            assert_eq!(e, reparsed, "round trip failed for `{src}` -> `{printed}`");
        }
    }

    #[test]
    fn sop_of_negated_disjunction() {
        let e = parse_expr("not (A or B)").unwrap();
        let sop = e.to_sop();
        assert_eq!(sop, vec![vec![("A".to_string(), true), ("B".to_string(), true)]]);
    }

    #[test]
    fn sop_distributes() {
        let e = parse_expr("A and (B or C)").unwrap();
        let sop = e.to_sop();
        assert_eq!(sop.len(), 2);
        assert!(sop.contains(&vec![("A".to_string(), false), ("B".to_string(), false)]));
        assert!(sop.contains(&vec![("A".to_string(), false), ("C".to_string(), false)]));
    }

    #[test]
    fn positive_mentions_respect_polarity() {
        let e = parse_expr("not (X or Y) and Z").unwrap();
        assert!(!e.mentions_positively("X"));
        assert!(e.mentions_positively("Z"));
        let e = parse_expr("not not X").unwrap();
        assert!(e.mentions_positively("X"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_expr("A or").is_err());
        assert!(parse_expr("(A").is_err());
        assert!(parse_expr("A ! B").is_err());
        assert!(parse_expr("A B").is_err());
    }

    #[test]
    fn atoms_collects_all_names() {
        let e = parse_expr("A and not (B or C)").unwrap();
        let atoms: Vec<&str> = e.atoms().into_iter().collect();
        assert_eq!(atoms, vec!["A", "B", "C"]);
    }
}
