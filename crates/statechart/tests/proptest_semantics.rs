//! Property-based tests: random chart hierarchies driven with random
//! event scripts must preserve the executor's structural invariants,
//! and the CR encoding must round-trip every reachable configuration.

use proptest::prelude::*;
use pscp_statechart::encoding::{CrLayout, EncodingStyle};
use pscp_statechart::semantics::{ActionEffects, Executor};
use pscp_statechart::{Chart, ChartBuilder, StateKind};

/// A recipe for one random chart: a two-level hierarchy with a mix of
/// OR and AND composites, basic leaves, and random transitions.
#[derive(Debug, Clone)]
struct ChartSpec {
    /// Per region: (is_and, number of leaves 1..=4).
    regions: Vec<(bool, usize)>,
    /// Transitions: (from_leaf, to_leaf, event, guard_cond) as indices.
    edges: Vec<(usize, usize, usize, Option<usize>)>,
    n_events: usize,
    n_conds: usize,
}

fn leaf_name(region: usize, leaf: usize) -> String {
    format!("L{region}_{leaf}")
}

fn build(spec: &ChartSpec) -> Chart {
    let mut b = ChartBuilder::new("random");
    for e in 0..spec.n_events {
        b.event(format!("E{e}"), None);
    }
    for c in 0..spec.n_conds {
        b.condition(format!("C{c}"), c % 2 == 0);
    }
    let region_names: Vec<String> =
        (0..spec.regions.len()).map(|r| format!("R{r}")).collect();
    b.state("Top", StateKind::And).contains(region_names.iter().map(String::as_str));

    // Collect leaves.
    let mut leaves: Vec<(usize, usize)> = Vec::new();
    for (r, &(_, n)) in spec.regions.iter().enumerate() {
        for l in 0..n {
            leaves.push((r, l));
        }
    }

    for (r, &(is_and, n)) in spec.regions.iter().enumerate() {
        let children: Vec<String> = (0..n).map(|l| leaf_name(r, l)).collect();
        // AND regions need >= 2 children to be interesting; fall back to OR.
        let kind = if is_and && n >= 2 { StateKind::And } else { StateKind::Or };
        let mut s = b.state(format!("R{r}"), kind);
        s.contains(children.iter().map(String::as_str));
        if kind == StateKind::Or {
            s.default_child(children[0].clone());
        }
    }
    for (li, &(r, l)) in leaves.iter().enumerate() {
        let mut s = b.state(leaf_name(r, l), StateKind::Basic);
        for &(from, to, ev, guard) in &spec.edges {
            if from % leaves.len() == li {
                let (tr, tl) = leaves[to % leaves.len()];
                // Transitions between leaves of AND regions of the same
                // region are fine; cross-region is fine too.
                let label = match guard {
                    Some(g) => format!(
                        "E{} [C{}]",
                        ev % spec.n_events,
                        g % spec.n_conds.max(1)
                    ),
                    None => format!("E{}", ev % spec.n_events),
                };
                s.transition(leaf_name(tr, tl), &label);
            }
        }
    }
    b.build().expect("random chart is well-formed")
}

fn chart_spec() -> impl Strategy<Value = ChartSpec> {
    (
        proptest::collection::vec((any::<bool>(), 1usize..=4), 1..=3),
        proptest::collection::vec(
            (0usize..64, 0usize..64, 0usize..4, proptest::option::of(0usize..3)),
            0..10,
        ),
    )
        .prop_map(|(regions, edges)| ChartSpec {
            regions,
            edges,
            n_events: 4,
            n_conds: 3,
        })
}

fn event_script() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..30)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn executor_stays_consistent(spec in chart_spec(), script in event_script()) {
        let chart = build(&spec);
        let mut exec = Executor::new(&chart);
        prop_assert!(exec.configuration().is_consistent(&chart));
        for mask in script {
            let evs: Vec<String> = (0..spec.n_events)
                .filter(|e| mask & (1 << e) != 0)
                .map(|e| format!("E{e}"))
                .collect();
            exec.step_named(evs, |_| ActionEffects::default());
            prop_assert!(exec.configuration().is_consistent(&chart));
        }
    }

    #[test]
    fn selected_transitions_never_conflict(spec in chart_spec(), script in event_script()) {
        let chart = build(&spec);
        let mut exec = Executor::new(&chart);
        for mask in script {
            let events: std::collections::BTreeSet<_> = (0..spec.n_events)
                .filter(|e| mask & (1 << e) != 0)
                .filter_map(|e| chart.event_by_name(&format!("E{e}")))
                .collect();
            let selected = exec.select_transitions(&events);
            // Pairwise: scopes of simultaneously-fired transitions must be
            // orthogonal (distinct AND components).
            for (i, &a) in selected.iter().enumerate() {
                for &b in &selected[i + 1..] {
                    let ta = chart.transition(a);
                    let tb = chart.transition(b);
                    let sa = chart.transition_scope(ta.source, ta.target);
                    let sb = chart.transition_scope(tb.source, tb.target);
                    prop_assert!(
                        chart.orthogonal(sa, sb),
                        "transitions {a} and {b} fired together with overlapping scopes"
                    );
                }
            }
            exec.step(&events, |_| ActionEffects::default());
        }
    }

    #[test]
    fn encoding_round_trips_reachable_configurations(
        spec in chart_spec(),
        script in event_script(),
        onehot in any::<bool>(),
    ) {
        let chart = build(&spec);
        let style = if onehot { EncodingStyle::OneHot } else { EncodingStyle::Exclusivity };
        let layout = CrLayout::new(&chart, style);
        let mut exec = Executor::new(&chart);
        for mask in script {
            let evs: Vec<String> = (0..spec.n_events)
                .filter(|e| mask & (1 << e) != 0)
                .map(|e| format!("E{e}"))
                .collect();
            exec.step_named(evs, |_| ActionEffects::default());
            let bits = layout.encode(&chart, exec.configuration());
            for s in chart.state_ids() {
                prop_assert_eq!(
                    layout.is_active_in(&chart, &bits, s),
                    exec.configuration().is_active(s),
                    "state {} mismatch under {:?}",
                    chart.state(s).name,
                    style
                );
            }
        }
    }

    #[test]
    fn pretty_print_parses_back(spec in chart_spec()) {
        let chart = build(&spec);
        let text = pscp_statechart::pretty::to_text(&chart);
        let reparsed = pscp_statechart::parse::parse_chart(&text).unwrap();
        prop_assert_eq!(reparsed.state_count(), chart.state_count());
        prop_assert_eq!(reparsed.transition_count(), chart.transition_count());
        for s in chart.states() {
            let r = reparsed.state_by_name(&s.name).expect("state survives");
            prop_assert_eq!(reparsed.state(r).kind, s.kind);
        }
    }
}
