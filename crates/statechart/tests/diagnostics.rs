//! The recovering chart frontend against its legacy fail-fast face.
//!
//! Differential pin: on every error-path input, the legacy
//! `parse_chart` error must equal the *first* diagnostic the
//! recovering `parse_chart_diag` accumulates on the same source — the
//! adapters are thin shims, and these tests keep them honest.
//! Property side: randomly mutilated sources must never panic either
//! entry point, a failed parse always yields at least one error
//! diagnostic, and the finished report is deterministic and
//! canonically sorted.

use proptest::prelude::*;
use pscp_diag::DiagnosticSink;
use pscp_statechart::parse::{parse_chart, parse_chart_diag};

/// Error-path inputs covering the syntax and structural failure
/// classes the legacy tests exercise.
const ERROR_INPUTS: &[&str] = &[
    // Syntax: bad token, missing `;`, truncated declaration.
    "orstate Root { contains A; default A; } @@@",
    "basicstate Off { transition { target On label \"TICK\"; } }",
    "orstate Root { contains",
    "event ;",
    "chart",
    // Structure: unknown default, unresolved atom, duplicate name,
    // basic with children, empty chart.
    "orstate Root { contains A, B; default Zed; } basicstate A {} basicstate B {}",
    "orstate Root { contains A; default A; } basicstate A { transition { target A; label \"NOPE\"; } }",
    "orstate Root { contains A; default A; } basicstate A {} basicstate A {}",
    "basicstate Solo { contains Child; }",
    "",
    // Default names a declared state that is not a child.
    "orstate Root { contains A; default A; } basicstate A {} \
     orstate Half { contains B; default A; } basicstate B {}",
];

#[test]
fn legacy_error_is_the_first_accumulated_diagnostic() {
    for src in ERROR_INPUTS {
        let legacy = parse_chart(src).expect_err(&format!("fixture must fail: {src:?}"));
        let mut sink = DiagnosticSink::new();
        let chart = parse_chart_diag(src, &mut sink);
        assert!(chart.is_none(), "recovering parse must agree on failure: {src:?}");
        let first = sink.first_error().expect("failed parse carries a diagnostic").clone();
        assert_eq!(
            first.message, legacy.message,
            "first diagnostic differs from legacy error on {src:?}"
        );
        assert_eq!(first.span.start.line, legacy.line, "line differs on {src:?}");
        assert_eq!(first.span.start.column, legacy.column, "column differs on {src:?}");
    }
}

#[test]
fn recovery_reports_more_than_the_legacy_first_error() {
    // Three independent syntax errors in one source: fail-fast sees
    // one, the recovering parse reports all three.
    let src = "\
        event TICK period 100;\n\
        orstate Root { contains A, B; default A; }\n\
        basicstate A { transition { target B label \"TICK\"; } }\n\
        basicstate B { transition { target A; lbael \"TICK\"; } }\n\
        orstate Spare { contains ; }\n";
    let mut sink = DiagnosticSink::new();
    assert!(parse_chart_diag(src, &mut sink).is_none());
    assert!(
        sink.error_count() >= 3,
        "expected >= 3 recovered errors, got {}: {:?}",
        sink.error_count(),
        sink.emitted()
    );
    // And the fail-fast adapter still returns exactly the first.
    let legacy = parse_chart(src).unwrap_err();
    assert_eq!(sink.first_error().unwrap().message, legacy.message);
}

fn chart_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("orstate".to_string()),
            Just("basicstate".to_string()),
            Just("andstate".to_string()),
            Just("event".to_string()),
            Just("condition".to_string()),
            Just("port".to_string()),
            Just("contains".to_string()),
            Just("default".to_string()),
            Just("transition".to_string()),
            Just("target".to_string()),
            Just("label".to_string()),
            Just("reference".to_string()),
            Just("history".to_string()),
            Just("Root".to_string()),
            Just("A".to_string()),
            Just("B".to_string()),
            Just("\"TICK\"".to_string()),
            Just("\"TICK/Act(1)\"".to_string()),
            Just("100".to_string()),
            Just("{".to_string()),
            Just("}".to_string()),
            Just(";".to_string()),
            Just(",".to_string()),
            Just("@".to_string()),
            Just("$".to_string()),
        ],
        0..48,
    )
    .prop_map(|toks| toks.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mutilated_sources_never_panic_and_always_diagnose(src in chart_soup()) {
        let legacy = parse_chart(&src);
        let mut sink = DiagnosticSink::new();
        let recovered = parse_chart_diag(&src, &mut sink);

        // The two entry points agree on success vs failure.
        prop_assert_eq!(legacy.is_ok(), recovered.is_some());

        match legacy {
            Ok(_) => prop_assert!(!sink.has_errors()),
            Err(e) => {
                // A failed parse always yields >= 1 error diagnostic,
                // and the first equals the legacy error.
                prop_assert!(sink.error_count() >= 1);
                let first = sink.first_error().unwrap();
                prop_assert_eq!(&first.message, &e.message);
                prop_assert_eq!(first.span.start.line, e.line);
                prop_assert_eq!(first.span.start.column, e.column);
            }
        }

        // Deterministic, canonically sorted report.
        let report = sink.finish();
        let mut resorted = report.clone();
        pscp_diag::sort_dedup(&mut resorted);
        prop_assert_eq!(&report, &resorted);

        let mut sink2 = DiagnosticSink::new();
        let _ = parse_chart_diag(&src, &mut sink2);
        prop_assert_eq!(report, sink2.finish());
    }

    #[test]
    fn raw_bytes_never_panic(src in ".{0,160}") {
        let mut sink = DiagnosticSink::new();
        let _ = parse_chart_diag(&src, &mut sink);
        if parse_chart(&src).is_err() {
            prop_assert!(sink.error_count() >= 1);
        }
    }
}
