//! Property tests for the trigger/guard expression language and the
//! hierarchy queries.

use proptest::prelude::*;
use pscp_statechart::trigger::{parse_expr, Expr};
use pscp_statechart::{ChartBuilder, StateKind};

const ATOMS: [&str; 4] = ["A", "B", "C", "D"];

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = (0usize..ATOMS.len()).prop_map(|i| Expr::atom(ATOMS[i]));
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Expr::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::and(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::or(a, b)),
        ]
    })
}

fn truth_of(mask: u8) -> impl Fn(&str) -> bool + Copy {
    move |a: &str| {
        ATOMS
            .iter()
            .position(|&x| x == a)
            .is_some_and(|i| mask & (1 << i) != 0)
    }
}

/// Evaluates a sum-of-products form.
fn eval_sop(sop: &[Vec<(String, bool)>], truth: impl Fn(&str) -> bool) -> bool {
    sop.iter().any(|term| {
        term.iter().all(|(atom, negated)| {
            let v = truth(atom);
            if *negated {
                !v
            } else {
                v
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_parse_round_trip(e in expr()) {
        let printed = e.to_string();
        let reparsed = parse_expr(&printed).unwrap();
        // Same truth table rather than structural equality (printing may
        // drop redundant parentheses).
        for mask in 0..16u8 {
            prop_assert_eq!(
                e.eval(truth_of(mask)),
                reparsed.eval(truth_of(mask)),
                "mask {:#06b}, printed `{}`", mask, printed
            );
        }
    }

    #[test]
    fn sop_preserves_truth_table(e in expr()) {
        let sop = e.to_sop();
        for mask in 0..16u8 {
            prop_assert_eq!(
                e.eval(truth_of(mask)),
                eval_sop(&sop, truth_of(mask)),
                "mask {:#06b}, expr `{}`", mask, e
            );
        }
    }

    #[test]
    fn nnf_preserves_truth_table(e in expr()) {
        // NNF is exercised through SOP; also check positive-mention
        // soundness: if no positive mention of X, flipping X from 0
        // while everything else is 0 can only matter via negations —
        // check mentions_positively is consistent with atoms().
        for a in e.atoms() {
            if e.mentions_positively(a) {
                prop_assert!(e.atoms().contains(a));
            }
        }
    }

    #[test]
    fn lca_properties(
        spec in proptest::collection::vec(1usize..=4, 1..=3),
        pick in (0usize..64, 0usize..64),
    ) {
        // Build a two-level AND-of-ORs chart and check LCA algebra.
        let mut b = ChartBuilder::new("h");
        b.event("E", None);
        let names: Vec<String> = (0..spec.len()).map(|r| format!("R{r}")).collect();
        b.state("Top", StateKind::And).contains(names.iter().map(String::as_str));
        let mut leaves = Vec::new();
        for (r, &n) in spec.iter().enumerate() {
            let children: Vec<String> = (0..n).map(|l| format!("L{r}_{l}")).collect();
            b.state(format!("R{r}"), StateKind::Or)
                .contains(children.iter().map(String::as_str))
                .default_child(children[0].clone());
            for c in children {
                b.basic(c.clone());
                leaves.push(c);
            }
        }
        let chart = b.build().unwrap();
        let a = chart.state_by_name(&leaves[pick.0 % leaves.len()]).unwrap();
        let c = chart.state_by_name(&leaves[pick.1 % leaves.len()]).unwrap();

        // Commutativity and idempotence.
        prop_assert_eq!(chart.lca(a, c), chart.lca(c, a));
        prop_assert_eq!(chart.lca(a, a), a);
        // The LCA is an ancestor-or-self of both.
        let l = chart.lca(a, c);
        prop_assert!(chart.is_ancestor_or_self(l, a));
        prop_assert!(chart.is_ancestor_or_self(l, c));
        // Orthogonality is symmetric and irreflexive.
        prop_assert_eq!(chart.orthogonal(a, c), chart.orthogonal(c, a));
        prop_assert!(!chart.orthogonal(a, a));
        // Two distinct leaves of the same OR region are never orthogonal;
        // leaves of different regions always are.
        if a != c {
            let same_region = chart.state(a).parent == chart.state(c).parent;
            prop_assert_eq!(chart.orthogonal(a, c), !same_region);
        }
    }
}
