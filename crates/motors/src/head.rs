//! The SMD pickup head as a PSCP co-simulation environment (Fig. 7).
//!
//! The head owns the four stepper motors, plays the central controller's
//! command stream through the `BUFFER` port at the `DATA_VALID` cadence
//! (one byte per 1500 cycles, Table 2), converts motor counter zeros
//! into `X_PULSE`/`Y_PULSE`/`PHI_PULSE` events and move completions into
//! `X_STEPS`/`Y_STEPS`/`PHI_STEPS`, and records every physical-limit or
//! deadline fault the controller causes.

use crate::example::{opcodes, ports};
use crate::stepper::{AxisLimits, MotorFault, StepperMotor};
use crate::CLOCK_HZ;
use pscp_core::machine::Environment;

/// One movement command for the head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// Target X in steps (0.025 mm each).
    pub x: u16,
    /// Target Y in steps.
    pub y: u16,
    /// Target φ in 0.1° units.
    pub phi: u16,
}

/// The plant model.
#[derive(Debug, Clone)]
pub struct SmdHead {
    /// X axis (50 kHz, ramped).
    pub motor_x: StepperMotor,
    /// Y axis (50 kHz, ramped).
    pub motor_y: StepperMotor,
    /// φ axis (9 kHz, uniform).
    pub motor_phi: StepperMotor,
    /// Z axis (9 kHz, uniform, chart-invisible).
    pub motor_z: StepperMotor,
    /// Encoded command stream still to deliver.
    stream: Vec<u8>,
    cursor: usize,
    /// Byte offsets where command frames begin. The central controller
    /// handshakes: frame `k` is only streamed once the controller has
    /// reported `k` completed moves through the STATUS port.
    frame_starts: Vec<usize>,
    /// Absolute cycle of the next DATA_VALID offer.
    next_data_valid: u64,
    /// DATA_VALID interval (Table 2: 1500).
    pub data_valid_period: u64,
    powered: bool,
    last_sample: u64,
    /// Direction latches written through the DIR ports.
    dir_x: i64,
    dir_y: i64,
    dir_phi: i64,
    /// Period latches: a PERIOD write before the STEPS arm sets the
    /// initial counter value.
    period_x: u64,
    period_y: u64,
    period_phi: u64,
    /// Pending completion events.
    pending_steps_events: Vec<&'static str>,
    /// STATUS-port writes observed `(value, cycle)`.
    pub status_writes: Vec<(i64, u64)>,
    /// Emergency-stop count.
    pub stops: u64,
}

impl SmdHead {
    /// Creates a head with an empty command stream.
    pub fn new() -> Self {
        SmdHead {
            motor_x: StepperMotor::new(AxisLimits::xy(CLOCK_HZ)),
            motor_y: StepperMotor::new(AxisLimits::xy(CLOCK_HZ)),
            motor_phi: StepperMotor::new(AxisLimits::zphi(CLOCK_HZ)),
            motor_z: StepperMotor::new(AxisLimits::zphi(CLOCK_HZ)),
            stream: Vec::new(),
            cursor: 0,
            frame_starts: Vec::new(),
            next_data_valid: 0,
            data_valid_period: 1500,
            powered: false,
            last_sample: 0,
            dir_x: 1,
            dir_y: 1,
            dir_phi: 1,
            period_x: 16800,
            period_y: 16800,
            period_phi: 1666,
            pending_steps_events: Vec::new(),
            status_writes: Vec::new(),
            stops: 0,
        }
    }

    /// Creates a head that will stream the given moves followed by the
    /// end-of-data marker.
    pub fn with_moves(moves: &[Move]) -> Self {
        let mut head = SmdHead::new();
        for m in moves {
            head.frame_starts.push(head.stream.len());
            head.stream.push(opcodes::MOVE);
            head.stream.push((m.x & 0xff) as u8);
            head.stream.push((m.x >> 8) as u8);
            head.stream.push((m.y & 0xff) as u8);
            head.stream.push((m.y >> 8) as u8);
            head.stream.push((m.phi & 0xff) as u8);
            head.stream.push((m.phi >> 8) as u8);
        }
        head.frame_starts.push(head.stream.len());
        head.stream.push(opcodes::END);
        head
    }

    /// True when the next byte may be offered: mid-frame bytes stream
    /// freely; a byte starting frame `k` waits until the controller has
    /// completed `k` moves (STATUS handshake).
    fn byte_ready(&self) -> bool {
        if self.cursor >= self.stream.len() {
            return false;
        }
        match self.frame_starts.iter().position(|&s| s == self.cursor) {
            Some(k) => self.moves_done() >= k as i64,
            None => true,
        }
    }

    /// Bytes still to deliver.
    pub fn pending_bytes(&self) -> usize {
        self.stream.len() - self.cursor
    }

    /// True when every motor is idle.
    pub fn all_idle(&self) -> bool {
        !self.motor_x.running()
            && !self.motor_y.running()
            && !self.motor_phi.running()
            && !self.motor_z.running()
    }

    /// All faults across the motors.
    pub fn faults(&self) -> Vec<MotorFault> {
        let mut out = Vec::new();
        for m in [&self.motor_x, &self.motor_y, &self.motor_phi, &self.motor_z] {
            out.extend(m.faults.iter().copied());
        }
        out
    }

    /// Missed-pulse count (controller deadline misses).
    pub fn missed_pulses(&self) -> usize {
        self.faults().iter().filter(|f| **f == MotorFault::MissedPulse).count()
    }

    /// Completed moves as reported through the STATUS port.
    pub fn moves_done(&self) -> i64 {
        self.status_writes.last().map(|&(v, _)| v).unwrap_or(0)
    }

    fn advance_motors(&mut self, now: u64) -> Vec<&'static str> {
        let elapsed = now.saturating_sub(self.last_sample);
        self.last_sample = now;
        let mut events = Vec::new();
        let specs: [(&mut StepperMotor, &'static str, &'static str); 3] = [
            (&mut self.motor_x, "X_PULSE", "X_STEPS"),
            (&mut self.motor_y, "Y_PULSE", "Y_STEPS"),
            (&mut self.motor_phi, "PHI_PULSE", "PHI_STEPS"),
        ];
        for (motor, pulse_ev, steps_ev) in specs {
            let was_running = motor.running();
            let pulses = motor.advance(elapsed);
            if pulses > 0 && motor.running() {
                events.push(pulse_ev);
            }
            if was_running && !motor.running() {
                events.push(steps_ev);
            }
        }
        // Z runs silently.
        self.motor_z.advance(elapsed);
        events
    }
}

impl Default for SmdHead {
    fn default() -> Self {
        SmdHead::new()
    }
}

impl Environment for SmdHead {
    fn sample_events(&mut self, now: u64) -> Vec<String> {
        let mut events: Vec<String> = Vec::new();
        if !self.powered {
            self.powered = true;
            events.push("POWER".into());
        }
        for e in self.advance_motors(now) {
            events.push(e.into());
        }
        events.extend(self.pending_steps_events.drain(..).map(String::from));
        if self.byte_ready() && now >= self.next_data_valid {
            events.push("DATA_VALID".into());
            self.next_data_valid = now + self.data_valid_period;
        }
        events
    }

    fn port_read(&mut self, address: u16, _now: u64) -> i64 {
        if address == ports::BUFFER {
            let b = self.stream.get(self.cursor).copied().unwrap_or(opcodes::END);
            self.cursor = (self.cursor + 1).min(self.stream.len());
            b as i64
        } else {
            0
        }
    }

    fn port_write(&mut self, address: u16, value: i64, now: u64) {
        let v = value.max(0) as u64;
        match address {
            ports::XPERIOD => {
                self.period_x = v;
                self.motor_x.set_period(v);
            }
            ports::YPERIOD => {
                self.period_y = v;
                self.motor_y.set_period(v);
            }
            ports::PHIPERIOD => {
                self.period_phi = v;
                self.motor_phi.set_period(v);
            }
            ports::XSTEPS => {
                if v == 0 {
                    self.pending_steps_events.push("X_STEPS");
                } else {
                    self.motor_x.start(v, self.dir_x, self.period_x);
                }
            }
            ports::YSTEPS => {
                if v == 0 {
                    self.pending_steps_events.push("Y_STEPS");
                } else {
                    self.motor_y.start(v, self.dir_y, self.period_y);
                }
            }
            ports::PHISTEPS => {
                if v == 0 {
                    self.pending_steps_events.push("PHI_STEPS");
                } else {
                    self.motor_phi.start(v, self.dir_phi, self.period_phi);
                }
            }
            ports::ZSTEPS
                if v > 0 => {
                    self.motor_z.start(v, 1, 1666);
                }
            ports::XDIR => self.dir_x = if v == 0 { 1 } else { -1 },
            ports::YDIR => self.dir_y = if v == 0 { 1 } else { -1 },
            ports::PHIDIR => self.dir_phi = if v == 0 { 1 } else { -1 },
            ports::STOPALL
                if v != 0 => {
                    self.stops += 1;
                    self.motor_x.stop();
                    self.motor_y.stop();
                    self.motor_phi.stop();
                    self.motor_z.stop();
                }
            ports::STATUS => self.status_writes.push((value, now)),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_bytes_at_data_valid_cadence() {
        let mut head = SmdHead::with_moves(&[Move { x: 100, y: 50, phi: 10 }]);
        assert_eq!(head.pending_bytes(), 8); // 7 frame bytes + END
        // First sample powers up and offers DATA_VALID.
        let evs = head.sample_events(0);
        assert!(evs.contains(&"POWER".to_string()));
        assert!(evs.contains(&"DATA_VALID".to_string()));
        // No second offer before 1500 cycles.
        let evs = head.sample_events(100);
        assert!(!evs.contains(&"DATA_VALID".to_string()));
        let evs = head.sample_events(1500);
        assert!(evs.contains(&"DATA_VALID".to_string()));
    }

    #[test]
    fn buffer_reads_consume_stream() {
        let mut head = SmdHead::with_moves(&[Move { x: 0x1234, y: 1, phi: 2 }]);
        assert_eq!(head.port_read(ports::BUFFER, 0), opcodes::MOVE as i64);
        assert_eq!(head.port_read(ports::BUFFER, 0), 0x34);
        assert_eq!(head.port_read(ports::BUFFER, 0), 0x12);
        // After exhaustion, END is returned.
        for _ in 0..10 {
            head.port_read(ports::BUFFER, 0);
        }
        assert_eq!(head.port_read(ports::BUFFER, 0), opcodes::END as i64);
    }

    #[test]
    fn arming_and_pulses_flow_back_as_events() {
        let mut head = SmdHead::new();
        head.port_write(ports::XDIR, 0, 0);
        head.port_write(ports::XPERIOD, 500, 0);
        head.port_write(ports::XSTEPS, 3, 0);
        assert!(head.motor_x.running());
        head.sample_events(0); // sync sample clock (also powers up)
        let evs = head.sample_events(500);
        assert!(evs.contains(&"X_PULSE".to_string()), "{evs:?}");
        // Finish the move: completion event, no further pulses.
        let evs = head.sample_events(2000);
        assert!(evs.contains(&"X_STEPS".to_string()), "{evs:?}");
        assert!(head.motor_x.position() == 3);
    }

    #[test]
    fn zero_step_arm_completes_immediately() {
        let mut head = SmdHead::new();
        head.port_write(ports::XSTEPS, 0, 0);
        let evs = head.sample_events(10);
        assert!(evs.contains(&"X_STEPS".to_string()));
    }

    #[test]
    fn stop_all_halts_everything() {
        let mut head = SmdHead::new();
        head.port_write(ports::XSTEPS, 100, 0);
        head.port_write(ports::PHISTEPS, 100, 0);
        head.port_write(ports::STOPALL, 1, 0);
        assert!(head.all_idle());
        assert_eq!(head.stops, 1);
    }

    #[test]
    fn direction_latches_apply() {
        let mut head = SmdHead::new();
        head.port_write(ports::XDIR, 1, 0);
        head.port_write(ports::XSTEPS, 2, 0);
        head.sample_events(0);
        head.sample_events(50_000);
        assert_eq!(head.motor_x.position(), -2);
    }
}
