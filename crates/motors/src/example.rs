//! The paper's industrial example: the SMD pickup-head controller
//! (Figs. 5–7, Tables 2–4).
//!
//! The chart reconstructs the topology of Figs. 5/6: a top-level OR with
//! `OFF`, `Idle1`, the `Operation` AND-state and `ErrState`; inside
//! `Operation`, the `DataPreparation` region (OpReady → EmptyBuf →
//! Bounds → NoData, Fig. 2a/6) runs in parallel with the
//! `ReachPosition` motion region (Fig. 5: per-axis Start → Run → End
//! with `X_PULSE/DeltaT` self-loops and a `[XFINISH and YFINISH and
//! PHIFINISH]` join).
//!
//! The action routines are written in the paper's extended-C notation
//! and compiled by `pscp-action-lang`; `DeltaT*` implements the classic
//! stepper acceleration ramp `c' = c - 2c/(4n+1)` — one multiply and one
//! divide inside the 300-cycle X/Y pulse deadline, which is precisely
//! what sinks the minimal TEP in Table 4.

use pscp_statechart::{Chart, ChartBuilder, StateKind};

/// Data-port address map shared between the controller and the plant.
pub mod ports {
    /// Command byte stream from the central controller (in).
    pub const BUFFER: u16 = 0x10;
    /// X-axis counter period (out).
    pub const XPERIOD: u16 = 0x20;
    /// Y-axis counter period (out).
    pub const YPERIOD: u16 = 0x21;
    /// φ-axis counter period (out).
    pub const PHIPERIOD: u16 = 0x22;
    /// Arm the X motor with a step count (out).
    pub const XSTEPS: u16 = 0x28;
    /// Arm the Y motor with a step count (out).
    pub const YSTEPS: u16 = 0x29;
    /// Arm the φ motor with a step count (out).
    pub const PHISTEPS: u16 = 0x2A;
    /// Arm the Z motor with a step count (uniform speed) (out).
    pub const ZSTEPS: u16 = 0x2B;
    /// X direction (0 = +, 1 = -) (out).
    pub const XDIR: u16 = 0x2C;
    /// Y direction (out).
    pub const YDIR: u16 = 0x2D;
    /// φ direction (out).
    pub const PHIDIR: u16 = 0x2E;
    /// Emergency stop of all motors (out).
    pub const STOPALL: u16 = 0x30;
    /// Status/telemetry word (out): completed-move counter.
    pub const STATUS: u16 = 0x31;
}

/// Command-stream opcodes.
pub mod opcodes {
    /// Move to absolute (x, y, φ).
    pub const MOVE: u8 = 1;
    /// End of command stream.
    pub const END: u8 = 255;
}

/// The chart in the textual statechart format (Fig. 2a notation),
/// shipped as an asset and kept in sync with [`pickup_head_chart`] by a
/// test.
pub const PICKUP_HEAD_SOURCE: &str = include_str!("../assets/pickup_head.sc");

/// Table 2: the timing constraints of the example, `(event, period)` in
/// reference-clock cycles at 15 MHz.
pub fn timing_constraints() -> Vec<(&'static str, u64)> {
    vec![
        ("DATA_VALID", 1500),
        ("X_PULSE", 300),
        ("Y_PULSE", 300),
        ("PHI_PULSE", 1600),
    ]
}

/// Builds the pickup-head statechart (Figs. 5 and 6).
pub fn pickup_head_chart() -> Chart {
    let mut b = ChartBuilder::new("PickupHead");

    // External events, with the Table 2 arrival periods.
    b.event("POWER", None);
    b.event("INIT", None);
    b.event("ALLRESET", None);
    b.event("ERROR", None);
    b.event("DATA_VALID", Some(1500));
    b.event("X_PULSE", Some(300));
    b.event("Y_PULSE", Some(300));
    b.event("PHI_PULSE", Some(1600));
    b.event("X_STEPS", None);
    b.event("Y_STEPS", None);
    b.event("PHI_STEPS", None);
    b.event("GRAB_RELEASE", None);
    // Internal events raised by routines.
    b.internal_event("BUF_READY");
    b.internal_event("PARAMS_READY");
    b.internal_event("BOUNDS_OK");
    b.internal_event("END_DATA");
    b.internal_event("END_MOVE");
    // Conditions.
    b.condition("MOVEMENT", false);
    b.condition("XFINISH", false);
    b.condition("YFINISH", false);
    b.condition("PHIFINISH", false);

    // Data ports (Fig. 2b's port architecture).
    use pscp_statechart::model::PortDirection::{Input, Output};
    b.data_port("BUFFER", 8, ports::BUFFER, Input);
    b.data_port("XPERIOD", 16, ports::XPERIOD, Output);
    b.data_port("YPERIOD", 16, ports::YPERIOD, Output);
    b.data_port("PHIPERIOD", 16, ports::PHIPERIOD, Output);
    b.data_port("XSTEPS_P", 16, ports::XSTEPS, Output);
    b.data_port("YSTEPS_P", 16, ports::YSTEPS, Output);
    b.data_port("PHISTEPS_P", 16, ports::PHISTEPS, Output);
    b.data_port("ZSTEPS_P", 16, ports::ZSTEPS, Output);
    b.data_port("XDIR_P", 8, ports::XDIR, Output);
    b.data_port("YDIR_P", 8, ports::YDIR, Output);
    b.data_port("PHIDIR_P", 8, ports::PHIDIR, Output);
    b.data_port("STOPALL_P", 8, ports::STOPALL, Output);
    b.data_port("STATUS_P", 16, ports::STATUS, Output);

    // ---- top level (Fig. 6) -------------------------------------------
    b.state("Controller", StateKind::Or)
        .contains(["OFF", "Idle1", "Operation", "ErrState"])
        .default_child("OFF");
    b.state("OFF", StateKind::Basic).transition("Idle1", "POWER");
    b.state("Idle1", StateKind::Basic)
        .transition("OpReady", "[DATA_VALID]/GetByte()")
        // The gripper cycle (Fig. 5's @GRAB_RELEASE connector): re-enter
        // the motion region directly for a pick/place at the current
        // position.
        .transition("ReachPosition", "GRAB_RELEASE");
    b.state("Operation", StateKind::And)
        .contains(["DataPreparation", "ReachPosition"])
        .transition("Idle1", "INIT or ALLRESET/InitializeAll()")
        .transition("ErrState", "ERROR/Stop()")
        .transition("Idle1", "END_DATA/Finish()");
    b.state("ErrState", StateKind::Basic)
        .transition("Idle1", "INIT or ALLRESET/InitializeAll()");

    // ---- data preparation (Figs. 2a and 6) ----------------------------
    b.state("DataPreparation", StateKind::Or)
        .contains(["OpReady", "EmptyBuf", "Bounds", "NoData"])
        .default_child("OpReady");
    b.state("OpReady", StateKind::Basic)
        .transition("OpReady", "[DATA_VALID]/GetByte()")
        .transition("EmptyBuf", "BUF_READY/DecodeOpcode()");
    b.state("EmptyBuf", StateKind::Basic)
        .transition("Bounds", "PARAMS_READY/CheckBounds()");
    b.state("Bounds", StateKind::Basic)
        .transition("NoData", "BOUNDS_OK/PrepareMove()");
    b.state("NoData", StateKind::Basic)
        .transition("OpReady", "not (X_PULSE or Y_PULSE)/PhiParameters()")
        // The next command byte may already arrive while the previous
        // frame's φ parameters are pending (Table 3 lists NoData as a
        // DATA_VALID consumer).
        .transition("OpReady", "[DATA_VALID]/GetByte()");

    // ---- motion (Fig. 5) -----------------------------------------------
    b.state("ReachPosition", StateKind::Or)
        .contains(["Idle2", "Moving"])
        .default_child("Idle2");
    b.state("Idle2", StateKind::Basic).transition("Moving", "[MOVEMENT]");
    b.state("Moving", StateKind::And)
        .contains(["MoveX", "MoveY", "MovePhi"])
        .transition("Idle2", "[XFINISH and YFINISH and PHIFINISH]/EndMove()");

    b.state("MoveX", StateKind::Or)
        .contains(["XStart2", "RunX", "XEnd2"])
        .default_child("XStart2");
    b.state("XStart2", StateKind::Basic).transition("RunX", "/StartMotorX()");
    b.state("RunX", StateKind::Basic)
        .transition("RunX", "X_PULSE/DeltaTX()")
        .transition("XEnd2", "X_STEPS/FinishX()");
    b.basic("XEnd2");

    b.state("MoveY", StateKind::Or)
        .contains(["YStart2", "RunY", "YEnd2"])
        .default_child("YStart2");
    b.state("YStart2", StateKind::Basic).transition("RunY", "/StartMotorY()");
    b.state("RunY", StateKind::Basic)
        .transition("RunY", "Y_PULSE/DeltaTY()")
        .transition("YEnd2", "Y_STEPS/FinishY()");
    b.basic("YEnd2");

    b.state("MovePhi", StateKind::Or)
        .contains(["PhiStart", "RunPhi", "PhiEnd"])
        .default_child("PhiStart");
    b.state("PhiStart", StateKind::Basic).transition("RunPhi", "/StartMotorPhi()");
    b.state("RunPhi", StateKind::Basic)
        .transition("RunPhi", "PHI_PULSE/DeltaTPhi()")
        .transition("PhiEnd", "PHI_STEPS/FinishPhi()");
    b.basic("PhiEnd");

    b.build().expect("pickup-head chart is well-formed")
}

/// The extended-C action routines of the controller.
pub fn pickup_head_actions() -> String {
    r#"
// ---- command assembly (central controller protocol) -------------------
uint:8  byte_no;
uint:8  opcode;
uint:16 cmd_x;
uint:16 cmd_y;
uint:16 cmd_phi;

// ---- head position (steps) --------------------------------------------
uint:16 pos_x;
uint:16 pos_y;
uint:16 pos_phi;

// ---- per-axis ramp state: counter period, ramp step, steps remaining --
int:16 xc;  int:16 xn;  int:16 xleft;
int:16 yc;  int:16 yn;  int:16 yleft;
int:16 moves_done;

// ---- limits -------------------------------------------------------------
int:16 min_period_xy = 300;      // 50 kHz at 15 MHz
int:16 start_period_xy = 16800;  // ~900 Hz first step, fits 10 m/s^2
int:16 phi_period = 1666;       // 9 kHz, uniform
uint:16 max_coord = 20000;      // 0.5 m at 0.025 mm/step

// Reads one byte of the command frame from the central controller:
// [opcode, x_lo, x_hi, y_lo, y_hi, phi_lo, phi_hi]; opcode 255 ends the
// stream.
void GetByte() {
    uint:16 b = BUFFER;
    if (byte_no < 3) {
        if (byte_no == 0) {
            opcode = b;
            if (opcode == 255) { raise END_DATA; } else { byte_no = 1; }
        } else if (byte_no == 1) { cmd_x = b; byte_no = 2; }
        else { cmd_x = cmd_x + (b << 8); byte_no = 3; }
    } else if (byte_no < 5) {
        if (byte_no == 3) { cmd_y = b; byte_no = 4; }
        else { cmd_y = cmd_y + (b << 8); byte_no = 5; }
    } else if (byte_no == 5) { cmd_phi = b; byte_no = 6; }
    else {
        cmd_phi = cmd_phi + (b << 8);
        byte_no = 0;
        raise BUF_READY;
    }
}

void DecodeOpcode() {
    if (opcode == 1) { raise PARAMS_READY; } else { raise ERROR; }
}

void CheckBounds() {
    if (cmd_x > max_coord) { raise ERROR; }
    else if (cmd_y > max_coord) { raise ERROR; }
    else if (cmd_phi > 3600) { raise ERROR; }
    else { raise BOUNDS_OK; }
}

// Distance (steps) between two unsigned positions.
uint:16 Distance(uint:16 from, uint:16 to) {
    if (to >= from) { return to - from; }
    return from - to;
}

void PrepareMove() {
    if (cmd_x >= pos_x) { xleft = cmd_x - pos_x; XDIR_P = 0; }
    else                { xleft = pos_x - cmd_x; XDIR_P = 1; }
    if (cmd_y >= pos_y) { yleft = cmd_y - pos_y; YDIR_P = 0; }
    else                { yleft = pos_y - cmd_y; YDIR_P = 1; }
    if (cmd_phi >= pos_phi) { PHIDIR_P = 0; } else { PHIDIR_P = 1; }
    MOVEMENT = 1;
}

// The φ parameters: uniform speed, step count scaled from the angle
// delta through the gear ratio (0.1 degree per step). The Z axis is
// armed here too — it "moves uniformly" (§5) and is not tracked by the
// chart.
void PhiParameters() {
    uint:16 dphi;
    if (cmd_phi >= pos_phi) { dphi = cmd_phi - pos_phi; }
    else                    { dphi = pos_phi - cmd_phi; }
    ZSTEPS_P = (dphi * 9) / 20;
}

// The classic stepper ramp: c' = c - 2c/(4n+1) while accelerating,
// mirrored for deceleration. One multiply and one divide per pulse.
// Inlined into DeltaTX/DeltaTY — the call overhead would eat into the
// 300-cycle pulse deadline; kept here as the reference formulation for
// the bounds/φ paths.
int:16 NextPeriod(int:16 c, int:16 n, int:16 left) {
    if (left < n) {
        // Deceleration phase.
        return c + (2 * c) / (4 * left + 1);
    }
    if (c > min_period_xy) {
        int:16 cn = c - (2 * c) / (4 * n + 1);
        if (cn < min_period_xy) { return min_period_xy; }
        return cn;
    }
    return c;
}

void StartMotorX() {
    xc = start_period_xy;
    xn = 0;
    if (xleft == 0) { XFINISH = 1; }
    else {
        XFINISH = 0;
        XPERIOD = xc;
        XSTEPS_P = xleft;
    }
}

void StartMotorY() {
    yc = start_period_xy;
    yn = 0;
    if (yleft == 0) { YFINISH = 1; }
    else {
        YFINISH = 0;
        YPERIOD = yc;
        YSTEPS_P = yleft;
    }
}

void StartMotorPhi() {
    uint:16 dphi;
    if (cmd_phi >= pos_phi) { dphi = cmd_phi - pos_phi; }
    else                    { dphi = pos_phi - cmd_phi; }
    if (dphi == 0) { PHIFINISH = 1; }
    else {
        PHIFINISH = 0;
        PHIPERIOD = phi_period;
        PHISTEPS_P = dphi;
    }
}

void DeltaTX() {
    xn = xn + 1;
    xleft = xleft - 1;
    if (xleft < xn) {
        xc = xc + (2 * xc) / (4 * xleft + 1);
    } else if (xc > min_period_xy) {
        xc = xc - (2 * xc) / (4 * xn + 1);
        if (xc < min_period_xy) { xc = min_period_xy; }
    }
    XPERIOD = xc;
}

void DeltaTY() {
    yn = yn + 1;
    yleft = yleft - 1;
    if (yleft < yn) {
        yc = yc + (2 * yc) / (4 * yleft + 1);
    } else if (yc > min_period_xy) {
        yc = yc - (2 * yc) / (4 * yn + 1);
        if (yc < min_period_xy) { yc = min_period_xy; }
    }
    YPERIOD = yc;
}

// The φ motor moves uniformly (§5) — the update only refreshes the
// counter.
void DeltaTPhi() {
    PHIPERIOD = phi_period;
}

void FinishX() { XFINISH = 1; pos_x = cmd_x; }
void FinishY() { YFINISH = 1; pos_y = cmd_y; }
void FinishPhi() { PHIFINISH = 1; pos_phi = cmd_phi; }

void EndMove() {
    MOVEMENT = 0;
    XFINISH = 0;
    YFINISH = 0;
    PHIFINISH = 0;
    moves_done = moves_done + 1;
    STATUS_P = moves_done;
    raise END_MOVE;
}

void InitializeAll() {
    byte_no = 0;
    opcode = 0;
    MOVEMENT = 0;
    XFINISH = 0;
    YFINISH = 0;
    PHIFINISH = 0;
    STOPALL_P = 1;
}

void Stop() {
    STOPALL_P = 1;
    MOVEMENT = 0;
}

void Finish() {
    STOPALL_P = 0;
    STATUS_P = moves_done;
}
"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_core::arch::PscpArch;
    use pscp_core::compile::compile_system;
    use pscp_tep::codegen::CodegenOptions;

    #[test]
    fn chart_is_well_formed() {
        let chart = pickup_head_chart();
        assert!(chart.state_count() >= 20);
        assert!(chart.transition_count() >= 18);
        // Table 3 cycle endpoints exist.
        for s in [
            "Idle1", "OpReady", "EmptyBuf", "Bounds", "NoData", "ErrState", "RunX", "RunY",
            "RunPhi", "Idle2", "ReachPosition",
        ] {
            assert!(chart.state_by_name(s).is_some(), "missing {s}");
        }
    }

    #[test]
    fn textual_asset_matches_builder_chart() {
        let built = pickup_head_chart();
        let parsed =
            pscp_statechart::parse::parse_chart(PICKUP_HEAD_SOURCE).expect("asset parses");
        assert_eq!(parsed, built, "regenerate assets/pickup_head.sc after chart edits");
    }

    #[test]
    fn constraints_match_table2() {
        let chart = pickup_head_chart();
        for (name, period) in timing_constraints() {
            let e = chart.event_by_name(name).unwrap();
            assert_eq!(chart.event(e).period, Some(period), "{name}");
        }
    }

    #[test]
    fn actions_compile_against_chart() {
        let chart = pickup_head_chart();
        let env = pscp_core::compile::chart_env(&chart);
        let ir = pscp_action_lang::compile_with_env(&pickup_head_actions(), &env).unwrap();
        // DeltaT path must contain the mul and div of the ramp.
        let f = ir.function("NextPeriod").unwrap();
        let h = f.op_histogram();
        assert!(h.mul >= 1, "ramp must multiply");
        assert!(h.div >= 1, "ramp must divide");
    }

    #[test]
    fn full_system_compiles_on_all_table4_architectures() {
        let chart = pickup_head_chart();
        let actions = pickup_head_actions();
        for arch in [
            PscpArch::minimal(),
            PscpArch::md16_unoptimized(),
            PscpArch::md16_optimized(),
            PscpArch::dual_md16(false),
            PscpArch::dual_md16(true),
        ] {
            let sys = compile_system(&chart, &actions, &arch, &CodegenOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", arch.label));
            assert!(sys.program.instruction_count() > 100, "{}", arch.label);
            // The minimal TEP needs the software runtime.
            if !arch.tep.calc.muldiv {
                assert!(sys.program.function_index("__mulu_16").is_some());
            }
        }
    }
}
