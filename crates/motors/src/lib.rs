//! Stepper-motor plant model and the paper's industrial example.
//!
//! §5 of the paper: "we modeled the controller of a pickup head for the
//! placement of SMD components on a PCB. … four motors have to be
//! controlled that move the head in the x, y, z, and φ coordinates. The
//! X and Y motors operate with a maximum step frequency of 50kHz, the Z
//! and φ motors with 9kHz. … The motors are set in motion by counters
//! that issue a pulse on zero. The Z and φ motors move uniformly, while
//! the X and Y motors have to be accelerated and decelerated in a
//! precise way, because of inertia. For a 15MHz reference clock, this
//! leads to timing requirements of 300 cycles to update the X and Y
//! counters. Further, the controller can receive commands from a
//! central controller every 1500 cycles."
//!
//! * [`stepper`] — discrete-time stepper-motor physics: down-counter
//!   pulse generation, velocity/acceleration limit checking, position
//!   integration.
//! * [`head`] — the SMD pickup head as a [`pscp_core::machine::Environment`]:
//!   command stream, pulse events, period/steps ports, deadline
//!   accounting.
//! * [`example`] — the Figs. 5/6 statechart and its extended-C action
//!   routines, plus the Table 2 timing constraints.

pub mod example;
pub mod head;
pub mod stepper;

pub use example::{
    pickup_head_actions, pickup_head_chart, timing_constraints, PICKUP_HEAD_SOURCE,
};
pub use head::SmdHead;
pub use stepper::StepperMotor;

/// The 15 MHz reference clock of the example.
pub const CLOCK_HZ: u64 = 15_000_000;
