//! Discrete-time stepper-motor physics.
//!
//! A motor is driven by a down-counter: the controller writes a period,
//! the counter counts reference-clock cycles and "issues a pulse on
//! zero" (§5), advancing the rotor one step and reloading the period.
//! The model integrates position, derives the step frequency from the
//! period, and checks the physical limits (maximum step frequency,
//! maximum acceleration) the paper states for the SMD head's axes.

use serde::{Deserialize, Serialize};

/// Physical limits of one axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AxisLimits {
    /// Maximum step frequency in Hz (50 kHz for X/Y, 9 kHz for Z/φ).
    pub max_step_hz: u64,
    /// Step length in micrometres (25 µm for X/Y/Z) or centi-degrees
    /// (10 for φ). Only used for reporting.
    pub step_size: u32,
    /// Maximum acceleration in steps/s² (10 m/s² at 25 µm/step =
    /// 400 000 steps/s² for X/Y); `None` for uniform-speed axes.
    pub max_accel_steps_s2: Option<u64>,
    /// Reference clock in Hz.
    pub clock_hz: u64,
}

impl AxisLimits {
    /// The paper's X/Y axis: 50 kHz, 0.025 mm/step, 10 m/s², 1.25 m/s.
    pub fn xy(clock_hz: u64) -> Self {
        AxisLimits {
            max_step_hz: 50_000,
            step_size: 25,
            max_accel_steps_s2: Some(400_000),
            clock_hz,
        }
    }

    /// The paper's Z/φ axis: 9 kHz, uniform speed.
    pub fn zphi(clock_hz: u64) -> Self {
        AxisLimits { max_step_hz: 9_000, step_size: 10, max_accel_steps_s2: None, clock_hz }
    }

    /// Minimum legal counter period in clock cycles (= clock / max step
    /// frequency; 300 cycles for X/Y at 15 MHz — the Table 2 numbers).
    pub fn min_period(&self) -> u64 {
        self.clock_hz / self.max_step_hz
    }
}

/// Violations the plant can detect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MotorFault {
    /// Commanded period below the axis' minimum (overspeed).
    Overspeed,
    /// Step-to-step frequency change exceeds the acceleration limit.
    Overaccel,
    /// A pulse was not serviced before the next one arrived (the
    /// controller missed its counter-update deadline).
    MissedPulse,
}

/// One stepper motor with its down-counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepperMotor {
    /// Axis limits.
    pub limits: AxisLimits,
    /// Current counter period in cycles (0 = stopped).
    period: u64,
    /// Cycles until the next pulse.
    remaining: u64,
    /// Steps still to issue in the current move (0 = idle).
    steps_left: u64,
    /// Absolute position in steps.
    position: i64,
    /// Direction of the current move.
    direction: i64,
    /// Period of the previous step (for the acceleration check).
    last_period: Option<u64>,
    /// Faults observed.
    pub faults: Vec<MotorFault>,
    /// Total pulses issued.
    pub pulses: u64,
}

impl StepperMotor {
    /// Creates an idle motor.
    pub fn new(limits: AxisLimits) -> Self {
        StepperMotor {
            limits,
            period: 0,
            remaining: 0,
            steps_left: 0,
            position: 0,
            direction: 1,
            last_period: None,
            faults: Vec::new(),
            pulses: 0,
        }
    }

    /// True while a move is in progress.
    pub fn running(&self) -> bool {
        self.steps_left > 0
    }

    /// Absolute position in steps.
    pub fn position(&self) -> i64 {
        self.position
    }

    /// Steps remaining in the current move.
    pub fn steps_left(&self) -> u64 {
        self.steps_left
    }

    /// Current counter period.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Arms a move: `steps` to go in `direction` (±1), starting with
    /// counter period `period`.
    pub fn start(&mut self, steps: u64, direction: i64, period: u64) {
        self.check_period(period);
        self.steps_left = steps;
        self.direction = if direction < 0 { -1 } else { 1 };
        self.period = period.max(1);
        self.remaining = self.period;
        self.last_period = None;
        if steps == 0 {
            self.period = 0;
        }
    }

    /// Controller writes a new counter period (the `DeltaT` update).
    pub fn set_period(&mut self, period: u64) {
        if !self.running() {
            return;
        }
        self.check_period(period);
        self.period = period.max(1);
    }

    /// Stops the motor immediately.
    pub fn stop(&mut self) {
        self.steps_left = 0;
        self.period = 0;
        self.remaining = 0;
        self.last_period = None;
    }

    fn check_period(&mut self, period: u64) {
        let min = self.limits.min_period();
        if period > 0 && period < min {
            self.faults.push(MotorFault::Overspeed);
        }
        if let (Some(max_accel), Some(last)) =
            (self.limits.max_accel_steps_s2, self.last_period)
        {
            if period > 0 && last > 0 {
                let clock = self.limits.clock_hz as f64;
                let f_new = clock / period as f64;
                let f_old = clock / last as f64;
                // Acceleration over one step interval: df / dt with
                // dt = last/clock.
                let accel = (f_new - f_old).abs() / (last as f64 / clock);
                // 2.5x headroom over the spec: the classical integer
                // ramp c' = c - 2c/(4n+1) overshoots the ideal
                // constant-acceleration profile on its first steps (the
                // well-known 0.676 first-step deviation); the check
                // still catches order-of-magnitude violations.
                if accel > max_accel as f64 * 2.5 {
                    self.faults.push(MotorFault::Overaccel);
                }
            }
        }
    }

    /// Advances the motor by `cycles` clock cycles; returns the number
    /// of pulses issued in that window. More than one pulse per window
    /// means the controller failed to service each pulse in time, which
    /// is recorded as a [`MotorFault::MissedPulse`] per extra pulse.
    pub fn advance(&mut self, cycles: u64) -> u64 {
        if !self.running() || self.period == 0 {
            return 0;
        }
        let mut issued = 0;
        let mut left = cycles;
        while self.running() && left > 0 {
            if self.remaining > left {
                self.remaining -= left;
                break;
            }
            left -= self.remaining;
            // Pulse.
            issued += 1;
            self.pulses += 1;
            self.position += self.direction;
            self.steps_left -= 1;
            self.last_period = Some(self.period);
            self.remaining = self.period;
            if !self.running() {
                self.period = 0;
                break;
            }
        }
        if issued > 1 {
            for _ in 1..issued {
                self.faults.push(MotorFault::MissedPulse);
            }
        }
        issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLOCK: u64 = 15_000_000;

    #[test]
    fn min_periods_match_table2() {
        assert_eq!(AxisLimits::xy(CLOCK).min_period(), 300);
        assert_eq!(AxisLimits::zphi(CLOCK).min_period(), 1666);
    }

    #[test]
    fn pulses_arrive_every_period() {
        let mut m = StepperMotor::new(AxisLimits::xy(CLOCK));
        m.start(10, 1, 500);
        assert_eq!(m.advance(499), 0);
        assert_eq!(m.advance(1), 1);
        assert_eq!(m.advance(500), 1);
        assert_eq!(m.position(), 2);
        assert_eq!(m.steps_left(), 8);
    }

    #[test]
    fn move_completes_and_stops() {
        let mut m = StepperMotor::new(AxisLimits::xy(CLOCK));
        m.start(3, -1, 400);
        let total = m.advance(400 * 10);
        assert_eq!(total, 3);
        assert!(!m.running());
        assert_eq!(m.position(), -3);
        // Further time: no pulses.
        assert_eq!(m.advance(10_000), 0);
    }

    #[test]
    fn overspeed_detected() {
        let mut m = StepperMotor::new(AxisLimits::xy(CLOCK));
        m.start(5, 1, 200); // < 300 min period
        assert!(m.faults.contains(&MotorFault::Overspeed));
    }

    #[test]
    fn missed_pulse_detected() {
        let mut m = StepperMotor::new(AxisLimits::xy(CLOCK));
        m.start(10, 1, 300);
        // A window spanning three periods: two extra unserviced pulses.
        assert_eq!(m.advance(900), 3);
        assert_eq!(
            m.faults.iter().filter(|f| **f == MotorFault::MissedPulse).count(),
            2
        );
    }

    #[test]
    fn gentle_ramp_passes_accel_check() {
        let mut m = StepperMotor::new(AxisLimits::xy(CLOCK));
        // Physically sized start period (~900 Hz first step for
        // 400 000 steps/s^2), then the classical ramp; never trips.
        m.start(60, 1, 16800);
        let mut period = 16800u64;
        for n in 1..50u64 {
            // Service each pulse exactly when it arrives, like the
            // controller's X_PULSE/DeltaT loop.
            while m.running() && m.advance(100) == 0 {}
            period = (period - (2 * period) / (4 * n + 1)).max(300);
            m.set_period(period);
        }
        assert!(
            !m.faults.contains(&MotorFault::Overaccel),
            "faults: {:?}",
            m.faults
        );
    }

    #[test]
    fn violent_jump_trips_accel_check() {
        let mut m = StepperMotor::new(AxisLimits::xy(CLOCK));
        m.start(50, 1, 5000);
        m.advance(5000);
        m.set_period(300); // 3 kHz -> 50 kHz in one step
        assert!(m.faults.contains(&MotorFault::Overaccel));
    }

    #[test]
    fn stop_halts_immediately() {
        let mut m = StepperMotor::new(AxisLimits::zphi(CLOCK));
        m.start(100, 1, 1700);
        m.advance(1700 * 3);
        m.stop();
        assert!(!m.running());
        assert_eq!(m.advance(100_000), 0);
        assert_eq!(m.position(), 3);
    }
}
