chart PickupHead;
event POWER;
event INIT;
event ALLRESET;
event ERROR;
event DATA_VALID period 1500;
event X_PULSE period 300;
event Y_PULSE period 300;
event PHI_PULSE period 1600;
event X_STEPS;
event Y_STEPS;
event PHI_STEPS;
event GRAB_RELEASE;
event BUF_READY internal;
event PARAMS_READY internal;
event BOUNDS_OK internal;
event END_DATA internal;
event END_MOVE internal;
condition MOVEMENT;
condition XFINISH;
condition YFINISH;
condition PHIFINISH;
port BUFFER width 8 addr 16 in;
port XPERIOD width 16 addr 32 out;
port YPERIOD width 16 addr 33 out;
port PHIPERIOD width 16 addr 34 out;
port XSTEPS_P width 16 addr 40 out;
port YSTEPS_P width 16 addr 41 out;
port PHISTEPS_P width 16 addr 42 out;
port ZSTEPS_P width 16 addr 43 out;
port XDIR_P width 8 addr 44 out;
port YDIR_P width 8 addr 45 out;
port PHIDIR_P width 8 addr 46 out;
port STOPALL_P width 8 addr 48 out;
port STATUS_P width 16 addr 49 out;

orstate Controller {
    contains OFF, Idle1, Operation, ErrState;
    default OFF;
}
basicstate OFF {
    transition {
        target Idle1;
        label "POWER";
    }
}
basicstate Idle1 {
    transition {
        target OpReady;
        label "[DATA_VALID]/GetByte()";
    }
    transition {
        target ReachPosition;
        label "GRAB_RELEASE";
    }
}
andstate Operation {
    contains DataPreparation, ReachPosition;
    transition {
        target Idle1;
        label "INIT or ALLRESET/InitializeAll()";
    }
    transition {
        target ErrState;
        label "ERROR/Stop()";
    }
    transition {
        target Idle1;
        label "END_DATA/Finish()";
    }
}
basicstate ErrState {
    transition {
        target Idle1;
        label "INIT or ALLRESET/InitializeAll()";
    }
}
orstate DataPreparation {
    contains OpReady, EmptyBuf, Bounds, NoData;
    default OpReady;
}
basicstate OpReady {
    transition {
        target OpReady;
        label "[DATA_VALID]/GetByte()";
    }
    transition {
        target EmptyBuf;
        label "BUF_READY/DecodeOpcode()";
    }
}
basicstate EmptyBuf {
    transition {
        target Bounds;
        label "PARAMS_READY/CheckBounds()";
    }
}
basicstate Bounds {
    transition {
        target NoData;
        label "BOUNDS_OK/PrepareMove()";
    }
}
basicstate NoData {
    transition {
        target OpReady;
        label "not (X_PULSE or Y_PULSE)/PhiParameters()";
    }
    transition {
        target OpReady;
        label "[DATA_VALID]/GetByte()";
    }
}
orstate ReachPosition {
    contains Idle2, Moving;
    default Idle2;
}
basicstate Idle2 {
    transition {
        target Moving;
        label "[MOVEMENT]";
    }
}
andstate Moving {
    contains MoveX, MoveY, MovePhi;
    transition {
        target Idle2;
        label "[XFINISH and YFINISH and PHIFINISH]/EndMove()";
    }
}
orstate MoveX {
    contains XStart2, RunX, XEnd2;
    default XStart2;
}
basicstate XStart2 {
    transition {
        target RunX;
        label "/StartMotorX()";
    }
}
basicstate RunX {
    transition {
        target RunX;
        label "X_PULSE/DeltaTX()";
    }
    transition {
        target XEnd2;
        label "X_STEPS/FinishX()";
    }
}
basicstate XEnd2 { }
orstate MoveY {
    contains YStart2, RunY, YEnd2;
    default YStart2;
}
basicstate YStart2 {
    transition {
        target RunY;
        label "/StartMotorY()";
    }
}
basicstate RunY {
    transition {
        target RunY;
        label "Y_PULSE/DeltaTY()";
    }
    transition {
        target YEnd2;
        label "Y_STEPS/FinishY()";
    }
}
basicstate YEnd2 { }
orstate MovePhi {
    contains PhiStart, RunPhi, PhiEnd;
    default PhiStart;
}
basicstate PhiStart {
    transition {
        target RunPhi;
        label "/StartMotorPhi()";
    }
}
basicstate RunPhi {
    transition {
        target RunPhi;
        label "PHI_PULSE/DeltaTPhi()";
    }
    transition {
        target PhiEnd;
        label "PHI_STEPS/FinishPhi()";
    }
}
basicstate PhiEnd { }
