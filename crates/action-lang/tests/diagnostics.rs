//! The recovering action-language frontend against its legacy
//! fail-fast face: differential pins (the first accumulated diagnostic
//! IS the legacy error, field for field) and recovery properties
//! (mutilated sources never panic, failures always diagnose, reports
//! are deterministic and canonically sorted).

use proptest::prelude::*;
use pscp_action_lang::sema::ProgramEnv;
use pscp_action_lang::{compile_diag, compile_with_env};
use pscp_diag::DiagnosticSink;

/// Error-path inputs, one per failure class the legacy suite
/// exercises: lexical, syntactic and semantic.
const ERROR_INPUTS: &[&str] = &[
    // Lex: bad byte, malformed binary literal, unterminated comment.
    "int:16 x = `;",
    "int:16 x = B:;",
    "/* never closed",
    // Parse: missing `;`, missing `)`, stray token, truncated body.
    "void f() { x = 1 }",
    "void f(int:16 a { }",
    "void f() { } }",
    "void f() {",
    // Sema: unknown name, type mismatch, recursion, duplicate
    // definition, unknown callee.
    "void f() { ghost = 1; }",
    "void f() { f(); }",
    "int:16 g; int:16 g;",
    "void f() { h(1); }",
    "int:16 f() { return; }",
];

#[test]
fn legacy_error_is_the_first_accumulated_diagnostic() {
    let env = ProgramEnv::default();
    for src in ERROR_INPUTS {
        let legacy =
            compile_with_env(src, &env).expect_err(&format!("fixture must fail: {src:?}"));
        let mut sink = DiagnosticSink::new();
        let program = compile_diag(src, &env, &mut sink);
        assert!(program.is_none(), "recovering compile must agree on failure: {src:?}");
        let first = sink.first_error().expect("failed compile carries a diagnostic").clone();
        assert_eq!(
            first.code,
            pscp_action_lang::diag::phase_code(legacy.phase),
            "phase code differs on {src:?}"
        );
        assert_eq!(first.message, legacy.message, "message differs on {src:?}");
        assert_eq!(
            first.span,
            pscp_action_lang::diag::span_to_diag(legacy.span),
            "span differs on {src:?}"
        );
    }
}

#[test]
fn recovery_reports_more_than_the_legacy_first_error() {
    // One lexical, one syntactic and two semantic problems in a single
    // source: fail-fast stops at the first, recovery reports them all.
    let src = "\
        int:16 a = `1;\n\
        void f() { a = b }\n\
        void g() { c = 2; d(); }\n";
    let env = ProgramEnv::default();
    let mut sink = DiagnosticSink::new();
    assert!(compile_diag(src, &env, &mut sink).is_none());
    assert!(
        sink.error_count() >= 3,
        "expected >= 3 recovered errors, got {}: {:?}",
        sink.error_count(),
        sink.emitted()
    );
    let legacy = compile_with_env(src, &env).unwrap_err();
    assert_eq!(sink.first_error().unwrap().message, legacy.message);
}

fn action_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("int:16".to_string()),
            Just("uint:8".to_string()),
            Just("void".to_string()),
            Just("enum".to_string()),
            Just("struct".to_string()),
            Just("event".to_string()),
            Just("condition".to_string()),
            Just("port".to_string()),
            Just("raise".to_string()),
            Just("if".to_string()),
            Just("else".to_string()),
            Just("while".to_string()),
            Just("return".to_string()),
            Just("f".to_string()),
            Just("x".to_string()),
            Just("ghost".to_string()),
            Just("(".to_string()),
            Just(")".to_string()),
            Just("{".to_string()),
            Just("}".to_string()),
            Just(";".to_string()),
            Just("=".to_string()),
            Just("+".to_string()),
            Just("*".to_string()),
            Just("42".to_string()),
            Just("B:1010".to_string()),
            Just("B:".to_string()),
            Just("`".to_string()),
            Just("@".to_string()),
        ],
        0..40,
    )
    .prop_map(|toks| toks.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mutilated_sources_never_panic_and_always_diagnose(src in action_soup()) {
        let env = ProgramEnv::default();
        let legacy = compile_with_env(&src, &env);
        let mut sink = DiagnosticSink::new();
        let recovered = compile_diag(&src, &env, &mut sink);

        prop_assert_eq!(legacy.is_ok(), recovered.is_some());

        match legacy {
            Ok(_) => prop_assert!(!sink.has_errors()),
            Err(e) => {
                prop_assert!(sink.error_count() >= 1);
                let first = sink.first_error().unwrap();
                prop_assert_eq!(&first.message, &e.message);
                prop_assert_eq!(
                    first.span,
                    pscp_action_lang::diag::span_to_diag(e.span)
                );
            }
        }

        // Deterministic, canonically sorted report.
        let report = sink.finish();
        let mut resorted = report.clone();
        pscp_diag::sort_dedup(&mut resorted);
        prop_assert_eq!(&report, &resorted);

        let mut sink2 = DiagnosticSink::new();
        let _ = compile_diag(&src, &env, &mut sink2);
        prop_assert_eq!(report, sink2.finish());
    }

    #[test]
    fn raw_bytes_never_panic(src in ".{0,160}") {
        let env = ProgramEnv::default();
        let mut sink = DiagnosticSink::new();
        let _ = compile_diag(&src, &env, &mut sink);
        if compile_with_env(&src, &env).is_err() {
            prop_assert!(sink.error_count() >= 1);
        }
    }
}
