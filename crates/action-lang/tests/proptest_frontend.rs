//! Property-based front-end robustness: the lexer and parser must never
//! panic on arbitrary input, compilation must be deterministic, and the
//! scalar wrapping semantics must hold their algebraic properties.

use proptest::prelude::*;
use pscp_action_lang::types::Scalar;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_never_panics(src in ".{0,200}") {
        let _ = pscp_action_lang::lexer::tokenize(&src);
    }

    #[test]
    fn parser_never_panics(src in ".{0,200}") {
        let _ = pscp_action_lang::parser::parse(&src);
    }

    #[test]
    fn parser_never_panics_on_c_like_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("int:16".to_string()),
                Just("uint:8".to_string()),
                Just("void".to_string()),
                Just("f".to_string()),
                Just("x".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just(";".to_string()),
                Just("=".to_string()),
                Just("+".to_string()),
                Just("if".to_string()),
                Just("while".to_string()),
                Just("return".to_string()),
                Just("raise".to_string()),
                Just("42".to_string()),
                Just("B:1010".to_string()),
            ],
            0..40,
        )
    ) {
        let src = toks.join(" ");
        let _ = pscp_action_lang::compile(&src);
    }

    #[test]
    fn compilation_is_deterministic(a in -100i64..100) {
        let src = format!(
            "int:16 g = {a};\nint:16 f(int:16 x) {{ return g * x + {a}; }}"
        );
        let p1 = pscp_action_lang::compile(&src).unwrap();
        let p2 = pscp_action_lang::compile(&src).unwrap();
        prop_assert_eq!(p1, p2);
    }

    #[test]
    fn wrap_is_involutive_and_in_range(v in any::<i64>(), w in 1u8..=32, signed in any::<bool>()) {
        let t = Scalar { width: w, signed };
        let once = t.wrap(v);
        prop_assert_eq!(t.wrap(once), once, "wrap must be idempotent");
        if signed {
            let lo = -(1i64 << (w - 1));
            let hi = (1i64 << (w - 1)) - 1;
            prop_assert!(once >= lo && once <= hi);
        } else {
            prop_assert!(once >= 0 && (once as u64) <= t.mask());
        }
    }

    #[test]
    fn join_is_commutative_and_absorbing(
        w1 in 1u8..=32, s1 in any::<bool>(),
        w2 in 1u8..=32, s2 in any::<bool>(),
    ) {
        let a = Scalar { width: w1, signed: s1 };
        let b = Scalar { width: w2, signed: s2 };
        prop_assert_eq!(a.join(b), b.join(a));
        prop_assert_eq!(a.join(a), a);
        let j = a.join(b);
        prop_assert!(j.width >= a.width && j.width >= b.width);
        prop_assert_eq!(j.signed, a.signed || b.signed);
    }

    #[test]
    fn fitting_round_trips(v in -(1i64 << 31)..(1i64 << 31)) {
        let t = Scalar::fitting(v);
        prop_assert_eq!(t.wrap(v), v, "fitting({}) -> {} must represent v exactly", v, t);
    }
}
