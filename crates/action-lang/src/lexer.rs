//! Tokeniser for the extended-C action language.
//!
//! Deviations from plain C, per §2 of the paper:
//!
//! * `int:16` — the colon-width suffix is lexed as separate tokens and
//!   assembled by the parser;
//! * `B:001011` — binary constants with explicit width (the number of
//!   digits), lexed as a single [`Tok::BinLit`];
//! * `0700` — leading-zero literals are octal, exactly as in C (Fig. 2b
//!   uses octal port addresses).

use crate::diag::Emitter;
use crate::error::{CompileError, Span};
use std::fmt;

/// Token kinds of the action language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal with an optional intrinsic width.
    Int {
        /// The literal value.
        value: i64,
        /// Width in bits when the literal pins one (`B:` literals).
        width: Option<u8>,
    },
    /// Binary literal `B:001011` (value plus digit-count width).
    BinLit {
        /// The literal value.
        value: i64,
        /// Width = number of binary digits.
        width: u8,
    },
    /// Punctuation and operators, one or two characters.
    Sym(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int { value, .. } => write!(f, "integer {value}"),
            Tok::BinLit { value, width } => write!(f, "B-literal {value} ({width} bits)"),
            Tok::Sym(s) => write!(f, "`{s}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token plus its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Its position.
    pub span: Span,
}

const TWO_CHAR_SYMS: &[&str] = &[
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=", "++", "--",
];

const ONE_CHAR_SYMS: &[char] = &[
    '+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>', '=', '(', ')', '{', '}', '[',
    ']', ';', ',', ':', '.', '@',
];

/// Tokenises `src`, failing on the first lexical error.
///
/// Adapter over [`tokenize_into`]: the error returned is exactly the
/// first diagnostic the recovering lexer emits.
///
/// # Errors
///
/// Returns a positioned error for characters outside the language or
/// malformed literals.
pub fn tokenize(src: &str) -> Result<Vec<SpannedTok>, CompileError> {
    let mut sink = pscp_diag::DiagnosticSink::new();
    let mut em = Emitter::new(&mut sink);
    let toks = tokenize_into(src, &mut em);
    match em.take_first() {
        Some(e) => Err(e),
        None => Ok(toks),
    }
}

/// Tokenises `src`, recovering from lexical errors: every problem is
/// reported through `em` and the scan keeps going (bad characters are
/// skipped, malformed literals become `0`), so the parser always gets a
/// complete, EOF-terminated token stream.
pub(crate) fn tokenize_into(src: &str, em: &mut Emitter) -> Vec<SpannedTok> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! advance {
        () => {{
            if bytes[pos] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            pos += 1;
        }};
    }
    // The span of everything consumed since `start`, with byte offsets.
    macro_rules! span_from {
        ($start:expr) => {{
            let (sl, sc, sp) = $start;
            Span::range((sl, sc, sp as u32), (line, col, pos as u32))
        }};
    }

    while pos < bytes.len() {
        let b = bytes[pos];
        let start = (line, col, pos);
        let span = Span::range((line, col, pos as u32), (line, col + 1, pos as u32 + 1));

        // The language is ASCII; reject multi-byte characters up front
        // (also keeps all later byte-indexed slicing on char boundaries).
        if !b.is_ascii() {
            em.emit(CompileError::lex(span, "non-ASCII character in source"));
            // Skip the whole byte run so one multi-byte character does
            // not fan out into one diagnostic per byte.
            while pos < bytes.len() && !bytes[pos].is_ascii() {
                pos += 1;
                col += 1;
            }
            continue;
        }
        if b.is_ascii_whitespace() {
            advance!();
            continue;
        }
        // Comments.
        if b == b'/' && bytes.get(pos + 1) == Some(&b'/') {
            while pos < bytes.len() && bytes[pos] != b'\n' {
                advance!();
            }
            continue;
        }
        if b == b'/' && bytes.get(pos + 1) == Some(&b'*') {
            advance!();
            advance!();
            while pos + 1 < bytes.len() && !(bytes[pos] == b'*' && bytes[pos + 1] == b'/') {
                advance!();
            }
            if pos + 1 >= bytes.len() {
                em.emit(CompileError::lex(span, "unterminated block comment"));
                break;
            }
            advance!();
            advance!();
            continue;
        }

        // `B:0101` binary literal (identifier `B` followed by `:` digits).
        if b == b'B' && bytes.get(pos + 1) == Some(&b':') {
            let mut end = pos + 2;
            while end < bytes.len() && (bytes[end] == b'0' || bytes[end] == b'1') {
                end += 1;
            }
            if end > pos + 2 {
                let digits = &src[pos + 2..end];
                while pos < end {
                    advance!();
                }
                let span = span_from!(start);
                let tok = match i64::from_str_radix(digits, 2) {
                    Err(_) => {
                        em.emit(CompileError::lex(span, "binary literal overflows"));
                        Tok::Int { value: 0, width: None }
                    }
                    Ok(_) if digits.len() > 32 => {
                        em.emit(CompileError::lex(span, "binary literal wider than 32 bits"));
                        Tok::Int { value: 0, width: None }
                    }
                    Ok(value) => Tok::BinLit { value, width: digits.len() as u8 },
                };
                out.push(SpannedTok { tok, span });
                continue;
            }
        }

        if b.is_ascii_alphabetic() || b == b'_' {
            let begin = pos;
            while pos < bytes.len()
                && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
            {
                advance!();
            }
            out.push(SpannedTok {
                tok: Tok::Ident(src[begin..pos].to_string()),
                span: span_from!(start),
            });
            continue;
        }

        if b.is_ascii_digit() {
            let begin = pos;
            let hex = b == b'0' && matches!(bytes.get(pos + 1), Some(b'x') | Some(b'X'));
            if hex {
                advance!();
                advance!();
            }
            while pos < bytes.len()
                && (bytes[pos].is_ascii_hexdigit() && (hex || bytes[pos].is_ascii_digit()))
            {
                advance!();
            }
            let text = &src[begin..pos];
            let span = span_from!(start);
            let value = if hex {
                i64::from_str_radix(&text[2..], 16)
            } else if text.len() > 1 && text.starts_with('0') {
                // Leading zero means octal, as in C (Fig. 2b: `0700`).
                i64::from_str_radix(&text[1..], 8)
            } else {
                text.parse::<i64>()
            }
            .unwrap_or_else(|_| {
                em.emit(CompileError::lex(span, format!("invalid number `{text}`")));
                0
            });
            out.push(SpannedTok { tok: Tok::Int { value, width: None }, span });
            continue;
        }

        // Two-character symbols first.
        if let Some(two) = src.get(pos..pos + 2) {
            if let Some(&sym) = TWO_CHAR_SYMS.iter().find(|&&s| s == two) {
                advance!();
                advance!();
                out.push(SpannedTok { tok: Tok::Sym(sym), span: span_from!(start) });
                continue;
            }
        }
        if let Some(&c) = ONE_CHAR_SYMS.iter().find(|&&c| c == b as char) {
            advance!();
            // Leak-free static str lookup.
            let sym: &'static str = match c {
                '+' => "+",
                '-' => "-",
                '*' => "*",
                '/' => "/",
                '%' => "%",
                '&' => "&",
                '|' => "|",
                '^' => "^",
                '~' => "~",
                '!' => "!",
                '<' => "<",
                '>' => ">",
                '=' => "=",
                '(' => "(",
                ')' => ")",
                '{' => "{",
                '}' => "}",
                '[' => "[",
                ']' => "]",
                ';' => ";",
                ',' => ",",
                ':' => ":",
                '.' => ".",
                '@' => "@",
                _ => unreachable!(),
            };
            out.push(SpannedTok { tok: Tok::Sym(sym), span: span_from!(start) });
            continue;
        }

        em.emit(CompileError::lex(span, format!("unexpected character `{}`", b as char)));
        advance!();
    }

    let eof = (line, col, pos);
    out.push(SpannedTok { tok: Tok::Eof, span: span_from!(eof) });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn b_literals_carry_width() {
        let t = toks("B:001011");
        assert_eq!(t[0], Tok::BinLit { value: 0b001011, width: 6 });
    }

    #[test]
    fn octal_and_hex() {
        assert_eq!(toks("0700")[0], Tok::Int { value: 0o700, width: None });
        assert_eq!(toks("0x1F")[0], Tok::Int { value: 31, width: None });
        assert_eq!(toks("0")[0], Tok::Int { value: 0, width: None });
    }

    #[test]
    fn int_colon_width_is_three_tokens() {
        let t = toks("int:16");
        assert_eq!(
            t[..3],
            [
                Tok::Ident("int".into()),
                Tok::Sym(":"),
                Tok::Int { value: 16, width: None }
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        let t = toks("a <= b && c >> 2");
        assert!(t.contains(&Tok::Sym("<=")));
        assert!(t.contains(&Tok::Sym("&&")));
        assert!(t.contains(&Tok::Sym(">>")));
    }

    #[test]
    fn comments_ignored() {
        let t = toks("a /* x */ b // y\nc");
        assert_eq!(t.len(), 4); // a b c eof
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(tokenize("/* oops").is_err());
    }

    #[test]
    fn b_ident_still_identifier() {
        // `B` not followed by `:binary-digits` stays an identifier.
        let t = toks("B + Bx");
        assert_eq!(t[0], Tok::Ident("B".into()));
        assert_eq!(t[2], Tok::Ident("Bx".into()));
    }
}
