//! The extended-C action language of the PSCP flow.
//!
//! §2 of the paper introduces "C as notation for the action parts of
//! transition labels", with two deviations from plain C: declarations of
//! the form `int:16` give exact bit widths, and constants such as
//! `B:001011` specify binary values of known width. Careful range
//! specification "helps the ASIP generator to select an optimal
//! architecture". Function calls are allowed; recursion is not.
//!
//! The C code plays two roles (Fig. 2b): *configuration* — `enum`,
//! `struct` and port declarations that are never executed but drive the
//! generation of the hardware port architecture — and *action routines*
//! written by the designers, which become the executable modules.
//!
//! This crate implements the complete front and middle end:
//!
//! * [`lexer`] / [`parser`] / [`ast`] — syntax;
//! * [`types`] — bit-width scalar types, enums, structs;
//! * [`sema`] — symbol resolution, type checking, call-graph construction
//!   and the recursion ban;
//! * [`ir`] / [`lower`] — a three-address intermediate representation and
//!   AST→IR lowering (the "assembler-level representation is mostly used
//!   to analyze the data-path requirements" — the IR is where those
//!   requirements are read off);
//! * [`interp`] — a reference interpreter used to cross-check the TEP
//!   code generator.
//!
//! Interaction with the statechart: routines may read/write external
//! *data ports*, assign chart *conditions* (`XFINISH = 1;`), and `raise`
//! chart *events*. These chart symbols are either declared in-source
//! (`event END_MOVE;`, `condition XFINISH;`, `port Buffer : 8 @ 0x1CF;`)
//! or injected via [`sema::ProgramEnv`].
//!
//! # Example
//!
//! ```
//! use pscp_action_lang::compile;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = r#"
//!     condition XFINISH;
//!     int:16 total;
//!
//!     void SetDone(int:16 n) {
//!         total = total + n * 2;
//!         if (total > 100) { XFINISH = 1; }
//!     }
//! "#;
//! let program = compile(src)?;
//! assert!(program.function("SetDone").is_some());
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod diag;
pub mod error;
pub mod interp;
pub mod ir;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod sema;
pub mod types;

pub use error::{CompileError, Span};
pub use ir::{Function, Program};
pub use sema::ProgramEnv;

/// Compiles action-language source to IR with an empty chart environment.
///
/// # Errors
///
/// Returns the first lexical, syntactic or semantic error.
pub fn compile(source: &str) -> Result<Program, CompileError> {
    compile_with_env(source, &ProgramEnv::default())
}

/// Compiles action-language source against a chart environment that
/// supplies externally-declared events, conditions and data ports.
///
/// # Errors
///
/// Returns the first lexical, syntactic or semantic error — exactly the
/// first diagnostic [`compile_diag`] would accumulate on the same input.
pub fn compile_with_env(source: &str, env: &ProgramEnv) -> Result<Program, CompileError> {
    let mut sink = pscp_diag::DiagnosticSink::new();
    let mut em = diag::Emitter::new(&mut sink);
    match compile_impl(source, env, &mut em) {
        Some(p) => Ok(p),
        None => Err(em.take_first().expect("failed compile must carry an error")),
    }
}

/// Compiles with error recovery: every lexical, syntactic and semantic
/// problem found is accumulated into `sink` (stable codes `AL101` /
/// `AL201` / `AL301`) instead of stopping at the first. Returns the
/// program only when this compile added no errors to the sink.
pub fn compile_diag(
    source: &str,
    env: &ProgramEnv,
    sink: &mut pscp_diag::DiagnosticSink,
) -> Option<Program> {
    let mut em = diag::Emitter::new(sink);
    compile_impl(source, env, &mut em)
}

/// Syntax-checks only (lex + parse), accumulating every error into
/// `sink`. For callers that have no chart environment (so semantic
/// analysis would produce spurious unknown-name findings) but still
/// want the action text's syntax covered by the same report.
pub fn syntax_check_diag(source: &str, sink: &mut pscp_diag::DiagnosticSink) {
    let mut em = diag::Emitter::new(sink);
    let _ = parser::parse_into(source, &mut em);
}

fn compile_impl(source: &str, env: &ProgramEnv, em: &mut diag::Emitter) -> Option<Program> {
    let items = parser::parse_into(source, em);
    let checked = sema::analyze_into(&items, env, em)?;
    // A recovered-but-broken token stream or item list can still reach
    // here shaped well enough to analyze; never lower it.
    if em.errored() {
        return None;
    }
    Some(lower::lower(&checked))
}
