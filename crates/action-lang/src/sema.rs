//! Semantic analysis: symbol resolution, bit-width type checking, the
//! recursion ban, and flattening of configuration data.
//!
//! Struct- and enum-typed globals (the Fig. 2b `Port` / `EventCondition`
//! records) are *configuration* data: they are flattened into scalar
//! global slots at compile time, so the executable IR only ever touches
//! scalars — exactly the paper's observation that "these code pieces are
//! not actually executed, but used by the compiler".

use crate::ast::*;
use crate::diag::Emitter;
use crate::error::{CompileError, Span};
use crate::types::{Scalar, Type};
use std::collections::BTreeMap;

/// Placeholder type substituted for declarations whose real type could
/// not be resolved, so later uses type-check instead of cascading.
const RECOVERY_SCALAR: Scalar = Scalar { width: 16, signed: false };

/// Chart-supplied external symbols injected into the program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProgramEnv {
    /// Events `raise` may target.
    pub events: Vec<String>,
    /// Conditions usable as boolean variables.
    pub conditions: Vec<String>,
    /// External data ports.
    pub ports: Vec<PortSpec>,
}

/// An external data port as seen by the compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortSpec {
    /// Port name.
    pub name: String,
    /// Word width in bits.
    pub width: u8,
    /// Port address.
    pub address: u16,
    /// Reads allowed?
    pub readable: bool,
    /// Writes allowed?
    pub writable: bool,
}

/// Field layout of a struct: fields occupy consecutive scalar slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructLayout {
    /// `(name, scalar)` per field, slot offset = position.
    pub fields: Vec<(String, Scalar)>,
}

impl StructLayout {
    /// Offset and type of a field.
    pub fn field(&self, name: &str) -> Option<(u32, Scalar)> {
        self.fields
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| (i as u32, self.fields[i].1))
    }
}

/// How a global variable name maps onto flattened scalar slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GlobalBinding {
    /// A single scalar at `slot`.
    Scalar {
        /// Slot index.
        slot: u32,
        /// Element type.
        ty: Scalar,
    },
    /// An array of `len` scalars starting at `base`.
    Array {
        /// First slot.
        base: u32,
        /// Element count.
        len: u32,
        /// Element type.
        ty: Scalar,
    },
    /// A struct occupying consecutive slots starting at `base`.
    Struct {
        /// First slot.
        base: u32,
        /// Layout name (key into [`CheckedProgram::structs`]).
        layout: String,
    },
}

/// One flattened global scalar slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalSlot {
    /// Diagnostic name (`var`, `var[3]`, `var.field`).
    pub name: String,
    /// Slot type.
    pub ty: Scalar,
    /// Initial value (reset state).
    pub init: i64,
}

/// Function signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Parameter types.
    pub params: Vec<Scalar>,
    /// Return type, `None` for `void`.
    pub ret: Option<Scalar>,
}

/// The fully-checked program handed to the lowering pass.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedProgram {
    /// Enum declarations.
    pub enums: BTreeMap<String, Vec<String>>,
    /// Enum variant values (global namespace, as in C).
    pub enum_values: BTreeMap<String, i64>,
    /// Struct layouts.
    pub structs: BTreeMap<String, StructLayout>,
    /// Flattened global slots.
    pub global_slots: Vec<GlobalSlot>,
    /// Variable-name → binding.
    pub globals: BTreeMap<String, GlobalBinding>,
    /// External data ports (chart-injected first, then in-source).
    pub ports: Vec<PortSpec>,
    /// Port name → index.
    pub port_map: BTreeMap<String, u32>,
    /// Raisable events.
    pub events: Vec<String>,
    /// Event name → index.
    pub event_map: BTreeMap<String, u32>,
    /// Chart conditions.
    pub conditions: Vec<String>,
    /// Condition name → index.
    pub condition_map: BTreeMap<String, u32>,
    /// Checked function ASTs.
    pub functions: Vec<FunctionDecl>,
    /// Function name → index.
    pub func_map: BTreeMap<String, u32>,
    /// Signatures, parallel to `functions`.
    pub signatures: Vec<Signature>,
    /// Callee-before-caller topological order (recursion-free).
    pub topo_order: Vec<u32>,
}

/// Runs semantic analysis over parsed items.
///
/// # Errors
///
/// Returns the first semantic error: unknown or duplicate names, type
/// mismatches, struct-typed locals/params, recursion, bad port
/// directions, arity mismatches, and the rest documented on
/// [`CompileError`].
pub fn analyze(items: &[Item], env: &ProgramEnv) -> Result<CheckedProgram, CompileError> {
    let mut sink = pscp_diag::DiagnosticSink::new();
    let mut em = Emitter::new(&mut sink);
    match analyze_into(items, env, &mut em) {
        Some(p) => Ok(p),
        None => Err(em.take_first().expect("failed analysis must carry an error")),
    }
}

/// Runs semantic analysis, recovering from errors: every finding is
/// reported through `em` and the passes keep going (unresolvable types
/// degrade to a 16-bit placeholder, failed declarations get stand-in
/// bindings so uses don't cascade). Returns the checked program only
/// when *this* analysis emitted no errors.
pub(crate) fn analyze_into(
    items: &[Item],
    env: &ProgramEnv,
    em: &mut Emitter,
) -> Option<CheckedProgram> {
    let errors_at_entry = em.errors();
    let mut cx = Context::default();

    for e in &env.events {
        cx.add_event(e.clone());
    }
    for c in &env.conditions {
        cx.add_condition(c.clone());
    }
    for p in &env.ports {
        if let Err(e) = cx.add_port(p.clone(), Span::default()) {
            em.emit(e);
        }
    }

    // Pass 1: type declarations and externs.
    for item in items {
        match item {
            Item::Enum(e) => {
                if cx.enums.insert(e.name.clone(), e.variants.clone()).is_some() {
                    em.emit(CompileError::sema(e.span, format!("duplicate enum `{}`", e.name)));
                    continue;
                }
                for (i, v) in e.variants.iter().enumerate() {
                    if cx.enum_values.insert(v.clone(), i as i64).is_some() {
                        em.emit(CompileError::sema(
                            e.span,
                            format!("duplicate enum variant `{v}`"),
                        ));
                    }
                }
            }
            Item::Struct(s) => {
                let mut fields = Vec::new();
                for f in &s.fields {
                    let scalar = match cx.resolve_type(&f.ty, s.span) {
                        Ok(ty) => match ty.as_scalar() {
                            Some(sc) => sc,
                            None => {
                                em.emit(CompileError::sema(
                                    s.span,
                                    format!("struct field `{}` must be scalar or enum", f.name),
                                ));
                                RECOVERY_SCALAR
                            }
                        },
                        Err(e) => {
                            em.emit(e);
                            RECOVERY_SCALAR
                        }
                    };
                    fields.push((f.name.clone(), scalar));
                }
                if cx.structs.insert(s.name.clone(), StructLayout { fields }).is_some() {
                    em.emit(CompileError::sema(
                        s.span,
                        format!("duplicate struct `{}`", s.name),
                    ));
                }
            }
            Item::ExternEvent(name, _) => cx.add_event(name.clone()),
            Item::ExternCondition(name, _) => cx.add_condition(name.clone()),
            Item::ExternPort(p) => {
                let (readable, writable) = match p.direction.as_str() {
                    "in" => (true, false),
                    "out" => (false, true),
                    "bidir" => (true, true),
                    other => {
                        em.emit(CompileError::sema(
                            p.span,
                            format!("invalid port direction `{other}`"),
                        ));
                        (true, true)
                    }
                };
                if let Err(e) = cx.add_port(
                    PortSpec {
                        name: p.name.clone(),
                        width: p.width,
                        address: p.address,
                        readable,
                        writable,
                    },
                    p.span,
                ) {
                    em.emit(e);
                }
            }
            _ => {}
        }
    }

    // Pass 2: globals (flattened) and function signatures.
    for item in items {
        match item {
            Item::Global(g) => {
                if let Err(e) = cx.add_global(g) {
                    em.emit(e);
                    cx.placeholder_global(&g.name);
                }
            }
            Item::Function(f) => {
                let ret = match cx.resolve_type(&f.ret, f.span) {
                    Ok(Type::Void) => None,
                    Ok(t) => match t.as_scalar() {
                        Some(s) => Some(s),
                        None => {
                            em.emit(CompileError::sema(
                                f.span,
                                "function must return void or a scalar",
                            ));
                            None
                        }
                    },
                    Err(e) => {
                        em.emit(e);
                        None
                    }
                };
                let mut params = Vec::new();
                for (pname, pty) in &f.params {
                    let s = match cx.resolve_type(pty, f.span) {
                        Ok(t) => match t.as_scalar() {
                            Some(s) => s,
                            None => {
                                em.emit(CompileError::sema(
                                    f.span,
                                    format!("parameter `{pname}` must be scalar (struct parameters are not supported)"),
                                ));
                                RECOVERY_SCALAR
                            }
                        },
                        Err(e) => {
                            em.emit(e);
                            RECOVERY_SCALAR
                        }
                    };
                    params.push(s);
                }
                if cx.func_map.contains_key(&f.name) {
                    // Keep the first definition; uses still resolve.
                    em.emit(CompileError::sema(
                        f.span,
                        format!("duplicate function `{}`", f.name),
                    ));
                    continue;
                }
                cx.func_map.insert(f.name.clone(), cx.functions.len() as u32);
                cx.signatures.push(Signature { params, ret });
                cx.functions.push(f.clone());
            }
            _ => {}
        }
    }

    // Pass 3: check bodies, statement by statement.
    for fi in 0..cx.functions.len() {
        let f = cx.functions[fi].clone();
        let mut scopes = Scopes::new();
        for ((pname, _), sig_ty) in f.params.iter().zip(&cx.signatures[fi].params) {
            if let Err(e) = scopes.declare(pname.clone(), *sig_ty, f.span) {
                em.emit(e);
            }
        }
        let ret = cx.signatures[fi].ret;
        cx.check_body_into(&f.body, &mut scopes, ret, em);
    }

    // Pass 4: call graph, recursion ban, topological order.
    let topo_order = cx.topo_sort_into(em);

    if em.errors() > errors_at_entry {
        return None;
    }
    Some(CheckedProgram {
        enums: cx.enums,
        enum_values: cx.enum_values,
        structs: cx.structs,
        global_slots: cx.global_slots,
        globals: cx.globals,
        ports: cx.ports,
        port_map: cx.port_map,
        events: cx.events,
        event_map: cx.event_map,
        conditions: cx.conditions,
        condition_map: cx.condition_map,
        functions: cx.functions,
        func_map: cx.func_map,
        signatures: cx.signatures,
        topo_order,
    })
}

#[derive(Default)]
struct Context {
    enums: BTreeMap<String, Vec<String>>,
    enum_values: BTreeMap<String, i64>,
    structs: BTreeMap<String, StructLayout>,
    global_slots: Vec<GlobalSlot>,
    globals: BTreeMap<String, GlobalBinding>,
    ports: Vec<PortSpec>,
    port_map: BTreeMap<String, u32>,
    events: Vec<String>,
    event_map: BTreeMap<String, u32>,
    conditions: Vec<String>,
    condition_map: BTreeMap<String, u32>,
    functions: Vec<FunctionDecl>,
    func_map: BTreeMap<String, u32>,
    signatures: Vec<Signature>,
}

struct Scopes {
    stack: Vec<BTreeMap<String, Scalar>>,
}

impl Scopes {
    fn new() -> Self {
        Scopes { stack: vec![BTreeMap::new()] }
    }

    fn push(&mut self) {
        self.stack.push(BTreeMap::new());
    }

    fn pop(&mut self) {
        self.stack.pop();
    }

    fn declare(&mut self, name: String, ty: Scalar, span: Span) -> Result<(), CompileError> {
        let top = self.stack.last_mut().expect("scope stack");
        if top.insert(name.clone(), ty).is_some() {
            return Err(CompileError::sema(span, format!("duplicate local `{name}`")));
        }
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<Scalar> {
        self.stack.iter().rev().find_map(|s| s.get(name)).copied()
    }
}

impl Context {
    // Extern declarations (events/conditions/ports) are idempotent: a
    // chart-injected symbol may be re-declared in source without harm.
    fn add_event(&mut self, name: String) {
        if !self.event_map.contains_key(&name) {
            self.event_map.insert(name.clone(), self.events.len() as u32);
            self.events.push(name);
        }
    }

    fn add_condition(&mut self, name: String) {
        if !self.condition_map.contains_key(&name) {
            self.condition_map.insert(name.clone(), self.conditions.len() as u32);
            self.conditions.push(name);
        }
    }

    /// Binds `name` to a fresh placeholder scalar slot after its real
    /// declaration failed, so later uses resolve instead of cascading
    /// into `unknown variable` noise.
    fn placeholder_global(&mut self, name: &str) {
        if self.globals.contains_key(name) {
            return;
        }
        let slot = self.global_slots.len() as u32;
        self.global_slots.push(GlobalSlot {
            name: name.to_string(),
            ty: RECOVERY_SCALAR,
            init: 0,
        });
        self.globals
            .insert(name.to_string(), GlobalBinding::Scalar { slot, ty: RECOVERY_SCALAR });
    }

    fn add_port(&mut self, spec: PortSpec, span: Span) -> Result<(), CompileError> {
        if let Some(&i) = self.port_map.get(&spec.name) {
            if self.ports[i as usize] != spec {
                return Err(CompileError::sema(
                    span,
                    format!("port `{}` re-declared with a different shape", spec.name),
                ));
            }
            return Ok(());
        }
        self.port_map.insert(spec.name.clone(), self.ports.len() as u32);
        self.ports.push(spec);
        Ok(())
    }

    /// Reclassifies parser `Struct(name)` placeholders into enums where
    /// the name names an enum.
    fn resolve_type(&self, ty: &Type, span: Span) -> Result<Type, CompileError> {
        match ty {
            Type::Struct(n) => {
                if self.enums.contains_key(n) {
                    Ok(Type::Enum(n.clone()))
                } else if self.structs.contains_key(n) {
                    Ok(Type::Struct(n.clone()))
                } else {
                    Err(CompileError::sema(span, format!("unknown type `{n}`")))
                }
            }
            other => Ok(other.clone()),
        }
    }

    fn const_eval(&self, e: &Expr) -> Result<i64, CompileError> {
        match e {
            Expr::Int { value, .. } => Ok(*value),
            Expr::Name(n, span) => self
                .enum_values
                .get(n)
                .copied()
                .ok_or_else(|| CompileError::sema(*span, format!("`{n}` is not a constant"))),
            Expr::Un { op: UnOp::Neg, expr, .. } => Ok(-self.const_eval(expr)?),
            other => Err(CompileError::sema(
                other.span(),
                "initialiser must be a constant expression",
            )),
        }
    }

    fn add_global(&mut self, g: &GlobalDecl) -> Result<(), CompileError> {
        if self.globals.contains_key(&g.name) {
            return Err(CompileError::sema(g.span, format!("duplicate global `{}`", g.name)));
        }
        let ty = self.resolve_type(&g.ty, g.span)?;
        let base = self.global_slots.len() as u32;
        match &ty {
            Type::Scalar(s) => {
                let init = match &g.init {
                    Some(Initializer::Expr(e)) => s.wrap(self.const_eval(e)?),
                    Some(Initializer::List(_)) => {
                        return Err(CompileError::sema(g.span, "scalar cannot take a list initialiser"))
                    }
                    None => 0,
                };
                self.global_slots.push(GlobalSlot { name: g.name.clone(), ty: *s, init });
                self.globals.insert(g.name.clone(), GlobalBinding::Scalar { slot: base, ty: *s });
            }
            Type::Enum(_) => {
                let s = Scalar::uint(8);
                let init = match &g.init {
                    Some(Initializer::Expr(e)) => self.const_eval(e)?,
                    Some(Initializer::List(_)) => {
                        return Err(CompileError::sema(g.span, "enum cannot take a list initialiser"))
                    }
                    None => 0,
                };
                self.global_slots.push(GlobalSlot { name: g.name.clone(), ty: s, init });
                self.globals.insert(g.name.clone(), GlobalBinding::Scalar { slot: base, ty: s });
            }
            Type::Array(elem, len) => {
                let inits: Vec<i64> = match &g.init {
                    Some(Initializer::List(l)) => {
                        if l.len() > *len as usize {
                            return Err(CompileError::sema(
                                g.span,
                                format!("too many initialisers for `{}[{}]`", g.name, len),
                            ));
                        }
                        l.iter().map(|e| self.const_eval(e)).collect::<Result<_, _>>()?
                    }
                    Some(Initializer::Expr(_)) => {
                        return Err(CompileError::sema(g.span, "array needs a list initialiser"))
                    }
                    None => Vec::new(),
                };
                for i in 0..*len {
                    let init = elem.wrap(inits.get(i as usize).copied().unwrap_or(0));
                    self.global_slots.push(GlobalSlot {
                        name: format!("{}[{}]", g.name, i),
                        ty: *elem,
                        init,
                    });
                }
                self.globals.insert(
                    g.name.clone(),
                    GlobalBinding::Array { base, len: *len, ty: *elem },
                );
            }
            Type::Struct(sname) => {
                let layout = self.structs.get(sname).cloned().expect("resolved struct");
                let inits: Vec<i64> = match &g.init {
                    Some(Initializer::List(l)) => {
                        if l.len() > layout.fields.len() {
                            return Err(CompileError::sema(
                                g.span,
                                format!("too many initialisers for struct `{}`", g.name),
                            ));
                        }
                        l.iter().map(|e| self.const_eval(e)).collect::<Result<_, _>>()?
                    }
                    Some(Initializer::Expr(_)) => {
                        return Err(CompileError::sema(g.span, "struct needs a list initialiser"))
                    }
                    None => Vec::new(),
                };
                for (i, (fname, fty)) in layout.fields.iter().enumerate() {
                    let init = fty.wrap(inits.get(i).copied().unwrap_or(0));
                    self.global_slots.push(GlobalSlot {
                        name: format!("{}.{}", g.name, fname),
                        ty: *fty,
                        init,
                    });
                }
                self.globals.insert(
                    g.name.clone(),
                    GlobalBinding::Struct { base, layout: sname.clone() },
                );
            }
            Type::Void => {
                return Err(CompileError::sema(g.span, "global cannot have type void"))
            }
        }
        Ok(())
    }

    // ---- body checking ---------------------------------------------------

    /// Checks a body with statement-level recovery: a bad statement is
    /// reported and the walk continues, declarations that fail still
    /// enter scope with a placeholder type, and nested `if`/`while`
    /// bodies recover statement-by-statement too.
    fn check_body_into(
        &self,
        body: &[Stmt],
        scopes: &mut Scopes,
        ret: Option<Scalar>,
        em: &mut Emitter,
    ) {
        for stmt in body {
            match stmt {
                Stmt::Local { name, ty, init, span } => {
                    let s = match self.resolve_type(ty, *span) {
                        Ok(t) => match t.as_scalar() {
                            Some(s) => s,
                            None => {
                                em.emit(CompileError::sema(
                                    *span,
                                    format!(
                                        "local `{name}` must be scalar (aggregates are globals-only)"
                                    ),
                                ));
                                RECOVERY_SCALAR
                            }
                        },
                        Err(e) => {
                            em.emit(e);
                            RECOVERY_SCALAR
                        }
                    };
                    if let Some(e) = init {
                        if let Err(err) = self.type_of(e, scopes) {
                            em.emit(err);
                        }
                    }
                    if let Err(e) = scopes.declare(name.clone(), s, *span) {
                        em.emit(e);
                    }
                }
                Stmt::If { cond, then_body, else_body } => {
                    if let Err(e) = self.type_of(cond, scopes) {
                        em.emit(e);
                    }
                    scopes.push();
                    self.check_body_into(then_body, scopes, ret, em);
                    scopes.pop();
                    scopes.push();
                    self.check_body_into(else_body, scopes, ret, em);
                    scopes.pop();
                }
                Stmt::While { cond, body } => {
                    if let Err(e) = self.type_of(cond, scopes) {
                        em.emit(e);
                    }
                    scopes.push();
                    self.check_body_into(body, scopes, ret, em);
                    scopes.pop();
                }
                other => {
                    if let Err(e) = self.check_stmt(other, scopes, ret) {
                        em.emit(e);
                    }
                }
            }
        }
    }

    /// Checks one non-compound statement (the compound forms recover in
    /// [`Context::check_body_into`]).
    fn check_stmt(
        &self,
        stmt: &Stmt,
        scopes: &mut Scopes,
        ret: Option<Scalar>,
    ) -> Result<(), CompileError> {
        match stmt {
            Stmt::Assign { lvalue, value, .. } => {
                self.type_of(value, scopes)?;
                self.check_lvalue(lvalue, scopes)
            }
            Stmt::Expr(e) => {
                // Only calls make sense as expression statements.
                match e {
                    Expr::Call { .. } => {
                        self.type_of_call(e, scopes, true)?;
                        Ok(())
                    }
                    other => Err(CompileError::sema(
                        other.span(),
                        "expression statement has no effect (only calls are allowed)",
                    )),
                }
            }
            Stmt::Local { .. } | Stmt::If { .. } | Stmt::While { .. } | Stmt::For => Ok(()),
            Stmt::Return(value, span) => match (value, ret) {
                (Some(e), Some(_)) => {
                    self.type_of(e, scopes)?;
                    Ok(())
                }
                (None, None) => Ok(()),
                (Some(_), None) => {
                    Err(CompileError::sema(*span, "void function returns a value"))
                }
                (None, Some(_)) => {
                    Err(CompileError::sema(*span, "non-void function returns nothing"))
                }
            },
            Stmt::Raise(name, span) => {
                if self.event_map.contains_key(name) {
                    Ok(())
                } else {
                    Err(CompileError::sema(*span, format!("unknown event `{name}`")))
                }
            }
        }
    }

    fn check_lvalue(&self, lv: &LValue, scopes: &Scopes) -> Result<(), CompileError> {
        match lv {
            LValue::Name(name, span) => {
                if scopes.lookup(name).is_some() {
                    return Ok(());
                }
                if let Some(b) = self.globals.get(name) {
                    return match b {
                        GlobalBinding::Scalar { .. } => Ok(()),
                        _ => Err(CompileError::sema(
                            *span,
                            format!("cannot assign aggregate `{name}` as a whole"),
                        )),
                    };
                }
                if self.condition_map.contains_key(name) {
                    return Ok(());
                }
                if let Some(&pi) = self.port_map.get(name) {
                    return if self.ports[pi as usize].writable {
                        Ok(())
                    } else {
                        Err(CompileError::sema(
                            *span,
                            format!("port `{name}` is input-only"),
                        ))
                    };
                }
                Err(CompileError::sema(*span, format!("unknown variable `{name}`")))
            }
            LValue::Index(name, idx, span) => {
                self.type_of(idx, scopes)?;
                match self.globals.get(name) {
                    Some(GlobalBinding::Array { .. }) => Ok(()),
                    Some(_) => {
                        Err(CompileError::sema(*span, format!("`{name}` is not an array")))
                    }
                    None => Err(CompileError::sema(*span, format!("unknown array `{name}`"))),
                }
            }
            LValue::Member(name, field, span) => match self.globals.get(name) {
                Some(GlobalBinding::Struct { layout, .. }) => {
                    let l = &self.structs[layout];
                    if l.field(field).is_some() {
                        Ok(())
                    } else {
                        Err(CompileError::sema(
                            *span,
                            format!("struct `{name}` has no field `{field}`"),
                        ))
                    }
                }
                Some(_) => Err(CompileError::sema(*span, format!("`{name}` is not a struct"))),
                None => Err(CompileError::sema(*span, format!("unknown struct `{name}`"))),
            },
        }
    }

    /// Type of an expression. Public to the lowering pass via
    /// [`CheckedProgram::expr_type`].
    fn type_of(&self, e: &Expr, scopes: &Scopes) -> Result<Scalar, CompileError> {
        match e {
            Expr::Int { value, width, .. } => Ok(match width {
                Some(w) => Scalar::uint(*w),
                None => Scalar::fitting(*value),
            }),
            Expr::Name(name, span) => {
                if let Some(t) = scopes.lookup(name) {
                    return Ok(t);
                }
                if let Some(GlobalBinding::Scalar { ty, .. }) = self.globals.get(name) {
                    return Ok(*ty);
                }
                if self.globals.contains_key(name) {
                    return Err(CompileError::sema(
                        *span,
                        format!("aggregate `{name}` cannot be used as a value"),
                    ));
                }
                if self.enum_values.contains_key(name) {
                    return Ok(Scalar::uint(8));
                }
                if self.condition_map.contains_key(name) {
                    return Ok(Scalar::bool());
                }
                if let Some(&pi) = self.port_map.get(name) {
                    let p = &self.ports[pi as usize];
                    return if p.readable {
                        Ok(Scalar::uint(p.width))
                    } else {
                        Err(CompileError::sema(*span, format!("port `{name}` is output-only")))
                    };
                }
                Err(CompileError::sema(*span, format!("unknown name `{name}`")))
            }
            Expr::Index(name, idx, span) => {
                self.type_of(idx, scopes)?;
                match self.globals.get(name) {
                    Some(GlobalBinding::Array { ty, .. }) => Ok(*ty),
                    _ => Err(CompileError::sema(*span, format!("`{name}` is not an array"))),
                }
            }
            Expr::Member(name, field, span) => match self.globals.get(name) {
                Some(GlobalBinding::Struct { layout, .. }) => self.structs[layout]
                    .field(field)
                    .map(|(_, t)| t)
                    .ok_or_else(|| {
                        CompileError::sema(
                            *span,
                            format!("struct `{name}` has no field `{field}`"),
                        )
                    }),
                _ => Err(CompileError::sema(*span, format!("`{name}` is not a struct"))),
            },
            Expr::Bin { op, lhs, rhs, .. } => {
                let a = self.type_of(lhs, scopes)?;
                let b = self.type_of(rhs, scopes)?;
                Ok(if op.is_boolean() { Scalar::bool() } else { a.join(b) })
            }
            Expr::Un { op, expr, .. } => {
                let t = self.type_of(expr, scopes)?;
                Ok(match op {
                    UnOp::Neg => Scalar::int(t.width.saturating_add(1).min(32)),
                    UnOp::BitNot => t,
                    UnOp::Not => Scalar::bool(),
                })
            }
            Expr::Call { .. } => self
                .type_of_call(e, scopes, false)?
                .ok_or_else(|| CompileError::sema(e.span(), "void call used as a value")),
        }
    }

    fn type_of_call(
        &self,
        e: &Expr,
        scopes: &Scopes,
        allow_void: bool,
    ) -> Result<Option<Scalar>, CompileError> {
        let Expr::Call { func, args, span } = e else { unreachable!() };
        let fi = *self
            .func_map
            .get(func)
            .ok_or_else(|| CompileError::sema(*span, format!("unknown function `{func}`")))?;
        let sig = &self.signatures[fi as usize];
        if sig.params.len() != args.len() {
            return Err(CompileError::sema(
                *span,
                format!("`{func}` expects {} arguments, got {}", sig.params.len(), args.len()),
            ));
        }
        for a in args {
            self.type_of(a, scopes)?;
        }
        if sig.ret.is_none() && !allow_void {
            return Ok(None);
        }
        Ok(sig.ret)
    }

    // ---- call graph -------------------------------------------------------

    /// Orders functions callee-first, reporting *every* unknown callee
    /// and cycle instead of stopping at the first. The order is only
    /// meaningful when no errors were emitted (callers discard it
    /// otherwise), so edges to unknown functions are simply dropped and
    /// an aborted cycle visit leaves its path unordered.
    fn topo_sort_into(&self, em: &mut Emitter) -> Vec<u32> {
        let n = self.functions.len();
        let mut callees: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, f) in self.functions.iter().enumerate() {
            let r = collect_calls(&f.body, &mut |name, span| {
                match self.func_map.get(name) {
                    Some(&fi) => {
                        if !callees[i].contains(&fi) {
                            callees[i].push(fi);
                        }
                    }
                    None => em.emit(CompileError::sema(
                        span,
                        format!("unknown function `{name}`"),
                    )),
                }
                Ok(())
            });
            debug_assert!(r.is_ok(), "recovering collect closure never errors");
        }
        // DFS with colour marking; grey->grey edge = recursion.
        let mut colour = vec![0u8; n]; // 0 white, 1 grey, 2 black
        let mut order = Vec::with_capacity(n);
        fn visit(
            v: usize,
            callees: &[Vec<u32>],
            colour: &mut [u8],
            order: &mut Vec<u32>,
            names: &[FunctionDecl],
        ) -> Result<(), CompileError> {
            colour[v] = 1;
            for &c in &callees[v] {
                match colour[c as usize] {
                    0 => visit(c as usize, callees, colour, order, names)?,
                    1 => {
                        return Err(CompileError::sema(
                            names[v].span,
                            format!(
                                "recursion is not permitted: `{}` (directly or indirectly) calls itself",
                                names[c as usize].name
                            ),
                        ))
                    }
                    _ => {}
                }
            }
            colour[v] = 2;
            order.push(v as u32);
            Ok(())
        }
        for v in 0..n {
            if colour[v] == 0 {
                if let Err(e) = visit(v, &callees, &mut colour, &mut order, &self.functions) {
                    em.emit(e);
                }
            }
        }
        order
    }
}

fn collect_calls<F>(body: &[Stmt], f: &mut F) -> Result<(), CompileError>
where
    F: FnMut(&str, Span) -> Result<(), CompileError>,
{
    fn in_expr<F>(e: &Expr, f: &mut F) -> Result<(), CompileError>
    where
        F: FnMut(&str, Span) -> Result<(), CompileError>,
    {
        match e {
            Expr::Call { func, args, span } => {
                f(func, *span)?;
                for a in args {
                    in_expr(a, f)?;
                }
                Ok(())
            }
            Expr::Bin { lhs, rhs, .. } => {
                in_expr(lhs, f)?;
                in_expr(rhs, f)
            }
            Expr::Un { expr, .. } => in_expr(expr, f),
            Expr::Index(_, i, _) => in_expr(i, f),
            _ => Ok(()),
        }
    }
    for s in body {
        match s {
            Stmt::Local { init: Some(e), .. } => in_expr(e, f)?,
            Stmt::Assign { value, lvalue, .. } => {
                in_expr(value, f)?;
                if let LValue::Index(_, i, _) = lvalue {
                    in_expr(i, f)?;
                }
            }
            Stmt::Expr(e) => in_expr(e, f)?,
            Stmt::If { cond, then_body, else_body } => {
                in_expr(cond, f)?;
                collect_calls(then_body, f)?;
                collect_calls(else_body, f)?;
            }
            Stmt::While { cond, body } => {
                in_expr(cond, f)?;
                collect_calls(body, f)?;
            }
            Stmt::Return(Some(e), _) => in_expr(e, f)?,
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str) -> Result<CheckedProgram, CompileError> {
        analyze(&parse(src).unwrap(), &ProgramEnv::default())
    }

    #[test]
    fn flattens_struct_globals() {
        let src = r#"
            enum ECD {Event, Condition, Data};
            typedef struct port { ECD Type; int:8 Width; int:8 Address; } Port;
            Port PE0 = {Event, 1, 0700};
        "#;
        let p = check(src).unwrap();
        assert_eq!(p.global_slots.len(), 3);
        assert_eq!(p.global_slots[0].name, "PE0.Type");
        assert_eq!(p.global_slots[0].init, 0); // Event = 0
        assert_eq!(p.global_slots[2].init, Scalar::int(8).wrap(0o700));
    }

    #[test]
    fn array_globals_flatten_with_inits() {
        let p = check("int:16 tab[4] = {10, 20};").unwrap();
        assert_eq!(p.global_slots.len(), 4);
        assert_eq!(p.global_slots[1].init, 20);
        assert_eq!(p.global_slots[3].init, 0);
    }

    #[test]
    fn recursion_rejected() {
        let direct = "void f() { f(); }";
        assert!(check(direct).unwrap_err().message.contains("recursion"));
        let err = check("void f() { g(); }\nvoid g() { f(); }").unwrap_err();
        assert!(err.message.contains("recursion"));
    }

    #[test]
    fn topo_order_is_callee_first() {
        let src = "void leaf() { }\nvoid mid() { leaf(); }\nvoid top() { mid(); leaf(); }";
        let p = check(src).unwrap();
        let pos = |n: &str| p.topo_order.iter().position(|&i| p.functions[i as usize].name == n);
        assert!(pos("leaf") < pos("mid"));
        assert!(pos("mid") < pos("top"));
    }

    #[test]
    fn condition_assignment_and_raise() {
        let src = r#"
            condition XFINISH;
            event END_MOVE;
            void SetTrue() { XFINISH = 1; raise END_MOVE; }
        "#;
        assert!(check(src).is_ok());
    }

    #[test]
    fn unknown_event_rejected() {
        let err = check("void f() { raise NOPE; }").unwrap_err();
        assert!(err.message.contains("NOPE"));
    }

    #[test]
    fn port_direction_enforced() {
        let src = "port In : 8 @ 1 in;\nvoid f() { In = 3; }";
        assert!(check(src).unwrap_err().message.contains("input-only"));
        let src = "port Out : 8 @ 1 out;\nvoid f() { int:8 x = Out; }";
        assert!(check(src).unwrap_err().message.contains("output-only"));
        let src = "port B : 8 @ 1 bidir;\nvoid f() { int:8 x = B; B = x; }";
        assert!(check(src).is_ok());
    }

    #[test]
    fn struct_params_rejected() {
        let src = "typedef struct s { int:8 a; } S;\nvoid f(S x) { }";
        assert!(check(src).unwrap_err().message.contains("scalar"));
    }

    #[test]
    fn arity_checked() {
        let src = "void g(int:8 a) { }\nvoid f() { g(); }";
        assert!(check(src).unwrap_err().message.contains("expects 1"));
    }

    #[test]
    fn return_type_checked() {
        assert!(check("void f() { return 1; }").is_err());
        assert!(check("int:8 f() { return; }").is_err());
        assert!(check("int:8 f() { return 1; }").is_ok());
    }

    #[test]
    fn env_injection_works() {
        let env = ProgramEnv {
            events: vec!["E".into()],
            conditions: vec!["C".into()],
            ports: vec![PortSpec {
                name: "P".into(),
                width: 8,
                address: 7,
                readable: true,
                writable: true,
            }],
        };
        let items = parse("void f() { C = P > 3; raise E; P = 1; }").unwrap();
        assert!(analyze(&items, &env).is_ok());
    }

    #[test]
    fn member_access_types() {
        let src = r#"
            typedef struct s { int:16 a; int:8 b; } S;
            S g = {100, 2};
            int:16 f() { return g.a + g.b; }
        "#;
        assert!(check(src).is_ok());
        let bad = r#"
            typedef struct s { int:16 a; } S;
            S g;
            int:16 f() { return g.nope; }
        "#;
        assert!(check(bad).unwrap_err().message.contains("no field"));
    }
}
