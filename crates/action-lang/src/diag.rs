//! Bridges the action-language's typed [`CompileError`] onto the
//! shared [`pscp_diag`] model.
//!
//! Every pass reports through an [`Emitter`]: the error is converted to
//! a [`Diagnostic`] (stable codes `AL101`/`AL201`/`AL301` for
//! lex/parse/sema) and pushed into the caller's sink, while the first
//! typed error is kept verbatim so the legacy fail-fast entry points
//! can return *exactly* what they always returned.

use crate::error::{CompileError, Phase, Span};
use pscp_diag::{Diagnostic, DiagnosticSink, Pos, Source};

/// Stable diagnostic code for a compiler phase.
pub fn phase_code(phase: Phase) -> &'static str {
    match phase {
        Phase::Lex => "AL101",
        Phase::Parse => "AL201",
        Phase::Sema => "AL301",
    }
}

/// Converts an action-language span to the shared model.
pub fn span_to_diag(s: Span) -> pscp_diag::Span {
    pscp_diag::Span::new(
        Pos::new(s.line, s.column, s.start_offset),
        Pos::new(s.end_line, s.end_column, s.end_offset),
    )
}

/// Converts a typed compile error to a shared diagnostic.
pub fn diagnostic_for(e: &CompileError) -> Diagnostic {
    Diagnostic::error(Source::Action, phase_code(e.phase), e.message.clone())
        .with_span(span_to_diag(e.span))
}

/// Accumulates typed errors into a shared sink, remembering the first
/// one for the legacy adapters.
pub(crate) struct Emitter<'a> {
    sink: &'a mut DiagnosticSink,
    first: Option<CompileError>,
    errors: usize,
}

impl<'a> Emitter<'a> {
    pub fn new(sink: &'a mut DiagnosticSink) -> Self {
        Emitter { sink, first: None, errors: 0 }
    }

    /// Records an error and keeps going.
    pub fn emit(&mut self, e: CompileError) {
        if self.first.is_none() {
            self.first = Some(e.clone());
        }
        self.errors += 1;
        self.sink.push(diagnostic_for(&e));
    }

    /// Whether any error has been emitted *through this emitter*.
    pub fn errored(&self) -> bool {
        self.errors > 0
    }

    /// How many errors this emitter has seen.
    pub fn errors(&self) -> usize {
        self.errors
    }

    /// The first typed error, surrendering it to the adapter.
    pub fn take_first(&mut self) -> Option<CompileError> {
        self.first.take()
    }
}
