//! Recursive-descent parser for the action language.
//!
//! The parser is deliberately close to a classic C subset parser; the
//! only ambiguity — "is `Foo bar …` a declaration?" — is resolved the
//! usual lexer-feedback-free way: *identifier identifier* starts a
//! declaration, anything else is an expression statement.

use crate::ast::*;
use crate::diag::Emitter;
use crate::error::{CompileError, Span};
use crate::lexer::{tokenize_into, SpannedTok, Tok};
use crate::types::{Scalar, Type};

/// Parses a complete program into top-level items, failing on the
/// first error.
///
/// Adapter over [`parse_into`]: the error returned is exactly the
/// first diagnostic the recovering parser emits.
///
/// # Errors
///
/// Returns the first lexical or syntactic error.
pub fn parse(source: &str) -> Result<Vec<Item>, CompileError> {
    let mut sink = pscp_diag::DiagnosticSink::new();
    let mut em = Emitter::new(&mut sink);
    let items = parse_into(source, &mut em);
    match em.take_first() {
        Some(e) => Err(e),
        None => Ok(items),
    }
}

/// Parses a complete program, recovering from syntax errors: a failed
/// statement resynchronises at the next `;` or closing `}`, a failed
/// item at the next plausible item start, and every problem lands in
/// `em` in source order. Returns whatever items parsed cleanly.
pub(crate) fn parse_into(source: &str, em: &mut Emitter) -> Vec<Item> {
    let tokens = tokenize_into(source, em);
    let mut p = Parser { toks: &tokens, pos: 0, diags: Vec::new() };
    let mut items = Vec::new();
    while !p.at_eof() {
        let before = p.pos;
        match p.item() {
            Ok(i) => items.push(i),
            Err(e) => {
                p.diags.push(e);
                p.sync_item(before);
            }
        }
        for d in p.diags.drain(..) {
            em.emit(d);
        }
    }
    for d in p.diags.drain(..) {
        em.emit(d);
    }
    items
}

/// Keywords (and type-leading identifiers) that can begin a top-level
/// item — the resynchronisation anchors for item-level recovery.
const ITEM_START_KWS: &[&str] =
    &["enum", "typedef", "struct", "event", "condition", "port", "void", "int", "uint", "bool"];

struct Parser<'t> {
    toks: &'t [SpannedTok],
    pos: usize,
    /// Statement-level errors recovered in place, in source order.
    diags: Vec<CompileError>,
}

impl Parser<'_> {
    /// Skips to the next plausible item start after a failed item:
    /// past the next top-level `;`, past a brace-balanced `}` (plus a
    /// trailing `;`), or to a known item-starting keyword. Always makes
    /// progress.
    fn sync_item(&mut self, before: usize) {
        if self.pos == before && !self.at_eof() {
            self.bump();
        }
        let mut depth = 0i32;
        while !self.at_eof() {
            match &self.peek().tok {
                Tok::Sym("{") => depth += 1,
                Tok::Sym("}") => {
                    depth -= 1;
                    if depth <= 0 {
                        self.bump();
                        self.eat_sym(";");
                        return;
                    }
                }
                Tok::Sym(";") if depth == 0 => {
                    self.bump();
                    return;
                }
                Tok::Ident(id) if depth == 0 && ITEM_START_KWS.contains(&id.as_str()) => return,
                _ => {}
            }
            self.bump();
        }
    }

    /// Skips to the end of a failed statement: past the next `;`, or
    /// up to (not past) the enclosing `}`. Nested braces are skipped
    /// whole. Always makes progress.
    fn sync_stmt(&mut self, before: usize) {
        if self.pos == before && !self.at_eof() {
            self.bump();
        }
        let mut depth = 0i32;
        while !self.at_eof() {
            match &self.peek().tok {
                Tok::Sym("{") => depth += 1,
                Tok::Sym("}") => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                }
                Tok::Sym(";") if depth == 0 => {
                    self.bump();
                    return;
                }
                _ => {}
            }
            self.bump();
        }
    }
    fn peek(&self) -> &SpannedTok {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn peek2(&self) -> &SpannedTok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)]
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().tok, Tok::Eof)
    }

    fn bump(&mut self) -> SpannedTok {
        let t = self.peek().clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::parse(self.peek().span, msg)
    }

    fn at_sym(&self, s: &str) -> bool {
        matches!(&self.peek().tok, Tok::Sym(x) if *x == s)
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if self.at_sym(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<Span, CompileError> {
        if self.at_sym(s) {
            Ok(self.bump().span)
        } else {
            Err(self.err(format!("expected `{s}`, found {}", self.peek().tok)))
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(x) if x == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), CompileError> {
        match &self.peek().tok {
            Tok::Ident(s) => {
                let s = s.clone();
                let span = self.bump().span;
                Ok((s, span))
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn expect_number(&mut self) -> Result<i64, CompileError> {
        match self.peek().tok {
            Tok::Int { value, .. } => {
                self.bump();
                Ok(value)
            }
            Tok::BinLit { value, .. } => {
                self.bump();
                Ok(value)
            }
            ref other => Err(self.err(format!("expected number, found {other}"))),
        }
    }

    // ---- items ---------------------------------------------------------

    fn item(&mut self) -> Result<Item, CompileError> {
        let span = self.peek().span;
        if self.eat_kw("enum") {
            return self.enum_decl(span);
        }
        if self.at_kw("typedef") || self.at_kw("struct") {
            return self.struct_decl(span);
        }
        if self.eat_kw("event") {
            let (name, _) = self.expect_ident()?;
            self.expect_sym(";")?;
            return Ok(Item::ExternEvent(name, span));
        }
        if self.eat_kw("condition") {
            let (name, _) = self.expect_ident()?;
            self.expect_sym(";")?;
            return Ok(Item::ExternCondition(name, span));
        }
        if self.eat_kw("port") {
            let (name, _) = self.expect_ident()?;
            self.expect_sym(":")?;
            let width = self.expect_number()? as u8;
            self.expect_sym("@")?;
            let address = self.expect_number()? as u16;
            let direction = if self.at_kw("in") || self.at_kw("out") || self.at_kw("bidir") {
                let (d, _) = self.expect_ident()?;
                d
            } else {
                "bidir".to_string()
            };
            self.expect_sym(";")?;
            return Ok(Item::ExternPort(PortDecl { name, width, address, direction, span }));
        }

        // Type-led: function or global.
        let ty = self.parse_type()?;
        let (name, nspan) = self.expect_ident()?;
        if self.at_sym("(") {
            self.function_rest(ty, name, span)
        } else {
            self.global_rest(ty, name, nspan)
        }
    }

    fn enum_decl(&mut self, span: Span) -> Result<Item, CompileError> {
        let (name, _) = self.expect_ident()?;
        self.expect_sym("{")?;
        let mut variants = Vec::new();
        loop {
            if self.eat_sym("}") {
                break;
            }
            let (v, _) = self.expect_ident()?;
            variants.push(v);
            if !self.eat_sym(",") && !self.at_sym("}") {
                return Err(self.err("expected `,` or `}` in enum"));
            }
        }
        self.expect_sym(";")?;
        Ok(Item::Enum(EnumDecl { name, variants, span }))
    }

    fn struct_decl(&mut self, span: Span) -> Result<Item, CompileError> {
        let typedef = self.eat_kw("typedef");
        if !self.eat_kw("struct") {
            return Err(self.err("expected `struct`"));
        }
        // Optional tag.
        let tag = if !self.at_sym("{") {
            let (t, _) = self.expect_ident()?;
            Some(t)
        } else {
            None
        };
        self.expect_sym("{")?;
        let mut fields = Vec::new();
        while !self.eat_sym("}") {
            let ty = self.parse_type()?;
            let (fname, _) = self.expect_ident()?;
            self.expect_sym(";")?;
            fields.push(Field { name: fname, ty });
        }
        let name = if typedef {
            let (alias, _) = self.expect_ident()?;
            alias
        } else {
            tag.ok_or_else(|| self.err("struct without tag or typedef name"))?
        };
        self.expect_sym(";")?;
        Ok(Item::Struct(StructDecl { name, fields, span }))
    }

    fn function_rest(
        &mut self,
        ret: Type,
        name: String,
        span: Span,
    ) -> Result<Item, CompileError> {
        self.expect_sym("(")?;
        let mut params = Vec::new();
        if !self.at_sym(")") {
            loop {
                if self.eat_kw("void") && self.at_sym(")") {
                    break; // `f(void)`
                }
                let ty = self.parse_type()?;
                let (pname, _) = self.expect_ident()?;
                params.push((pname, ty));
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        self.expect_sym(")")?;
        let body = self.block()?;
        Ok(Item::Function(FunctionDecl { name, ret, params, body, span }))
    }

    fn global_rest(
        &mut self,
        mut ty: Type,
        name: String,
        span: Span,
    ) -> Result<Item, CompileError> {
        if self.eat_sym("[") {
            let n = self.expect_number()? as u32;
            self.expect_sym("]")?;
            let scalar = match ty {
                Type::Scalar(s) => s,
                other => {
                    return Err(self.err(format!("array element must be scalar, found {other}")))
                }
            };
            ty = Type::Array(scalar, n);
        }
        let init = if self.eat_sym("=") {
            if self.eat_sym("{") {
                let mut list = Vec::new();
                while !self.eat_sym("}") {
                    list.push(self.expr()?);
                    if !self.eat_sym(",") && !self.at_sym("}") {
                        return Err(self.err("expected `,` or `}` in initialiser list"));
                    }
                }
                Some(Initializer::List(list))
            } else {
                Some(Initializer::Expr(self.expr()?))
            }
        } else {
            None
        };
        self.expect_sym(";")?;
        Ok(Item::Global(GlobalDecl { name, ty, init, span }))
    }

    fn parse_type(&mut self) -> Result<Type, CompileError> {
        let (name, _) = self.expect_ident()?;
        match name.as_str() {
            "void" => Ok(Type::Void),
            "bool" => Ok(Type::Scalar(Scalar::bool())),
            "int" | "uint" => {
                let width = if self.eat_sym(":") {
                    let w = self.expect_number()?;
                    if !(1..=32).contains(&w) {
                        return Err(self.err(format!("width {w} out of range 1..=32")));
                    }
                    w as u8
                } else {
                    16 // plain `int` defaults to 16 bits on this class of machine
                };
                Ok(Type::Scalar(if name == "int" {
                    Scalar::int(width)
                } else {
                    Scalar::uint(width)
                }))
            }
            _ => Ok(Type::Struct(name)), // sema reclassifies enum vs struct
        }
    }

    // ---- statements ----------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect_sym("{")?;
        let mut out = Vec::new();
        while !self.eat_sym("}") {
            if self.at_eof() {
                return Err(self.err("expected `}`"));
            }
            let before = self.pos;
            match self.stmt() {
                Ok(s) => out.push(s),
                Err(e) => {
                    // Recover at the statement boundary: later
                    // statements in the same body still get checked.
                    self.diags.push(e);
                    self.sync_stmt(before);
                }
            }
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let span = self.peek().span;

        if self.at_sym("{") {
            // Nested block: flatten into an if(1)-free representation by
            // returning the statements wrapped in an always-true if.
            let body = self.block()?;
            return Ok(Stmt::If {
                cond: Expr::Int { value: 1, width: Some(1), span },
                then_body: body,
                else_body: Vec::new(),
            });
        }
        if self.eat_kw("if") {
            self.expect_sym("(")?;
            let cond = self.expr()?;
            self.expect_sym(")")?;
            let then_body = self.block_or_single()?;
            let else_body = if self.eat_kw("else") {
                if self.at_kw("if") {
                    vec![self.stmt()?]
                } else {
                    self.block_or_single()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If { cond, then_body, else_body });
        }
        if self.eat_kw("while") {
            self.expect_sym("(")?;
            let cond = self.expr()?;
            self.expect_sym(")")?;
            let body = self.block_or_single()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_kw("for") {
            self.expect_sym("(")?;
            let init = if self.at_sym(";") { None } else { Some(self.simple_stmt()?) };
            self.expect_sym(";")?;
            let cond = if self.at_sym(";") {
                Expr::Int { value: 1, width: Some(1), span }
            } else {
                self.expr()?
            };
            self.expect_sym(";")?;
            let step = if self.at_sym(")") { None } else { Some(self.simple_stmt()?) };
            self.expect_sym(")")?;
            let mut body = self.block_or_single()?;
            if let Some(s) = step {
                body.push(s);
            }
            let while_stmt = Stmt::While { cond, body };
            return Ok(match init {
                Some(i) => Stmt::If {
                    cond: Expr::Int { value: 1, width: Some(1), span },
                    then_body: vec![i, while_stmt],
                    else_body: Vec::new(),
                },
                None => while_stmt,
            });
        }
        if self.eat_kw("return") {
            let value = if self.at_sym(";") { None } else { Some(self.expr()?) };
            self.expect_sym(";")?;
            return Ok(Stmt::Return(value, span));
        }
        if self.eat_kw("raise") {
            let (name, _) = self.expect_ident()?;
            self.expect_sym(";")?;
            return Ok(Stmt::Raise(name, span));
        }

        let s = self.simple_stmt()?;
        self.expect_sym(";")?;
        Ok(s)
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, CompileError> {
        if self.at_sym("{") {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    /// Declaration, assignment, `x++`/`x--`, or expression — without the
    /// trailing semicolon (shared by `for` headers and plain statements).
    fn simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        let span = self.peek().span;

        // Declaration heuristic: IDENT IDENT, or int/uint/bool leading.
        let is_decl = match (&self.peek().tok, &self.peek2().tok) {
            (Tok::Ident(t), _) if t == "int" || t == "uint" || t == "bool" => true,
            (Tok::Ident(_), Tok::Ident(_)) => true,
            _ => false,
        };
        if is_decl {
            let ty = self.parse_type()?;
            let (name, _) = self.expect_ident()?;
            let init = if self.eat_sym("=") { Some(self.expr()?) } else { None };
            return Ok(Stmt::Local { name, ty, init, span });
        }

        // lvalue-led statement or call.
        let expr = self.expr()?;
        if self.at_sym("=")
            || self.at_sym("+=")
            || self.at_sym("-=")
            || self.at_sym("*=")
            || self.at_sym("/=")
            || self.at_sym("%=")
            || self.at_sym("&=")
            || self.at_sym("|=")
            || self.at_sym("^=")
        {
            let opsym = match self.bump().tok {
                Tok::Sym(s) => s,
                _ => unreachable!(),
            };
            let op = match opsym {
                "=" => None,
                "+=" => Some(BinOp::Add),
                "-=" => Some(BinOp::Sub),
                "*=" => Some(BinOp::Mul),
                "/=" => Some(BinOp::Div),
                "%=" => Some(BinOp::Rem),
                "&=" => Some(BinOp::And),
                "|=" => Some(BinOp::Or),
                "^=" => Some(BinOp::Xor),
                _ => unreachable!(),
            };
            let lvalue = expr_to_lvalue(expr, span)?;
            let value = self.expr()?;
            return Ok(Stmt::Assign { lvalue, op, value, span });
        }
        if self.at_sym("++") || self.at_sym("--") {
            let inc = self.at_sym("++");
            self.bump();
            let lvalue = expr_to_lvalue(expr, span)?;
            return Ok(Stmt::Assign {
                lvalue,
                op: Some(if inc { BinOp::Add } else { BinOp::Sub }),
                value: Expr::Int { value: 1, width: None, span },
                span,
            });
        }
        Ok(Stmt::Expr(expr))
    }

    // ---- expressions ----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match &self.peek().tok {
                Tok::Sym("||") => (BinOp::LogicOr, 1),
                Tok::Sym("&&") => (BinOp::LogicAnd, 2),
                Tok::Sym("|") => (BinOp::Or, 3),
                Tok::Sym("^") => (BinOp::Xor, 4),
                Tok::Sym("&") => (BinOp::And, 5),
                Tok::Sym("==") => (BinOp::Eq, 6),
                Tok::Sym("!=") => (BinOp::Ne, 6),
                Tok::Sym("<") => (BinOp::Lt, 7),
                Tok::Sym("<=") => (BinOp::Le, 7),
                Tok::Sym(">") => (BinOp::Gt, 7),
                Tok::Sym(">=") => (BinOp::Ge, 7),
                Tok::Sym("<<") => (BinOp::Shl, 8),
                Tok::Sym(">>") => (BinOp::Shr, 8),
                Tok::Sym("+") => (BinOp::Add, 9),
                Tok::Sym("-") => (BinOp::Sub, 9),
                Tok::Sym("*") => (BinOp::Mul, 10),
                Tok::Sym("/") => (BinOp::Div, 10),
                Tok::Sym("%") => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let span = self.bump().span;
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let span = self.peek().span;
        if self.eat_sym("-") {
            return Ok(Expr::Un { op: UnOp::Neg, expr: Box::new(self.unary()?), span });
        }
        if self.eat_sym("~") {
            return Ok(Expr::Un { op: UnOp::BitNot, expr: Box::new(self.unary()?), span });
        }
        if self.eat_sym("!") {
            return Ok(Expr::Un { op: UnOp::Not, expr: Box::new(self.unary()?), span });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let span = self.peek().span;
        match self.peek().tok.clone() {
            Tok::Int { value, width } => {
                self.bump();
                Ok(Expr::Int { value, width, span })
            }
            Tok::BinLit { value, width } => {
                self.bump();
                Ok(Expr::Int { value, width: Some(width), span })
            }
            Tok::Sym("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                if self.eat_sym("(") {
                    let mut args = Vec::new();
                    if !self.at_sym(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_sym(",") {
                                break;
                            }
                        }
                    }
                    self.expect_sym(")")?;
                    Ok(Expr::Call { func: name, args, span })
                } else if self.eat_sym("[") {
                    let idx = self.expr()?;
                    self.expect_sym("]")?;
                    Ok(Expr::Index(name, Box::new(idx), span))
                } else if self.eat_sym(".") {
                    let (field, _) = self.expect_ident()?;
                    Ok(Expr::Member(name, field, span))
                } else {
                    Ok(Expr::Name(name, span))
                }
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

fn expr_to_lvalue(e: Expr, span: Span) -> Result<LValue, CompileError> {
    match e {
        Expr::Name(n, s) => Ok(LValue::Name(n, s)),
        Expr::Index(n, i, s) => Ok(LValue::Index(n, *i, s)),
        Expr::Member(n, f, s) => Ok(LValue::Member(n, f, s)),
        _ => Err(CompileError::parse(span, "expression is not assignable")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig2b_preamble() {
        let src = r#"
            enum ECD {Event, Condition, Data};
            enum Encoding {Onehot, Binary};
            enum PortDir {Input, Output, Bidirectional};
            typedef struct port {
                ECD    Type;
                int:8  Width;
                int:8  Address;
                PortDir Direction;
            } Port;
            Port PE0 = {Event, 1, 0700, Output};
        "#;
        let items = parse(src).unwrap();
        assert_eq!(items.len(), 5);
        assert!(matches!(&items[0], Item::Enum(e) if e.variants.len() == 3));
        assert!(matches!(&items[3], Item::Struct(s) if s.fields.len() == 4));
        match &items[4] {
            Item::Global(g) => {
                assert_eq!(g.name, "PE0");
                match &g.init {
                    Some(Initializer::List(l)) => assert_eq!(l.len(), 4),
                    other => panic!("expected list init, got {other:?}"),
                }
            }
            other => panic!("expected global, got {other:?}"),
        }
    }

    #[test]
    fn parses_function_with_control_flow() {
        let src = r#"
            int:16 DeltaT(int:16 n, int:16 t) {
                int:16 next = t;
                while (n > 0) {
                    next = next - next / (4 * n + 1);
                    n = n - 1;
                }
                if (next < 10) { next = 10; } else next = next + 1;
                return next;
            }
        "#;
        let items = parse(src).unwrap();
        match &items[0] {
            Item::Function(f) => {
                assert_eq!(f.name, "DeltaT");
                assert_eq!(f.params.len(), 2);
                assert_eq!(f.body.len(), 4);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn for_desugars_to_while() {
        let src = "void f() { int:8 s = 0; for (int:8 i = 0; i < 4; i++) { s += i; } }";
        let items = parse(src).unwrap();
        let Item::Function(f) = &items[0] else { panic!() };
        // decl + wrapper-if containing init + while
        assert!(matches!(&f.body[1], Stmt::If { then_body, .. }
            if matches!(then_body[1], Stmt::While { .. })));
    }

    #[test]
    fn extern_declarations() {
        let src = "event END_MOVE;\ncondition XFINISH;\nport Buffer : 8 @ 0x1CF bidir;";
        let items = parse(src).unwrap();
        assert!(matches!(&items[0], Item::ExternEvent(n, _) if n == "END_MOVE"));
        assert!(matches!(&items[1], Item::ExternCondition(n, _) if n == "XFINISH"));
        assert!(
            matches!(&items[2], Item::ExternPort(p) if p.width == 8 && p.address == 0x1CF)
        );
    }

    #[test]
    fn raise_statement() {
        let src = "event E;\nvoid f() { raise E; }";
        let items = parse(src).unwrap();
        let Item::Function(f) = &items[1] else { panic!() };
        assert!(matches!(&f.body[0], Stmt::Raise(n, _) if n == "E"));
    }

    #[test]
    fn b_literals_in_expressions() {
        let src = "void f() { uint:8 x = B:001011; }";
        let items = parse(src).unwrap();
        let Item::Function(f) = &items[0] else { panic!() };
        let Stmt::Local { init: Some(Expr::Int { value, width, .. }), .. } = &f.body[0] else {
            panic!()
        };
        assert_eq!(*value, 0b001011);
        assert_eq!(*width, Some(6));
    }

    #[test]
    fn precedence() {
        let src = "void f() { int:16 x = 1 + 2 * 3 == 7 && 1 < 2; }";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn compound_assignment() {
        let src = "int:16 g;\nvoid f() { g += 2; g <<= 1; }";
        // `<<=` is not in the operator set; expect an error.
        assert!(parse(src).is_err());
        let ok = "int:16 g;\nvoid f() { g += 2; g *= 3; }";
        assert!(parse(ok).is_ok());
    }

    #[test]
    fn error_position() {
        let err = parse("void f() { int:16 = 3; }").unwrap_err();
        assert_eq!(err.span.line, 1);
        assert!(err.message.contains("identifier"));
    }

    #[test]
    fn width_bounds_checked() {
        assert!(parse("int:0 x;").is_err());
        assert!(parse("int:33 x;").is_err());
        assert!(parse("int:32 x;").is_ok());
    }
}
