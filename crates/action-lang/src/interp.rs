//! Reference interpreter for the IR.
//!
//! The interpreter defines the functional semantics the TEP code
//! generator must reproduce; differential tests execute the same routine
//! on both and compare results, globals, port traffic and chart effects.

use crate::ir::{BinOp, Function, Inst, Program, UnOp, VReg};
use std::fmt;

/// Host environment supplying port/condition/event behaviour.
pub trait Host {
    /// Reads a data port.
    fn port_read(&mut self, port: u32) -> i64;
    /// Writes a data port.
    fn port_write(&mut self, port: u32, value: i64);
    /// Raises a chart event.
    fn raise_event(&mut self, event: u32);
    /// Writes a chart condition.
    fn set_condition(&mut self, cond: u32, value: bool);
    /// Reads a chart condition.
    fn read_condition(&mut self, cond: u32) -> bool;
}

/// A host that records all interactions (default for tests).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordingHost {
    /// Values returned by `port_read`, per port (cycled; 0 when empty).
    pub port_inputs: Vec<Vec<i64>>,
    /// Observed port writes `(port, value)`.
    pub writes: Vec<(u32, i64)>,
    /// Raised events.
    pub raised: Vec<u32>,
    /// Condition writes `(cond, value)`.
    pub cond_writes: Vec<(u32, bool)>,
    /// Current condition values (grown on demand).
    pub conditions: Vec<bool>,
    read_cursors: Vec<usize>,
}

impl RecordingHost {
    /// Creates an empty recording host.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues input values for a port.
    pub fn queue_input(&mut self, port: u32, values: impl IntoIterator<Item = i64>) {
        let p = port as usize;
        if self.port_inputs.len() <= p {
            self.port_inputs.resize(p + 1, Vec::new());
            self.read_cursors.resize(p + 1, 0);
        }
        self.port_inputs[p].extend(values);
    }
}

impl Host for RecordingHost {
    fn port_read(&mut self, port: u32) -> i64 {
        let p = port as usize;
        if p < self.port_inputs.len() {
            let c = self.read_cursors[p];
            if c < self.port_inputs[p].len() {
                self.read_cursors[p] += 1;
                return self.port_inputs[p][c];
            }
        }
        0
    }

    fn port_write(&mut self, port: u32, value: i64) {
        self.writes.push((port, value));
    }

    fn raise_event(&mut self, event: u32) {
        self.raised.push(event);
    }

    fn set_condition(&mut self, cond: u32, value: bool) {
        if self.conditions.len() <= cond as usize {
            self.conditions.resize(cond as usize + 1, false);
        }
        self.conditions[cond as usize] = value;
        self.cond_writes.push((cond, value));
    }

    fn read_condition(&mut self, cond: u32) -> bool {
        self.conditions.get(cond as usize).copied().unwrap_or(false)
    }
}

/// Runtime errors of the interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Division or remainder by zero.
    DivideByZero {
        /// Function where it happened.
        function: String,
        /// Instruction index.
        pc: usize,
    },
    /// Array index outside the global area.
    OutOfBounds {
        /// Function where it happened.
        function: String,
        /// Offending slot.
        slot: i64,
    },
    /// The step budget was exhausted (runaway loop).
    StepLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// Unknown function name.
    NoSuchFunction(String),
    /// Wrong number of arguments.
    ArityMismatch {
        /// Function name.
        function: String,
        /// Expected count.
        expected: usize,
        /// Provided count.
        got: usize,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::DivideByZero { function, pc } => {
                write!(f, "divide by zero in `{function}` at {pc}")
            }
            InterpError::OutOfBounds { function, slot } => {
                write!(f, "global slot {slot} out of bounds in `{function}`")
            }
            InterpError::StepLimit { limit } => write!(f, "step limit {limit} exhausted"),
            InterpError::NoSuchFunction(n) => write!(f, "no such function `{n}`"),
            InterpError::ArityMismatch { function, expected, got } => {
                write!(f, "`{function}` expects {expected} arguments, got {got}")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// The interpreter: program plus mutable global memory.
#[derive(Debug, Clone)]
pub struct Interp<'p> {
    program: &'p Program,
    globals: Vec<i64>,
    steps: u64,
    step_limit: u64,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter with globals at their reset values.
    pub fn new(program: &'p Program) -> Self {
        Interp {
            program,
            globals: program.globals.iter().map(|g| g.init).collect(),
            steps: 0,
            step_limit: 10_000_000,
        }
    }

    /// Overrides the runaway-loop step budget.
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Current global memory.
    pub fn globals(&self) -> &[i64] {
        &self.globals
    }

    /// Reads one global slot by diagnostic name.
    pub fn global(&self, name: &str) -> Option<i64> {
        self.program
            .globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| self.globals[i])
    }

    /// Writes one global slot by diagnostic name.
    pub fn set_global(&mut self, name: &str, value: i64) -> bool {
        if let Some(i) = self.program.globals.iter().position(|g| g.name == name) {
            self.globals[i] = self.program.globals[i].ty.wrap(value);
            true
        } else {
            false
        }
    }

    /// Instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Calls a function by name.
    ///
    /// # Errors
    ///
    /// Returns the runtime errors documented on [`InterpError`].
    pub fn call<H: Host>(
        &mut self,
        name: &str,
        args: &[i64],
        host: &mut H,
    ) -> Result<Option<i64>, InterpError> {
        let fi = self
            .program
            .function_index(name)
            .ok_or_else(|| InterpError::NoSuchFunction(name.to_string()))?;
        self.call_indexed(fi, args, host)
    }

    /// Calls a function by index.
    ///
    /// # Errors
    ///
    /// Same as [`Interp::call`].
    pub fn call_indexed<H: Host>(
        &mut self,
        fi: u32,
        args: &[i64],
        host: &mut H,
    ) -> Result<Option<i64>, InterpError> {
        let f = &self.program.functions[fi as usize];
        if args.len() != f.params.len() {
            return Err(InterpError::ArityMismatch {
                function: f.name.clone(),
                expected: f.params.len(),
                got: args.len(),
            });
        }
        let mut regs = vec![0i64; f.vreg_count()];
        for (i, (&a, &t)) in args.iter().zip(&f.params).enumerate() {
            regs[i] = t.wrap(a);
        }
        self.run(f, &mut regs, host)
    }

    fn run<H: Host>(
        &mut self,
        f: &Function,
        regs: &mut [i64],
        host: &mut H,
    ) -> Result<Option<i64>, InterpError> {
        let mut pc = 0usize;
        loop {
            if pc >= f.insts.len() {
                return Ok(None);
            }
            self.steps += 1;
            if self.steps > self.step_limit {
                return Err(InterpError::StepLimit { limit: self.step_limit });
            }
            let wrap = |v: VReg, x: i64| f.vreg_type(v).wrap(x);
            match &f.insts[pc] {
                Inst::Const { dst, value } => regs[dst.0 as usize] = wrap(*dst, *value),
                Inst::Copy { dst, src } => regs[dst.0 as usize] = wrap(*dst, regs[src.0 as usize]),
                Inst::Bin { op, dst, lhs, rhs } => {
                    let a = regs[lhs.0 as usize];
                    let b = regs[rhs.0 as usize];
                    let r = match op {
                        BinOp::Add => a.wrapping_add(b),
                        BinOp::Sub => a.wrapping_sub(b),
                        BinOp::Mul => a.wrapping_mul(b),
                        BinOp::Div => {
                            if b == 0 {
                                return Err(InterpError::DivideByZero {
                                    function: f.name.clone(),
                                    pc,
                                });
                            }
                            a.wrapping_div(b)
                        }
                        BinOp::Rem => {
                            if b == 0 {
                                return Err(InterpError::DivideByZero {
                                    function: f.name.clone(),
                                    pc,
                                });
                            }
                            a.wrapping_rem(b)
                        }
                        BinOp::And => a & b,
                        BinOp::Or => a | b,
                        BinOp::Xor => a ^ b,
                        BinOp::Shl => a.wrapping_shl((b & 63) as u32),
                        BinOp::Shr => {
                            if f.vreg_type(*lhs).signed {
                                a.wrapping_shr((b & 63) as u32)
                            } else {
                                let m = f.vreg_type(*lhs).mask();
                                (((a as u64) & m) >> ((b & 63) as u64)) as i64
                            }
                        }
                        BinOp::CmpEq => (a == b) as i64,
                        BinOp::CmpNe => (a != b) as i64,
                        BinOp::CmpLt => (a < b) as i64,
                        BinOp::CmpLe => (a <= b) as i64,
                    };
                    regs[dst.0 as usize] = wrap(*dst, r);
                }
                Inst::Un { op, dst, src } => {
                    let a = regs[src.0 as usize];
                    let r = match op {
                        UnOp::Neg => a.wrapping_neg(),
                        UnOp::Not => !a,
                    };
                    regs[dst.0 as usize] = wrap(*dst, r);
                }
                Inst::LoadGlobal { dst, slot } => {
                    regs[dst.0 as usize] = wrap(*dst, self.globals[*slot as usize]);
                }
                Inst::StoreGlobal { slot, src } => {
                    let ty = self.program.globals[*slot as usize].ty;
                    self.globals[*slot as usize] = ty.wrap(regs[src.0 as usize]);
                }
                Inst::LoadIndexed { dst, base, index } => {
                    let slot = *base as i64 + regs[index.0 as usize];
                    if slot < 0 || slot as usize >= self.globals.len() {
                        return Err(InterpError::OutOfBounds {
                            function: f.name.clone(),
                            slot,
                        });
                    }
                    regs[dst.0 as usize] = wrap(*dst, self.globals[slot as usize]);
                }
                Inst::StoreIndexed { base, index, src } => {
                    let slot = *base as i64 + regs[index.0 as usize];
                    if slot < 0 || slot as usize >= self.globals.len() {
                        return Err(InterpError::OutOfBounds {
                            function: f.name.clone(),
                            slot,
                        });
                    }
                    let ty = self.program.globals[slot as usize].ty;
                    self.globals[slot as usize] = ty.wrap(regs[src.0 as usize]);
                }
                Inst::PortRead { dst, port } => {
                    regs[dst.0 as usize] = wrap(*dst, host.port_read(*port));
                }
                Inst::PortWrite { port, src } => host.port_write(*port, regs[src.0 as usize]),
                Inst::ReadCondition { dst, cond } => {
                    regs[dst.0 as usize] = host.read_condition(*cond) as i64;
                }
                Inst::SetCondition { cond, src } => {
                    host.set_condition(*cond, regs[src.0 as usize] != 0);
                }
                Inst::RaiseEvent { event } => host.raise_event(*event),
                Inst::Call { func, args, dst } => {
                    let vals: Vec<i64> = args.iter().map(|a| regs[a.0 as usize]).collect();
                    let r = self.call_indexed(*func, &vals, host)?;
                    if let Some(d) = dst {
                        regs[d.0 as usize] = wrap(*d, r.unwrap_or(0));
                    }
                }
                Inst::Ret { value } => {
                    return Ok(value.map(|v| regs[v.0 as usize]));
                }
                Inst::Jump { target } => {
                    pc = f.label_pos(*target);
                    continue;
                }
                Inst::Branch { cond, if_true, if_false } => {
                    pc = if regs[cond.0 as usize] != 0 {
                        f.label_pos(*if_true)
                    } else {
                        f.label_pos(*if_false)
                    };
                    continue;
                }
            }
            pc += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn run(src: &str, func: &str, args: &[i64]) -> Option<i64> {
        let p = compile(src).unwrap();
        let mut i = Interp::new(&p);
        let mut h = RecordingHost::new();
        i.call(func, args, &mut h).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run("int:16 f(int:16 a, int:16 b) { return a * b - 3; }", "f", &[6, 7]), Some(39));
    }

    #[test]
    fn width_wrapping() {
        assert_eq!(run("int:8 f(int:8 a) { return a + 1; }", "f", &[127]), Some(-128));
        assert_eq!(run("uint:8 f(uint:8 a) { return a + 1; }", "f", &[255]), Some(0));
    }

    #[test]
    fn loops_and_branches() {
        let src = r#"
            int:16 sum(int:16 n) {
                int:16 s = 0;
                int:16 i = 1;
                while (i <= n) { s += i; i += 1; }
                return s;
            }
        "#;
        assert_eq!(run(src, "sum", &[10]), Some(55));
        assert_eq!(run(src, "sum", &[0]), Some(0));
    }

    #[test]
    fn short_circuit_does_not_evaluate_rhs() {
        // If && evaluated its rhs, the division by zero would trip.
        let src = r#"
            int:16 f(int:16 a) {
                if (a != 0 && 10 / a > 1) { return 1; }
                return 0;
            }
        "#;
        assert_eq!(run(src, "f", &[0]), Some(0));
        assert_eq!(run(src, "f", &[4]), Some(1));
        assert_eq!(run(src, "f", &[20]), Some(0));
    }

    #[test]
    fn nested_calls() {
        let src = r#"
            int:16 sq(int:16 x) { return x * x; }
            int:16 f(int:16 a) { return sq(a) + sq(a + 1); }
        "#;
        assert_eq!(run(src, "f", &[3]), Some(25));
    }

    #[test]
    fn globals_persist_between_calls() {
        let src = "int:16 total = 5;\nvoid bump(int:16 n) { total += n; }";
        let p = compile(src).unwrap();
        let mut i = Interp::new(&p);
        let mut h = RecordingHost::new();
        i.call("bump", &[3], &mut h).unwrap();
        i.call("bump", &[4], &mut h).unwrap();
        assert_eq!(i.global("total"), Some(12));
    }

    #[test]
    fn struct_and_array_access() {
        let src = r#"
            typedef struct pt { int:16 x; int:16 y; } Pt;
            Pt p = {3, 4};
            int:16 tab[3] = {10, 20, 30};
            int:16 f(int:8 i) { return p.x + p.y + tab[i]; }
            void set(int:8 i, int:16 v) { tab[i] = v; p.y = 9; }
        "#;
        let p = compile(src).unwrap();
        let mut i = Interp::new(&p);
        let mut h = RecordingHost::new();
        assert_eq!(i.call("f", &[1], &mut h).unwrap(), Some(27));
        i.call("set", &[2, 99], &mut h).unwrap();
        assert_eq!(i.call("f", &[2], &mut h).unwrap(), Some(3 + 9 + 99));
    }

    #[test]
    fn ports_conditions_events() {
        let src = r#"
            port In : 8 @ 1 in;
            port Out : 8 @ 2 out;
            condition DONE;
            event FIN;
            void f() {
                int:8 v = In;
                Out = v * 2;
                DONE = v > 10;
                raise FIN;
            }
        "#;
        let p = compile(src).unwrap();
        let mut i = Interp::new(&p);
        let mut h = RecordingHost::new();
        h.queue_input(0, [21]);
        i.call("f", &[], &mut h).unwrap();
        assert_eq!(h.writes, vec![(1, 42)]);
        assert_eq!(h.cond_writes, vec![(0, true)]);
        assert_eq!(h.raised, vec![0]);
    }

    #[test]
    fn divide_by_zero_detected() {
        let p = compile("int:16 f(int:16 a) { return 10 / a; }").unwrap();
        let mut i = Interp::new(&p);
        let mut h = RecordingHost::new();
        assert!(matches!(
            i.call("f", &[0], &mut h),
            Err(InterpError::DivideByZero { .. })
        ));
    }

    #[test]
    fn step_limit_stops_runaway() {
        let p = compile("void f() { while (1) { } }").unwrap();
        let mut i = Interp::new(&p).with_step_limit(1000);
        let mut h = RecordingHost::new();
        assert!(matches!(i.call("f", &[], &mut h), Err(InterpError::StepLimit { .. })));
    }

    #[test]
    fn out_of_bounds_detected() {
        let p = compile("int:8 t[2];\nint:8 f(int:8 i) { return t[i]; }").unwrap();
        let mut i = Interp::new(&p);
        let mut h = RecordingHost::new();
        assert!(matches!(
            i.call("f", &[100], &mut h),
            Err(InterpError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn unsigned_shift_right_is_logical() {
        assert_eq!(run("uint:8 f(uint:8 a) { return a >> 1; }", "f", &[0x80]), Some(0x40));
        assert_eq!(run("int:8 f(int:8 a) { return a >> 1; }", "f", &[-2]), Some(-1));
    }
}
