//! AST → IR lowering.
//!
//! Straightforward syntax-directed translation. Logical `&&`/`||` are
//! lowered with short-circuit control flow; `for` was already desugared
//! by the parser. Conditions read as `uint:1` values; writing a
//! condition emits [`Inst::SetCondition`], which the TEP code generator
//! turns into condition-cache port operations.

use crate::ast::{self, Expr, FunctionDecl, LValue, Stmt};
use crate::ir::{BinOp, Function, GlobalInit, Inst, Label, PortInfo, Program, UnOp, VReg};
use crate::sema::{CheckedProgram, GlobalBinding};
use crate::types::Scalar;
use std::collections::BTreeMap;

/// Lowers a checked program to IR.
pub fn lower(checked: &CheckedProgram) -> Program {
    let functions = checked
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| FnLowerer::new(checked, i).lower(f))
        .collect();
    Program {
        functions,
        globals: checked
            .global_slots
            .iter()
            .map(|g| GlobalInit { name: g.name.clone(), ty: g.ty, init: g.init })
            .collect(),
        ports: checked
            .ports
            .iter()
            .map(|p| PortInfo {
                name: p.name.clone(),
                width: p.width,
                address: p.address,
                readable: p.readable,
                writable: p.writable,
            })
            .collect(),
        events: checked.events.clone(),
        conditions: checked.conditions.clone(),
        consts: checked.enum_values.clone(),
        topo_order: checked.topo_order.clone(),
    }
}

struct FnLowerer<'c> {
    checked: &'c CheckedProgram,
    fn_index: usize,
    insts: Vec<Inst>,
    labels: Vec<usize>,
    vreg_types: Vec<Scalar>,
    scopes: Vec<BTreeMap<String, VReg>>,
}

impl<'c> FnLowerer<'c> {
    fn new(checked: &'c CheckedProgram, fn_index: usize) -> Self {
        FnLowerer {
            checked,
            fn_index,
            insts: Vec::new(),
            labels: Vec::new(),
            vreg_types: Vec::new(),
            scopes: vec![BTreeMap::new()],
        }
    }

    fn fresh(&mut self, ty: Scalar) -> VReg {
        let v = VReg(self.vreg_types.len() as u32);
        self.vreg_types.push(ty);
        v
    }

    fn new_label(&mut self) -> Label {
        let l = Label(self.labels.len() as u32);
        self.labels.push(usize::MAX);
        l
    }

    fn place(&mut self, l: Label) {
        self.labels[l.0 as usize] = self.insts.len();
    }

    fn emit(&mut self, i: Inst) {
        self.insts.push(i);
    }

    fn lower(mut self, f: &FunctionDecl) -> Function {
        let sig = &self.checked.signatures[self.fn_index];
        // Arguments arrive in v0..vN.
        for ((name, _), &ty) in f.params.iter().zip(&sig.params) {
            let v = self.fresh(ty);
            self.scopes.last_mut().unwrap().insert(name.clone(), v);
        }
        self.stmts(&f.body);
        // Implicit return for void functions falling off the end.
        if !matches!(self.insts.last(), Some(Inst::Ret { .. })) {
            let value = sig.ret.map(|t| {
                // Non-void function falling off the end returns 0.
                let v = self.fresh(t);
                self.insts.push(Inst::Const { dst: v, value: 0 });
                v
            });
            self.emit(Inst::Ret { value });
        }
        Function {
            name: f.name.clone(),
            params: sig.params.clone(),
            ret: sig.ret,
            insts: self.insts,
            labels: self.labels,
            vreg_types: self.vreg_types,
        }
    }

    fn lookup_local(&self, name: &str) -> Option<VReg> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).copied()
    }

    fn stmts(&mut self, body: &[Stmt]) {
        for s in body {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Local { name, ty, init, .. } => {
                let scalar = self
                    .checked_scalar(ty)
                    .expect("sema guarantees scalar locals");
                let v = self.fresh(scalar);
                match init {
                    Some(e) => {
                        let src = self.expr(e);
                        self.emit(Inst::Copy { dst: v, src });
                    }
                    None => self.emit(Inst::Const { dst: v, value: 0 }),
                }
                self.scopes.last_mut().unwrap().insert(name.clone(), v);
            }
            Stmt::Assign { lvalue, op, value, .. } => {
                let rhs = self.expr(value);
                let rhs = match op {
                    Some(binop) => {
                        let cur = self.read_lvalue(lvalue);
                        let ty = self.vreg_types[cur.0 as usize]
                            .join(self.vreg_types[rhs.0 as usize]);
                        let dst = self.fresh(ty);
                        self.emit(Inst::Bin {
                            op: ast_binop(*binop),
                            dst,
                            lhs: cur,
                            rhs,
                        });
                        dst
                    }
                    None => rhs,
                };
                self.write_lvalue(lvalue, rhs);
            }
            Stmt::Expr(e) => {
                if let Expr::Call { func, args, .. } = e {
                    let fi = self.checked.func_map[func];
                    let args: Vec<VReg> = args.iter().map(|a| self.expr(a)).collect();
                    let dst =
                        self.checked.signatures[fi as usize].ret.map(|t| self.fresh(t));
                    self.emit(Inst::Call { func: fi, args, dst });
                }
            }
            Stmt::If { cond, then_body, else_body } => {
                let c = self.expr(cond);
                let lt = self.new_label();
                let lf = self.new_label();
                let lend = self.new_label();
                self.emit(Inst::Branch { cond: c, if_true: lt, if_false: lf });
                self.place(lt);
                self.scopes.push(BTreeMap::new());
                self.stmts(then_body);
                self.scopes.pop();
                self.emit(Inst::Jump { target: lend });
                self.place(lf);
                self.scopes.push(BTreeMap::new());
                self.stmts(else_body);
                self.scopes.pop();
                self.place(lend);
            }
            Stmt::While { cond, body } => {
                let lhead = self.new_label();
                let lbody = self.new_label();
                let lend = self.new_label();
                self.place(lhead);
                let c = self.expr(cond);
                self.emit(Inst::Branch { cond: c, if_true: lbody, if_false: lend });
                self.place(lbody);
                self.scopes.push(BTreeMap::new());
                self.stmts(body);
                self.scopes.pop();
                self.emit(Inst::Jump { target: lhead });
                self.place(lend);
            }
            Stmt::For => {}
            Stmt::Return(value, _) => {
                let value = value.as_ref().map(|e| self.expr(e));
                self.emit(Inst::Ret { value });
            }
            Stmt::Raise(name, _) => {
                let event = self.checked.event_map[name];
                self.emit(Inst::RaiseEvent { event });
            }
        }
    }

    fn checked_scalar(&self, ty: &crate::types::Type) -> Option<Scalar> {
        match ty {
            crate::types::Type::Scalar(s) => Some(*s),
            crate::types::Type::Struct(n) if self.checked.enums.contains_key(n) => {
                Some(Scalar::uint(8))
            }
            other => other.as_scalar(),
        }
    }

    fn read_lvalue(&mut self, lv: &LValue) -> VReg {
        match lv {
            LValue::Name(n, s) => self.expr(&Expr::Name(n.clone(), *s)),
            LValue::Index(n, i, s) => self.expr(&Expr::Index(n.clone(), Box::new(i.clone()), *s)),
            LValue::Member(n, f, s) => self.expr(&Expr::Member(n.clone(), f.clone(), *s)),
        }
    }

    fn write_lvalue(&mut self, lv: &LValue, src: VReg) {
        match lv {
            LValue::Name(name, _) => {
                if let Some(v) = self.lookup_local(name) {
                    self.emit(Inst::Copy { dst: v, src });
                    return;
                }
                if let Some(GlobalBinding::Scalar { slot, .. }) = self.checked.globals.get(name)
                {
                    self.emit(Inst::StoreGlobal { slot: *slot, src });
                    return;
                }
                if let Some(&cond) = self.checked.condition_map.get(name) {
                    self.emit(Inst::SetCondition { cond, src });
                    return;
                }
                if let Some(&port) = self.checked.port_map.get(name) {
                    self.emit(Inst::PortWrite { port, src });
                    return;
                }
                unreachable!("sema resolved all lvalues");
            }
            LValue::Index(name, idx, _) => {
                let Some(GlobalBinding::Array { base, .. }) = self.checked.globals.get(name)
                else {
                    unreachable!("sema checked array lvalue")
                };
                let base = *base;
                let index = self.expr(idx);
                self.emit(Inst::StoreIndexed { base, index, src });
            }
            LValue::Member(name, field, _) => {
                let Some(GlobalBinding::Struct { base, layout }) =
                    self.checked.globals.get(name)
                else {
                    unreachable!("sema checked struct lvalue")
                };
                let (off, _) = self.checked.structs[layout].field(field).unwrap();
                let slot = *base + off;
                self.emit(Inst::StoreGlobal { slot, src });
            }
        }
    }

    fn expr(&mut self, e: &Expr) -> VReg {
        match e {
            Expr::Int { value, width, .. } => {
                let ty = match width {
                    Some(w) => Scalar::uint(*w),
                    None => Scalar::fitting(*value),
                };
                let dst = self.fresh(ty);
                self.emit(Inst::Const { dst, value: *value });
                dst
            }
            Expr::Name(name, _) => {
                if let Some(v) = self.lookup_local(name) {
                    return v;
                }
                if let Some(GlobalBinding::Scalar { slot, ty }) = self.checked.globals.get(name)
                {
                    let dst = self.fresh(*ty);
                    self.emit(Inst::LoadGlobal { dst, slot: *slot });
                    return dst;
                }
                if let Some(&val) = self.checked.enum_values.get(name) {
                    let dst = self.fresh(Scalar::uint(8));
                    self.emit(Inst::Const { dst, value: val });
                    return dst;
                }
                if let Some(&cond) = self.checked.condition_map.get(name) {
                    let dst = self.fresh(Scalar::bool());
                    self.emit(Inst::ReadCondition { dst, cond });
                    return dst;
                }
                if let Some(&port) = self.checked.port_map.get(name) {
                    let ty = Scalar::uint(self.checked.ports[port as usize].width);
                    let dst = self.fresh(ty);
                    self.emit(Inst::PortRead { dst, port });
                    return dst;
                }
                unreachable!("sema resolved all names")
            }
            Expr::Index(name, idx, _) => {
                let Some(GlobalBinding::Array { base, ty, .. }) =
                    self.checked.globals.get(name)
                else {
                    unreachable!("sema checked array read")
                };
                let (base, ty) = (*base, *ty);
                let index = self.expr(idx);
                let dst = self.fresh(ty);
                self.emit(Inst::LoadIndexed { dst, base, index });
                dst
            }
            Expr::Member(name, field, _) => {
                let Some(GlobalBinding::Struct { base, layout }) =
                    self.checked.globals.get(name)
                else {
                    unreachable!("sema checked struct read")
                };
                let (off, ty) = self.checked.structs[layout].field(field).unwrap();
                let slot = *base + off;
                let dst = self.fresh(ty);
                self.emit(Inst::LoadGlobal { dst, slot });
                dst
            }
            Expr::Bin { op: ast::BinOp::LogicAnd, lhs, rhs, .. } => {
                self.short_circuit(lhs, rhs, true)
            }
            Expr::Bin { op: ast::BinOp::LogicOr, lhs, rhs, .. } => {
                self.short_circuit(lhs, rhs, false)
            }
            Expr::Bin { op, lhs, rhs, .. } => {
                let a = self.expr(lhs);
                let b = self.expr(rhs);
                let ta = self.vreg_types[a.0 as usize];
                let tb = self.vreg_types[b.0 as usize];
                let ty = if op.is_boolean() { Scalar::bool() } else { ta.join(tb) };
                // Gt/Ge lower to swapped Lt/Le.
                let (irop, a, b) = match op {
                    ast::BinOp::Gt => (BinOp::CmpLt, b, a),
                    ast::BinOp::Ge => (BinOp::CmpLe, b, a),
                    other => (ast_binop(*other), a, b),
                };
                let dst = self.fresh(ty);
                self.emit(Inst::Bin { op: irop, dst, lhs: a, rhs: b });
                dst
            }
            Expr::Un { op, expr, .. } => {
                let src = self.expr(expr);
                let t = self.vreg_types[src.0 as usize];
                match op {
                    ast::UnOp::Neg => {
                        let dst = self.fresh(Scalar::int(t.width.saturating_add(1).min(32)));
                        self.emit(Inst::Un { op: UnOp::Neg, dst, src });
                        dst
                    }
                    ast::UnOp::BitNot => {
                        let dst = self.fresh(t);
                        self.emit(Inst::Un { op: UnOp::Not, dst, src });
                        dst
                    }
                    ast::UnOp::Not => {
                        let zero = self.fresh(t);
                        self.emit(Inst::Const { dst: zero, value: 0 });
                        let dst = self.fresh(Scalar::bool());
                        self.emit(Inst::Bin { op: BinOp::CmpEq, dst, lhs: src, rhs: zero });
                        dst
                    }
                }
            }
            Expr::Call { func, args, .. } => {
                let fi = self.checked.func_map[func];
                let args: Vec<VReg> = args.iter().map(|a| self.expr(a)).collect();
                let ret = self.checked.signatures[fi as usize]
                    .ret
                    .expect("sema rejects void call as value");
                let dst = self.fresh(ret);
                self.emit(Inst::Call { func: fi, args, dst: Some(dst) });
                dst
            }
        }
    }

    /// `a && b` / `a || b` with short-circuit evaluation.
    fn short_circuit(&mut self, lhs: &Expr, rhs: &Expr, is_and: bool) -> VReg {
        let dst = self.fresh(Scalar::bool());
        let a = self.expr(lhs);
        let l_rhs = self.new_label();
        let l_short = self.new_label();
        let l_end = self.new_label();
        if is_and {
            self.emit(Inst::Branch { cond: a, if_true: l_rhs, if_false: l_short });
        } else {
            self.emit(Inst::Branch { cond: a, if_true: l_short, if_false: l_rhs });
        }
        self.place(l_rhs);
        let b = self.expr(rhs);
        // Normalise to 0/1.
        let zero = self.fresh(self.vreg_types[b.0 as usize]);
        self.emit(Inst::Const { dst: zero, value: 0 });
        self.emit(Inst::Bin { op: BinOp::CmpNe, dst, lhs: b, rhs: zero });
        self.emit(Inst::Jump { target: l_end });
        self.place(l_short);
        self.emit(Inst::Const { dst, value: if is_and { 0 } else { 1 } });
        self.place(l_end);
        dst
    }
}

fn ast_binop(op: ast::BinOp) -> BinOp {
    match op {
        ast::BinOp::Add => BinOp::Add,
        ast::BinOp::Sub => BinOp::Sub,
        ast::BinOp::Mul => BinOp::Mul,
        ast::BinOp::Div => BinOp::Div,
        ast::BinOp::Rem => BinOp::Rem,
        ast::BinOp::And => BinOp::And,
        ast::BinOp::Or => BinOp::Or,
        ast::BinOp::Xor => BinOp::Xor,
        ast::BinOp::Shl => BinOp::Shl,
        ast::BinOp::Shr => BinOp::Shr,
        ast::BinOp::Eq => BinOp::CmpEq,
        ast::BinOp::Ne => BinOp::CmpNe,
        ast::BinOp::Lt => BinOp::CmpLt,
        ast::BinOp::Le => BinOp::CmpLe,
        ast::BinOp::Gt | ast::BinOp::Ge => unreachable!("handled by operand swap"),
        ast::BinOp::LogicAnd | ast::BinOp::LogicOr => {
            unreachable!("handled by short_circuit")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::ir::Inst;

    #[test]
    fn lowers_simple_function() {
        let p = compile("int:16 add(int:16 a, int:16 b) { return a + b; }").unwrap();
        let f = p.function("add").unwrap();
        assert!(matches!(f.insts[0], Inst::Bin { op: BinOp::Add, .. }));
        assert!(matches!(f.insts[1], Inst::Ret { value: Some(_) }));
    }

    #[test]
    fn while_loop_has_back_edge() {
        let p = compile("void f() { int:8 i = 0; while (i < 4) { i += 1; } }").unwrap();
        let f = p.function("f").unwrap();
        let jumps: Vec<_> = f
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::Jump { target } => Some(f.label_pos(*target)),
                _ => None,
            })
            .collect();
        let pos_of_jump = f
            .insts
            .iter()
            .position(|i| matches!(i, Inst::Jump { .. }))
            .unwrap();
        assert!(jumps.iter().any(|&t| t < pos_of_jump), "back edge expected");
    }

    #[test]
    fn condition_write_and_event_raise() {
        let p = compile("condition C;\nevent E;\nvoid f() { C = 1; raise E; }").unwrap();
        let f = p.function("f").unwrap();
        assert!(f.insts.iter().any(|i| matches!(i, Inst::SetCondition { .. })));
        assert!(f.insts.iter().any(|i| matches!(i, Inst::RaiseEvent { .. })));
    }

    #[test]
    fn gt_swaps_to_lt() {
        let p = compile("uint:1 f(int:8 a, int:8 b) { return a > b; }").unwrap();
        let f = p.function("f").unwrap();
        assert!(matches!(
            f.insts[0],
            Inst::Bin { op: BinOp::CmpLt, lhs: VReg(1), rhs: VReg(0), .. }
        ));
    }

    #[test]
    fn histogram_counts_operators() {
        let p = compile(
            "int:16 f(int:16 a) { int:16 x = a * 3; x = x / 2; return x + (a << 1); }",
        )
        .unwrap();
        let h = p.function("f").unwrap().op_histogram();
        assert_eq!(h.mul, 1);
        assert_eq!(h.div, 1);
        assert_eq!(h.shift, 1);
        assert!(h.alu >= 1);
    }

    #[test]
    fn max_width_reflects_declarations() {
        let p = compile("void f() { int:24 x = 0; x = x + 1; }").unwrap();
        assert_eq!(p.function("f").unwrap().max_width(), 24);
    }
}
