//! Diagnostics for the action-language compiler.

use std::fmt;

/// A source range. `line`/`column` are the 1-based start position (the
/// fields every existing caller reads); `end_line`/`end_column` mark
/// the first position *after* the spanned text, and the byte offsets
/// give the half-open `[start_offset, end_offset)` range, so
/// diagnostics can underline what they point at. [`fmt::Display`]
/// renders only the start (`line:col`), byte-identical to the
/// historical format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based start line.
    pub line: u32,
    /// 1-based start column.
    pub column: u32,
    /// 1-based line just past the spanned text (start line for
    /// zero-width spans).
    pub end_line: u32,
    /// 1-based column just past the spanned text.
    pub end_column: u32,
    /// 0-based byte offset of the start.
    pub start_offset: u32,
    /// 0-based byte offset just past the end.
    pub end_offset: u32,
}

impl Span {
    /// Creates a zero-width span at a start position (no byte offsets).
    pub fn new(line: u32, column: u32) -> Self {
        Span { line, column, end_line: line, end_column: column, start_offset: 0, end_offset: 0 }
    }

    /// Creates a full range with byte offsets.
    pub fn range(
        (line, column, start_offset): (u32, u32, u32),
        (end_line, end_column, end_offset): (u32, u32, u32),
    ) -> Self {
        Span { line, column, end_line, end_column, start_offset, end_offset }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// A compile error with phase, position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Which compiler phase produced the error.
    pub phase: Phase,
    /// Source position, when known.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

/// Compiler phases, for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenisation.
    Lex,
    /// Parsing.
    Parse,
    /// Semantic analysis.
    Sema,
}

impl CompileError {
    /// Lexer error.
    pub fn lex(span: Span, message: impl Into<String>) -> Self {
        CompileError { phase: Phase::Lex, span, message: message.into() }
    }

    /// Parser error.
    pub fn parse(span: Span, message: impl Into<String>) -> Self {
        CompileError { phase: Phase::Parse, span, message: message.into() }
    }

    /// Semantic error.
    pub fn sema(span: Span, message: impl Into<String>) -> Self {
        CompileError { phase: Phase::Sema, span, message: message.into() }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Sema => "semantic",
        };
        write!(f, "{phase} error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for CompileError {}
