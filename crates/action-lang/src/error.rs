//! Diagnostics for the action-language compiler.

use std::fmt;

/// A source position (1-based line/column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub column: u32,
}

impl Span {
    /// Creates a span.
    pub fn new(line: u32, column: u32) -> Self {
        Span { line, column }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// A compile error with phase, position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Which compiler phase produced the error.
    pub phase: Phase,
    /// Source position, when known.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

/// Compiler phases, for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenisation.
    Lex,
    /// Parsing.
    Parse,
    /// Semantic analysis.
    Sema,
}

impl CompileError {
    /// Lexer error.
    pub fn lex(span: Span, message: impl Into<String>) -> Self {
        CompileError { phase: Phase::Lex, span, message: message.into() }
    }

    /// Parser error.
    pub fn parse(span: Span, message: impl Into<String>) -> Self {
        CompileError { phase: Phase::Parse, span, message: message.into() }
    }

    /// Semantic error.
    pub fn sema(span: Span, message: impl Into<String>) -> Self {
        CompileError { phase: Phase::Sema, span, message: message.into() }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Sema => "semantic",
        };
        write!(f, "{phase} error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for CompileError {}
