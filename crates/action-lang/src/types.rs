//! The bit-width-aware type system.
//!
//! Every scalar carries an exact width of 1–32 bits and a signedness,
//! written `int:N` / `uint:N` (with `bool` as sugar for `uint:1`). The
//! ASIP generator reads data-path requirements — bus width, ALU width,
//! register sizes — straight off these types, which is why the paper
//! stresses "careful range specification".

use serde::{Deserialize, Serialize};
use std::fmt;

/// A scalar type: width plus signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Scalar {
    /// Width in bits, 1..=32.
    pub width: u8,
    /// Two's-complement signed?
    pub signed: bool,
}

impl Scalar {
    /// `int:N`
    pub fn int(width: u8) -> Self {
        Scalar { width, signed: true }
    }

    /// `uint:N`
    pub fn uint(width: u8) -> Self {
        Scalar { width, signed: false }
    }

    /// `bool` = `uint:1`
    pub fn bool() -> Self {
        Scalar::uint(1)
    }

    /// The value mask for this width.
    pub fn mask(self) -> u64 {
        if self.width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Truncates (and sign- or zero-extends) `v` to this type's domain.
    pub fn wrap(self, v: i64) -> i64 {
        let m = self.mask();
        let t = (v as u64) & m;
        if self.signed && self.width < 64 && t & (1 << (self.width - 1)) != 0 {
            (t | !m) as i64
        } else {
            t as i64
        }
    }

    /// The common type of a binary operation: max width, signed if either
    /// operand is signed.
    pub fn join(self, other: Scalar) -> Scalar {
        Scalar { width: self.width.max(other.width), signed: self.signed || other.signed }
    }

    /// Minimal width able to represent `v` (unsigned when `v >= 0`).
    pub fn fitting(v: i64) -> Scalar {
        if v >= 0 {
            let width = (64 - (v as u64).leading_zeros()).max(1) as u8;
            Scalar::uint(width.min(32))
        } else {
            let width = (65 - (!(v as u64)).leading_zeros()).max(2) as u8;
            Scalar::int(width.min(32))
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.signed {
            write!(f, "int:{}", self.width)
        } else {
            write!(f, "uint:{}", self.width)
        }
    }
}

/// A full type: void, scalar, named enum, named struct, or array.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// No value (function returns only).
    Void,
    /// A width/signedness scalar.
    Scalar(Scalar),
    /// A named enumeration (runtime representation: `uint:8`).
    Enum(String),
    /// A named structure (configuration data; flattened into slots).
    Struct(String),
    /// Fixed-size array of scalars.
    Array(Scalar, u32),
}

impl Type {
    /// The scalar representation of this type, if it has one at runtime.
    pub fn as_scalar(&self) -> Option<Scalar> {
        match self {
            Type::Scalar(s) => Some(*s),
            Type::Enum(_) => Some(Scalar::uint(8)),
            _ => None,
        }
    }

    /// True for types a plain value can have.
    pub fn is_value(&self) -> bool {
        matches!(self, Type::Scalar(_) | Type::Enum(_))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Scalar(s) => write!(f, "{s}"),
            Type::Enum(n) => write!(f, "enum {n}"),
            Type::Struct(n) => write!(f, "struct {n}"),
            Type::Array(s, n) => write!(f, "{s}[{n}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_signed() {
        let t = Scalar::int(8);
        assert_eq!(t.wrap(127), 127);
        assert_eq!(t.wrap(128), -128);
        assert_eq!(t.wrap(-1), -1);
        assert_eq!(t.wrap(255), -1);
        assert_eq!(t.wrap(256), 0);
    }

    #[test]
    fn wrap_unsigned() {
        let t = Scalar::uint(8);
        assert_eq!(t.wrap(255), 255);
        assert_eq!(t.wrap(256), 0);
        assert_eq!(t.wrap(-1), 255);
    }

    #[test]
    fn join_widths() {
        assert_eq!(Scalar::int(8).join(Scalar::uint(16)), Scalar::int(16));
        assert_eq!(Scalar::uint(4).join(Scalar::uint(4)), Scalar::uint(4));
    }

    #[test]
    fn fitting_widths() {
        assert_eq!(Scalar::fitting(0), Scalar::uint(1));
        assert_eq!(Scalar::fitting(1), Scalar::uint(1));
        assert_eq!(Scalar::fitting(255), Scalar::uint(8));
        assert_eq!(Scalar::fitting(256), Scalar::uint(9));
        assert_eq!(Scalar::fitting(-1), Scalar::int(2));
        assert_eq!(Scalar::fitting(-128), Scalar::int(8));
    }

    #[test]
    fn wrap_is_idempotent() {
        for w in 1..=16u8 {
            for signed in [false, true] {
                let t = Scalar { width: w, signed };
                for v in -300..300i64 {
                    assert_eq!(t.wrap(t.wrap(v)), t.wrap(v), "w={w} signed={signed} v={v}");
                }
            }
        }
    }
}
