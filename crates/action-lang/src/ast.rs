//! Abstract syntax tree of the action language.

use crate::error::Span;
use crate::types::Type;

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `enum ECD { Event, Condition, Data };`
    Enum(EnumDecl),
    /// `typedef struct port { ... } Port;` / `struct port { ... };`
    Struct(StructDecl),
    /// A global variable definition, possibly with initialiser.
    Global(GlobalDecl),
    /// A function definition.
    Function(FunctionDecl),
    /// `event NAME;` — a chart event usable in `raise`.
    ExternEvent(String, Span),
    /// `condition NAME;` — a chart condition usable as an lvalue.
    ExternCondition(String, Span),
    /// `port NAME : width @ addr [in|out|bidir];` — an external data port.
    ExternPort(PortDecl),
}

/// `enum Name { A, B, C };`
#[derive(Debug, Clone, PartialEq)]
pub struct EnumDecl {
    /// Enum name.
    pub name: String,
    /// Variant names; values are 0..n in order.
    pub variants: Vec<String>,
    /// Position of the declaration.
    pub span: Span,
}

/// A struct field.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type (scalar or enum).
    pub ty: Type,
}

/// `typedef struct tag { fields } Name;`
#[derive(Debug, Clone, PartialEq)]
pub struct StructDecl {
    /// Struct (typedef) name.
    pub name: String,
    /// Fields in order.
    pub fields: Vec<Field>,
    /// Position of the declaration.
    pub span: Span,
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional initialiser: a scalar expression or a brace list.
    pub init: Option<Initializer>,
    /// Position of the declaration.
    pub span: Span,
}

/// Initialiser forms.
#[derive(Debug, Clone, PartialEq)]
pub enum Initializer {
    /// `= expr`
    Expr(Expr),
    /// `= { e1, e2, … }` (structs and arrays)
    List(Vec<Expr>),
}

/// `port NAME : width @ addr dir;`
#[derive(Debug, Clone, PartialEq)]
pub struct PortDecl {
    /// Port name.
    pub name: String,
    /// Word width in bits.
    pub width: u8,
    /// Port address.
    pub address: u16,
    /// `"in"`, `"out"` or `"bidir"`.
    pub direction: String,
    /// Position of the declaration.
    pub span: Span,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    /// Function name.
    pub name: String,
    /// Return type (`void` or scalar).
    pub ret: Type,
    /// Parameters (scalar types only).
    pub params: Vec<(String, Type)>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Position of the definition.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration `int:16 x = e;`
    Local {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Optional initialiser.
        init: Option<Expr>,
        /// Position.
        span: Span,
    },
    /// Assignment `lv op= e;` (`op` empty for plain `=`).
    Assign {
        /// Target.
        lvalue: LValue,
        /// Compound operator (`+`, `-`, …) or `None` for plain `=`.
        op: Option<BinOp>,
        /// Right-hand side.
        value: Expr,
        /// Position.
        span: Span,
    },
    /// Expression statement (function call).
    Expr(Expr),
    /// `if (c) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `while (c) { .. }`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) { .. }` — desugared by the parser into
    /// `init; while (cond) { body; step; }`, so it never reaches sema.
    /// Present for completeness of the AST printer.
    For,
    /// `return e?;`
    Return(Option<Expr>, Span),
    /// `raise EVENT;`
    Raise(String, Span),
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Plain variable / condition / port name.
    Name(String, Span),
    /// Array element `a[i]`.
    Index(String, Expr, Span),
    /// Struct member `s.f`.
    Member(String, String, Span),
}

impl LValue {
    /// Position of the lvalue.
    pub fn span(&self) -> Span {
        match self {
            LValue::Name(_, s) | LValue::Index(_, _, s) | LValue::Member(_, _, s) => *s,
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    LogicAnd,
    /// `||`
    LogicOr,
}

impl BinOp {
    /// True for `== != < <= > >= && ||` (result type `uint:1`).
    pub fn is_boolean(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::LogicAnd
                | BinOp::LogicOr
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Bitwise complement `~`.
    BitNot,
    /// Logical not `!`.
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal; `width` pinned for `B:` literals.
    Int {
        /// Value.
        value: i64,
        /// Pinned width, if any.
        width: Option<u8>,
        /// Position.
        span: Span,
    },
    /// Variable / parameter / enum variant / condition / port read.
    Name(String, Span),
    /// Array element read.
    Index(String, Box<Expr>, Span),
    /// Struct member read.
    Member(String, String, Span),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Position.
        span: Span,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
        /// Position.
        span: Span,
    },
    /// Function call.
    Call {
        /// Callee name.
        func: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Position.
        span: Span,
    },
}

impl Expr {
    /// Position of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int { span, .. }
            | Expr::Name(_, span)
            | Expr::Index(_, _, span)
            | Expr::Member(_, _, span)
            | Expr::Bin { span, .. }
            | Expr::Un { span, .. }
            | Expr::Call { span, .. } => *span,
        }
    }
}
