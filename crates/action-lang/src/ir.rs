//! Three-address intermediate representation.
//!
//! The IR is the "assembler-level representation" of §2: flat, linear
//! code over virtual registers with explicit loads/stores, port accesses
//! and chart interactions. The TEP code generator consumes it directly;
//! the iterative optimiser reads data-path requirements (operator mix,
//! operand widths) off it.

use crate::types::Scalar;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VReg(pub u32);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A branch target; resolved through [`Function::label_pos`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Label(pub u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// IR binary operators. Comparison results are `uint:1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (signedness from the instruction type).
    Div,
    /// Remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Shift right (arithmetic when signed).
    Shr,
    /// Equal.
    CmpEq,
    /// Not equal.
    CmpNe,
    /// Less than.
    CmpLt,
    /// Less or equal.
    CmpLe,
}

impl BinOp {
    /// True for the comparison operators.
    pub fn is_compare(self) -> bool {
        matches!(self, BinOp::CmpEq | BinOp::CmpNe | BinOp::CmpLt | BinOp::CmpLe)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::CmpEq => "cmpeq",
            BinOp::CmpNe => "cmpne",
            BinOp::CmpLt => "cmplt",
            BinOp::CmpLe => "cmple",
        };
        f.write_str(s)
    }
}

/// IR unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Two's-complement negation.
    Neg,
    /// Bitwise complement.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
        })
    }
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Inst {
    /// `dst = value`
    Const {
        /// Destination.
        dst: VReg,
        /// Immediate value.
        value: i64,
    },
    /// `dst = src`
    Copy {
        /// Destination.
        dst: VReg,
        /// Source.
        src: VReg,
    },
    /// `dst = lhs op rhs`
    Bin {
        /// Operator.
        op: BinOp,
        /// Destination.
        dst: VReg,
        /// Left operand.
        lhs: VReg,
        /// Right operand.
        rhs: VReg,
    },
    /// `dst = op src`
    Un {
        /// Operator.
        op: UnOp,
        /// Destination.
        dst: VReg,
        /// Operand.
        src: VReg,
    },
    /// `dst = globals[slot]`
    LoadGlobal {
        /// Destination.
        dst: VReg,
        /// Global slot.
        slot: u32,
    },
    /// `globals[slot] = src`
    StoreGlobal {
        /// Global slot.
        slot: u32,
        /// Source.
        src: VReg,
    },
    /// `dst = globals[base + index]` (array element)
    LoadIndexed {
        /// Destination.
        dst: VReg,
        /// Array base slot.
        base: u32,
        /// Dynamic index register.
        index: VReg,
    },
    /// `globals[base + index] = src`
    StoreIndexed {
        /// Array base slot.
        base: u32,
        /// Dynamic index register.
        index: VReg,
        /// Source.
        src: VReg,
    },
    /// `dst = port[p]`
    PortRead {
        /// Destination.
        dst: VReg,
        /// Port index.
        port: u32,
    },
    /// `port[p] = src`
    PortWrite {
        /// Port index.
        port: u32,
        /// Source.
        src: VReg,
    },
    /// `dst = condition[c]`
    ReadCondition {
        /// Destination.
        dst: VReg,
        /// Condition index.
        cond: u32,
    },
    /// `condition[c] = src != 0`
    SetCondition {
        /// Condition index.
        cond: u32,
        /// Source.
        src: VReg,
    },
    /// Raise event `e` (visible next configuration cycle).
    RaiseEvent {
        /// Event index.
        event: u32,
    },
    /// Call function `func` with `args`, optional result in `dst`.
    Call {
        /// Callee index into [`Program::functions`].
        func: u32,
        /// Argument registers.
        args: Vec<VReg>,
        /// Result register for non-void calls.
        dst: Option<VReg>,
    },
    /// Return, with optional value.
    Ret {
        /// Returned register, `None` for void.
        value: Option<VReg>,
    },
    /// Unconditional jump.
    Jump {
        /// Target label.
        target: Label,
    },
    /// Conditional branch on `cond != 0`.
    Branch {
        /// Condition register.
        cond: VReg,
        /// Taken when non-zero.
        if_true: Label,
        /// Taken when zero.
        if_false: Label,
    },
}

impl Inst {
    /// The register defined by this instruction, if any.
    pub fn def(&self) -> Option<VReg> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::LoadGlobal { dst, .. }
            | Inst::LoadIndexed { dst, .. }
            | Inst::PortRead { dst, .. }
            | Inst::ReadCondition { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            _ => None,
        }
    }

    /// The registers used by this instruction.
    pub fn uses(&self) -> Vec<VReg> {
        match self {
            Inst::Copy { src, .. } | Inst::Un { src, .. } => vec![*src],
            Inst::Bin { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::StoreGlobal { src, .. }
            | Inst::PortWrite { src, .. }
            | Inst::SetCondition { src, .. } => vec![*src],
            Inst::LoadIndexed { index, .. } => vec![*index],
            Inst::StoreIndexed { index, src, .. } => vec![*index, *src],
            Inst::Call { args, .. } => args.clone(),
            Inst::Ret { value: Some(v) } => vec![*v],
            Inst::Branch { cond, .. } => vec![*cond],
            _ => Vec::new(),
        }
    }
}

/// A compiled function: linear instruction list plus label table.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter types; arguments arrive in `v0..vN`.
    pub params: Vec<Scalar>,
    /// Return type, `None` for void.
    pub ret: Option<Scalar>,
    /// Instruction stream.
    pub insts: Vec<Inst>,
    /// `labels[l]` = instruction index that label `l` points at.
    pub labels: Vec<usize>,
    /// Type of every virtual register.
    pub vreg_types: Vec<Scalar>,
}

impl Function {
    /// Instruction index a label resolves to.
    pub fn label_pos(&self, l: Label) -> usize {
        self.labels[l.0 as usize]
    }

    /// Number of virtual registers.
    pub fn vreg_count(&self) -> usize {
        self.vreg_types.len()
    }

    /// Type of a register.
    pub fn vreg_type(&self, v: VReg) -> Scalar {
        self.vreg_types[v.0 as usize]
    }

    /// Counts instructions per opcode kind (data-path requirement
    /// analysis: "the assembler-level instruction set is mostly used to
    /// analyze the data-path requirements of an application").
    pub fn op_histogram(&self) -> OpHistogram {
        let mut h = OpHistogram::default();
        for i in &self.insts {
            match i {
                Inst::Bin { op: BinOp::Mul, .. } => h.mul += 1,
                Inst::Bin { op: BinOp::Div, .. } | Inst::Bin { op: BinOp::Rem, .. } => {
                    h.div += 1
                }
                Inst::Bin { op: BinOp::Shl, .. } | Inst::Bin { op: BinOp::Shr, .. } => {
                    h.shift += 1
                }
                Inst::Bin { op, .. } if op.is_compare() => h.compare += 1,
                Inst::Bin { .. } | Inst::Un { .. } => h.alu += 1,
                Inst::LoadGlobal { .. }
                | Inst::StoreGlobal { .. }
                | Inst::LoadIndexed { .. }
                | Inst::StoreIndexed { .. } => h.mem += 1,
                Inst::PortRead { .. } | Inst::PortWrite { .. } => h.port += 1,
                Inst::Call { .. } => h.call += 1,
                _ => {}
            }
        }
        h
    }

    /// Maximum operand width used anywhere in the function.
    pub fn max_width(&self) -> u8 {
        self.vreg_types.iter().map(|t| t.width).max().unwrap_or(1)
    }
}

/// Operator mix of a function (for architecture selection).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpHistogram {
    /// Multiplications.
    pub mul: usize,
    /// Divisions and remainders.
    pub div: usize,
    /// Shifts.
    pub shift: usize,
    /// Comparisons.
    pub compare: usize,
    /// Other ALU operations.
    pub alu: usize,
    /// Memory (global/array) accesses.
    pub mem: usize,
    /// Port accesses.
    pub port: usize,
    /// Calls.
    pub call: usize,
}

/// A complete compiled program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Functions; indices match [`Inst::Call::func`].
    pub functions: Vec<Function>,
    /// Flattened global slots with reset values.
    pub globals: Vec<GlobalInit>,
    /// External data ports.
    pub ports: Vec<PortInfo>,
    /// Raisable events, by name.
    pub events: Vec<String>,
    /// Chart conditions, by name.
    pub conditions: Vec<String>,
    /// Named constants (enum variants) visible to transition labels.
    pub consts: std::collections::BTreeMap<String, i64>,
    /// Callee-before-caller order.
    pub topo_order: Vec<u32>,
}

/// A flattened global slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalInit {
    /// Diagnostic name.
    pub name: String,
    /// Slot type.
    pub ty: Scalar,
    /// Reset value.
    pub init: i64,
}

/// An external data port.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortInfo {
    /// Port name.
    pub name: String,
    /// Word width.
    pub width: u8,
    /// Port address.
    pub address: u16,
    /// Reads allowed.
    pub readable: bool,
    /// Writes allowed.
    pub writable: bool,
}

impl Program {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Index of a function by name.
    pub fn function_index(&self, name: &str) -> Option<u32> {
        self.functions.iter().position(|f| f.name == name).map(|i| i as u32)
    }

    /// Textual dump of the whole program, for snapshots and debugging.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for f in &self.functions {
            let _ = writeln!(out, "fn {}({:?}) -> {:?}", f.name, f.params, f.ret);
            for (pc, inst) in f.insts.iter().enumerate() {
                for (li, &pos) in f.labels.iter().enumerate() {
                    if pos == pc {
                        let _ = writeln!(out, "L{li}:");
                    }
                }
                let _ = writeln!(out, "  {pc:3}: {inst:?}");
            }
        }
        out
    }
}
