//! The deployable face of the PSCP scenario server.
//!
//! The implementation lives in [`pscp_core::serve`] (so the server,
//! the pool, and the differential tests share one crate boundary);
//! this crate re-exports it and ships the `pscp-serve` binary:
//!
//! ```text
//! pscp-serve                       # serve the pickup-head example
//! pscp-serve session --clients 4   # loopback differential session
//! ```
//!
//! Environment: `PSCP_SERVE_ADDR` (default `127.0.0.1:7971`),
//! `PSCP_SERVE_WINDOW` (default 32), `PSCP_THREADS` (shard workers).

pub use pscp_core::serve::*;
