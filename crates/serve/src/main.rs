//! `pscp-serve` — the PSCP scenario server binary.
//!
//! * `pscp-serve` — serve the pickup-head example system on
//!   `PSCP_SERVE_ADDR` (default `127.0.0.1:7971`) until killed.
//! * `pscp-serve session --clients N [--scenarios M]` — spin up a
//!   loopback server, run `N` concurrent clients submitting `M`
//!   pickup-head scenarios each, differential-check every outcome
//!   against an in-process `SimPool`, and write the obs metrics
//!   snapshot to `<obs_dir>/serve_metrics.json`. Exits non-zero on
//!   any byte mismatch.
//! * `pscp-serve check <chart> [actions]` — compile the chart (and
//!   optionally an action-language file) without serving anything,
//!   printing every diagnostic with caret-underlined source excerpts.
//!   Exits 0 when the sources compile (warnings allowed), 1 on any
//!   error — the CI-friendly front door to the diagnostics pipeline.

use pscp_core::arch::PscpArch;
use pscp_core::machine::ScriptedEnvironment;
use pscp_core::pool::{BatchOptions, SimPool};
use pscp_core::serve::{
    self, wire::WireOutcome, ScenarioClient, ServeOptions,
};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

fn usage() {
    eprintln!(
        "usage: pscp-serve [session --clients N [--scenarios M] [--window W]]\n\
         \x20      pscp-serve check <chart-file> [action-file]\n\
         env:   PSCP_SERVE_ADDR (default 127.0.0.1:7971), PSCP_SERVE_WINDOW, PSCP_THREADS"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => run_server(),
        Some("session") => session(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("--help" | "-h" | "help") => {
            usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("pscp-serve: unknown mode `{other}`");
            usage();
            ExitCode::from(2)
        }
    }
}

/// Foreground server on `PSCP_SERVE_ADDR`.
fn run_server() -> ExitCode {
    let system = pscp_bench::example_system(&PscpArch::dual_md16(true));
    let opts = ServeOptions::from_env();
    let addr = serve::addr_from_env();
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("pscp-serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = listener.local_addr().expect("bound listener has an address");
    println!(
        "pscp-serve: serving pickup-head on {local} (workers={}, window<={}, fingerprint={:#018x})",
        opts.threads,
        opts.max_window,
        serve::system_fingerprint(&system)
    );
    let shutdown = AtomicBool::new(false);
    match serve::serve(&system, listener, &opts, &shutdown) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pscp-serve: server error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `pscp-serve check`: compile chart (+ optional actions) and print
/// the full diagnostic report with caret-underlined source excerpts.
/// Chart-sourced diagnostics quote the chart file, action-sourced ones
/// the action file; system-level findings have no excerpt. Exit 0 when
/// the sources compile (warnings allowed), 1 on errors, 2 on usage or
/// unreadable files.
fn check(args: &[String]) -> ExitCode {
    use pscp_core::diag::{self, DiagnosticSink, Severity, Source};

    let Some(chart_path) = args.first() else {
        eprintln!("pscp-serve check: missing chart file");
        usage();
        return ExitCode::from(2);
    };
    let chart_src = match std::fs::read_to_string(chart_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pscp-serve check: cannot read {chart_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let action_src = match args.get(1) {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("pscp-serve check: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => String::new(),
    };

    let mut sink = DiagnosticSink::new();
    let compiled = diag::compile_sources(
        &chart_src,
        &action_src,
        &PscpArch::dual_md16(true),
        &pscp_core::diag::CodegenOptions::default(),
        &mut sink,
    );
    let report = sink.finish();
    for d in &report {
        let source = match d.source {
            Source::Chart => chart_src.as_str(),
            Source::Action => action_src.as_str(),
            Source::System => "",
        };
        println!("{}", d.render_with_source(source));
    }
    let errors = report.iter().filter(|d| d.severity == Severity::Error).count();
    let warnings = report.len() - errors;
    println!("{errors} error(s), {warnings} warning(s)");
    match compiled {
        Some(sys) => {
            println!(
                "pscp-serve check: OK (fingerprint {:#018x})",
                serve::system_fingerprint(&sys)
            );
            ExitCode::SUCCESS
        }
        None => ExitCode::FAILURE,
    }
}

/// A deterministic pickup-head script for (client, scenario) — mixes
/// power-up, data, and pulse traffic so shard workers see varied work.
fn script_for(client: usize, scenario: usize) -> Vec<Vec<String>> {
    const MENU: [&[&str]; 6] = [
        &["POWER"],
        &["DATA_VALID"],
        &["DATA_VALID"],
        &["X_PULSE"],
        &["X_PULSE", "Y_PULSE"],
        &[],
    ];
    let len = 3 + (client + scenario) % 5;
    (0..len)
        .map(|step| {
            MENU[(client * 7 + scenario * 3 + step) % MENU.len()]
                .iter()
                .map(|e| (*e).to_string())
                .collect()
        })
        .collect()
}

fn parse_flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A small chart/action pair for the live-compile round-trip.
const RT_CHART: &str = "\
event TICK period 100;
orstate Root { contains Off, On; default Off; }
basicstate Off { transition { target On; label \"TICK\"; } }
basicstate On { transition { target Off; label \"TICK\"; } }
";
const RT_ACTIONS: &str = "int:16 total;\nvoid Bump() { total = total + 1; }\n";
/// The same chart with the default pointing nowhere and a bad label —
/// must come back as diagnostics, never a protocol error.
const RT_BROKEN_CHART: &str = "\
event TICK period 100;
orstate Root { contains Off, On; default Missing; }
basicstate Off { transition { target On; label \"BOOM\"; } }
basicstate On { transition { target Off; label \"TICK\"; } }
";

/// One connection: compile good sources, compile broken sources, then
/// submit a scenario — asserting wire/in-process byte identity of both
/// diagnostic lists along the way.
fn compile_roundtrip(
    addr: std::net::SocketAddr,
    limits: &BatchOptions,
) -> Result<(), String> {
    use pscp_core::diag::{compile_sources, CodegenOptions, DiagnosticSink};
    use pscp_core::serve::wire::encode_diagnostics;

    let arch = PscpArch::dual_md16(true);
    let mut client =
        ScenarioClient::connect(addr).map_err(|e| format!("connect: {e}"))?;

    // Good sources: fingerprint registered, report byte-identical.
    let mut sink = DiagnosticSink::new();
    let local = compile_sources(RT_CHART, RT_ACTIONS, &arch, &CodegenOptions::default(), &mut sink);
    let local_diags = sink.finish();
    let (fp, wire_diags) =
        client.compile(RT_CHART, RT_ACTIONS).map_err(|e| format!("compile: {e}"))?;
    if local.is_none() {
        return Err("good sources failed to compile in-process".into());
    }
    if fp == 0 {
        return Err("good sources came back with fingerprint 0".into());
    }
    if encode_diagnostics(&wire_diags) != encode_diagnostics(&local_diags) {
        return Err("good-source diagnostic list differs from in-process compile".into());
    }

    // Broken sources: no fingerprint, errors present, still byte-identical.
    let mut sink = DiagnosticSink::new();
    let local =
        compile_sources(RT_BROKEN_CHART, RT_ACTIONS, &arch, &CodegenOptions::default(), &mut sink);
    let local_diags = sink.finish();
    let (fp, wire_diags) =
        client.compile(RT_BROKEN_CHART, RT_ACTIONS).map_err(|e| format!("compile: {e}"))?;
    if local.is_some() {
        return Err("broken sources compiled in-process".into());
    }
    if fp != 0 {
        return Err("broken sources came back with a fingerprint".into());
    }
    if wire_diags.is_empty() {
        return Err("broken sources produced an empty diagnostic list".into());
    }
    if encode_diagnostics(&wire_diags) != encode_diagnostics(&local_diags) {
        return Err("broken-source diagnostic list differs from in-process compile".into());
    }

    // The connection is still good for scenario traffic.
    client.submit(script_for(0, 0), *limits).map_err(|e| format!("submit: {e}"))?;
    client.recv().map_err(|e| format!("recv: {e}"))?;
    Ok(())
}

/// Loopback differential session.
fn session(args: &[String]) -> ExitCode {
    let clients = parse_flag(args, "--clients", 4).max(1);
    let per_client = parse_flag(args, "--scenarios", 8).max(1);
    let window = parse_flag(args, "--window", serve::DEFAULT_WINDOW as usize) as u32;

    pscp_obs::set_flags(pscp_obs::flags() | pscp_obs::METRICS);
    pscp_obs::metrics::reset_all();

    let system = Arc::new(pscp_bench::example_system(&PscpArch::dual_md16(true)));
    let limits = BatchOptions { deadline: u64::MAX, max_steps: 16 };

    // The reference: every scenario through the in-process pool.
    let scripts: Vec<Vec<Vec<String>>> = (0..clients)
        .flat_map(|c| (0..per_client).map(move |i| script_for(c, i)))
        .collect();
    let envs = scripts.iter().cloned().map(ScriptedEnvironment::new).collect();
    let expected: Vec<Vec<u8>> = SimPool::new()
        .run_batch(&system, envs, &limits)
        .iter()
        .map(|o| WireOutcome::from_batch(o).encode())
        .collect();

    let opts = ServeOptions { max_window: window, ..ServeOptions::from_env() };
    let server = match serve::spawn(Arc::clone(&system), "127.0.0.1:0", opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pscp-serve: cannot start loopback server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.addr();
    let fingerprint = serve::system_fingerprint(&system);

    // Compile→Diagnostics→Submit round-trip on one connection: the
    // wire diagnostic list must be byte-identical to an in-process
    // compile of the same sources, a good compile must hand back a
    // registered fingerprint, and the connection must still accept
    // submissions afterwards.
    if let Err(e) = compile_roundtrip(addr, &limits) {
        eprintln!("pscp-serve session: compile round-trip FAILED: {e}");
        let _ = server.stop();
        return ExitCode::FAILURE;
    }
    println!("pscp-serve session: compile round-trip OK (wire report byte-identical)");

    let mismatches: usize = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let expected = &expected;
                s.spawn(move || -> usize {
                    let mut client = ScenarioClient::connect_with(addr, window, fingerprint)
                        .expect("session client connects");
                    let scripts: Vec<_> =
                        (0..per_client).map(|i| script_for(c, i)).collect();
                    let outcomes = client
                        .run_batch(&scripts, limits)
                        .expect("session batch completes");
                    outcomes
                        .iter()
                        .enumerate()
                        .filter(|(i, o)| o.encode() != expected[c * per_client + i])
                        .count()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).sum()
    });

    let _ = server.stop();

    let dir = pscp_obs::obs_dir();
    let snapshot_path = dir.join("serve_metrics.json");
    if let Err(e) = std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::write(&snapshot_path, pscp_obs::metrics::snapshot().to_json()))
    {
        eprintln!("pscp-serve: cannot write {}: {e}", snapshot_path.display());
        return ExitCode::FAILURE;
    }

    let total = clients * per_client;
    println!(
        "pscp-serve session: clients={clients} scenarios={total} window={window} \
         mismatches={mismatches} metrics={}",
        snapshot_path.display()
    );
    if mismatches == 0 {
        println!("pscp-serve session: differential OK (server byte-identical to SimPool)");
        ExitCode::SUCCESS
    } else {
        eprintln!("pscp-serve session: DIFFERENTIAL FAILURE");
        ExitCode::FAILURE
    }
}
