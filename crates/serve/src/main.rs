//! `pscp-serve` — the PSCP scenario server binary.
//!
//! * `pscp-serve` — serve the pickup-head example system on
//!   `PSCP_SERVE_ADDR` (default `127.0.0.1:7971`) until killed.
//! * `pscp-serve session --clients N [--scenarios M]` — spin up a
//!   loopback server, run `N` concurrent clients submitting `M`
//!   pickup-head scenarios each, differential-check every outcome
//!   against an in-process `SimPool`, and write the obs metrics
//!   snapshot to `<obs_dir>/serve_metrics.json`. Exits non-zero on
//!   any byte mismatch.

use pscp_core::arch::PscpArch;
use pscp_core::machine::ScriptedEnvironment;
use pscp_core::pool::{BatchOptions, SimPool};
use pscp_core::serve::{
    self, wire::WireOutcome, ScenarioClient, ServeOptions,
};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

fn usage() {
    eprintln!(
        "usage: pscp-serve [session --clients N [--scenarios M] [--window W]]\n\
         env:   PSCP_SERVE_ADDR (default 127.0.0.1:7971), PSCP_SERVE_WINDOW, PSCP_THREADS"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => run_server(),
        Some("session") => session(&args[1..]),
        Some("--help" | "-h" | "help") => {
            usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("pscp-serve: unknown mode `{other}`");
            usage();
            ExitCode::from(2)
        }
    }
}

/// Foreground server on `PSCP_SERVE_ADDR`.
fn run_server() -> ExitCode {
    let system = pscp_bench::example_system(&PscpArch::dual_md16(true));
    let opts = ServeOptions::from_env();
    let addr = serve::addr_from_env();
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("pscp-serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = listener.local_addr().expect("bound listener has an address");
    println!(
        "pscp-serve: serving pickup-head on {local} (workers={}, window<={}, fingerprint={:#018x})",
        opts.threads,
        opts.max_window,
        serve::system_fingerprint(&system)
    );
    let shutdown = AtomicBool::new(false);
    match serve::serve(&system, listener, &opts, &shutdown) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pscp-serve: server error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// A deterministic pickup-head script for (client, scenario) — mixes
/// power-up, data, and pulse traffic so shard workers see varied work.
fn script_for(client: usize, scenario: usize) -> Vec<Vec<String>> {
    const MENU: [&[&str]; 6] = [
        &["POWER"],
        &["DATA_VALID"],
        &["DATA_VALID"],
        &["X_PULSE"],
        &["X_PULSE", "Y_PULSE"],
        &[],
    ];
    let len = 3 + (client + scenario) % 5;
    (0..len)
        .map(|step| {
            MENU[(client * 7 + scenario * 3 + step) % MENU.len()]
                .iter()
                .map(|e| (*e).to_string())
                .collect()
        })
        .collect()
}

fn parse_flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Loopback differential session.
fn session(args: &[String]) -> ExitCode {
    let clients = parse_flag(args, "--clients", 4).max(1);
    let per_client = parse_flag(args, "--scenarios", 8).max(1);
    let window = parse_flag(args, "--window", serve::DEFAULT_WINDOW as usize) as u32;

    pscp_obs::set_flags(pscp_obs::flags() | pscp_obs::METRICS);
    pscp_obs::metrics::reset_all();

    let system = Arc::new(pscp_bench::example_system(&PscpArch::dual_md16(true)));
    let limits = BatchOptions { deadline: u64::MAX, max_steps: 16 };

    // The reference: every scenario through the in-process pool.
    let scripts: Vec<Vec<Vec<String>>> = (0..clients)
        .flat_map(|c| (0..per_client).map(move |i| script_for(c, i)))
        .collect();
    let envs = scripts.iter().cloned().map(ScriptedEnvironment::new).collect();
    let expected: Vec<Vec<u8>> = SimPool::new()
        .run_batch(&system, envs, &limits)
        .iter()
        .map(|o| WireOutcome::from_batch(o).encode())
        .collect();

    let opts = ServeOptions { max_window: window, ..ServeOptions::from_env() };
    let server = match serve::spawn(Arc::clone(&system), "127.0.0.1:0", opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pscp-serve: cannot start loopback server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.addr();
    let fingerprint = serve::system_fingerprint(&system);

    let mismatches: usize = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let expected = &expected;
                s.spawn(move || -> usize {
                    let mut client = ScenarioClient::connect_with(addr, window, fingerprint)
                        .expect("session client connects");
                    let scripts: Vec<_> =
                        (0..per_client).map(|i| script_for(c, i)).collect();
                    let outcomes = client
                        .run_batch(&scripts, limits)
                        .expect("session batch completes");
                    outcomes
                        .iter()
                        .enumerate()
                        .filter(|(i, o)| o.encode() != expected[c * per_client + i])
                        .count()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).sum()
    });

    let _ = server.stop();

    let dir = pscp_obs::obs_dir();
    let snapshot_path = dir.join("serve_metrics.json");
    if let Err(e) = std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::write(&snapshot_path, pscp_obs::metrics::snapshot().to_json()))
    {
        eprintln!("pscp-serve: cannot write {}: {e}", snapshot_path.display());
        return ExitCode::FAILURE;
    }

    let total = clients * per_client;
    println!(
        "pscp-serve session: clients={clients} scenarios={total} window={window} \
         mismatches={mismatches} metrics={}",
        snapshot_path.display()
    );
    if mismatches == 0 {
        println!("pscp-serve session: differential OK (server byte-identical to SimPool)");
        ExitCode::SUCCESS
    } else {
        eprintln!("pscp-serve session: DIFFERENTIAL FAILURE");
        ExitCode::FAILURE
    }
}
