//! `pscp-serve` — the PSCP scenario server binary.
//!
//! * `pscp-serve` — serve the pickup-head example system on
//!   `PSCP_SERVE_ADDR` (default `127.0.0.1:7971`) until killed.
//! * `pscp-serve session --clients N [--scenarios M]` — spin up a
//!   loopback server, run `N` concurrent clients submitting `M`
//!   pickup-head scenarios each, differential-check every outcome
//!   against an in-process `SimPool`, and write the obs metrics
//!   snapshot to `<obs_dir>/serve_metrics.json`. Exits non-zero on
//!   any byte mismatch.
//! * `pscp-serve check <chart> [actions]` — compile the chart (and
//!   optionally an action-language file) without serving anything,
//!   printing every diagnostic with caret-underlined source excerpts.
//!   Exits 0 when the sources compile (warnings allowed), 1 on any
//!   error — the CI-friendly front door to the diagnostics pipeline.
//! * `pscp-serve stats [--json|--prom] [--addr A|--loopback]` —
//!   one-shot telemetry scrape over the wire (`StatsRequest`/`Stats`
//!   frames): serve gauges plus the full obs snapshot, rendered as a
//!   human table, versioned snapshot JSON, or Prometheus text
//!   exposition. `--loopback` spins a throwaway server with traffic —
//!   the self-contained CI smoke.
//! * `pscp-serve top [--interval MS] [--count N] [--addr A|--loopback]`
//!   — live console: polls Stats frames and renders scenarios/sec,
//!   p50/p99 queue+sim latency from histogram deltas, credit stalls,
//!   and per-shard throughput.
//! * `pscp-serve explore [--addr A|--loopback] [--max-states N]
//!   [--max-depth N] [--witnesses N] [--never-active STATE]...
//!   [--never-raised EVENT]...` — exhaustive state-space exploration
//!   over the wire (`Explore`/`ExploreResult` frames): reachable-state
//!   count, deadlocks, unreachable chart elements, and safety-predicate
//!   violations with replayable minimal counterexamples. `--loopback`
//!   spins a throwaway server, explores the same system in-process, and
//!   asserts the two reports byte-identical — the self-contained CI
//!   smoke. Every witness in a loopback run is replayed on a fresh
//!   machine and byte-checked against its claimed state.

use pscp_core::arch::PscpArch;
use pscp_core::machine::ScriptedEnvironment;
use pscp_core::pool::{BatchOptions, SimPool};
use pscp_core::serve::{
    self,
    wire::{MetricsSnapshot, WireOutcome},
    ScenarioClient, ServeGauges, ServeOptions,
};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage() {
    eprintln!(
        "usage: pscp-serve [session --clients N [--scenarios M] [--window W]]\n\
         \x20      pscp-serve check <chart-file> [action-file]\n\
         \x20      pscp-serve stats [--json|--prom] [--addr A|--loopback]\n\
         \x20      pscp-serve top [--interval MS] [--count N] [--addr A|--loopback]\n\
         \x20      pscp-serve explore [--addr A|--loopback] [--max-states N] [--max-depth N]\n\
         \x20                [--witnesses N] [--never-active STATE]... [--never-raised EVENT]...\n\
         env:   PSCP_SERVE_ADDR (default 127.0.0.1:7971), PSCP_SERVE_WINDOW, PSCP_THREADS,\n\
         \x20      PSCP_SERVE_STATS (off disables the telemetry plane),\n\
         \x20      PSCP_EXPLORE_MAX_STATES, PSCP_EXPLORE_MAX_DEPTH, PSCP_EXPLORE_WITNESSES"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => run_server(),
        Some("session") => session(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("stats") => stats_cmd(&args[1..]),
        Some("top") => top_cmd(&args[1..]),
        Some("explore") => explore_cmd(&args[1..]),
        Some("--help" | "-h" | "help") => {
            usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("pscp-serve: unknown mode `{other}`");
            usage();
            ExitCode::from(2)
        }
    }
}

/// Foreground server on `PSCP_SERVE_ADDR`.
fn run_server() -> ExitCode {
    let system = pscp_bench::example_system(&PscpArch::dual_md16(true));
    let opts = ServeOptions::from_env();
    let addr = serve::addr_from_env();
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("pscp-serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = listener.local_addr().expect("bound listener has an address");
    println!(
        "pscp-serve: serving pickup-head on {local} (workers={}, window<={}, fingerprint={:#018x})",
        opts.threads,
        opts.max_window,
        serve::system_fingerprint(&system)
    );
    let shutdown = AtomicBool::new(false);
    match serve::serve(&system, listener, &opts, &shutdown) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pscp-serve: server error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `pscp-serve check`: compile chart (+ optional actions) and print
/// the full diagnostic report with caret-underlined source excerpts.
/// Chart-sourced diagnostics quote the chart file, action-sourced ones
/// the action file; system-level findings have no excerpt. Exit 0 when
/// the sources compile (warnings allowed), 1 on errors, 2 on usage or
/// unreadable files.
fn check(args: &[String]) -> ExitCode {
    use pscp_core::diag::{self, DiagnosticSink, Severity, Source};

    let Some(chart_path) = args.first() else {
        eprintln!("pscp-serve check: missing chart file");
        usage();
        return ExitCode::from(2);
    };
    let chart_src = match std::fs::read_to_string(chart_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pscp-serve check: cannot read {chart_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let action_src = match args.get(1) {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("pscp-serve check: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => String::new(),
    };

    let mut sink = DiagnosticSink::new();
    let compiled = diag::compile_sources(
        &chart_src,
        &action_src,
        &PscpArch::dual_md16(true),
        &pscp_core::diag::CodegenOptions::default(),
        &mut sink,
    );
    let report = sink.finish();
    for d in &report {
        let source = match d.source {
            Source::Chart => chart_src.as_str(),
            Source::Action => action_src.as_str(),
            Source::System => "",
        };
        println!("{}", d.render_with_source(source));
    }
    let errors = report.iter().filter(|d| d.severity == Severity::Error).count();
    let warnings = report.len() - errors;
    println!("{errors} error(s), {warnings} warning(s)");
    match compiled {
        Some(sys) => {
            println!(
                "pscp-serve check: OK (fingerprint {:#018x})",
                serve::system_fingerprint(&sys)
            );
            ExitCode::SUCCESS
        }
        None => ExitCode::FAILURE,
    }
}

/// A deterministic pickup-head script for (client, scenario) — mixes
/// power-up, data, and pulse traffic so shard workers see varied work.
fn script_for(client: usize, scenario: usize) -> Vec<Vec<String>> {
    const MENU: [&[&str]; 6] = [
        &["POWER"],
        &["DATA_VALID"],
        &["DATA_VALID"],
        &["X_PULSE"],
        &["X_PULSE", "Y_PULSE"],
        &[],
    ];
    let len = 3 + (client + scenario) % 5;
    (0..len)
        .map(|step| {
            MENU[(client * 7 + scenario * 3 + step) % MENU.len()]
                .iter()
                .map(|e| (*e).to_string())
                .collect()
        })
        .collect()
}

fn parse_flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A small chart/action pair for the live-compile round-trip.
const RT_CHART: &str = "\
event TICK period 100;
orstate Root { contains Off, On; default Off; }
basicstate Off { transition { target On; label \"TICK\"; } }
basicstate On { transition { target Off; label \"TICK\"; } }
";
const RT_ACTIONS: &str = "int:16 total;\nvoid Bump() { total = total + 1; }\n";
/// The same chart with the default pointing nowhere and a bad label —
/// must come back as diagnostics, never a protocol error.
const RT_BROKEN_CHART: &str = "\
event TICK period 100;
orstate Root { contains Off, On; default Missing; }
basicstate Off { transition { target On; label \"BOOM\"; } }
basicstate On { transition { target Off; label \"TICK\"; } }
";

/// One connection: compile good sources, compile broken sources, then
/// submit a scenario — asserting wire/in-process byte identity of both
/// diagnostic lists along the way.
fn compile_roundtrip(
    addr: std::net::SocketAddr,
    limits: &BatchOptions,
) -> Result<(), String> {
    use pscp_core::diag::{compile_sources, CodegenOptions, DiagnosticSink};
    use pscp_core::serve::wire::encode_diagnostics;

    let arch = PscpArch::dual_md16(true);
    let mut client =
        ScenarioClient::connect(addr).map_err(|e| format!("connect: {e}"))?;

    // Good sources: fingerprint registered, report byte-identical.
    let mut sink = DiagnosticSink::new();
    let local = compile_sources(RT_CHART, RT_ACTIONS, &arch, &CodegenOptions::default(), &mut sink);
    let local_diags = sink.finish();
    let (fp, wire_diags) =
        client.compile(RT_CHART, RT_ACTIONS).map_err(|e| format!("compile: {e}"))?;
    if local.is_none() {
        return Err("good sources failed to compile in-process".into());
    }
    if fp == 0 {
        return Err("good sources came back with fingerprint 0".into());
    }
    if encode_diagnostics(&wire_diags) != encode_diagnostics(&local_diags) {
        return Err("good-source diagnostic list differs from in-process compile".into());
    }

    // Broken sources: no fingerprint, errors present, still byte-identical.
    let mut sink = DiagnosticSink::new();
    let local =
        compile_sources(RT_BROKEN_CHART, RT_ACTIONS, &arch, &CodegenOptions::default(), &mut sink);
    let local_diags = sink.finish();
    let (fp, wire_diags) =
        client.compile(RT_BROKEN_CHART, RT_ACTIONS).map_err(|e| format!("compile: {e}"))?;
    if local.is_some() {
        return Err("broken sources compiled in-process".into());
    }
    if fp != 0 {
        return Err("broken sources came back with a fingerprint".into());
    }
    if wire_diags.is_empty() {
        return Err("broken sources produced an empty diagnostic list".into());
    }
    if encode_diagnostics(&wire_diags) != encode_diagnostics(&local_diags) {
        return Err("broken-source diagnostic list differs from in-process compile".into());
    }

    // The connection is still good for scenario traffic.
    client.submit(script_for(0, 0), *limits).map_err(|e| format!("submit: {e}"))?;
    client.recv().map_err(|e| format!("recv: {e}"))?;
    Ok(())
}

/// Loopback differential session.
fn session(args: &[String]) -> ExitCode {
    let clients = parse_flag(args, "--clients", 4).max(1);
    let per_client = parse_flag(args, "--scenarios", 8).max(1);
    let window = parse_flag(args, "--window", serve::DEFAULT_WINDOW as usize) as u32;

    pscp_obs::set_flags(pscp_obs::flags() | pscp_obs::METRICS);
    pscp_obs::metrics::reset_all();

    let system = Arc::new(pscp_bench::example_system(&PscpArch::dual_md16(true)));
    let limits = BatchOptions { deadline: u64::MAX, max_steps: 16 };

    // The reference: every scenario through the in-process pool.
    let scripts: Vec<Vec<Vec<String>>> = (0..clients)
        .flat_map(|c| (0..per_client).map(move |i| script_for(c, i)))
        .collect();
    let envs = scripts.iter().cloned().map(ScriptedEnvironment::new).collect();
    let expected: Vec<Vec<u8>> = SimPool::new()
        .run_batch(&system, envs, &limits)
        .iter()
        .map(|o| WireOutcome::from_batch(o).encode())
        .collect();

    let opts = ServeOptions { max_window: window, ..ServeOptions::from_env() };
    let server = match serve::spawn(Arc::clone(&system), "127.0.0.1:0", opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pscp-serve: cannot start loopback server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.addr();
    let fingerprint = serve::system_fingerprint(&system);

    // Compile→Diagnostics→Submit round-trip on one connection: the
    // wire diagnostic list must be byte-identical to an in-process
    // compile of the same sources, a good compile must hand back a
    // registered fingerprint, and the connection must still accept
    // submissions afterwards.
    if let Err(e) = compile_roundtrip(addr, &limits) {
        eprintln!("pscp-serve session: compile round-trip FAILED: {e}");
        let _ = server.stop();
        return ExitCode::FAILURE;
    }
    println!("pscp-serve session: compile round-trip OK (wire report byte-identical)");

    let mismatches: usize = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let expected = &expected;
                s.spawn(move || -> usize {
                    let mut client = ScenarioClient::connect_with(addr, window, fingerprint)
                        .expect("session client connects");
                    let scripts: Vec<_> =
                        (0..per_client).map(|i| script_for(c, i)).collect();
                    let outcomes = client
                        .run_batch(&scripts, limits)
                        .expect("session batch completes");
                    outcomes
                        .iter()
                        .enumerate()
                        .filter(|(i, o)| o.encode() != expected[c * per_client + i])
                        .count()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).sum()
    });

    // The session's closing telemetry comes over the wire — the same
    // Stats frames an operator scrapes — not from process globals, so
    // the written file exercises the full remote plane every run.
    let scrape = ScenarioClient::connect_with(addr, window, fingerprint)
        .and_then(|mut c| c.stats());
    let _ = server.stop();
    let (gauges, snapshot) = match scrape {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("pscp-serve session: telemetry scrape failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let dir = pscp_obs::obs_dir();
    let snapshot_path = dir.join("serve_metrics.json");
    if let Err(e) = std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::write(&snapshot_path, snapshot.to_json_with(&gauges.rows())))
    {
        eprintln!("pscp-serve: cannot write {}: {e}", snapshot_path.display());
        return ExitCode::FAILURE;
    }

    let total = clients * per_client;
    println!(
        "pscp-serve session: clients={clients} scenarios={total} window={window} \
         mismatches={mismatches} metrics={}",
        snapshot_path.display()
    );
    if mismatches == 0 {
        println!("pscp-serve session: differential OK (server byte-identical to SimPool)");
        ExitCode::SUCCESS
    } else {
        eprintln!("pscp-serve session: DIFFERENTIAL FAILURE");
        ExitCode::FAILURE
    }
}

/// The address a scrape should dial: `--addr` wins, else the env.
fn parse_addr(args: &[String]) -> String {
    args.iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(serve::addr_from_env)
}

/// Spin a throwaway loopback server on the example system, push a
/// little traffic through it, and scrape it over the wire — fully
/// self-contained, so CI can smoke the exposition format without a
/// running deployment.
fn loopback_scrape() -> Result<(ServeGauges, MetricsSnapshot), String> {
    pscp_obs::set_flags(pscp_obs::flags() | pscp_obs::METRICS);
    let system = Arc::new(pscp_bench::example_system(&PscpArch::dual_md16(true)));
    let server = serve::spawn(Arc::clone(&system), "127.0.0.1:0", ServeOptions::from_env())
        .map_err(|e| format!("loopback server: {e}"))?;
    let limits = BatchOptions { deadline: u64::MAX, max_steps: 16 };
    let fingerprint = serve::system_fingerprint(&system);
    let result = (|| {
        let mut client =
            ScenarioClient::connect_latency(server.addr(), serve::DEFAULT_WINDOW, fingerprint)
                .map_err(|e| format!("loopback connect: {e}"))?;
        let scripts: Vec<_> = (0..16).map(|i| script_for(0, i)).collect();
        client.run_batch(&scripts, limits).map_err(|e| format!("loopback traffic: {e}"))?;
        client.stats().map_err(|e| format!("loopback scrape: {e}"))
    })();
    let _ = server.stop();
    result
}

/// `pscp-serve stats`: one-shot scrape, rendered human / JSON / Prom.
fn stats_cmd(args: &[String]) -> ExitCode {
    let scraped = if args.iter().any(|a| a == "--loopback") {
        loopback_scrape()
    } else {
        let addr = parse_addr(args);
        ScenarioClient::connect(addr.as_str())
            .and_then(|mut c| c.stats())
            .map_err(|e| format!("scrape {addr}: {e}"))
    };
    let (gauges, snapshot) = match scraped {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("pscp-serve stats: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.iter().any(|a| a == "--prom") {
        print!("{}", render_prometheus(&gauges, &snapshot));
    } else if args.iter().any(|a| a == "--json") {
        println!("{}", snapshot.to_json_with(&gauges.rows()));
    } else {
        print!("{}", render_table(&gauges, &snapshot));
    }
    ExitCode::SUCCESS
}

/// Prometheus text exposition, dependency-free. Counters become
/// `pscp_<name>_total`, per-worker slots get a `worker` label, TEP
/// instruction counts a `kind` label, and histograms the standard
/// cumulative `le` buckets plus `_sum`/`_count`. Serve gauges are
/// `pscp_serve_<name>` gauge families.
fn render_prometheus(gauges: &ServeGauges, s: &MetricsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, v) in gauges.rows() {
        let _ = writeln!(out, "# TYPE pscp_serve_{name} gauge\npscp_serve_{name} {v}");
    }
    for (name, v) in &s.counters {
        let _ = writeln!(out, "# TYPE pscp_{name}_total counter\npscp_{name}_total {v}");
    }
    for (name, slots) in &s.per_worker {
        let _ = writeln!(out, "# TYPE pscp_{name}_total counter");
        for (w, v) in slots.iter().enumerate() {
            let _ = writeln!(out, "pscp_{name}_total{{worker=\"{w}\"}} {v}");
        }
    }
    if !s.tep_instr.is_empty() {
        let _ = writeln!(out, "# TYPE pscp_tep_instr_total counter");
        for (kind, v) in &s.tep_instr {
            let _ = writeln!(out, "pscp_tep_instr_total{{kind=\"{kind}\"}} {v}");
        }
    }
    for h in &s.histograms {
        let name = &h.name;
        let _ = writeln!(out, "# TYPE pscp_{name} histogram");
        let mut cum = 0u64;
        for &(_lo, hi, n) in &h.buckets {
            cum += n;
            let _ = writeln!(out, "pscp_{name}_bucket{{le=\"{hi}\"}} {cum}");
        }
        let _ = writeln!(out, "pscp_{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "pscp_{name}_sum {}", h.sum);
        let _ = writeln!(out, "pscp_{name}_count {}", h.count);
    }
    out
}

/// Human-readable table for a bare `pscp-serve stats`.
fn render_table(gauges: &ServeGauges, s: &MetricsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "serve gauges");
    for (name, v) in gauges.rows() {
        let _ = writeln!(out, "  {name:<22} {v}");
    }
    if !s.counters.is_empty() {
        let _ = writeln!(out, "counters");
        for (name, v) in &s.counters {
            let _ = writeln!(out, "  {name:<22} {v}");
        }
    }
    if !s.per_worker.is_empty() {
        let _ = writeln!(out, "per-worker");
        for (name, slots) in &s.per_worker {
            let total: u64 = slots.iter().sum();
            let cells: Vec<String> = slots.iter().map(u64::to_string).collect();
            let _ = writeln!(out, "  {name:<22} {total}  [{}]", cells.join(" "));
        }
    }
    if !s.tep_instr.is_empty() {
        let _ = writeln!(out, "tep instruction mix");
        for (kind, v) in &s.tep_instr {
            let _ = writeln!(out, "  {kind:<22} {v}");
        }
    }
    if !s.histograms.is_empty() {
        let _ = writeln!(out, "histograms (count / p50 / p99)");
        for h in &s.histograms {
            let _ = writeln!(
                out,
                "  {:<22} {:>8}  {:>10}  {:>10}",
                h.name,
                h.count,
                fmt_ns(h.quantile(0.5)),
                fmt_ns(h.quantile(0.99)),
            );
        }
    }
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// `pscp-serve top`: poll Stats frames and render per-interval rates.
/// `--loopback` runs a bounded demo against a throwaway server with a
/// background traffic driver, so the deltas have something to show.
fn top_cmd(args: &[String]) -> ExitCode {
    let interval = Duration::from_millis(parse_flag(args, "--interval", 1000).max(10) as u64);
    let loopback = args.iter().any(|a| a == "--loopback");
    // 0 = run until killed; the loopback demo defaults to a short run.
    let count = parse_flag(args, "--count", if loopback { 5 } else { 0 });
    let plain = args.iter().any(|a| a == "--plain");

    let mut server = None;
    let mut driver = None;
    let connected = if loopback {
        pscp_obs::set_flags(pscp_obs::flags() | pscp_obs::METRICS);
        let system = Arc::new(pscp_bench::example_system(&PscpArch::dual_md16(true)));
        match serve::spawn(Arc::clone(&system), "127.0.0.1:0", ServeOptions::from_env()) {
            Ok(s) => {
                let addr = s.addr();
                let fingerprint = serve::system_fingerprint(&system);
                let stop = Arc::new(AtomicBool::new(false));
                let stop_flag = Arc::clone(&stop);
                let traffic = std::thread::spawn(move || {
                    let limits = BatchOptions { deadline: u64::MAX, max_steps: 16 };
                    let Ok(mut c) =
                        ScenarioClient::connect_with(addr, serve::DEFAULT_WINDOW, fingerprint)
                    else {
                        return;
                    };
                    let mut round = 0usize;
                    while !stop_flag.load(Ordering::Relaxed) {
                        let scripts: Vec<_> = (0..8).map(|i| script_for(round, i)).collect();
                        if c.run_batch(&scripts, limits).is_err() {
                            break;
                        }
                        round += 1;
                    }
                });
                driver = Some((stop, traffic));
                let client = ScenarioClient::connect(addr);
                server = Some(s);
                client
            }
            Err(e) => {
                eprintln!("pscp-serve top: loopback server: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        ScenarioClient::connect(parse_addr(args).as_str())
    };

    let code = match connected {
        Ok(mut client) => run_top(&mut client, interval, count, plain),
        Err(e) => {
            eprintln!("pscp-serve top: connect: {e}");
            ExitCode::FAILURE
        }
    };
    if let Some((stop, traffic)) = driver {
        stop.store(true, Ordering::Relaxed);
        let _ = traffic.join();
    }
    if let Some(s) = server {
        let _ = s.stop();
    }
    code
}

/// Values of every occurrence of a repeated `--flag VALUE` pair.
fn parse_multi(args: &[String], name: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| a.as_str() == name)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

/// `pscp-serve explore`: wire-driven exhaustive state-space
/// exploration. `--loopback` also explores in-process and asserts the
/// wire report byte-identical, then replays every emitted witness —
/// the self-contained differential smoke tier-1 runs.
fn explore_cmd(args: &[String]) -> ExitCode {
    use pscp_core::explore::{self, ExploreOptions, Predicate};
    use pscp_core::serve::wire::{encode_explore_report, ExploreRequest};

    let defaults = ExploreOptions::from_env();
    let mut req = ExploreRequest::from_options(&defaults);
    req.max_states = parse_flag(args, "--max-states", req.max_states as usize) as u64;
    req.max_depth = parse_flag(args, "--max-depth", req.max_depth as usize) as u32;
    req.max_witnesses = parse_flag(args, "--witnesses", req.max_witnesses as usize) as u32;
    for name in parse_multi(args, "--never-active") {
        req.predicates.push(Predicate::StateNeverActive(name));
    }
    for name in parse_multi(args, "--never-raised") {
        req.predicates.push(Predicate::EventNeverRaised(name));
    }

    let report = if args.iter().any(|a| a == "--loopback") {
        let system = Arc::new(pscp_bench::example_system(&PscpArch::dual_md16(true)));
        let opts = ServeOptions::from_env();
        let (threads, gang) = (opts.threads.max(1), opts.gang);
        let server = match serve::spawn(Arc::clone(&system), "127.0.0.1:0", opts) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("pscp-serve explore: loopback server: {e}");
                return ExitCode::FAILURE;
            }
        };
        let wired = ScenarioClient::connect(server.addr()).and_then(|mut c| c.explore(&req));
        let _ = server.stop();
        let wired = match wired {
            Ok(r) => r,
            Err(e) => {
                eprintln!("pscp-serve explore: wire exploration failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        // The differential: the same request explored in-process, with
        // the server's worker configuration, must produce the same
        // canonical bytes.
        let local = explore::explore(&system, &req.to_options(threads, gang));
        if encode_explore_report(&wired) != encode_explore_report(&local) {
            eprintln!("pscp-serve explore: DIFFERENTIAL FAILURE (wire != in-process)");
            return ExitCode::FAILURE;
        }
        println!("pscp-serve explore: differential OK (wire report byte-identical)");
        // Witness-replay contract: every emitted trace lands exactly on
        // its claimed state (faults replay to the fault itself).
        let witnesses = wired
            .deadlocks
            .iter()
            .chain(wired.violations.iter().map(|v| &v.witness))
            .map(|w| (w, true))
            .chain(wired.faults.iter().map(|(_, w)| (w, false)));
        for (w, expect_state) in witnesses {
            match explore::replay(&system, &w.trace) {
                Ok(key) if !expect_state || key == w.state_key => {}
                Ok(_) => {
                    eprintln!("pscp-serve explore: WITNESS REPLAY MISMATCH");
                    return ExitCode::FAILURE;
                }
                Err(_) if !expect_state => {}
                Err(e) => {
                    eprintln!("pscp-serve explore: witness replay faulted: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        println!("pscp-serve explore: witness replay OK");
        wired
    } else {
        let addr = parse_addr(args);
        match ScenarioClient::connect(addr.as_str()).and_then(|mut c| c.explore(&req)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("pscp-serve explore: {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let dedup_rate = if report.edges > 0 {
        report.dedup_hits as f64 / report.edges as f64
    } else {
        0.0
    };
    println!(
        "explore: states={} edges={} depth={} dedup_rate={dedup_rate:.3} truncated={}",
        report.states, report.edges, report.depth, report.truncated
    );
    println!(
        "  deadlocks={} unreachable_states={} unreachable_transitions={} violations={} faults={}",
        report.deadlocks.len(),
        report.unreachable_states.len(),
        report.unreachable_transitions.len(),
        report.violations.len(),
        report.faults.len()
    );
    for name in &report.unreachable_states {
        println!("  unreachable state: {name}");
    }
    for v in &report.violations {
        let what = match &v.predicate {
            pscp_core::explore::Predicate::EventNeverRaised(n) => format!("event {n} raised"),
            pscp_core::explore::Predicate::StateNeverActive(n) => format!("state {n} entered"),
        };
        println!("  violation: {what} after {} cycle(s)", v.witness.trace.len());
    }
    for (msg, w) in &report.faults {
        println!("  fault after {} cycle(s): {msg}", w.trace.len());
    }
    ExitCode::SUCCESS
}

/// The polling loop behind `pscp-serve top`. Every line is computed
/// from the *delta* of two server-side snapshots, so rates and
/// percentiles need no clock synchronisation with the server — both
/// ends of every histogram live on its monotonic clock.
fn run_top(
    client: &mut ScenarioClient,
    interval: Duration,
    count: usize,
    plain: bool,
) -> ExitCode {
    let pct = |h: Option<&pscp_core::serve::wire::HistogramSnapshot>, q: f64| {
        h.map_or(0, |h| h.quantile(q))
    };
    let mut prev: Option<(Instant, MetricsSnapshot)> = None;
    let mut ticks = 0usize;
    loop {
        let (gauges, snap) = match client.stats() {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("pscp-serve top: scrape failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let now = Instant::now();
        if !plain {
            print!("\x1b[2J\x1b[H"); // clear screen, cursor home
        }
        println!(
            "pscp-serve top — uptime {:.1}s  systems {}  conns {}  queue {}  workers {}  gang {}",
            gauges.uptime_ns as f64 / 1e9,
            gauges.registered_systems,
            gauges.live_connections,
            gauges.queue_depth,
            gauges.workers,
            gauges.gang,
        );
        match &prev {
            None => println!("  collecting baseline delta…"),
            Some((t0, earlier)) => {
                let secs = now.saturating_duration_since(*t0).as_secs_f64().max(1e-9);
                let d = snap.delta(earlier);
                let shard = d.per_worker_values("pool_scenarios").to_vec();
                let ran: u64 = shard.iter().sum();
                let frames_in: u64 = d.per_worker_values("serve_frames_in").iter().sum();
                let frames_out: u64 = d.per_worker_values("serve_frames_out").iter().sum();
                println!(
                    "  {:>9.1} scenarios/s   frames +{frames_in}/+{frames_out}   \
                     credit stalls +{}",
                    ran as f64 / secs,
                    d.counter("serve_credit_stalls"),
                );
                let q = d.histogram("serve_queue_ns");
                let sim = d.histogram("serve_sim_ns");
                println!(
                    "  queue  p50 {:>9}  p99 {:>9}   sim  p50 {:>9}  p99 {:>9}",
                    fmt_ns(pct(q, 0.5)),
                    fmt_ns(pct(q, 0.99)),
                    fmt_ns(pct(sim, 0.5)),
                    fmt_ns(pct(sim, 0.99)),
                );
                for (w, n) in shard.iter().enumerate().filter(|&(_, &n)| n > 0) {
                    println!("  shard {w:>2}  {:>9.1}/s", *n as f64 / secs);
                }
            }
        }
        prev = Some((now, snap));
        ticks += 1;
        if count != 0 && ticks >= count {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(interval);
    }
}
