//! Toolchain benches: parsing, action-language compilation, SLA
//! synthesis, TEP code generation, the end-to-end system compile, and
//! the iterative optimisation loop.

use criterion::{criterion_group, criterion_main, Criterion};
use pscp_core::arch::PscpArch;
use pscp_core::compile::{chart_env, compile_system_from_ir};
use pscp_core::optimize::{optimize, OptimizeOptions};
use pscp_motors::{pickup_head_actions, pickup_head_chart};
use pscp_sla::synth::synthesize;
use pscp_statechart::encoding::{CrLayout, EncodingStyle};
use pscp_statechart::{parse::parse_chart, pretty};
use pscp_tep::codegen::{compile_program, CodegenOptions};
use std::hint::black_box;

fn bench_frontends(c: &mut Criterion) {
    let chart = pickup_head_chart();
    let text = pretty::to_text(&chart);
    c.bench_function("parse_chart/pickup_head", |b| {
        b.iter(|| parse_chart(black_box(&text)).unwrap())
    });

    let env = chart_env(&chart);
    let actions = pickup_head_actions();
    c.bench_function("action_lang_compile/pickup_head", |b| {
        b.iter(|| pscp_action_lang::compile_with_env(black_box(&actions), &env).unwrap())
    });
}

fn bench_synthesis(c: &mut Criterion) {
    let chart = pickup_head_chart();
    c.bench_function("sla_synthesize/exclusivity", |b| {
        b.iter(|| {
            let layout = CrLayout::new(&chart, EncodingStyle::Exclusivity);
            synthesize(black_box(&chart), &layout)
        })
    });
    c.bench_function("sla_synthesize/onehot", |b| {
        b.iter(|| {
            let layout = CrLayout::new(&chart, EncodingStyle::OneHot);
            synthesize(black_box(&chart), &layout)
        })
    });

    let env = chart_env(&chart);
    let ir = pscp_action_lang::compile_with_env(&pickup_head_actions(), &env).unwrap();
    for arch in [PscpArch::minimal(), PscpArch::md16_optimized()] {
        c.bench_function(format!("tep_codegen/{}", arch.tep.calc.width), |b| {
            b.iter(|| compile_program(black_box(&ir), &arch.tep, &CodegenOptions::default()))
        });
    }
}

fn bench_end_to_end(c: &mut Criterion) {
    let chart = pickup_head_chart();
    let env = chart_env(&chart);
    let ir = pscp_action_lang::compile_with_env(&pickup_head_actions(), &env).unwrap();
    c.bench_function("compile_system/dual_md16_opt", |b| {
        b.iter(|| {
            compile_system_from_ir(
                black_box(&chart),
                &ir,
                &PscpArch::dual_md16(true),
                &CodegenOptions::default(),
            )
            .unwrap()
        })
    });

    let mut group = c.benchmark_group("optimize_loop");
    group.sample_size(10);
    group.bench_function("pickup_head_from_minimal", |b| {
        b.iter(|| {
            optimize(
                black_box(&chart),
                &ir,
                &PscpArch::minimal(),
                &OptimizeOptions::default(),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_frontends, bench_synthesis, bench_end_to_end);
criterion_main!(benches);
