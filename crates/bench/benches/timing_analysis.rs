//! Timing-validation benches: the heuristic event-cycle DFS on the
//! example and on synthetic charts of growing size (the scalability
//! claim behind "a perfect algorithm would require reachability
//! analysis" — ours stays polynomial on well-structured charts), plus
//! the WCET analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pscp_bench::{example_system, example_timing};
use pscp_core::arch::PscpArch;
use pscp_core::compile::compile_system;
use pscp_core::timing::{validate_timing, wcet_report, TimingOptions};
use pscp_statechart::{Chart, ChartBuilder, StateKind};
use pscp_tep::codegen::CodegenOptions;
use std::hint::black_box;

/// A synthetic chart: `regions` parallel OR-regions of `chain` states
/// each, every state consuming a constrained event.
fn synthetic(regions: usize, chain: usize) -> Chart {
    let mut b = ChartBuilder::new("synthetic");
    b.event("EV", Some(10_000));
    let names: Vec<String> = (0..regions).map(|r| format!("R{r}")).collect();
    b.state("Top", StateKind::And).contains(names.iter().map(String::as_str));
    for r in 0..regions {
        let children: Vec<String> = (0..chain).map(|i| format!("S{r}_{i}")).collect();
        b.state(format!("R{r}"), StateKind::Or)
            .contains(children.iter().map(String::as_str))
            .default_child(children[0].clone());
        for (i, child) in children.iter().enumerate() {
            let next = format!("S{r}_{}", (i + 1) % chain);
            b.state(child.clone(), StateKind::Basic)
                .transition_costed(next, "EV", 50 + (i as u64 * 7) % 90);
        }
    }
    b.build().unwrap()
}

fn bench_validation_example(c: &mut Criterion) {
    for arch in [PscpArch::md16_unoptimized(), PscpArch::dual_md16(true)] {
        let sys = example_system(&arch);
        c.bench_function(format!("validate_timing/{}", arch.label), |b| {
            b.iter(|| example_timing(black_box(&sys)))
        });
    }
}

fn bench_validation_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("validate_timing_synthetic");
    for (regions, chain) in [(2usize, 4usize), (4, 4), (4, 8), (8, 8)] {
        let chart = synthetic(regions, chain);
        let sys = compile_system(
            &chart,
            "",
            &PscpArch::md16_unoptimized(),
            &CodegenOptions::default(),
        )
        .unwrap();
        group.bench_function(
            BenchmarkId::from_parameter(format!("{regions}x{chain}")),
            |b| b.iter(|| validate_timing(black_box(&sys), &TimingOptions::default())),
        );
    }
    group.finish();
}

fn bench_wcet(c: &mut Criterion) {
    let sys = example_system(&PscpArch::md16_optimized());
    c.bench_function("wcet_report/pickup_head", |b| {
        b.iter(|| wcet_report(black_box(&sys), &TimingOptions::default()))
    });
}

criterion_group!(benches, bench_validation_example, bench_validation_scaling, bench_wcet);
criterion_main!(benches);
