//! Simulator benches: SLA evaluation throughput, the cycle-accurate TEP
//! machine, and full-system configuration-cycle rates with 1–4 TEPs
//! (the scheduler-scaling ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pscp_bench::example_system;
use pscp_core::arch::PscpArch;
use pscp_core::machine::{PscpMachine, ScriptedEnvironment};
use pscp_motors::head::{Move, SmdHead};
use pscp_sla::sim::SlaSim;
use pscp_sla::synth::synthesize;
use pscp_statechart::encoding::{CrLayout, EncodingStyle};
use pscp_statechart::semantics::Executor;
use pscp_tep::machine::TepMachine;
use std::hint::black_box;

fn bench_sla_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("sla_eval");
    for style in [EncodingStyle::Exclusivity, EncodingStyle::OneHot] {
        let sys = example_system(&PscpArch::md16_optimized());
        let layout = CrLayout::new(&sys.chart, style);
        let sla = synthesize(&sys.chart, &layout);
        let sim = SlaSim::new(&sys.chart, &layout, &sla);
        let exec = Executor::new(&sys.chart);
        let dv = sys.chart.event_by_name("DATA_VALID").unwrap();
        let bits =
            sim.cr_bits(exec.configuration(), &[dv].into_iter().collect(), &|_| false);
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::from_parameter(format!("{style:?}")), |b| {
            b.iter(|| {
                let fired = sim.fired(black_box(&bits));
                let next = sim.next_cr(black_box(&bits));
                (fired, next)
            })
        });
    }
    group.finish();
}

fn bench_tep_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("tep_machine_delta_t");
    for arch in [PscpArch::minimal(), PscpArch::md16_unoptimized(), PscpArch::md16_optimized()]
    {
        let sys = example_system(&arch);
        group.bench_function(BenchmarkId::from_parameter(&arch.label), |b| {
            b.iter(|| {
                let mut m = TepMachine::new(&sys.program);
                let mut host = pscp_action_lang::interp::RecordingHost::new();
                m.call("DeltaTX", &[], &mut host).unwrap();
                m.cycles()
            })
        });
    }
    group.finish();
}

fn bench_scheduler_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pscp_config_cycles");
    group.sample_size(20);
    for n_teps in [1u8, 2, 3, 4] {
        let mut arch = PscpArch::dual_md16(true);
        arch.n_teps = n_teps;
        arch.label = format!("{n_teps} TEPs");
        let sys = example_system(&arch);
        group.bench_function(BenchmarkId::from_parameter(n_teps), |b| {
            b.iter(|| {
                let mut m = PscpMachine::new(&sys);
                let mut env = ScriptedEnvironment::new(vec![
                    vec!["POWER"],
                    vec!["DATA_VALID"],
                    vec!["DATA_VALID"],
                    vec!["X_PULSE", "Y_PULSE"],
                    vec![],
                ]);
                for _ in 0..5 {
                    m.step(&mut env).unwrap();
                }
                m.now()
            })
        });
    }
    group.finish();
}

fn bench_cosim(c: &mut Criterion) {
    let mut group = c.benchmark_group("cosim_one_move");
    group.sample_size(10);
    let sys = example_system(&PscpArch::dual_md16(true));
    group.bench_function("dual_md16_opt", |b| {
        b.iter(|| {
            let mut m = PscpMachine::new(&sys);
            let mut head = SmdHead::with_moves(&[Move { x: 40, y: 25, phi: 10 }]);
            let idle1 = sys.chart.state_by_name("Idle1").unwrap();
            let mut steps = 0;
            while steps < 500_000 {
                m.step(&mut head).unwrap();
                steps += 1;
                if head.pending_bytes() == 0
                    && head.all_idle()
                    && m.executor().configuration().is_active(idle1)
                {
                    break;
                }
            }
            m.now()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sla_eval,
    bench_tep_machine,
    bench_scheduler_scaling,
    bench_cosim
);
criterion_main!(benches);
