//! Golden regression test for the configuration-cycle scheduler.
//!
//! Runs the pickup-head example on every Table 4 architecture with a
//! fixed event script and compares the full `CycleReport` stream —
//! fired transitions, per-transition cycles, TEP assignment, cycle
//! length, raised events, interrupt latency — byte-for-byte against
//! checked-in golden files captured before the compiled-evaluator /
//! scratch-state refactor. Any observable behaviour change in
//! `PscpMachine::step` shows up as a diff here.
//!
//! Regenerate with `UPDATE_GOLDEN=1 cargo test -p pscp-bench --test
//! golden_cycle_reports` (only when a behaviour change is intended).

use pscp_bench::{example_system, table4_architectures};
use pscp_core::machine::{PscpMachine, ScriptedEnvironment};
use std::fmt::Write as _;
use std::path::PathBuf;

/// The Table 3 stimulus mix: power-up, data telegrams, servo pulses,
/// and idle cycles, repeated so raised events and timers interleave
/// with fresh external events.
fn script() -> Vec<Vec<&'static str>> {
    let period: Vec<Vec<&'static str>> = vec![
        vec!["POWER"],
        vec!["DATA_VALID"],
        vec!["DATA_VALID"],
        vec!["X_PULSE", "Y_PULSE"],
        vec![],
        vec!["X_PULSE"],
        vec!["DATA_VALID", "Y_PULSE"],
        vec![],
        vec![],
        vec!["PHI_PULSE"],
    ];
    let mut out = Vec::new();
    for _ in 0..3 {
        out.extend(period.iter().cloned());
    }
    out
}

fn render(label: &str) -> String {
    let arch = table4_architectures()
        .into_iter()
        .find(|a| a.label == label)
        .expect("known architecture label");
    let sys = example_system(&arch);
    let mut m = PscpMachine::new(&sys);
    let script = script();
    let steps = script.len();
    let mut env = ScriptedEnvironment::new(script);
    let mut out = String::new();
    let _ = writeln!(out, "# {label}");
    for i in 0..steps {
        let r = m.step(&mut env).expect("cycle executes");
        let _ = writeln!(out, "{i:02} {r:?}");
    }
    let _ = writeln!(out, "now={} stats={:?}", m.now(), m.stats());
    out
}

fn golden_path(label: &str) -> PathBuf {
    let file: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .collect();
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{file}.txt"))
}

fn check(label: &str) {
    let got = render(label);
    let path = golden_path(label);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with UPDATE_GOLDEN=1", path.display()));
    assert!(
        got == want,
        "cycle reports for `{label}` diverged from {}.\n--- golden ---\n{want}\n--- current ---\n{got}",
        path.display()
    );
}

#[test]
fn golden_minimal_tep() {
    check("1 minimal TEP");
}

#[test]
fn golden_md16_unoptimized() {
    check("16bit M/D TEP, unoptimized code");
}

#[test]
fn golden_md16_optimized() {
    check("16bit M/D TEP, optimized code");
}

#[test]
fn golden_dual_md16_unoptimized() {
    check("2 16bit M/D TEP, unoptimized code");
}

#[test]
fn golden_dual_md16_optimized() {
    check("2 16bit M/D TEP, optimized code");
}
