//! Parallelism must never change results.
//!
//! The PR-2 worker pools (`optimize` candidate evaluation, `SimPool`
//! batch co-simulation) promise byte-identical output for every worker
//! count. These tests pin that promise on the paper's pickup-head
//! system and on a small toggle system, comparing the parallel runs
//! against the one-worker path — which spawns no threads at all and is
//! therefore literally the sequential loop.

use pscp_bench::pickup_head_inputs;
use pscp_core::arch::PscpArch;
use pscp_core::machine::{PscpMachine, ScriptedEnvironment};
use pscp_core::optimize::{optimize, OptimizationResult, OptimizeOptions};
use pscp_core::pool::{BatchOptions, SimPool};
use pscp_motors::head::{Move, SmdHead};
use pscp_statechart::{Chart, ChartBuilder, StateKind};

const WORKER_COUNTS: [usize; 3] = [2, 4, 8];

fn run_optimize(
    chart: &Chart,
    ir: &pscp_action_lang::ir::Program,
    threads: usize,
) -> OptimizationResult {
    let options = OptimizeOptions { threads: Some(threads), ..OptimizeOptions::default() };
    optimize(chart, ir, &PscpArch::minimal(), &options).expect("optimize succeeds")
}

/// A two-state toggle controller with a tight deadline: small enough to
/// explore quickly, demanding enough that the optimiser takes several
/// steps (so the histories being compared are non-trivial).
fn toggle_inputs() -> (Chart, pscp_action_lang::ir::Program) {
    let mut b = ChartBuilder::new("toggle");
    b.event("FLIP", Some(60));
    b.condition("ARMED", false);
    b.state("Top", StateKind::Or).contains(["Off", "On"]).default_child("Off");
    b.state("Off", StateKind::Basic).transition("On", "FLIP/Arm(1)");
    b.state("On", StateKind::Basic).transition("Off", "FLIP [ARMED]/Disarm()");
    let chart = b.build().unwrap();
    let actions = r#"
        int:16 flips;
        int:16 level;
        void Arm(int:16 step) {
            flips = flips + step;
            level = level * 3 + flips / 2;
            ARMED = flips >= 1;
        }
        void Disarm() {
            level = level - flips * 2;
            ARMED = level >= 100;
        }
    "#;
    let env = pscp_core::compile::chart_env(&chart);
    let ir = pscp_action_lang::compile_with_env(actions, &env).expect("toggle actions compile");
    (chart, ir)
}

#[test]
fn parallel_optimize_matches_sequential_on_pickup_head() {
    let (chart, ir) = pickup_head_inputs();
    let sequential = run_optimize(&chart, &ir, 1);
    assert!(sequential.history.len() > 1, "exploration must take steps");
    for threads in WORKER_COUNTS {
        let parallel = run_optimize(&chart, &ir, threads);
        assert_eq!(parallel.history, sequential.history, "threads={threads}");
        assert_eq!(parallel.arch, sequential.arch, "threads={threads}");
        assert_eq!(parallel.satisfied, sequential.satisfied, "threads={threads}");
        assert_eq!(
            parallel.budget_exhausted, sequential.budget_exhausted,
            "threads={threads}"
        );
        assert_eq!(
            parallel.timing.violations, sequential.timing.violations,
            "threads={threads}"
        );
    }
}

#[test]
fn parallel_optimize_matches_sequential_on_toggle() {
    let (chart, ir) = toggle_inputs();
    let sequential = run_optimize(&chart, &ir, 1);
    for threads in WORKER_COUNTS {
        let parallel = run_optimize(&chart, &ir, threads);
        assert_eq!(parallel.history, sequential.history, "threads={threads}");
        assert_eq!(parallel.arch, sequential.arch, "threads={threads}");
        assert_eq!(parallel.satisfied, sequential.satisfied, "threads={threads}");
    }
}

fn head_scenarios(n: u16) -> Vec<SmdHead> {
    (0..n)
        .map(|i| SmdHead::with_moves(&[Move { x: 6 + i, y: 4 + i, phi: 2 + i % 5 }]))
        .collect()
}

#[test]
fn sim_pool_is_byte_identical_across_worker_counts() {
    let sys = pscp_bench::example_system(&PscpArch::dual_md16(true));
    let idle1 = sys.chart.state_by_name("Idle1").unwrap();
    let limits = BatchOptions { deadline: u64::MAX, max_steps: 400_000 };
    let sweep = |threads: usize| {
        SimPool::with_threads(threads).run_batch_until(&sys, head_scenarios(6), &limits, |m, head, _| {
            head.pending_bytes() == 0
                && head.all_idle()
                && m.executor().configuration().is_active(idle1)
        })
    };
    // Reference: a fresh machine per scenario, no pool involved at all.
    let reference: Vec<_> = head_scenarios(6)
        .into_iter()
        .map(|mut head| {
            let mut m = PscpMachine::new(&sys);
            let mut reports = Vec::new();
            loop {
                let report = m.step(&mut head).unwrap();
                let stop = head.pending_bytes() == 0
                    && head.all_idle()
                    && m.executor().configuration().is_active(idle1);
                reports.push(report);
                if stop {
                    break;
                }
            }
            (reports, m.stats().clone(), m.now())
        })
        .collect();
    for threads in [1, 2, 4, 8] {
        let got = sweep(threads);
        assert_eq!(got.len(), reference.len(), "threads={threads}");
        for (out, (reports, stats, clock)) in got.iter().zip(&reference) {
            assert_eq!(&out.reports, reports, "threads={threads}");
            assert_eq!(&out.stats, stats, "threads={threads}");
            assert_eq!(&out.clock_cycles, clock, "threads={threads}");
            assert!(out.error.is_none(), "threads={threads}");
        }
    }
}

#[test]
fn sim_pool_scripted_batch_matches_across_worker_counts() {
    let sys = pscp_bench::example_system(&PscpArch::md16_optimized());
    let limits = BatchOptions { deadline: u64::MAX, max_steps: 40 };
    let scenarios = || -> Vec<ScriptedEnvironment> {
        (0..9)
            .map(|i| {
                let script: Vec<Vec<&str>> = (0..40)
                    .map(|k| {
                        if k == 0 {
                            vec!["POWER"]
                        } else if k % (2 + i % 4) == 0 {
                            vec!["DATA_VALID"]
                        } else {
                            vec![]
                        }
                    })
                    .collect();
                ScriptedEnvironment::new(script)
            })
            .collect()
    };
    let baseline = SimPool::with_threads(1).run_batch(&sys, scenarios(), &limits);
    for threads in WORKER_COUNTS {
        let got = SimPool::with_threads(threads).run_batch(&sys, scenarios(), &limits);
        assert_eq!(got.len(), baseline.len(), "threads={threads}");
        for (a, b) in got.iter().zip(&baseline) {
            assert_eq!(a.reports, b.reports, "threads={threads}");
            assert_eq!(a.stats, b.stats, "threads={threads}");
            assert_eq!(a.clock_cycles, b.clock_cycles, "threads={threads}");
        }
    }
}
