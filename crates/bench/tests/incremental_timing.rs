//! Fixed-case differential pins for incremental timing revalidation
//! and the persistent memo store.
//!
//! * `optimize()` with incremental dirty-set revalidation must produce
//!   byte-identical results to the full-DFS-per-candidate path, on the
//!   paper's pickup-head system and on the small toggle system.
//! * The graph-based `validate_timing` must equal the reference walk
//!   on every Table 4 architecture.
//! * A warm memo file must reproduce the cold run exactly; a deleted
//!   or corrupted memo file degrades to a cold start, never an error.

use pscp_bench::{example_system, pickup_head_inputs, table4_architectures};
use pscp_core::arch::PscpArch;
use pscp_core::optimize::{optimize, MemoPersistence, OptimizeOptions};
use pscp_core::timing::{validate_timing, validate_timing_full, TimingOptions};
use pscp_statechart::{Chart, ChartBuilder, StateKind};
use std::path::PathBuf;

fn toggle_inputs() -> (Chart, pscp_action_lang::ir::Program) {
    let mut b = ChartBuilder::new("toggle");
    b.event("FLIP", Some(60));
    b.condition("ARMED", false);
    b.state("Top", StateKind::Or).contains(["Off", "On"]).default_child("Off");
    b.state("Off", StateKind::Basic).transition("On", "FLIP/Arm(1)");
    b.state("On", StateKind::Basic).transition("Off", "FLIP [ARMED]/Disarm()");
    let chart = b.build().unwrap();
    let actions = r#"
        int:16 flips;
        int:16 level;
        void Arm(int:16 step) {
            flips = flips + step;
            level = level * 3 + flips / 2;
            ARMED = flips >= 1;
        }
        void Disarm() {
            level = level - flips * 2;
            ARMED = level >= 100;
        }
    "#;
    let env = pscp_core::compile::chart_env(&chart);
    let ir = pscp_action_lang::compile_with_env(actions, &env).expect("toggle actions compile");
    (chart, ir)
}

fn run(
    chart: &Chart,
    ir: &pscp_action_lang::ir::Program,
    incremental: bool,
    memo: MemoPersistence,
) -> pscp_core::optimize::OptimizationResult {
    let options = OptimizeOptions {
        threads: Some(1),
        incremental,
        // The oracle re-runs the full DFS inside the incremental path;
        // keep it off here so this test compares the *production*
        // incremental path against the full path.
        verify_incremental: false,
        memo,
        ..OptimizeOptions::default()
    };
    optimize(chart, ir, &PscpArch::minimal(), &options).unwrap()
}

fn assert_same_result(
    a: &pscp_core::optimize::OptimizationResult,
    b: &pscp_core::optimize::OptimizationResult,
    what: &str,
) {
    assert_eq!(a.history, b.history, "{what}: history diverged");
    assert_eq!(a.arch, b.arch, "{what}: architecture diverged");
    assert_eq!(a.satisfied, b.satisfied, "{what}: satisfaction diverged");
    assert_eq!(
        serde_json::to_string(&a.timing).unwrap(),
        serde_json::to_string(&b.timing).unwrap(),
        "{what}: timing report bytes diverged"
    );
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pscp-inc-test-{}-{name}", std::process::id()))
}

#[test]
fn incremental_optimize_matches_full_on_pickup_head() {
    let (chart, ir) = pickup_head_inputs();
    let full = run(&chart, &ir, false, MemoPersistence::Disabled);
    let incremental = run(&chart, &ir, true, MemoPersistence::Disabled);
    assert!(full.history.len() > 1, "exploration must take steps");
    assert_same_result(&incremental, &full, "pickup-head");
}

#[test]
fn incremental_optimize_matches_full_on_toggle() {
    let (chart, ir) = toggle_inputs();
    let full = run(&chart, &ir, false, MemoPersistence::Disabled);
    let incremental = run(&chart, &ir, true, MemoPersistence::Disabled);
    assert_same_result(&incremental, &full, "toggle");
}

#[test]
fn graph_validation_matches_reference_on_table4_architectures() {
    for arch in table4_architectures() {
        let sys = example_system(&arch);
        let options = TimingOptions::default();
        assert_eq!(
            serde_json::to_string(&validate_timing(&sys, &options)).unwrap(),
            serde_json::to_string(&validate_timing_full(&sys, &options)).unwrap(),
            "graph vs reference diverged on '{}'",
            arch.label
        );
    }
}

#[test]
fn warm_memo_reproduces_cold_run() {
    let path = scratch("warm.json");
    let _ = std::fs::remove_file(&path);
    let (chart, ir) = toggle_inputs();
    let cold = run(&chart, &ir, true, MemoPersistence::Path(path.clone()));
    assert!(path.exists(), "memo file must be written");
    let warm = run(&chart, &ir, true, MemoPersistence::Path(path.clone()));
    assert_same_result(&warm, &cold, "warm vs cold");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_memo_degrades_to_cold_run() {
    let path = scratch("corrupt.json");
    let (chart, ir) = toggle_inputs();
    let reference = run(&chart, &ir, true, MemoPersistence::Disabled);

    // Outright garbage.
    std::fs::write(&path, "garbage, definitely not json").unwrap();
    let r = run(&chart, &ir, true, MemoPersistence::Path(path.clone()));
    assert_same_result(&r, &reference, "garbage memo");

    // A stale format version.
    std::fs::write(&path, r#"{"version":999999,"entries":{}}"#).unwrap();
    let r = run(&chart, &ir, true, MemoPersistence::Path(path.clone()));
    assert_same_result(&r, &reference, "stale-version memo");

    // Deleted between runs.
    let _ = std::fs::remove_file(&path);
    let r = run(&chart, &ir, true, MemoPersistence::Path(path.clone()));
    assert_same_result(&r, &reference, "deleted memo");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn exhausted_budget_surfaces_worst_cycles() {
    let mut b = ChartBuilder::new("impossible");
    b.event("E", Some(3));
    b.state("Top", StateKind::Or).contains(["A", "B"]).default_child("A");
    b.state("A", StateKind::Basic).transition("B", "E/Crunch(7)");
    b.state("B", StateKind::Basic).transition("A", "E/Crunch(3)");
    let chart = b.build().unwrap();
    let actions = r#"
        int:16 acc;
        void Crunch(int:16 n) { acc = (acc * 3 + n) / (n + 1); }
    "#;
    let env = pscp_core::compile::chart_env(&chart);
    let ir = pscp_action_lang::compile_with_env(actions, &env).unwrap();
    let options = OptimizeOptions {
        threads: Some(1),
        max_steps: 2,
        memo: MemoPersistence::Disabled,
        ..OptimizeOptions::default()
    };
    let r = optimize(&chart, &ir, &PscpArch::minimal(), &options).unwrap();
    assert!(r.budget_exhausted);
    assert_eq!(
        r.exhausted_worst_cycles.len(),
        r.timing.violations.len(),
        "one surviving worst cycle per violated event"
    );
    for (cycle, v) in r.exhausted_worst_cycles.iter().zip(&r.timing.violations) {
        assert_eq!(cycle.event, v.event);
        assert_eq!(cycle.length, v.worst, "worst cycle must match the violation");
        assert!(!cycle.path.is_empty());
    }

    // A satisfiable run surfaces nothing.
    let mut loose = ChartBuilder::new("loose");
    loose.event("E", Some(1_000_000));
    loose.state("Top", StateKind::Or).contains(["A", "B"]).default_child("A");
    loose.state("A", StateKind::Basic).transition("B", "E/Crunch(7)");
    loose.state("B", StateKind::Basic).transition("A", "E/Crunch(3)");
    let loose_chart = loose.build().unwrap();
    let env2 = pscp_core::compile::chart_env(&loose_chart);
    let ir2 = pscp_action_lang::compile_with_env(actions, &env2).unwrap();
    let r2 = optimize(&loose_chart, &ir2, &PscpArch::minimal(), &options).unwrap();
    assert!(r2.satisfied);
    assert!(r2.exhausted_worst_cycles.is_empty());
}
