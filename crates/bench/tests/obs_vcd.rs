//! Golden test for the VCD waveform probe: a two-state toggle chart is
//! run with the probe attached and the dump is compared byte-for-byte
//! against a checked-in golden file. The dumper is deterministic by
//! construction (no `$date`/`$version` headers, change-only emission),
//! so any drift in signal declaration order, id codes, or timestamping
//! shows up here.
//!
//! Regenerate with `UPDATE_GOLDEN=1 cargo test -p pscp-bench --test
//! obs_vcd` (only when a format change is intended).

use pscp_core::arch::PscpArch;
use pscp_core::compile::compile_system;
use pscp_core::machine::{PscpMachine, ScriptedEnvironment};
use pscp_statechart::parse::parse_chart;
use pscp_tep::codegen::CodegenOptions;
use std::path::PathBuf;

const CHART: &str = r#"
    chart Toggle;
    event TICK period 2000;
    condition HIGH;

    orstate Top {
        contains Low, High;
        default Low;
    }
    basicstate Low {
        transition { target High; label "TICK/Up()"; }
    }
    basicstate High {
        transition { target Low; label "TICK [HIGH]/Down()"; }
    }
"#;

const ACTIONS: &str = r#"
    port OUT : 8 @ 0x20 out;
    int:16 phase;

    void Up() { phase = phase + 1; HIGH = 1; OUT = 1; }
    void Down() { phase = phase + 1; OUT = 0; }
"#;

fn render() -> String {
    let chart = parse_chart(CHART).expect("chart parses");
    let arch = PscpArch::minimal();
    let system = compile_system(&chart, ACTIONS, &arch, &CodegenOptions::default())
        .expect("system compiles");
    let mut machine = PscpMachine::new(&system);
    machine.attach_vcd();
    let mut env = ScriptedEnvironment::new(vec![
        vec!["TICK"],
        vec![],
        vec!["TICK"],
        vec!["TICK"],
        vec![],
        vec!["TICK"],
    ]);
    for _ in 0..6 {
        machine.step(&mut env).expect("cycle executes");
    }
    machine.detach_vcd().expect("probe was attached")
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/toggle.vcd")
}

#[test]
fn toggle_waveform_matches_golden() {
    let got = render();
    // Structural sanity independent of the golden bytes.
    assert!(got.starts_with("$timescale 1 ns $end\n"), "header: {got}");
    assert!(got.contains("$var wire 1"), "no 1-bit wires declared:\n{got}");
    assert!(got.contains("st_Low"), "state signal missing:\n{got}");
    assert!(got.contains("ev_TICK"), "event signal missing:\n{got}");
    assert!(got.contains("cond_HIGH"), "condition signal missing:\n{got}");
    assert!(got.contains("tep0_busy"), "TEP signal missing:\n{got}");
    assert!(got.contains("$dumpvars"), "no baseline dump:\n{got}");

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {} ({e}); run with UPDATE_GOLDEN=1", path.display())
    });
    assert!(
        got == want,
        "VCD dump diverged from {}.\n--- golden ---\n{want}\n--- current ---\n{got}",
        path.display()
    );
}
