//! With `PSCP_OBS=trace` a multi-worker batch must come back as a valid
//! Chrome `trace_event` document with one named lane per worker. Runs
//! the pickup-head example across a 4-worker [`SimPool`] and checks the
//! exported JSON with the crate's own parser.
//!
//! Single `#[test]`: the trace collector is process-global, and a
//! sibling test running concurrently would add lanes of its own.

use pscp_core::arch::PscpArch;
use pscp_core::machine::ScriptedEnvironment;
use pscp_core::pool::{BatchOptions, SimPool};
use pscp_obs::json;

#[test]
fn batch_trace_exports_worker_lanes() {
    pscp_obs::set_flags(pscp_obs::TRACE);
    pscp_obs::trace::clear();

    let system = pscp_bench::example_system(&PscpArch::md16_optimized());
    let scenarios: Vec<ScriptedEnvironment> = (0..8)
        .map(|i| {
            let mut script = vec![vec!["POWER"]];
            for _ in 0..=i {
                script.push(vec!["DATA_VALID"]);
                script.push(vec![]);
            }
            ScriptedEnvironment::new(script)
        })
        .collect();
    let outcomes = SimPool::with_threads(4).run_batch(
        &system,
        scenarios,
        &BatchOptions { deadline: u64::MAX, max_steps: 64 },
    );
    assert_eq!(outcomes.len(), 8);

    let trace = pscp_obs::trace::export_chrome_trace();
    pscp_obs::set_flags(pscp_obs::env_flags());

    let doc = json::parse(&trace).expect("trace JSON parses");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    let lanes: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
        .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(|n| n.as_str()))
        .collect();
    assert!(
        lanes.iter().filter(|l| l.starts_with("sim-worker")).count() >= 2,
        "expected >= 2 sim-worker lanes under 4 workers, got {lanes:?}"
    );
    let spans = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .count();
    assert!(spans >= 8, "expected >= 8 scenario spans, got {spans}");
    assert!(
        events.iter().any(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("X")
                && e.get("name").and_then(|n| n.as_str()) == Some("scenario")
        }),
        "no `scenario` span in trace"
    );

    pscp_obs::trace::clear();
}
