//! With `PSCP_OBS=trace` a multi-worker batch must come back as a valid
//! Chrome `trace_event` document with one named lane per worker. Runs
//! the pickup-head example across a 4-worker [`SimPool`] twice — once
//! on the default gang-packed path, once pinned to the scalar path —
//! and checks the exported JSON with the crate's own parser.
//!
//! Single `#[test]`: the trace collector is process-global, and a
//! sibling test running concurrently would add lanes of its own.

use pscp_core::arch::PscpArch;
use pscp_core::machine::ScriptedEnvironment;
use pscp_core::pool::{BatchOptions, SimPool};
use pscp_obs::json;

fn scenarios() -> Vec<ScriptedEnvironment> {
    (0..8)
        .map(|i| {
            let mut script = vec![vec!["POWER"]];
            for _ in 0..=i {
                script.push(vec!["DATA_VALID"]);
                script.push(vec![]);
            }
            ScriptedEnvironment::new(script)
        })
        .collect()
}

/// Runs one traced 4-worker batch and returns (worker lane names,
/// complete-span names) from the exported Chrome trace.
fn traced_batch(pool: &SimPool) -> (Vec<String>, Vec<String>) {
    pscp_obs::set_flags(pscp_obs::TRACE);
    pscp_obs::trace::clear();

    let system = pscp_bench::example_system(&PscpArch::md16_optimized());
    let outcomes = pool.run_batch(
        &system,
        scenarios(),
        &BatchOptions { deadline: u64::MAX, max_steps: 64 },
    );
    assert_eq!(outcomes.len(), 8);

    let trace = pscp_obs::trace::export_chrome_trace();
    pscp_obs::set_flags(pscp_obs::env_flags());
    pscp_obs::trace::clear();

    let doc = json::parse(&trace).expect("trace JSON parses");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    let lanes = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
        .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(|n| n.as_str()))
        .map(str::to_string)
        .collect();
    let spans = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .map(str::to_string)
        .collect();
    (lanes, spans)
}

#[test]
fn batch_trace_exports_worker_lanes() {
    // Default pool: the gang-packed path. Workers still claim named
    // lanes, and each chunk shows up as a `gang.run` span with its
    // per-cycle `gang.step` children.
    let (lanes, spans) = traced_batch(&SimPool::with_threads(4));
    assert!(
        lanes.iter().filter(|l| l.starts_with("sim-worker")).count() >= 2,
        "expected >= 2 sim-worker lanes under 4 gang workers, got {lanes:?}"
    );
    assert!(spans.len() >= 8, "expected >= 8 spans, got {}", spans.len());
    assert!(
        spans.iter().any(|s| s == "gang.run"),
        "no `gang.run` span in gang-path trace"
    );

    // Scalar path (gang width 1): one `scenario` span per scenario.
    let (lanes, spans) = traced_batch(&SimPool::with_threads(4).with_gang(1));
    assert!(
        lanes.iter().filter(|l| l.starts_with("sim-worker")).count() >= 2,
        "expected >= 2 sim-worker lanes under 4 scalar workers, got {lanes:?}"
    );
    assert!(spans.len() >= 8, "expected >= 8 spans, got {}", spans.len());
    assert!(
        spans.iter().any(|s| s == "scenario"),
        "no `scenario` span in scalar-path trace"
    );
}
