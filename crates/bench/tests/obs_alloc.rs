//! The observability layer must be free when it is off: with `PSCP_OBS`
//! unset (forced here via `set_flags(0)` so a polluted environment
//! cannot flip the result), the PR-1 allocation-free steady state still
//! holds with every obs hook compiled in. A counting global allocator
//! measures the exact heap traffic of `PscpMachine::step` idle cycles
//! and `CompiledNet::eval_into` and insists on zero.
//!
//! Single `#[test]` on purpose: the harness runs tests on extra threads
//! and any sibling test's allocations would race the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pscp_bench::example_system;
use pscp_core::arch::PscpArch;
use pscp_core::machine::{NullEnvironment, PscpMachine};
use pscp_sla::compiled::CompiledNet;
use pscp_sla::net::LogicNet;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn disabled_obs_keeps_hot_paths_allocation_free() {
    // Pin the flags before measuring: lazy env init allocates once
    // inside `std::env::var`, and the test must not depend on the
    // driver's environment.
    pscp_obs::set_flags(0);
    assert!(!pscp_obs::metrics_enabled());
    assert!(!pscp_obs::trace_enabled());

    // --- PscpMachine::step, idle cycles ---
    let arch = PscpArch::md16_optimized();
    let system = example_system(&arch);
    let mut machine = PscpMachine::new(&system);
    let mut env = NullEnvironment;
    // Warm-up: first cycles may lazily size internal scratch.
    for _ in 0..8 {
        machine.step(&mut env).expect("idle cycle");
    }
    let before = allocs();
    for _ in 0..200 {
        machine.step(&mut env).expect("idle cycle");
    }
    let step_allocs = allocs() - before;
    assert_eq!(
        step_allocs, 0,
        "PscpMachine::step allocated {step_allocs} times over 200 idle cycles \
         with PSCP_OBS off"
    );

    // --- CompiledNet::eval_into with reused scratch ---
    let mut net = LogicNet::new();
    let a = net.input("a");
    let b = net.input("b");
    let c = net.input("c");
    let ab = net.and(vec![a, b]);
    let nc = net.not(c);
    let out = net.or(vec![ab, nc]);
    net.set_output("y", out);
    let compiled = CompiledNet::compile(&net);
    let mut scratch = Vec::new();
    // Warm-up sizes the scratch buffer once.
    compiled.eval_into(&[true, false, true], &mut scratch);
    let before = allocs();
    for i in 0..1000u32 {
        let bits = [i & 1 == 0, i & 2 == 0, i & 4 == 0];
        compiled.eval_into(&bits, &mut scratch);
    }
    let eval_allocs = allocs() - before;
    assert_eq!(
        eval_allocs, 0,
        "CompiledNet::eval_into allocated {eval_allocs} times over 1000 evals \
         with PSCP_OBS off"
    );
}
