//! Ablation study over the design choices DESIGN.md calls out: starting
//! from the paper's final architecture, each ingredient is removed (or,
//! for the §6 extensions, added) in isolation, and the area + critical
//! paths re-measured.

use pscp_bench::{crit_path_data_valid, crit_path_xy, example_system, example_timing};
use pscp_core::arch::PscpArch;
use pscp_core::area::pscp_area;
use pscp_core::report::Table;
use pscp_statechart::encoding::EncodingStyle;

fn main() {
    let mut t = Table::new(["Variant", "Area", "Crit.Path X,Y", "Crit.Path DATA_VALID"]);

    let mut add = |label: &str, arch: &PscpArch| {
        let sys = example_system(arch);
        let rep = example_timing(&sys);
        t.row([
            label.to_string(),
            pscp_area(&sys).total().0.to_string(),
            crit_path_xy(&rep).unwrap().to_string(),
            crit_path_data_valid(&rep).unwrap().to_string(),
        ]);
    };

    let full = PscpArch::dual_md16(true);
    add("full (2x M/D, optimized)", &full);

    let mut v = full.clone();
    v.tep.custom_instructions = false;
    add("- custom instructions", &v);

    let mut v = full.clone();
    v.tep.register_file = 0;
    add("- register file", &v);

    let mut v = full.clone();
    v.tep.optimize_code = false;
    v.tep.custom_instructions = false; // extraction presumes peepholed code
    add("- code optimization", &v);

    let mut v = full.clone();
    v.n_teps = 1;
    add("- second TEP", &v);

    let mut v = full.clone();
    v.encoding = EncodingStyle::OneHot;
    add("one-hot state encoding", &v);

    let mut v = full.clone();
    v.tep.calc.comparator = false;
    add("- comparator", &v);

    let mut v = full.clone();
    v.tep.pipelined = true;
    add("+ pipelined fetch (ext.)", &v);

    let mut v = full.clone();
    v.interrupt_events.insert("X_PULSE".into());
    v.interrupt_events.insert("Y_PULSE".into());
    add("+ X/Y as interrupts (ext.)", &v);

    let mut v = full.clone();
    v.n_teps = 1;
    v.interrupt_events.insert("X_PULSE".into());
    v.interrupt_events.insert("Y_PULSE".into());
    add("1 TEP + interrupts (ext.)", &v);

    println!("Ablations on the pickup-head example (deadlines: X/Y 300, DATA_VALID 1500)\n");
    println!("{t}");
}
