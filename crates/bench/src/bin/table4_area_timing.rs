//! Table 4 — area and timing results across the five architecture
//! variants: the headline result of the paper. For each row the harness
//! compiles the pickup-head example, runs the static timing validation,
//! and totals the CLB area on the FPGA substrate.

use pscp_bench::{
    crit_path_data_valid, crit_path_xy, example_system, example_timing, table4_architectures,
    table4_paper_values,
};
use pscp_core::area::pscp_area;
use pscp_core::report::Table;
use pscp_fpga::device::Device;

fn main() {
    println!("Table 4: Area and Timing Results\n");
    let mut t = Table::new([
        "Architecture",
        "Area",
        "Crit.Path X,Y",
        "Crit.Path DATA_VALID",
        "paper:Area",
        "paper:X,Y",
        "paper:DV",
    ]);

    let paper = table4_paper_values();
    let mut fits_all = true;
    for (arch, (plabel, parea, pxy, pdv)) in
        table4_architectures().into_iter().zip(paper)
    {
        assert_eq!(arch.label, plabel);
        let sys = example_system(&arch);
        let rep = example_timing(&sys);
        let area = pscp_area(&sys).total();
        let xy = crit_path_xy(&rep).unwrap();
        let dv = crit_path_data_valid(&rep).unwrap();
        fits_all &= area.0 <= Device::xc4025().clbs();
        t.row([
            arch.label.clone(),
            area.0.to_string(),
            xy.to_string(),
            dv.to_string(),
            parea.to_string(),
            pxy.map_or("> 1000".into(), |v| v.to_string()),
            pdv.map_or("> 3000".into(), |v| v.to_string()),
        ]);
    }
    println!("{t}");

    // The paper's conclusions, checked on our numbers.
    let final_arch = table4_architectures().pop().unwrap();
    let sys = example_system(&final_arch);
    let rep = example_timing(&sys);
    println!(
        "Final architecture `{}`: timing constraints {} (violations: {}).",
        final_arch.label,
        if rep.ok() { "ALL MET" } else { "VIOLATED" },
        rep.violations.len()
    );
    let area = pscp_area(&sys).total();
    println!(
        "Result fits on a single {}: {} used of {} CLBs ({}).",
        Device::xc4025(),
        area.0,
        Device::xc4025().clbs(),
        if fits_all { "every row fits" } else { "some rows exceed the device" },
    );
    assert!(rep.ok(), "the final architecture must satisfy Table 2");
    assert!(area.0 <= Device::xc4025().clbs());
}
