//! Fig. 8 — the PSCP floorplan: the final two-TEP architecture placed
//! on the XC4025's 32x32 CLB grid.

use pscp_bench::example_system;
use pscp_core::arch::PscpArch;
use pscp_core::area::pscp_area;
use pscp_fpga::device::Device;
use pscp_fpga::floorplan::Floorplan;

fn main() {
    let arch = PscpArch::dual_md16(true);
    let sys = example_system(&arch);
    let area = pscp_area(&sys);
    let device = Device::xc4025();
    let plan = Floorplan::place(&device, &area.blocks);

    println!("Fig. 8: PSCP floorplan ({})\n", arch.label);
    print!("{plan}");
    assert!(plan.fits(), "the paper's result fits on a single XC4025");
    println!("\nEvery block placed; the design fits on a single {device}.");
}
