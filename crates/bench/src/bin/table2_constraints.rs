//! Table 2 — the timing constraints of the SMD pickup-head example, as
//! carried by the chart's event declarations, derived from the motor
//! physics (§5): 50 kHz X/Y step rate at a 15 MHz reference clock =
//! 300-cycle counter-update deadline; 9 kHz φ; a command byte every
//! 1500 cycles.

use pscp_core::report::Table;
use pscp_motors::stepper::AxisLimits;
use pscp_motors::{pickup_head_chart, timing_constraints, CLOCK_HZ};

fn main() {
    println!("Table 2: Timing Constraints\n");
    let mut t = Table::new(["Event", "Cycles"]);
    for (name, period) in timing_constraints() {
        t.row([name.to_string(), period.to_string()]);
    }
    println!("{t}");

    // Cross-check: the chart carries the same periods...
    let chart = pickup_head_chart();
    for (name, period) in timing_constraints() {
        let ev = chart.event_by_name(name).expect("declared");
        assert_eq!(chart.event(ev).period, Some(period), "{name}");
    }
    // ...and the X/Y deadline equals the physical minimum counter
    // period of the 50 kHz axes.
    let xy = AxisLimits::xy(CLOCK_HZ);
    println!(
        "X/Y axis: max {} Hz at {} MHz clock -> min counter period {} cycles",
        xy.max_step_hz,
        CLOCK_HZ / 1_000_000,
        xy.min_period()
    );
    assert_eq!(xy.min_period(), 300);
    let zphi = AxisLimits::zphi(CLOCK_HZ);
    println!(
        "Z/phi axis: max {} Hz -> min counter period {} cycles (constraint rounded to 1600)",
        zphi.max_step_hz,
        zphi.min_period()
    );
    println!("\nAll constraints consistent with the plant physics.");
}
