//! Table 1 — the microcode format: control-signal groups and encodings,
//! plus the synthesised microprogram ROM of the example application.

use pscp_bench::example_system;
use pscp_core::arch::PscpArch;
use pscp_tep::microcode::{format_table1, micro_len, InstrKind, MicrocodeRom};
use std::collections::BTreeSet;

fn main() {
    println!("Table 1: Microcode format\n");
    println!("{}", format_table1());

    println!("Microprogram lengths per instruction kind (cycles):\n");
    println!("{:<14} {:>6} {:>6}", "kind", "unopt", "opt");
    for kind in InstrKind::all() {
        println!(
            "{:<14} {:>6} {:>6}",
            format!("{kind:?}"),
            micro_len(kind, false),
            micro_len(kind, true)
        );
    }

    // ROM synthesis for the example: "the specific microprogram decoder
    // for this application can therefore be easily synthesized" (§4).
    for arch in [PscpArch::md16_unoptimized(), PscpArch::md16_optimized()] {
        let sys = example_system(&arch);
        let kinds: BTreeSet<InstrKind> = sys
            .program
            .functions
            .iter()
            .flat_map(|f| f.code.iter().map(|i| InstrKind::of(&i.instr)))
            .collect();
        let rom = MicrocodeRom::synthesize(&kinds, arch.tep.optimize_code);
        println!(
            "\n{}: {} instruction kinds used, ROM {} x 16 bit words, {} distinct control signals",
            arch.label,
            kinds.len(),
            rom.word_count(),
            rom.distinct_signals()
        );
    }
}
