//! Fig. 7 — the SMD pickup head: full co-simulation of the compiled
//! controller against the stepper-motor plant, for every Table 4
//! architecture, reporting completed moves, missed pulse deadlines and
//! physical-limit faults.

use pscp_bench::table4_architectures;
use pscp_bench::example_system;
use pscp_core::machine::PscpMachine;
use pscp_core::report::Table;
use pscp_motors::head::{Move, SmdHead};

fn main() {
    let moves = [
        Move { x: 120, y: 80, phi: 30 },
        Move { x: 200, y: 200, phi: 0 },
        Move { x: 40, y: 10, phi: 45 },
    ];

    println!("Fig. 7 co-simulation: 3-move placement sequence, 15 MHz clock\n");
    let mut t = Table::new([
        "Architecture",
        "moves",
        "missed pulses",
        "faults",
        "clock cycles",
        "max cfg cycle",
    ]);

    for arch in table4_architectures() {
        let sys = example_system(&arch);
        let mut machine = PscpMachine::new(&sys);
        let mut head = SmdHead::with_moves(&moves);
        let idle1 = sys.chart.state_by_name("Idle1").unwrap();
        let mut steps = 0u64;
        while steps < 6_000_000 {
            machine.step(&mut head).expect("no TEP fault");
            steps += 1;
            if head.pending_bytes() == 0
                && head.all_idle()
                && machine.executor().configuration().is_active(idle1)
            {
                break;
            }
        }
        t.row([
            arch.label.clone(),
            head.moves_done().to_string(),
            head.missed_pulses().to_string(),
            head.faults().len().to_string(),
            machine.now().to_string(),
            machine.stats().max_cycle_length.to_string(),
        ]);
    }
    println!("{t}");
    println!("The minimal TEP misses X/Y pulse deadlines (software multiply/divide");
    println!("inside the 300-cycle window); the paper's final two-TEP architecture");
    println!("services every pulse.");
}
