//! Pretty-prints a pscp-obs metrics snapshot (`metrics.json` /
//! `serve_metrics.json` / `BENCH_9_metrics.json`) as tables: snapshot
//! version, serve gauges (when the snapshot came from a wire scrape),
//! scalar counters — including the `serve_*` telemetry family —
//! per-worker counters, TEP instruction mix, and histogram summaries.
//!
//! Usage: `obs_report [path-to-metrics.json]` (default:
//! `$PSCP_OBS_DIR/metrics.json`). Usually invoked through
//! `scripts/obs-report.sh`.

use pscp_core::report::Table;
use pscp_obs::json::{parse, JsonValue};
use std::path::PathBuf;

fn scalar_table(title: &str, obj: &JsonValue) -> Option<String> {
    let JsonValue::Object(map) = obj else { return None };
    if map.is_empty() {
        return None;
    }
    let mut t = Table::new(["Counter", "Value"]);
    for (name, v) in map {
        t.row([name.clone(), v.as_u64().map_or_else(|| "?".into(), |n| n.to_string())]);
    }
    Some(format!("{title}\n{t}"))
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| pscp_obs::obs_dir().join("metrics.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {} ({e})", path.display()));
    let doc = parse(&text).unwrap_or_else(|e| panic!("{} is not valid JSON: {e}", path.display()));

    let version =
        doc.get("version").and_then(JsonValue::as_u64).map_or(String::new(), |v| {
            format!(" (snapshot v{v})")
        });
    println!("pscp-obs metrics report — {}{version}\n", path.display());

    if let Some(gauges) = doc.get("gauges") {
        if let Some(table) = scalar_table("Serve gauges", gauges) {
            println!("{table}");
        }
    }

    if let Some(counters) = doc.get("counters") {
        if let Some(table) = scalar_table("Counters", counters) {
            println!("{table}");
        }
    }

    if let Some(JsonValue::Object(map)) = doc.get("per_worker") {
        if !map.is_empty() {
            let mut t = Table::new(["Counter", "Per-worker values", "Total"]);
            for (name, v) in map {
                let values: Vec<u64> = v
                    .as_array()
                    .map(|a| a.iter().filter_map(JsonValue::as_u64).collect())
                    .unwrap_or_default();
                let rendered = values
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(" ");
                t.row([name.clone(), rendered, values.iter().sum::<u64>().to_string()]);
            }
            println!("Per-worker\n{t}");
        }
    }

    if let Some(tep) = doc.get("tep_instr") {
        if let Some(table) = scalar_table("TEP instruction mix", tep) {
            println!("{table}");
        }
    }

    if let Some(JsonValue::Object(map)) = doc.get("histograms") {
        if !map.is_empty() {
            let mut t = Table::new(["Histogram", "Count", "Sum", "Mean", "Top bucket"]);
            for (name, h) in map {
                let count = h.get("count").and_then(JsonValue::as_u64).unwrap_or(0);
                let sum = h.get("sum").and_then(JsonValue::as_u64).unwrap_or(0);
                let mean = if count > 0 { sum as f64 / count as f64 } else { 0.0 };
                let top = h
                    .get("buckets")
                    .and_then(JsonValue::as_array)
                    .and_then(|buckets| {
                        buckets.iter().max_by_key(|b| {
                            b.get("n").and_then(JsonValue::as_u64).unwrap_or(0)
                        })
                    })
                    .map(|b| {
                        format!(
                            "[{}, {}] x{}",
                            b.get("lo").and_then(JsonValue::as_u64).unwrap_or(0),
                            b.get("hi").and_then(JsonValue::as_u64).unwrap_or(0),
                            b.get("n").and_then(JsonValue::as_u64).unwrap_or(0)
                        )
                    })
                    .unwrap_or_else(|| "-".into());
                t.row([name.clone(), count.to_string(), sum.to_string(), format!("{mean:.1}"), top]);
            }
            println!("Histograms\n{t}");
        }
    }
}
