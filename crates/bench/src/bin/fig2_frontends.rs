//! Fig. 2a/2b, Figs. 5/6 — the two system-level notations: the textual
//! statechart format (round-tripped through the parser) and the
//! intermediate extended-C code of the action routines.

use pscp_motors::{pickup_head_actions, pickup_head_chart};
use pscp_statechart::parse::parse_chart;
use pscp_statechart::pretty;

fn main() {
    let chart = pickup_head_chart();

    println!("=== Fig. 5/6: chart hierarchy ===\n");
    print!("{}", pretty::tree(&chart));

    println!("\n=== Fig. 2a: textual statechart format (generated) ===\n");
    let text = pretty::to_text(&chart);
    // Print the DataPreparation fragment the paper shows.
    let mut in_fragment = false;
    for line in text.lines() {
        if line.starts_with("orstate DataPreparation")
            || line.starts_with("andstate Operation")
            || line.starts_with("basicstate ErrState")
            || line.starts_with("basicstate Errstate")
        {
            in_fragment = true;
        }
        if in_fragment {
            println!("{line}");
            if line == "}" {
                in_fragment = false;
            }
        }
    }

    // Round trip: parse what we printed.
    let reparsed = parse_chart(&text).expect("pretty output reparses");
    assert_eq!(reparsed.state_count(), chart.state_count());
    assert_eq!(reparsed.transition_count(), chart.transition_count());
    println!(
        "\nRound trip OK: {} states, {} transitions, {} events, {} conditions.",
        chart.state_count(),
        chart.transition_count(),
        chart.events().len(),
        chart.conditions().len()
    );

    println!("\n=== Fig. 2b: intermediate C code (excerpt) ===\n");
    for line in pickup_head_actions().lines().take(40) {
        println!("{line}");
    }
    println!("...");
}
