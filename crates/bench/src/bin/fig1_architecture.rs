//! Fig. 1 — PSCP architecture overview: structural dump of a generated
//! PSCP instance (SLA, CR, transition address table, scheduler, TEPs,
//! buses, ports).

use pscp_bench::example_system;
use pscp_core::arch::PscpArch;
use pscp_core::area::pscp_area;

fn main() {
    let arch = PscpArch::dual_md16(true);
    let sys = example_system(&arch);

    println!("PSCP instance for `{}` ({}):\n", sys.chart.name(), arch.label);

    println!("Configuration register: {} bits", sys.layout.width());
    println!("  state part     : {} bits ({} exclusivity fields)",
        sys.layout.state_width(), sys.layout.fields().len());
    println!("  event part     : {} bits", sys.layout.event_width());
    println!("  condition part : {} bits", sys.layout.condition_width());

    println!("\nSLA: {} logic nodes, {} product terms, depth {} levels",
        sys.sla.net.len(), sys.sla.product_terms(), sys.sla.net.depth());
    println!("Transition address table: {} entries", sys.sla.table.len());

    println!("\n{} TEP(s), each:", arch.n_teps);
    let tep = &arch.tep;
    println!("  data bus          : {} bits", tep.calc.width);
    println!("  M/D unit          : {}", tep.calc.muldiv);
    println!("  comparator        : {}", tep.calc.comparator);
    println!("  two's complement  : {}", tep.calc.twos_complement);
    println!("  shifter           : {}", tep.calc.shifter);
    println!("  register file     : {} regs", tep.register_file);
    println!("  custom instructions: {}", sys.arch.tep.custom_ops.len());
    println!("  local RAM used    : {} words", sys.program.internal_words_used);
    println!("  external RAM used : {} words", sys.program.external_words_used);
    println!("  program size      : {} instructions ({} routines)",
        sys.program.instruction_count(), sys.program.functions.len());

    println!("\nPort architecture ({} data ports):", sys.program.ports.len());
    for p in &sys.program.ports {
        println!(
            "  {:<12} {:>2} bits @ 0x{:03X} {}{}",
            p.name,
            p.width,
            p.address,
            if p.readable { "r" } else { "-" },
            if p.writable { "w" } else { "-" }
        );
    }

    println!("\nArea breakdown:");
    let area = pscp_area(&sys);
    for b in &area.blocks {
        println!("  {:<24} {:>5} CLBs", b.name, b.area.0);
    }
    println!("  {:<24} {:>5} CLBs total", "", area.total().0);
}
