//! Fixed-workload performance smoke test.
//!
//! Runs the three hot-path workloads of the Criterion `simulation` bench
//! (SLA evaluation, configuration cycles, one full pick-and-place co-sim
//! move) with plain wall-clock timing, compares them against the
//! recorded pre-optimisation baseline, and writes `BENCH_1.json` into
//! the current directory so the perf trajectory is tracked from PR 1
//! onward.
//!
//! Run with `cargo run --release -p pscp-bench --bin bench-smoke`.

use pscp_bench::example_system;
use pscp_core::arch::PscpArch;
use pscp_core::machine::{PscpMachine, ScriptedEnvironment};
use pscp_motors::head::{Move, SmdHead};
use pscp_sla::sim::SlaSim;
use pscp_sla::synth::synthesize;
use pscp_statechart::encoding::{CrLayout, EncodingStyle};
use pscp_statechart::semantics::Executor;
use std::hint::black_box;
use std::time::Instant;

/// Pre-optimisation baselines, measured on this machine with the seed's
/// string-keyed evaluator (Criterion `simulation` bench, 2026-08-06).
mod baseline {
    /// `sla_eval/Exclusivity`, µs per fired+next_cr pair.
    pub const SLA_EXCLUSIVITY_US: f64 = 9.483;
    /// `sla_eval/OneHot`, µs per fired+next_cr pair.
    pub const SLA_ONEHOT_US: f64 = 14.783;
    /// `pscp_config_cycles/2`, µs per 5-cycle script.
    pub const CONFIG_CYCLES_US: f64 = 12.377;
    /// `cosim_one_move/dual_md16_opt`, ms per move.
    pub const COSIM_MS: f64 = 102.379;
}

/// Times `iters` runs of `f` after `iters / 10` warm-up runs, five
/// rounds over; returns the best round's mean seconds per run. The
/// minimum across rounds is the standard way to read through scheduler
/// and frequency-scaling noise on a shared machine.
fn time<R>(iters: u32, mut f: impl FnMut() -> R) -> f64 {
    for _ in 0..iters / 10 {
        black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(start.elapsed().as_secs_f64() / f64::from(iters));
    }
    best
}

fn sla_eval_us(style: EncodingStyle) -> f64 {
    let sys = example_system(&PscpArch::md16_optimized());
    let layout = CrLayout::new(&sys.chart, style);
    let sla = synthesize(&sys.chart, &layout);
    let sim = SlaSim::new(&sys.chart, &layout, &sla);
    let exec = Executor::new(&sys.chart);
    let dv = sys.chart.event_by_name("DATA_VALID").unwrap();
    let bits = sim.cr_bits(exec.configuration(), &[dv].into_iter().collect(), &|_| false);
    time(20_000, || (sim.fired(black_box(&bits)), sim.next_cr(black_box(&bits)))) * 1e6
}

fn config_cycles_us() -> f64 {
    let mut arch = PscpArch::dual_md16(true);
    arch.n_teps = 2;
    let sys = example_system(&arch);
    time(2_000, || {
        let mut m = PscpMachine::new(&sys);
        let mut env = ScriptedEnvironment::new(vec![
            vec!["POWER"],
            vec!["DATA_VALID"],
            vec!["DATA_VALID"],
            vec!["X_PULSE", "Y_PULSE"],
            vec![],
        ]);
        for _ in 0..5 {
            m.step(&mut env).unwrap();
        }
        m.now()
    }) * 1e6
}

/// One full co-sim move; returns (seconds per move, configuration
/// cycles per move, simulated clock cycles per move).
fn cosim_one_move() -> (f64, u64, u64) {
    let sys = example_system(&PscpArch::dual_md16(true));
    let idle1 = sys.chart.state_by_name("Idle1").unwrap();
    let mut configs = 0;
    let mut sim_cycles = 0;
    let secs = time(5, || {
        let mut m = PscpMachine::new(&sys);
        let mut head = SmdHead::with_moves(&[Move { x: 40, y: 25, phi: 10 }]);
        let mut steps = 0u64;
        while steps < 500_000 {
            m.step(&mut head).unwrap();
            steps += 1;
            if head.pending_bytes() == 0
                && head.all_idle()
                && m.executor().configuration().is_active(idle1)
            {
                break;
            }
        }
        configs = steps;
        sim_cycles = m.now();
        m.now()
    });
    (secs, configs, sim_cycles)
}

fn main() {
    let wall = Instant::now();
    let sla_excl = sla_eval_us(EncodingStyle::Exclusivity);
    let sla_onehot = sla_eval_us(EncodingStyle::OneHot);
    let cfg = config_cycles_us();
    let (cosim_s, configs, sim_cycles) = cosim_one_move();

    let configs_per_sec = configs as f64 / cosim_s;
    let sim_cycles_per_sec = sim_cycles as f64 / cosim_s;
    let json = format!(
        r#"{{
  "bench": 1,
  "workloads": {{
    "sla_eval": {{
      "exclusivity_us_per_iter": {sla_excl:.3},
      "onehot_us_per_iter": {sla_onehot:.3},
      "baseline_exclusivity_us": {bexcl},
      "baseline_onehot_us": {bonehot},
      "speedup_exclusivity": {sexcl:.2},
      "speedup_onehot": {sonehot:.2}
    }},
    "pscp_config_cycles": {{
      "two_teps_us_per_script": {cfg:.3},
      "baseline_us": {bcfg},
      "speedup": {scfg:.2}
    }},
    "cosim_one_move": {{
      "ms_per_move": {cosim_ms:.3},
      "baseline_ms": {bcosim},
      "speedup": {scosim:.2},
      "configs_per_sec": {configs_per_sec:.0},
      "sim_cycles_per_sec": {sim_cycles_per_sec:.0}
    }}
  }},
  "wall_seconds_total": {wall_s:.2}
}}
"#,
        bexcl = baseline::SLA_EXCLUSIVITY_US,
        bonehot = baseline::SLA_ONEHOT_US,
        sexcl = baseline::SLA_EXCLUSIVITY_US / sla_excl,
        sonehot = baseline::SLA_ONEHOT_US / sla_onehot,
        bcfg = baseline::CONFIG_CYCLES_US,
        scfg = baseline::CONFIG_CYCLES_US / cfg,
        cosim_ms = cosim_s * 1e3,
        bcosim = baseline::COSIM_MS,
        scosim = baseline::COSIM_MS / (cosim_s * 1e3),
        wall_s = wall.elapsed().as_secs_f64(),
    );
    std::fs::write("BENCH_1.json", &json).expect("write BENCH_1.json");
    print!("{json}");
}
