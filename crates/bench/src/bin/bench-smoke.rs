//! Fixed-workload performance smoke test.
//!
//! Runs the PR-1 hot-path workloads (SLA evaluation, configuration
//! cycles, one full pick-and-place co-sim move), the PR-2 batched
//! co-simulation sweep, and the PR-3 incremental-revalidation
//! workloads with plain wall-clock timing, and writes `BENCH_10.json`
//! into the current directory so the perf trajectory is tracked across
//! PRs.
//!
//! PR-10 adds `explore`: exhaustive state-space exploration of the
//! pickup head's semantic state space, timed on the one-worker scalar
//! path and again on N workers × 64-wide gangs, with the two reports
//! byte-checked identical through the canonical encoding — the
//! determinism contract the explore differential suite pins, measured
//! on every run.
//!
//! PR-9 adds `stats_scrape`: the serve workload throughput with and
//! without a sidecar polling `Stats` frames at 10 Hz (the way
//! `pscp-serve top` does), both arms with metrics enabled, so the
//! recorded overhead isolates the scrape path itself. The obs ledger's
//! snapshot fixture (`BENCH_9_metrics.json`) now comes from a loopback
//! *wire scrape* instead of the in-process snapshot, so it carries the
//! serve gauges and exercises the remote telemetry plane every run.
//!
//! PR-8 adds `compile_diagnostics`: the same chart/action pair
//! compiled fail-fast (legacy `parse_chart` + `compile_system`) and
//! through the accumulating `compile_sources` diagnostics sink — the
//! sink must be free on the happy path, so the two timings are
//! recorded side by side with the overhead percentage — plus the cost
//! of producing a full multi-phase error report from a fixture with
//! errors seeded across chart parse, chart structure and action parse.
//!
//! PR-7 adds `compile_cache`: a DSE-shaped candidate sweep compiled
//! cold (full per-candidate codegen) and warm (function-granularity
//! `CodegenCache` over shared `SystemArtifacts`), with every cached
//! system byte-checked against the full compile and the hit rate on
//! record. `dse_explore_incremental` now rides the same cache — the
//! `incremental` switch turns on both timing revalidation and delta
//! compilation — and the default worker count is clamped to the host's
//! parallelism so narrow machines stop oversubscribing.
//!
//! PR-6 adds `gang_cosim`: the SLA-bound gang workload at bit-slice
//! widths 1/8/64 on a *single* worker, so the recorded speedup is the
//! algorithmic win of word-parallel SLA/CR evaluation, not thread
//! parallelism; every gang outcome is checked identical to the scalar
//! width-1 run. `serve_smoke` is re-baselined against BENCH_5's
//! 1-client loopback latency (the accept loop and queue handoffs are
//! now condvar-driven instead of 5 ms polls), and the obs ledger gains
//! a `PSCP_OBS_SAMPLE=64` sampled-tracing row against BENCH_5's
//! every-span overhead.
//!
//! PR-5 adds `serve_smoke`: the same pickup-head scenario mix through
//! a loopback `pscp_core::serve` server at 1/4/16 concurrent clients,
//! against the in-process `SimPool` floor, with every wire outcome
//! byte-checked against the pool's canonical encoding.
//!
//! PR-4 adds the observability cost ledger: the co-sim move is re-timed
//! with obs off, metrics-only, and metrics+trace, and the measured
//! overheads go into the JSON (`obs_overhead_pct`,
//! `trace_overhead_pct`). A metrics-on exploration + batch run also
//! dumps its counter snapshot to `BENCH_4_metrics.json` so the obs
//! report tooling has a fixture.
//!
//! The PR-3 comparison is algorithmic, not parallel: `dse_explore`
//! runs the same single-threaded design-space exploration twice — once
//! re-running the full §4 DFS per candidate, once revalidating from
//! the shared `TimingGraph` dirty set — and `memo_store` compares a
//! cold run against one warm-started from the persisted candidate
//! memo, plus a corrupted-file probe that must degrade to a cold
//! start.
//!
//! Run with `cargo run --release -p pscp-bench --bin bench-smoke`.

use pscp_bench::{example_system, multi_head_inputs, pickup_head_inputs};

/// Parallel pickup heads in the scaled DSE workload.
const DSE_HEADS: usize = 6;
use pscp_core::arch::PscpArch;
use pscp_core::compile::{
    compile_system, compile_system_from_ir, compile_system_with, SystemArtifacts,
};
use pscp_core::diag::{compile_sources, DiagnosticSink};
use pscp_core::machine::{PscpMachine, ScriptedEnvironment};
use pscp_core::optimize::{optimize, MemoPersistence, OptimizationResult, OptimizeOptions};
use pscp_core::pool::{default_workers, BatchOptions, SimPool};
use pscp_tep::codegen::{CodegenCache, CodegenOptions};
use pscp_core::explore::{explore, ExploreOptions, ExploreReport, Predicate};
use pscp_core::serve::wire::encode_explore_report;
use pscp_core::serve::{self, wire::WireOutcome, ScenarioClient, ServeOptions};
use pscp_motors::head::{Move, SmdHead};
use pscp_sla::sim::SlaSim;
use pscp_sla::synth::synthesize;
use pscp_statechart::encoding::{CrLayout, EncodingStyle};
use pscp_statechart::semantics::Executor;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pre-optimisation baselines, measured on this machine with the seed's
/// string-keyed evaluator (Criterion `simulation` bench, 2026-08-06).
mod baseline {
    /// `sla_eval/Exclusivity`, µs per fired+next_cr pair.
    pub const SLA_EXCLUSIVITY_US: f64 = 9.483;
    /// `sla_eval/OneHot`, µs per fired+next_cr pair.
    pub const SLA_ONEHOT_US: f64 = 14.783;
    /// `pscp_config_cycles/2`, µs per 5-cycle script *including* the
    /// machine construction the timed region used to contain.
    pub const CONFIG_CYCLES_WITH_CONSTRUCT_US: f64 = 12.377;
    /// `cosim_one_move/dual_md16_opt`, ms per move.
    pub const COSIM_MS: f64 = 102.379;
    /// BENCH_5 `serve_smoke` 1-client loopback, ms for the 16-scenario
    /// mix (accept loop and shard handoffs still on 5 ms polls).
    pub const SERVE_1_CLIENT_MS: f64 = 4.13;
    /// BENCH_5 `trace_overhead_pct`: every span recorded, no sampling.
    pub const TRACE_OVERHEAD_PCT: f64 = 45.0;
}

/// Times `iters` runs of `f` after `iters / 10` warm-up runs, five
/// rounds over; returns the best round's mean seconds per run. The
/// minimum across rounds is the standard way to read through scheduler
/// and frequency-scaling noise on a shared machine.
fn time<R>(iters: u32, mut f: impl FnMut() -> R) -> f64 {
    for _ in 0..iters / 10 {
        black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(start.elapsed().as_secs_f64() / f64::from(iters));
    }
    best
}

fn sla_eval_us(style: EncodingStyle) -> f64 {
    let sys = example_system(&PscpArch::md16_optimized());
    let layout = CrLayout::new(&sys.chart, style);
    let sla = synthesize(&sys.chart, &layout);
    let sim = SlaSim::new(&sys.chart, &layout, &sla);
    let exec = Executor::new(&sys.chart);
    let dv = sys.chart.event_by_name("DATA_VALID").unwrap();
    let bits = sim.cr_bits(exec.configuration(), &[dv].into_iter().collect(), &|_| false);
    time(20_000, || (sim.fired(black_box(&bits)), sim.next_cr(black_box(&bits)))) * 1e6
}

/// The configuration-cycle microbench, construction hoisted out of the
/// timed region: returns (construction µs, steady-state µs per 5-cycle
/// script on a reset machine).
fn config_cycles_us() -> (f64, f64) {
    let mut arch = PscpArch::dual_md16(true);
    arch.n_teps = 2;
    let sys = example_system(&arch);
    let construct = time(2_000, || PscpMachine::new(black_box(&sys)).now()) * 1e6;
    let mut m = PscpMachine::new(&sys);
    let steady = time(2_000, || {
        m.reset();
        let mut env = ScriptedEnvironment::new(vec![
            vec!["POWER"],
            vec!["DATA_VALID"],
            vec!["DATA_VALID"],
            vec!["X_PULSE", "Y_PULSE"],
            vec![],
        ]);
        for _ in 0..5 {
            m.step(&mut env).unwrap();
        }
        m.now()
    }) * 1e6;
    (construct, steady)
}

/// One full co-sim move; returns (seconds per move, configuration
/// cycles per move, simulated clock cycles per move).
fn cosim_one_move() -> (f64, u64, u64) {
    let sys = example_system(&PscpArch::dual_md16(true));
    let idle1 = sys.chart.state_by_name("Idle1").unwrap();
    let mut configs = 0;
    let mut sim_cycles = 0;
    let secs = time(5, || {
        let mut m = PscpMachine::new(&sys);
        let mut head = SmdHead::with_moves(&[Move { x: 40, y: 25, phi: 10 }]);
        let mut steps = 0u64;
        while steps < 500_000 {
            m.step(&mut head).unwrap();
            steps += 1;
            if head.pending_bytes() == 0
                && head.all_idle()
                && m.executor().configuration().is_active(idle1)
            {
                break;
            }
        }
        configs = steps;
        sim_cycles = m.now();
        m.now()
    });
    (secs, configs, sim_cycles)
}

/// One single-threaded pickup-head exploration from the minimal
/// architecture, with the validation strategy and memo policy under
/// test.
fn dse_run(
    chart: &pscp_statechart::Chart,
    ir: &pscp_action_lang::ir::Program,
    incremental: bool,
    memo: MemoPersistence,
) -> OptimizationResult {
    let options = OptimizeOptions {
        threads: Some(1),
        incremental,
        verify_incremental: false,
        memo,
        ..OptimizeOptions::default()
    };
    optimize(chart, ir, &PscpArch::minimal(), &options).expect("optimize")
}

/// Full-DFS-per-candidate vs the incremental path — dirty-set timing
/// revalidation plus function-granularity delta compilation — both
/// single-threaded (the win is algorithmic, not parallel): (full
/// seconds, incremental seconds, results identical, steps recorded).
fn dse_explore() -> (f64, f64, bool, usize) {
    // The scaled multi-head controller: with DSE_HEADS parallel motion
    // regions (~10 routines each), per-candidate compile + validation
    // work dominates the exploration instead of per-run fixed costs —
    // the regime the incremental path is built for.
    let (chart, ir) = multi_head_inputs(DSE_HEADS);
    let mut steps = 0;
    let full_s = time(2, || {
        let r = dse_run(&chart, &ir, false, MemoPersistence::Disabled);
        steps = r.history.len();
        r.satisfied
    });
    let inc_s = time(2, || dse_run(&chart, &ir, true, MemoPersistence::Disabled).satisfied);
    let a = dse_run(&chart, &ir, false, MemoPersistence::Disabled);
    let b = dse_run(&chart, &ir, true, MemoPersistence::Disabled);
    let identical = a.history == b.history
        && serde_json::to_string(&a.timing).unwrap() == serde_json::to_string(&b.timing).unwrap();
    (full_s, inc_s, identical, steps)
}

/// Cold vs warm memo-store exploration, plus the corruption probe:
/// (cold seconds, warm seconds, warm result == cold result, corrupted
/// file degraded to a working cold run).
fn memo_store(path: &PathBuf) -> (f64, f64, bool, bool) {
    let (chart, ir) = pickup_head_inputs();
    let _ = std::fs::remove_file(path);

    // Cold: one genuine first run — every candidate compiles.
    let start = Instant::now();
    let cold_result = dse_run(&chart, &ir, true, MemoPersistence::Path(path.clone()));
    let cold_s = start.elapsed().as_secs_f64();

    // Warm: every run starts from the persisted candidate memo.
    let mut warm_result = None;
    let warm_s = time(2, || {
        warm_result = Some(dse_run(&chart, &ir, true, MemoPersistence::Path(path.clone())));
    });
    let identical = warm_result
        .map(|w| {
            w.history == cold_result.history
                && serde_json::to_string(&w.timing).unwrap()
                    == serde_json::to_string(&cold_result.timing).unwrap()
        })
        .unwrap_or(false);

    // Corruption probe: a clobbered memo file must mean a cold start,
    // never a failure.
    std::fs::write(path, "definitely not json").expect("clobber memo file");
    let corrupt = dse_run(&chart, &ir, true, MemoPersistence::Path(path.clone()));
    let corrupt_ok = corrupt.history == cold_result.history;
    let _ = std::fs::remove_file(path);
    (cold_s, warm_s, identical, corrupt_ok)
}

/// A DSE-shaped candidate sweep through the per-routine codegen cache:
/// the pickup-head program compiled for the base architecture plus a
/// set of single-knob variants, cold (full per-candidate compile) and
/// warm (shared `SystemArtifacts` + `CodegenCache`). Returns (cold
/// seconds per sweep, warm seconds per sweep, routine hit rate on a
/// fresh cache, every cached system byte-identical to its full
/// compile).
fn compile_cache() -> (f64, f64, f64, bool) {
    let (chart, ir) = pickup_head_inputs();
    let opts = CodegenOptions::default();
    let base = PscpArch::minimal();
    let knobs: [fn(&mut PscpArch); 7] = [
        |a| a.tep.calc.muldiv = true,
        |a| a.tep.calc.comparator = true,
        |a| a.tep.calc.twos_complement = true,
        |a| a.tep.optimize_code = true,
        |a| a.tep.pipelined = true,
        |a| a.tep.calc.shifter = true,
        |a| a.tep.calc.width = 16,
    ];
    let mut candidates = vec![base.clone()];
    for f in knobs {
        let mut c = base.clone();
        f(&mut c);
        candidates.push(c);
    }

    let cold_s = time(3, || {
        for c in &candidates {
            black_box(compile_system_from_ir(&chart, &ir, c, &opts).expect("compile"));
        }
    });

    let artifacts = SystemArtifacts::build(&chart, base.encoding);
    let warm_cache = CodegenCache::with_enabled(true);
    // Prime once so the timed region measures the steady DSE state:
    // every candidate delta-compiles against an already-seen base.
    for c in &candidates {
        compile_system_with(&artifacts, &ir, c, &opts, Some(&warm_cache)).expect("prime");
    }
    let warm_s = time(3, || {
        for c in &candidates {
            black_box(
                compile_system_with(&artifacts, &ir, c, &opts, Some(&warm_cache))
                    .expect("compile"),
            );
        }
    });

    // Hit rate and the byte-identity check on a fresh cache, outside
    // the timed regions.
    let fresh = CodegenCache::with_enabled(true);
    let mut identical = true;
    for c in &candidates {
        let cached = compile_system_with(&artifacts, &ir, c, &opts, Some(&fresh)).expect("cached");
        let full = compile_system_from_ir(&chart, &ir, c, &opts).expect("full");
        identical &= serde_json::to_string(&cached).unwrap() == serde_json::to_string(&full).unwrap();
    }
    let stats = fresh.stats();
    let hit_rate = stats.hits as f64 / (stats.hits + stats.misses).max(1) as f64;
    (cold_s, warm_s, hit_rate, identical)
}

/// The diagnostics pipeline, happy path and error path. The same
/// chart/action pair is compiled fail-fast (legacy `parse_chart` +
/// `compile_system`) and through the accumulating `compile_sources`
/// sink — a sink that stays empty must be free, so the two timings
/// should sit within noise of each other. The error path compiles a
/// fixture with errors seeded across chart parse, chart structure and
/// action parse and records the cost of the full recovered report.
/// Returns (fail-fast seconds, sink seconds, error-report seconds,
/// diagnostics in the error report, report deterministic).
fn compile_diagnostics() -> (f64, f64, f64, usize, bool) {
    const CHART: &str = "\
        event TICK period 100;\n\
        orstate Root { contains A, B; default A; }\n\
        basicstate A { transition { target B; label \"TICK/Frob(1)\"; } }\n\
        basicstate B { transition { target A; label \"TICK/Note(1, 2)\"; } }\n";
    const ACTIONS: &str = "\
        int:16 seen;\n\
        void Frob(int:16 k) { seen = k; }\n\
        void Note(int:16 a, int:16 b) { seen = seen + a + b; }\n";
    const BROKEN_CHART: &str = "\
        event TICK period 100;\n\
        orstate Root { contains Off, On; default Elsewhere; }\n\
        basicstate Off { transition { target On label \"TICK\"; } }\n\
        basicstate On { transition { target Off; label \"BOOM\"; } }\n\
        orstate Half { contains ; }\n";
    const BROKEN_ACTIONS: &str = "int:16 total;\nvoid Broke() { total = 1 }\n";
    let arch = PscpArch::dual_md16(true);
    let opts = CodegenOptions::default();

    let failfast_s = time(100, || {
        let chart = pscp_statechart::parse::parse_chart(CHART).expect("chart parses");
        compile_system(&chart, ACTIONS, &arch, &opts).expect("system compiles")
    });
    let sink_s = time(100, || {
        let mut sink = DiagnosticSink::new();
        compile_sources(CHART, ACTIONS, &arch, &opts, &mut sink).expect("system compiles")
    });
    let report_s = time(100, || {
        let mut sink = DiagnosticSink::new();
        let compiled = compile_sources(BROKEN_CHART, BROKEN_ACTIONS, &arch, &opts, &mut sink);
        assert!(compiled.is_none(), "seeded-error fixture must not compile");
        sink.finish()
    });

    // Report size and determinism, outside the timed regions.
    let report = |chart: &str, actions: &str| {
        let mut sink = DiagnosticSink::new();
        let _ = compile_sources(chart, actions, &arch, &opts, &mut sink);
        sink.finish()
    };
    let first = report(BROKEN_CHART, BROKEN_ACTIONS);
    let deterministic = first == report(BROKEN_CHART, BROKEN_ACTIONS);
    (failfast_s, sink_s, report_s, first.len(), deterministic)
}

/// A 16-scenario pick-and-place sweep through `SimPool`: (1-worker
/// seconds, n-worker seconds, outputs identical, scenarios).
fn batch_cosim(workers: usize) -> (f64, f64, bool, usize) {
    const SCENARIOS: usize = 16;
    let sys = example_system(&PscpArch::dual_md16(true));
    let idle1 = sys.chart.state_by_name("Idle1").unwrap();
    let scenarios = || -> Vec<SmdHead> {
        (0..SCENARIOS)
            .map(|i| {
                let i = i as u16;
                SmdHead::with_moves(&[Move { x: 10 + i, y: 8 + i, phi: 5 + i % 4 }])
            })
            .collect()
    };
    let limits = BatchOptions { deadline: u64::MAX, max_steps: 500_000 };
    // Gang width pinned to 1: this row tracks the PR-2 thread-parallel
    // speedup; the bit-sliced gang gets its own `gang_cosim` row.
    let sweep = |threads: usize| {
        SimPool::with_threads(threads).with_gang(1).run_batch_until(
            &sys,
            scenarios(),
            &limits,
            |m, head, _| {
                head.pending_bytes() == 0
                    && head.all_idle()
                    && m.executor().configuration().is_active(idle1)
            },
        )
    };
    let one = time(1, || sweep(1).len());
    let many = time(1, || sweep(workers).len());
    let identical = {
        let a = sweep(1);
        let b = sweep(workers);
        a.len() == b.len()
            && a.iter().zip(&b).all(|(x, y)| {
                x.reports == y.reports && x.stats == y.stats && x.clock_cycles == y.clock_cycles
            })
    };
    (one, many, identical, SCENARIOS)
}

/// The gang-simulation sweep: the SLA-bound gang workload (12 parallel
/// rotor regions, sparse scripts) at bit-slice widths 1, 8 and 64 on a
/// single worker — the speedup on record is algorithmic, from the
/// shared word-parallel SLA/CR pass and the idle-lane fast path, not
/// from threads. Returns (seconds per width, all gang outcomes
/// identical to the scalar width-1 run, scenarios).
fn gang_cosim() -> ([f64; 3], bool, usize) {
    const SCENARIOS: usize = 256;
    const CYCLES: usize = 256;
    let sys = pscp_bench::gang_system();
    let scripts = pscp_bench::gang_scripts(SCENARIOS, CYCLES);
    let limits = BatchOptions { deadline: u64::MAX, max_steps: CYCLES as u64 };
    let run = |w: usize| {
        SimPool::with_threads(1).with_gang(w).run_batch(
            &sys,
            scripts.iter().cloned().map(ScriptedEnvironment::new).collect(),
            &limits,
        )
    };
    let mut secs = [0.0f64; 3];
    for (slot, &w) in [1usize, 8, 64].iter().enumerate() {
        secs[slot] = time(2, || run(w).len());
    }
    let reference = run(1);
    let identical = [8usize, 64].iter().all(|&w| {
        let got = run(w);
        got.len() == reference.len()
            && got.iter().zip(&reference).all(|(x, y)| {
                x.reports == y.reports && x.stats == y.stats && x.clock_cycles == y.clock_cycles
            })
    });
    (secs, identical, SCENARIOS)
}

/// Loopback scenario serving vs. the in-process pool: the same 16
/// pickup-head scenarios, batched through `SimPool` directly and then
/// streamed through a local TCP server at 1, 4 and 16 concurrent
/// clients. Returns (in-process seconds, seconds per client count,
/// all outcomes byte-identical).
fn serve_smoke(workers: usize) -> (f64, [f64; 3], bool) {
    const TOTAL: usize = 16;
    let sys = std::sync::Arc::new(example_system(&PscpArch::dual_md16(true)));
    let limits = BatchOptions { deadline: u64::MAX, max_steps: 16 };
    let menu: [&[&str]; 6] =
        [&["POWER"], &["DATA_VALID"], &["DATA_VALID"], &["X_PULSE"], &["X_PULSE", "Y_PULSE"], &[]];
    let script_for = |i: usize| -> Vec<Vec<String>> {
        (0..3 + i % 5)
            .map(|step| {
                menu[(i * 3 + step) % menu.len()].iter().map(|e| (*e).to_string()).collect()
            })
            .collect()
    };
    let scripts: Vec<Vec<Vec<String>>> = (0..TOTAL).map(script_for).collect();

    let pool = SimPool::with_threads(workers);
    let inproc_s = time(3, || {
        pool.run_batch(
            &sys,
            scripts.iter().cloned().map(ScriptedEnvironment::new).collect(),
            &limits,
        )
        .len()
    });
    let expected: Vec<Vec<u8>> = pool
        .run_batch(&sys, scripts.iter().cloned().map(ScriptedEnvironment::new).collect(), &limits)
        .iter()
        .map(|o| WireOutcome::from_batch(o).encode())
        .collect();

    let mut identical = true;
    let mut loopback_s = [0.0f64; 3];
    for (slot, &clients) in [1usize, 4, 16].iter().enumerate() {
        let opts = ServeOptions { threads: workers, ..ServeOptions::default() };
        let server = serve::spawn(std::sync::Arc::clone(&sys), "127.0.0.1:0", opts)
            .expect("loopback server");
        let addr = server.addr();
        let per_client = TOTAL / clients;
        loopback_s[slot] = time(3, || {
            let ok = std::thread::scope(|s| {
                let handles: Vec<_> = (0..clients)
                    .map(|c| {
                        let scripts = &scripts;
                        let expected = &expected;
                        s.spawn(move || {
                            let mut client =
                                ScenarioClient::connect(addr).expect("client connects");
                            let share =
                                &scripts[c * per_client..(c + 1) * per_client];
                            let outcomes =
                                client.run_batch(share, limits).expect("batch");
                            outcomes.iter().enumerate().all(|(i, o)| {
                                o.encode() == expected[c * per_client + i]
                            })
                        })
                    })
                    .collect();
                handles.into_iter().all(|h| h.join().expect("client thread"))
            });
            ok
        });
        // One checked pass outside the timed region, so `identical`
        // reflects a definite verdict even if timing reruns vary.
        identical &= std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let scripts = &scripts;
                    let expected = &expected;
                    s.spawn(move || {
                        let mut client =
                            ScenarioClient::connect(addr).expect("client connects");
                        let share = &scripts[c * per_client..(c + 1) * per_client];
                        let outcomes = client.run_batch(share, limits).expect("batch");
                        outcomes
                            .iter()
                            .enumerate()
                            .all(|(i, o)| o.encode() == expected[c * per_client + i])
                    })
                })
                .collect();
            handles.into_iter().all(|h| h.join().expect("client thread"))
        });
        server.stop().expect("server stops cleanly");
    }
    (inproc_s, loopback_s, identical)
}

/// The cost of being watched: the serve scenario mix streamed through
/// a loopback server with metrics on, once undisturbed and once with a
/// sidecar polling `Stats` frames at 10 Hz — the cadence `pscp-serve
/// top` uses. Both arms keep metrics enabled, so the difference
/// isolates the scrape path (snapshot build + encode + extra frames),
/// not the cost of instrumentation itself. Returns (plain
/// scenarios/sec, polled scenarios/sec, scrapes completed).
fn stats_scrape(workers: usize) -> (f64, f64, u64) {
    const ROUND: usize = 16;
    const WINDOW_S: f64 = 0.5;
    pscp_obs::set_flags(pscp_obs::METRICS);
    let sys = Arc::new(example_system(&PscpArch::dual_md16(true)));
    let limits = BatchOptions { deadline: u64::MAX, max_steps: 16 };
    let menu: [&[&str]; 6] =
        [&["POWER"], &["DATA_VALID"], &["DATA_VALID"], &["X_PULSE"], &["X_PULSE", "Y_PULSE"], &[]];
    let scripts: Vec<Vec<Vec<String>>> = (0..ROUND)
        .map(|i| {
            (0..3 + i % 5)
                .map(|step| {
                    menu[(i * 3 + step) % menu.len()].iter().map(|e| (*e).to_string()).collect()
                })
                .collect()
        })
        .collect();

    let arm = |poll: bool| -> (f64, u64) {
        pscp_obs::metrics::reset_all();
        let opts = ServeOptions { threads: workers, ..ServeOptions::default() };
        let server =
            serve::spawn(Arc::clone(&sys), "127.0.0.1:0", opts).expect("loopback server");
        let addr = server.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let poller = poll.then(|| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut scrapes = 0u64;
                let Ok(mut c) = ScenarioClient::connect(addr) else { return scrapes };
                while !stop.load(Ordering::Relaxed) {
                    if c.stats().is_err() {
                        break;
                    }
                    scrapes += 1;
                    std::thread::sleep(Duration::from_millis(100));
                }
                scrapes
            })
        });
        let mut client = ScenarioClient::connect(addr).expect("client connects");
        let t0 = Instant::now();
        let mut ran = 0usize;
        while t0.elapsed().as_secs_f64() < WINDOW_S {
            ran += client.run_batch(&scripts, limits).expect("batch").len();
        }
        let per_sec = ran as f64 / t0.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        let scrapes = poller.map_or(0, |h| h.join().expect("poller thread"));
        drop(client);
        server.stop().expect("server stops cleanly");
        (per_sec, scrapes)
    };
    let (plain_sps, _) = arm(false);
    let (polled_sps, scrapes) = arm(true);
    pscp_obs::set_flags(0);
    (plain_sps, polled_sps, scrapes)
}

/// Re-times the co-sim move under each obs configuration and collects
/// a metrics snapshot from an instrumented exploration + batch run:
/// (metrics-only seconds, metrics+trace seconds, metrics+trace seconds
/// at `PSCP_OBS_SAMPLE=64`, snapshot JSON).
fn obs_ledger(workers: usize) -> (f64, f64, f64, String) {
    pscp_obs::set_flags(pscp_obs::METRICS);
    let (metrics_s, _, _) = cosim_one_move();

    pscp_obs::trace::clear();
    pscp_obs::set_flags(pscp_obs::METRICS | pscp_obs::TRACE);
    let (trace_s, _, _) = cosim_one_move();
    pscp_obs::trace::clear();

    // Sampled tracing: record one `step` span in 64. The cadence-based
    // span sites stay index-aligned, so the trace keeps its shape at a
    // fraction of the recording cost.
    pscp_obs::set_sample(64);
    let (trace_sampled_s, _, _) = cosim_one_move();
    pscp_obs::set_sample(1);
    pscp_obs::trace::clear();

    // Snapshot fixture: a fresh metrics-only exploration plus a small
    // batch, so every counter family has a chance to be nonzero.
    pscp_obs::set_flags(pscp_obs::METRICS);
    pscp_obs::metrics::reset_all();
    let (chart, ir) = pickup_head_inputs();
    let options = OptimizeOptions {
        threads: Some(workers),
        verify_incremental: false,
        memo: MemoPersistence::Disabled,
        ..OptimizeOptions::default()
    };
    optimize(&chart, &ir, &PscpArch::minimal(), &options).expect("optimize");
    let sys = example_system(&PscpArch::dual_md16(true));
    let idle1 = sys.chart.state_by_name("Idle1").unwrap();
    let scenarios: Vec<SmdHead> = (0..workers)
        .map(|i| {
            let i = i as u16;
            SmdHead::with_moves(&[Move { x: 10 + i, y: 8 + i, phi: 5 + i % 4 }])
        })
        .collect();
    SimPool::with_threads(workers).run_batch_until(
        &sys,
        scenarios,
        &BatchOptions { deadline: u64::MAX, max_steps: 500_000 },
        |m, head, _| {
            head.pending_bytes() == 0
                && head.all_idle()
                && m.executor().configuration().is_active(idle1)
        },
    );
    // The ledger fixture now travels the telemetry plane: a loopback
    // wire scrape sees the same process-global counters plus the serve
    // families and gauges, so `BENCH_10_metrics.json` is a decoded
    // Stats frame, not a process-internal dump.
    let sys = Arc::new(sys);
    let opts = ServeOptions { threads: workers, ..ServeOptions::default() };
    let server =
        serve::spawn(Arc::clone(&sys), "127.0.0.1:0", opts).expect("ledger loopback server");
    let snapshot = {
        let mut client =
            ScenarioClient::connect(server.addr()).expect("ledger scrape connects");
        let script: Vec<Vec<String>> =
            vec![vec!["POWER".into()], vec!["DATA_VALID".into()]];
        client
            .submit(script, BatchOptions { deadline: u64::MAX, max_steps: 16 })
            .expect("ledger submit");
        client.recv().expect("ledger recv");
        let (gauges, snap) = client.stats().expect("ledger scrape");
        snap.to_json_with(&gauges.rows())
    };
    server.stop().expect("ledger server stops cleanly");

    pscp_obs::set_flags(0);
    (metrics_s, trace_s, trace_sampled_s, snapshot)
}

/// PR-10 explore workload: exhaustive BFS reachability over the pickup
/// head's semantic state space (the space closes without truncation
/// under the injected-event alphabet), once on the one-worker scalar
/// oracle path and once on `workers` threads × 64-wide gangs. The two
/// reports must be byte-identical through the canonical encoding —
/// that determinism contract is recorded (`results_identical`), not
/// assumed.
fn explore_smoke(workers: usize) -> (f64, f64, ExploreReport, bool) {
    let sys = example_system(&PscpArch::dual_md16(true));
    let opts = |threads: usize, gang: usize| ExploreOptions {
        threads,
        gang,
        max_states: 100_000,
        predicates: vec![Predicate::StateNeverActive("MoveX".into())],
        ..ExploreOptions::default()
    };
    let t0 = Instant::now();
    let scalar = explore(&sys, &opts(1, 1));
    let scalar_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let wide = explore(&sys, &opts(workers, 64));
    let wide_s = t0.elapsed().as_secs_f64();
    let identical = encode_explore_report(&scalar) == encode_explore_report(&wide);
    (scalar_s, wide_s, wide, identical)
}

fn main() {
    let wall = Instant::now();
    // Pin the obs flags off for the baseline workloads — overheads are
    // measured explicitly below, and a PSCP_OBS left over in the
    // environment must not skew the trajectory numbers.
    pscp_obs::set_flags(0);
    // The batch comparison defaults to 4 workers clamped to the host's
    // parallelism — spawning more workers than cores loses to the
    // sequential path on narrow hosts. An explicit PSCP_THREADS still
    // passes through unclamped for oversubscription experiments.
    let workers = std::env::var("PSCP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| default_workers(4));
    let memo_path = PathBuf::from("target").join("pscp-bench-memo.json");
    let sla_excl = sla_eval_us(EncodingStyle::Exclusivity);
    let sla_onehot = sla_eval_us(EncodingStyle::OneHot);
    let (construct_us, steady_us) = config_cycles_us();
    let (cosim_s, configs, sim_cycles) = cosim_one_move();
    let (dse_full, dse_inc, dse_identical, dse_steps) = dse_explore();
    let (memo_cold, memo_warm, memo_identical, memo_corrupt_ok) = memo_store(&memo_path);
    let (cache_cold, cache_warm, cache_hit_rate, cache_identical) = compile_cache();
    let (diag_failfast, diag_sink, diag_report, diag_count, diag_deterministic) =
        compile_diagnostics();
    let (batch_one, batch_many, batch_identical, batch_n) = batch_cosim(workers);
    let (gang_secs, gang_identical, gang_n) = gang_cosim();
    let (serve_inproc, serve_clients, serve_identical) = serve_smoke(workers);
    let (scrape_plain_sps, scrape_polled_sps, scrape_count) = stats_scrape(workers);
    let (explore_scalar_s, explore_wide_s, explore_report, explore_identical) =
        explore_smoke(workers);
    let (obs_metrics_s, obs_trace_s, obs_trace_sampled_s, metrics_snapshot) =
        obs_ledger(workers);

    let configs_per_sec = configs as f64 / cosim_s;
    let sim_cycles_per_sec = sim_cycles as f64 / cosim_s;
    let json = format!(
        r#"{{
  "bench": 10,
  "workers": {workers},
  "workloads": {{
    "sla_eval": {{
      "exclusivity_us_per_iter": {sla_excl:.3},
      "onehot_us_per_iter": {sla_onehot:.3},
      "baseline_exclusivity_us": {bexcl},
      "baseline_onehot_us": {bonehot},
      "speedup_exclusivity": {sexcl:.2},
      "speedup_onehot": {sonehot:.2}
    }},
    "pscp_config_cycles": {{
      "machine_construct_us": {construct_us:.3},
      "steady_state_us_per_script": {steady_us:.3},
      "bench1_us_with_construct_in_timed_region": {bcfg},
      "speedup_steady_vs_bench1_baseline": {scfg:.2}
    }},
    "cosim_one_move": {{
      "ms_per_move": {cosim_ms:.3},
      "baseline_ms": {bcosim},
      "speedup": {scosim:.2},
      "configs_per_sec": {configs_per_sec:.0},
      "sim_cycles_per_sec": {sim_cycles_per_sec:.0}
    }},
    "dse_explore_full": {{
      "heads": {DSE_HEADS},
      "ms": {dse_full_ms:.3},
      "history_steps": {dse_steps}
    }},
    "dse_explore_incremental": {{
      "ms": {dse_inc_ms:.3},
      "speedup_vs_full": {dse_speedup:.2},
      "results_identical": {dse_identical}
    }},
    "memo_store": {{
      "cold_ms": {memo_cold_ms:.3},
      "warm_ms": {memo_warm_ms:.3},
      "warm_speedup": {memo_speedup:.2},
      "warm_results_identical": {memo_identical},
      "corrupt_file_cold_start_ok": {memo_corrupt_ok}
    }},
    "compile_cache": {{
      "candidates": 8,
      "cold_sweep_ms": {cache_cold_ms:.3},
      "warm_sweep_ms": {cache_warm_ms:.3},
      "warm_speedup": {cache_speedup:.2},
      "hit_rate": {cache_hit_rate:.3},
      "results_identical": {cache_identical}
    }},
    "compile_diagnostics": {{
      "happy_failfast_us": {diag_failfast_us:.3},
      "happy_sink_us": {diag_sink_us:.3},
      "sink_overhead_pct": {diag_overhead_pct:.2},
      "error_report_us": {diag_report_us:.3},
      "error_report_diags": {diag_count},
      "report_deterministic": {diag_deterministic}
    }},
    "batch_cosim": {{
      "scenarios": {batch_n},
      "one_worker_ms": {batch_one_ms:.3},
      "n_worker_ms": {batch_many_ms:.3},
      "speedup": {batch_speedup:.2},
      "outputs_identical": {batch_identical}
    }},
    "gang_cosim": {{
      "scenarios": {gang_n},
      "cycles_per_scenario": 256,
      "width_1_ms": {gang_1_ms:.3},
      "width_8_ms": {gang_8_ms:.3},
      "width_64_ms": {gang_64_ms:.3},
      "scenarios_per_sec_w1": {gang_sps_w1:.0},
      "scenarios_per_sec_w64": {gang_sps_w64:.0},
      "speedup_w8": {gang_speedup_w8:.2},
      "speedup_w64": {gang_speedup_w64:.2},
      "outputs_identical": {gang_identical}
    }},
    "serve_smoke": {{
      "scenarios": 16,
      "inproc_pool_ms": {serve_inproc_ms:.3},
      "loopback_1_client_ms": {serve_1_ms:.3},
      "loopback_4_clients_ms": {serve_4_ms:.3},
      "loopback_16_clients_ms": {serve_16_ms:.3},
      "wire_overhead_pct_1_client": {serve_overhead_pct:.2},
      "baseline_bench5_1_client_ms": {bserve},
      "latency_speedup_vs_bench5": {serve_speedup:.2},
      "outputs_identical": {serve_identical}
    }},
    "stats_scrape": {{
      "poll_hz": 10,
      "plain_scenarios_per_sec": {scrape_plain_sps:.0},
      "polled_scenarios_per_sec": {scrape_polled_sps:.0},
      "scrapes": {scrape_count},
      "scrape_overhead_pct": {scrape_overhead_pct:.2}
    }},
    "explore": {{
      "max_states": 100000,
      "states": {explore_states},
      "edges": {explore_edges},
      "depth": {explore_depth},
      "dedup_rate": {explore_dedup_rate:.3},
      "truncated": {explore_truncated},
      "scalar_ms": {explore_scalar_ms:.3},
      "wide_ms": {explore_wide_ms:.3},
      "states_per_sec_scalar": {explore_sps_scalar:.0},
      "states_per_sec_wide": {explore_sps_wide:.0},
      "speedup_wide": {explore_speedup:.2},
      "results_identical": {explore_identical}
    }},
    "obs": {{
      "cosim_off_ms": {cosim_ms:.3},
      "cosim_metrics_ms": {obs_metrics_ms:.3},
      "cosim_trace_ms": {obs_trace_ms:.3},
      "cosim_trace_sampled_ms": {obs_trace_sampled_ms:.3},
      "obs_overhead_pct": {obs_overhead_pct:.2},
      "trace_overhead_pct": {trace_overhead_pct:.2},
      "trace_sample_every": 64,
      "trace_sampled_overhead_pct": {trace_sampled_overhead_pct:.2},
      "baseline_bench5_trace_overhead_pct": {btrace}
    }}
  }},
  "wall_seconds_total": {wall_s:.2}
}}
"#,
        bexcl = baseline::SLA_EXCLUSIVITY_US,
        bonehot = baseline::SLA_ONEHOT_US,
        sexcl = baseline::SLA_EXCLUSIVITY_US / sla_excl,
        sonehot = baseline::SLA_ONEHOT_US / sla_onehot,
        bcfg = baseline::CONFIG_CYCLES_WITH_CONSTRUCT_US,
        scfg = baseline::CONFIG_CYCLES_WITH_CONSTRUCT_US / steady_us,
        cosim_ms = cosim_s * 1e3,
        bcosim = baseline::COSIM_MS,
        scosim = baseline::COSIM_MS / (cosim_s * 1e3),
        dse_full_ms = dse_full * 1e3,
        dse_inc_ms = dse_inc * 1e3,
        dse_speedup = dse_full / dse_inc,
        memo_cold_ms = memo_cold * 1e3,
        memo_warm_ms = memo_warm * 1e3,
        memo_speedup = memo_cold / memo_warm,
        cache_cold_ms = cache_cold * 1e3,
        cache_warm_ms = cache_warm * 1e3,
        cache_speedup = cache_cold / cache_warm,
        diag_failfast_us = diag_failfast * 1e6,
        diag_sink_us = diag_sink * 1e6,
        diag_overhead_pct = (diag_sink / diag_failfast - 1.0) * 100.0,
        diag_report_us = diag_report * 1e6,
        batch_one_ms = batch_one * 1e3,
        batch_many_ms = batch_many * 1e3,
        batch_speedup = batch_one / batch_many,
        gang_1_ms = gang_secs[0] * 1e3,
        gang_8_ms = gang_secs[1] * 1e3,
        gang_64_ms = gang_secs[2] * 1e3,
        gang_sps_w1 = gang_n as f64 / gang_secs[0],
        gang_sps_w64 = gang_n as f64 / gang_secs[2],
        gang_speedup_w8 = gang_secs[0] / gang_secs[1],
        gang_speedup_w64 = gang_secs[0] / gang_secs[2],
        serve_inproc_ms = serve_inproc * 1e3,
        serve_1_ms = serve_clients[0] * 1e3,
        serve_4_ms = serve_clients[1] * 1e3,
        serve_16_ms = serve_clients[2] * 1e3,
        serve_overhead_pct = (serve_clients[0] / serve_inproc - 1.0) * 100.0,
        scrape_overhead_pct = (scrape_plain_sps / scrape_polled_sps - 1.0) * 100.0,
        explore_states = explore_report.states,
        explore_edges = explore_report.edges,
        explore_depth = explore_report.depth,
        explore_dedup_rate = explore_report.dedup_hits as f64 / explore_report.edges as f64,
        explore_truncated = explore_report.truncated,
        explore_scalar_ms = explore_scalar_s * 1e3,
        explore_wide_ms = explore_wide_s * 1e3,
        explore_sps_scalar = explore_report.states as f64 / explore_scalar_s,
        explore_sps_wide = explore_report.states as f64 / explore_wide_s,
        explore_speedup = explore_scalar_s / explore_wide_s,
        bserve = baseline::SERVE_1_CLIENT_MS,
        serve_speedup = baseline::SERVE_1_CLIENT_MS / (serve_clients[0] * 1e3),
        obs_metrics_ms = obs_metrics_s * 1e3,
        obs_trace_ms = obs_trace_s * 1e3,
        obs_trace_sampled_ms = obs_trace_sampled_s * 1e3,
        obs_overhead_pct = (obs_metrics_s / cosim_s - 1.0) * 100.0,
        trace_overhead_pct = (obs_trace_s / cosim_s - 1.0) * 100.0,
        trace_sampled_overhead_pct = (obs_trace_sampled_s / cosim_s - 1.0) * 100.0,
        btrace = baseline::TRACE_OVERHEAD_PCT,
        wall_s = wall.elapsed().as_secs_f64(),
    );
    std::fs::write("BENCH_10.json", &json).expect("write BENCH_10.json");
    std::fs::write("BENCH_10_metrics.json", &metrics_snapshot)
        .expect("write BENCH_10_metrics.json");
    print!("{json}");
}
