//! Fig. 3 — TEP architecture: datapath configuration, instruction-set
//! summary and an assembler listing of the hot routine (`DeltaTX`)
//! showing the three software representation levels of §2.

use pscp_bench::example_system;
use pscp_core::arch::PscpArch;
use pscp_tep::asm;
use pscp_tep::microcode::{microprogram, peephole, InstrKind};
use pscp_tep::timing::CostModel;

fn main() {
    let arch = PscpArch::md16_optimized();
    let sys = example_system(&arch);
    let cost = CostModel::new(&sys.program.arch);

    println!("TEP datapath ({}):", arch.label);
    println!("  IN/OUT ports | RAM | Calculation Unit (Acc, M/D, ALU) | uProgram Memory + Decoder");
    println!("  bus width {} bits, instruction format 16 bits, microinstructions 16 bits\n",
        arch.tep.calc.width);

    println!("=== Assembler level: DeltaTX (the 300-cycle-deadline routine) ===\n");
    let fi = sys.program.function_index("DeltaTX").unwrap();
    let f = &sys.program.functions[fi as usize];
    print!("{}", asm::listing(f, &cost));
    let total: u64 = f.code.iter().map(|i| cost.cost(i)).sum();
    println!("straight-line total: {total} cycles ({} instructions)\n", f.code.len());

    println!("=== Microinstruction level: the `add` microprogram ===\n");
    for (label, optimized) in [("unoptimised", false), ("optimised", true)] {
        let mut seq = microprogram(InstrKind::AluSimple);
        if optimized {
            seq = peephole(seq);
        }
        println!("{label} ({} microinstructions):", seq.len());
        for (i, w) in seq.iter().enumerate() {
            println!(
                "  {i}: group={:<14} signal={:#04x} next={:<3} word={:#06x}",
                w.group.to_string(),
                w.signal,
                w.next,
                w.encode()
            );
        }
        println!();
    }
}
