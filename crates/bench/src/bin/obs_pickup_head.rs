//! Observability demo on the paper's SMD pickup-head example: one
//! traced + metered + waveform-dumped run producing everything the obs
//! layer can emit.
//!
//! Honours `PSCP_OBS` when set; with it unset this binary force-enables
//! all three layers (it exists to demonstrate them). Artifacts go to
//! `PSCP_OBS_DIR` (default `target/obs`):
//!
//! * `trace.json`   — Chrome `trace_event` document; open in
//!   chrome://tracing or Perfetto to see the worker lanes.
//! * `pickup_head.vcd` — waveform of one scripted machine run; open in
//!   GTKWave.
//! * `metrics.json` — counter/histogram snapshot; pretty-print with
//!   `scripts/obs-report.sh`.
//!
//! Run with `PSCP_OBS=metrics,trace,vcd cargo run --release -p
//! pscp-bench --bin obs_pickup_head`.

use pscp_bench::{example_system, pickup_head_inputs};
use pscp_core::arch::PscpArch;
use pscp_core::machine::{PscpMachine, ScriptedEnvironment};
use pscp_core::optimize::{optimize, MemoPersistence, OptimizeOptions};
use pscp_core::pool::{BatchOptions, SimPool};
use pscp_motors::head::{Move, SmdHead};
const WORKERS: usize = 4;

fn main() {
    if pscp_obs::env_flags() == 0 {
        pscp_obs::set_flags(pscp_obs::ALL);
    } else {
        pscp_obs::set_flags(pscp_obs::env_flags());
    }
    pscp_obs::trace::set_thread_lane("main");
    let dir = pscp_obs::obs_dir();
    std::fs::create_dir_all(&dir).expect("create obs dir");

    // 1. A parallel design-space exploration: `optimize`, `candidate`,
    // and `worker-N` spans land in the trace, the OPT_*/REVALIDATE_*
    // counters in the metrics.
    let (chart, ir) = pickup_head_inputs();
    let options = OptimizeOptions {
        threads: Some(WORKERS),
        verify_incremental: false,
        memo: MemoPersistence::Disabled,
        ..OptimizeOptions::default()
    };
    let result = optimize(&chart, &ir, &PscpArch::minimal(), &options).expect("optimize");
    println!(
        "optimize: {} steps, satisfied={}, final arch `{}`",
        result.history.len(),
        result.satisfied,
        result.arch.label
    );

    // 2. A batched co-simulation: `scenario` spans on `sim-worker-N`
    // lanes, POOL_* per-worker counters.
    let sys = example_system(&PscpArch::dual_md16(true));
    let idle1 = sys.chart.state_by_name("Idle1").unwrap();
    let scenarios: Vec<SmdHead> = (0..2 * WORKERS)
        .map(|i| {
            let i = i as u16;
            SmdHead::with_moves(&[Move { x: 10 + i, y: 8 + i, phi: 5 + i % 4 }])
        })
        .collect();
    let outcomes = SimPool::with_threads(WORKERS).run_batch_until(
        &sys,
        scenarios,
        &BatchOptions { deadline: u64::MAX, max_steps: 500_000 },
        |m, head, _| {
            head.pending_bytes() == 0
                && head.all_idle()
                && m.executor().configuration().is_active(idle1)
        },
    );
    println!("batch: {} scenarios across {WORKERS} workers", outcomes.len());

    // 3. A waveform of one short scripted run.
    if pscp_obs::vcd_enabled() {
        let mut machine = PscpMachine::new(&sys);
        machine.attach_vcd();
        let mut env = ScriptedEnvironment::new(vec![
            vec!["POWER"],
            vec!["DATA_VALID"],
            vec!["DATA_VALID"],
            vec!["X_PULSE", "Y_PULSE"],
            vec![],
            vec!["X_PULSE"],
            vec!["DATA_VALID", "Y_PULSE"],
            vec![],
            vec!["PHI_PULSE"],
            vec![],
        ]);
        for _ in 0..10 {
            machine.step(&mut env).expect("cycle executes");
        }
        let vcd = machine.detach_vcd().expect("probe attached");
        let path = dir.join("pickup_head.vcd");
        std::fs::write(&path, &vcd).expect("write VCD");
        println!("vcd: {} ({} bytes)", path.display(), vcd.len());
    }

    if pscp_obs::trace_enabled() {
        pscp_obs::trace::flush_current_thread();
        let lanes = pscp_obs::trace::collected_lane_count();
        let spans = pscp_obs::trace::collected_span_count();
        assert!(
            lanes >= 2,
            "expected >= 2 thread lanes from a {WORKERS}-worker run, got {lanes}"
        );
        let trace = pscp_obs::trace::export_chrome_trace();
        let path = dir.join("trace.json");
        std::fs::write(&path, &trace).expect("write trace");
        println!("trace: {} ({lanes} lanes, {spans} spans)", path.display());
    }

    if pscp_obs::metrics_enabled() {
        let snapshot = pscp_obs::metrics::snapshot().to_json();
        let path = dir.join("metrics.json");
        std::fs::write(&path, &snapshot).expect("write metrics");
        println!("metrics: {}", path.display());
    }
}
