//! Fig. 4 — the partial statechart graph with parallel-sibling upper
//! bounds: for every step inside `DataPreparation` the bound of its
//! parallel sibling (`ReachPosition`, the motion region) is added, and
//! vice versa (the paper annotates "Maximum: 300" / "Maximum: 275").

use pscp_bench::example_system;
use pscp_core::arch::PscpArch;
use pscp_core::timing::bounds::{sibling_penalties, subtree_bound};
use pscp_core::timing::cycles::consumer_states;
use pscp_core::timing::{transition_cost, wcet_report, TimingOptions};

fn main() {
    let arch = PscpArch::md16_unoptimized();
    let sys = example_system(&arch);
    let wcet = wcet_report(&sys, &TimingOptions::default());
    let cost = |t| transition_cost(&sys, &wcet, t);

    println!("Fig. 4: parallel-sibling upper bounds ({})\n", arch.label);
    for name in ["DataPreparation", "ReachPosition", "MoveX", "MoveY", "MovePhi", "Operation"]
    {
        let s = sys.chart.state_by_name(name).unwrap();
        println!(
            "  subtree bound of {:<18} = {:>6} cycles",
            name,
            subtree_bound(&sys.chart, &cost, s)
        );
    }

    println!("\nDATA_VALID (period 1500) consumer states and their step penalties:");
    for s in consumer_states(&sys.chart, "DATA_VALID") {
        let penalties = sibling_penalties(&sys.chart, &cost, s);
        println!(
            "  {:<12} sibling penalties: {:?} (sum {})",
            sys.chart.state(s).name,
            penalties,
            penalties.iter().sum::<u64>()
        );
    }

    println!("\nInterpretation: a step taken inside DataPreparation pays the");
    println!("ReachPosition bound on a single TEP; replicating the TEP divides");
    println!("this penalty — which is exactly why Table 4's two-TEP rows halve");
    println!("the critical paths.");
}
