//! Table 3 — the event cycles detected by the timing validation
//! algorithm on the 16-bit M/D TEP with unoptimised code (the
//! configuration whose numbers the paper tabulates: note 878 = the
//! {RunX, RunX} row and 2041 = the longest DATA_VALID chain also appear
//! in Table 4's row 2).

use pscp_bench::{example_system, example_timing, table3_paper_values};
use pscp_core::arch::PscpArch;
use pscp_core::report::Table;
use pscp_obs::json::JsonWriter;

fn main() {
    let arch = PscpArch::md16_unoptimized();
    let sys = example_system(&arch);
    let report = example_timing(&sys);

    // `--json` emits the machine-readable form on stdout — same
    // bucket-free scalar shape as the pscp-obs metrics snapshot
    // (`{"counters": {...}}` plus the cycle list) so one parser covers
    // both.
    if std::env::args().any(|a| a == "--json") {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("counters");
        w.begin_object();
        w.key("cycles_detected");
        w.u64(report.cycles.len() as u64);
        w.key("violations");
        w.u64(report.violations.len() as u64);
        w.end_object();
        w.key("arch");
        w.string(&arch.label);
        w.key("cycles");
        w.begin_array();
        let mut seen_paths: Vec<Vec<pscp_statechart::StateId>> = Vec::new();
        for c in &report.cycles {
            if seen_paths.contains(&c.path) {
                continue;
            }
            seen_paths.push(c.path.clone());
            w.begin_object();
            w.key("path");
            w.begin_array();
            for name in c.path_names(&sys.chart) {
                w.string(&name);
            }
            w.end_array();
            w.key("length");
            w.u64(c.length);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        println!("{}", w.finish());
        return;
    }

    println!("Table 3: Event Cycles ({})\n", arch.label);
    let mut t = Table::new(["Cycle", "Length"]);
    // Keep the per-event maximum cycles plus all distinct short ones,
    // mirroring the granularity of the paper's table.
    let mut shown = 0;
    let mut seen_paths: Vec<Vec<pscp_statechart::StateId>> = Vec::new();
    for c in &report.cycles {
        if seen_paths.contains(&c.path) {
            continue;
        }
        seen_paths.push(c.path.clone());
        t.row([
            format!("{{{}}}", c.path_names(&sys.chart).join(", ")),
            c.length.to_string(),
        ]);
        shown += 1;
        if shown >= 24 {
            break;
        }
    }
    println!("{t}");

    println!("Paper's Table 3 for reference:\n");
    let mut p = Table::new(["Cycle", "Length"]);
    for (path, len) in table3_paper_values() {
        p.row([path.to_string(), len.to_string()]);
    }
    println!("{p}");

    // The structural endpoints of the paper's cycles must all appear.
    for name in ["Idle1", "OpReady", "NoData", "RunX", "RunY", "RunPhi"] {
        let id = sys.chart.state_by_name(name).unwrap();
        assert!(
            report
                .cycles
                .iter()
                .any(|c| c.path.first() == Some(&id) || c.path.last() == Some(&id)),
            "no cycle touches {name}"
        );
    }
    println!("All of the paper's cycle endpoints are covered by detected cycles.");
}
