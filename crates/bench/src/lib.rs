//! Shared plumbing for the experiment harness.
//!
//! One binary per table/figure of the paper lives in `src/bin/`; the
//! Criterion benches in `benches/` measure the toolchain itself. This
//! library provides the example system builders they share.

use pscp_action_lang::ir::Program;
use pscp_core::arch::PscpArch;
use pscp_core::compile::CompiledSystem;
use pscp_core::timing::{validate_timing, TimingOptions, TimingReport};
use pscp_motors::{pickup_head_actions, pickup_head_chart};
use pscp_statechart::{Chart, ChartBuilder, StateKind};
use pscp_tep::codegen::CodegenOptions;

/// The five architectures of Table 4, in row order.
pub fn table4_architectures() -> Vec<PscpArch> {
    vec![
        PscpArch::minimal(),
        PscpArch::md16_unoptimized(),
        PscpArch::md16_optimized(),
        PscpArch::dual_md16(false),
        PscpArch::dual_md16(true),
    ]
}

/// Paper values of Table 4: (label, area, crit-path X/Y, crit-path
/// DATA_VALID); `None` encodes the paper's "> 1000" / "> 3000" entries.
pub fn table4_paper_values() -> Vec<(&'static str, u32, Option<u64>, Option<u64>)> {
    vec![
        ("1 minimal TEP", 224, None, None),
        ("16bit M/D TEP, unoptimized code", 421, Some(878), Some(2041)),
        ("16bit M/D TEP, optimized code", 421, Some(524), Some(1317)),
        ("2 16bit M/D TEP, unoptimized code", 773, Some(469), Some(1081)),
        ("2 16bit M/D TEP, optimized code", 773, Some(282), Some(699)),
    ]
}

/// Table 3 paper values: (cycle path, length).
pub fn table3_paper_values() -> Vec<(&'static str, u64)> {
    vec![
        ("{Idle1, ReachPosition, Idle1}", 235),
        ("{OpReady, OpReady}", 747),
        ("{Idle1, OpReady}", 105),
        ("{OpReady, EmptyBuf, Idle1}", 772),
        ("{OpReady, EmptyBuf, Bounds, Idle1}", 1414),
        ("{OpReady, EmptyBuf, Bounds, NoData}", 2041),
        ("{NoData, OpReady}", 747),
        ("{NoData, Idle1}", 130),
        ("{NoData, ErrState, Idle1}", 180),
        ("{RunX, RunX}", 878),
        ("{RunY, RunY}", 878),
        ("{RunPhi, RunPhi}", 878),
    ]
}

/// The pickup-head chart and compiled action IR — the raw inputs of
/// [`pscp_core::optimize::optimize`], shared by the design-space
/// exploration benches and the determinism tests.
pub fn pickup_head_inputs() -> (Chart, Program) {
    let chart = pickup_head_chart();
    let env = pscp_core::compile::chart_env(&chart);
    let ir = pscp_action_lang::compile_with_env(&pickup_head_actions(), &env)
        .expect("actions compile");
    (chart, ir)
}

/// A scaled design-space-exploration workload: one pickup-head
/// controller driving `heads` independent gantries in parallel (real
/// SMD placement machines mount several pickup heads on one beam).
/// The data-preparation region is shared; each head gets its own
/// motion region — per-axis ramp routines, finish conditions, pulse
/// events and counter ports, all suffixed with the head index. The
/// returned pair feeds [`pscp_core::optimize::optimize`] exactly like
/// [`pickup_head_inputs`], with `heads * 10` routines instead of ~20 —
/// large enough that per-candidate compile/validate work, not loop
/// fixed costs, dominates the exploration.
pub fn multi_head_inputs(heads: usize) -> (Chart, Program) {
    use pscp_statechart::model::PortDirection::{Input, Output};
    let mut b = ChartBuilder::new("MultiHead");

    b.event("POWER", None);
    b.event("INIT", None);
    b.event("ALLRESET", None);
    b.event("ERROR", None);
    b.event("DATA_VALID", Some(1500));
    b.event("GRAB_RELEASE", None);
    b.internal_event("BUF_READY");
    b.internal_event("PARAMS_READY");
    b.internal_event("BOUNDS_OK");
    b.internal_event("END_DATA");
    b.condition("MOVEMENT", false);
    b.data_port("BUFFER", 8, 0x10, Input);
    b.data_port("STOPALL_P", 8, 0x11, Output);
    b.data_port("STATUS_P", 16, 0x12, Output);
    for h in 0..heads {
        b.event(format!("X_PULSE{h}"), Some(300));
        b.event(format!("Y_PULSE{h}"), Some(300));
        b.event(format!("PHI_PULSE{h}"), Some(1600));
        b.event(format!("X_STEPS{h}"), None);
        b.event(format!("Y_STEPS{h}"), None);
        b.event(format!("PHI_STEPS{h}"), None);
        b.internal_event(format!("END_MOVE{h}"));
        b.condition(format!("XFINISH{h}"), false);
        b.condition(format!("YFINISH{h}"), false);
        b.condition(format!("PHIFINISH{h}"), false);
        let base = 0x20 + 0x10 * h as u16;
        b.data_port(format!("XPERIOD{h}"), 16, base, Output);
        b.data_port(format!("YPERIOD{h}"), 16, base + 1, Output);
        b.data_port(format!("PHIPERIOD{h}"), 16, base + 2, Output);
        b.data_port(format!("XSTEPS_P{h}"), 16, base + 3, Output);
        b.data_port(format!("YSTEPS_P{h}"), 16, base + 4, Output);
        b.data_port(format!("PHISTEPS_P{h}"), 16, base + 5, Output);
        b.data_port(format!("XDIR_P{h}"), 8, base + 6, Output);
        b.data_port(format!("YDIR_P{h}"), 8, base + 7, Output);
        b.data_port(format!("PHIDIR_P{h}"), 8, base + 8, Output);
    }

    let mut regions = vec!["DataPreparation".to_string()];
    regions.extend((0..heads).map(|h| format!("ReachPosition{h}")));
    b.state("Controller", StateKind::Or)
        .contains(["OFF", "Idle1", "Operation", "ErrState"])
        .default_child("OFF");
    b.state("OFF", StateKind::Basic).transition("Idle1", "POWER");
    b.state("Idle1", StateKind::Basic)
        .transition("OpReady", "[DATA_VALID]/GetByte()");
    b.state("Operation", StateKind::And)
        .contains(regions)
        .transition("Idle1", "INIT or ALLRESET/InitializeAll()")
        .transition("ErrState", "ERROR/Stop()")
        .transition("Idle1", "END_DATA/Finish()");
    b.state("ErrState", StateKind::Basic)
        .transition("Idle1", "INIT or ALLRESET/InitializeAll()");

    b.state("DataPreparation", StateKind::Or)
        .contains(["OpReady", "EmptyBuf", "Bounds", "NoData"])
        .default_child("OpReady");
    b.state("OpReady", StateKind::Basic)
        .transition("OpReady", "[DATA_VALID]/GetByte()")
        .transition("EmptyBuf", "BUF_READY/DecodeOpcode()");
    b.state("EmptyBuf", StateKind::Basic)
        .transition("Bounds", "PARAMS_READY/CheckBounds()");
    b.state("Bounds", StateKind::Basic)
        .transition("NoData", "BOUNDS_OK/PrepareMove()");
    b.state("NoData", StateKind::Basic)
        .transition("OpReady", "not (X_PULSE0 or Y_PULSE0)/PhiParameters()")
        .transition("OpReady", "[DATA_VALID]/GetByte()");

    for h in 0..heads {
        b.state(format!("ReachPosition{h}"), StateKind::Or)
            .contains([format!("Idle2_{h}"), format!("Moving{h}")])
            .default_child(format!("Idle2_{h}"));
        b.state(format!("Idle2_{h}"), StateKind::Basic)
            .transition(format!("Moving{h}"), "[MOVEMENT]");
        b.state(format!("Moving{h}"), StateKind::And)
            .contains([format!("MoveX{h}"), format!("MoveY{h}"), format!("MovePhi{h}")])
            .transition(
                format!("Idle2_{h}"),
                &format!(
                    "[XFINISH{h} and YFINISH{h} and PHIFINISH{h}]/EndMove{h}()"
                ),
            );
        for (axis, pulse, steps, delta) in [
            ("X", "X_PULSE", "X_STEPS", "DeltaTX"),
            ("Y", "Y_PULSE", "Y_STEPS", "DeltaTY"),
            ("Phi", "PHI_PULSE", "PHI_STEPS", "DeltaTPhi"),
        ] {
            b.state(format!("Move{axis}{h}"), StateKind::Or)
                .contains([
                    format!("{axis}Start{h}"),
                    format!("Run{axis}{h}"),
                    format!("{axis}End{h}"),
                ])
                .default_child(format!("{axis}Start{h}"));
            b.state(format!("{axis}Start{h}"), StateKind::Basic)
                .transition(format!("Run{axis}{h}"), &format!("/StartMotor{axis}{h}()"));
            b.state(format!("Run{axis}{h}"), StateKind::Basic)
                .transition(format!("Run{axis}{h}"), &format!("{pulse}{h}/{delta}{h}()"))
                .transition(format!("{axis}End{h}"), &format!("{steps}{h}/Finish{axis}{h}()"));
            b.basic(format!("{axis}End{h}"));
        }
    }
    let chart = b.build().expect("multi-head chart is well-formed");

    let mut src = String::from(
        "uint:8 byte_no;\nuint:8 opcode;\nuint:16 cmd_x;\nuint:16 cmd_y;\nuint:16 cmd_phi;\n\
         int:16 moves_done;\nint:16 min_period_xy = 300;\nint:16 start_period_xy = 16800;\n\
         int:16 phi_period = 1666;\nuint:16 max_coord = 20000;\n",
    );
    for h in 0..heads {
        src.push_str(&format!(
            "uint:16 pos_x{h}; uint:16 pos_y{h}; uint:16 pos_phi{h};\n\
             int:16 xc{h}; int:16 xn{h}; int:16 xleft{h};\n\
             int:16 yc{h}; int:16 yn{h}; int:16 yleft{h};\n"
        ));
    }
    src.push_str(
        r#"
void GetByte() {
    uint:16 b = BUFFER;
    if (byte_no < 3) {
        if (byte_no == 0) {
            opcode = b;
            if (opcode == 255) { raise END_DATA; } else { byte_no = 1; }
        } else if (byte_no == 1) { cmd_x = b; byte_no = 2; }
        else { cmd_x = cmd_x + (b << 8); byte_no = 3; }
    } else if (byte_no < 5) {
        if (byte_no == 3) { cmd_y = b; byte_no = 4; }
        else { cmd_y = cmd_y + (b << 8); byte_no = 5; }
    } else if (byte_no == 5) { cmd_phi = b; byte_no = 6; }
    else {
        cmd_phi = cmd_phi + (b << 8);
        byte_no = 0;
        raise BUF_READY;
    }
}
void DecodeOpcode() {
    if (opcode == 1) { raise PARAMS_READY; } else { raise ERROR; }
}
void CheckBounds() {
    if (cmd_x > max_coord) { raise ERROR; }
    else if (cmd_y > max_coord) { raise ERROR; }
    else if (cmd_phi > 3600) { raise ERROR; }
    else { raise BOUNDS_OK; }
}
void Stop() { STOPALL_P = 1; MOVEMENT = 0; }
void Finish() { STOPALL_P = 0; STATUS_P = moves_done; }
"#,
    );
    // PrepareMove arms every head; PhiParameters only refreshes the
    // shared status word (the per-head Z axes are untracked).
    src.push_str("void PrepareMove() {\n");
    for h in 0..heads {
        src.push_str(&format!(
            "    if (cmd_x >= pos_x{h}) {{ xleft{h} = cmd_x - pos_x{h}; XDIR_P{h} = 0; }}\n\
             else {{ xleft{h} = pos_x{h} - cmd_x; XDIR_P{h} = 1; }}\n\
             if (cmd_y >= pos_y{h}) {{ yleft{h} = cmd_y - pos_y{h}; YDIR_P{h} = 0; }}\n\
             else {{ yleft{h} = pos_y{h} - cmd_y; YDIR_P{h} = 1; }}\n\
             if (cmd_phi >= pos_phi{h}) {{ PHIDIR_P{h} = 0; }} else {{ PHIDIR_P{h} = 1; }}\n"
        ));
    }
    src.push_str("    MOVEMENT = 1;\n}\n");
    src.push_str("void PhiParameters() { STATUS_P = moves_done; }\n");
    src.push_str("void InitializeAll() {\n    byte_no = 0;\n    opcode = 0;\n    MOVEMENT = 0;\n");
    for h in 0..heads {
        src.push_str(&format!(
            "    XFINISH{h} = 0;\n    YFINISH{h} = 0;\n    PHIFINISH{h} = 0;\n"
        ));
    }
    src.push_str("    STOPALL_P = 1;\n}\n");
    for h in 0..heads {
        src.push_str(&format!(
            r#"
void StartMotorX{h}() {{
    xc{h} = start_period_xy;
    xn{h} = 0;
    if (xleft{h} == 0) {{ XFINISH{h} = 1; }}
    else {{
        XFINISH{h} = 0;
        XPERIOD{h} = xc{h};
        XSTEPS_P{h} = xleft{h};
    }}
}}
void StartMotorY{h}() {{
    yc{h} = start_period_xy;
    yn{h} = 0;
    if (yleft{h} == 0) {{ YFINISH{h} = 1; }}
    else {{
        YFINISH{h} = 0;
        YPERIOD{h} = yc{h};
        YSTEPS_P{h} = yleft{h};
    }}
}}
void StartMotorPhi{h}() {{
    uint:16 dphi;
    if (cmd_phi >= pos_phi{h}) {{ dphi = cmd_phi - pos_phi{h}; }}
    else {{ dphi = pos_phi{h} - cmd_phi; }}
    if (dphi == 0) {{ PHIFINISH{h} = 1; }}
    else {{
        PHIFINISH{h} = 0;
        PHIPERIOD{h} = phi_period;
        PHISTEPS_P{h} = dphi;
    }}
}}
void DeltaTX{h}() {{
    xn{h} = xn{h} + 1;
    xleft{h} = xleft{h} - 1;
    if (xleft{h} < xn{h}) {{
        xc{h} = xc{h} + (2 * xc{h}) / (4 * xleft{h} + 1);
    }} else if (xc{h} > min_period_xy) {{
        xc{h} = xc{h} - (2 * xc{h}) / (4 * xn{h} + 1);
        if (xc{h} < min_period_xy) {{ xc{h} = min_period_xy; }}
    }}
    XPERIOD{h} = xc{h};
}}
void DeltaTY{h}() {{
    yn{h} = yn{h} + 1;
    yleft{h} = yleft{h} - 1;
    if (yleft{h} < yn{h}) {{
        yc{h} = yc{h} + (2 * yc{h}) / (4 * yleft{h} + 1);
    }} else if (yc{h} > min_period_xy) {{
        yc{h} = yc{h} - (2 * yc{h}) / (4 * yn{h} + 1);
        if (yc{h} < min_period_xy) {{ yc{h} = min_period_xy; }}
    }}
    YPERIOD{h} = yc{h};
}}
void DeltaTPhi{h}() {{ PHIPERIOD{h} = phi_period; }}
void FinishX{h}() {{ XFINISH{h} = 1; pos_x{h} = cmd_x; }}
void FinishY{h}() {{ YFINISH{h} = 1; pos_y{h} = cmd_y; }}
void FinishPhi{h}() {{ PHIFINISH{h} = 1; pos_phi{h} = cmd_phi; }}
void EndMove{h}() {{
    MOVEMENT = 0;
    XFINISH{h} = 0;
    YFINISH{h} = 0;
    PHIFINISH{h} = 0;
    moves_done = moves_done + 1;
    STATUS_P = moves_done;
    raise END_MOVE{h};
}}
"#
        ));
    }

    let env = pscp_core::compile::chart_env(&chart);
    let ir = pscp_action_lang::compile_with_env(&src, &env)
        .expect("multi-head actions compile");
    (chart, ir)
}

/// Compiles the pickup-head example for an architecture. The
/// "optimized code" configurations include the storage promotion of §4:
/// the hottest scalar globals move into the register file.
pub fn example_system(arch: &PscpArch) -> CompiledSystem {
    let chart = pickup_head_chart();
    let env = pscp_core::compile::chart_env(&chart);
    let ir = pscp_action_lang::compile_with_env(&pickup_head_actions(), &env)
        .expect("actions compile");
    let mut options = CodegenOptions::default();
    if arch.tep.optimize_code && arch.tep.register_file > 0 {
        for slot in pscp_core::optimize::hottest_scalar_globals(
            &ir,
            arch.tep.register_file as usize,
        ) {
            options
                .global_promotions
                .insert(slot, pscp_tep::StorageClass::Register);
        }
    }
    pscp_core::compile::compile_system_from_ir(&chart, &ir, arch, &options)
        .expect("pickup-head example compiles")
}

/// How many parallel regions [`gang_system`] builds.
pub const GANG_REGIONS: usize = 16;
/// States (and ring transitions) per region in [`gang_system`].
pub const GANG_STATES: usize = 5;
/// Shared probe events; every state listens to six of them.
pub const GANG_PROBES: usize = 8;

/// An SLA-bound workload for gang-simulation benchmarking: one AND
/// state of [`GANG_REGIONS`] independent rotors, each an OR-state ring
/// of [`GANG_STATES`] basic states advanced by its own event, plus
/// six shared probe events per state that also advance the ring.
/// With 560 transitions (112 of them on active sources every cycle)
/// and a wide CR, per-cycle cost is dominated by transition selection /
/// SLA evaluation rather than TEP execution — exactly the plane the
/// bit-sliced gang collapses to `1/64` of a word-parallel pass. One
/// rotor carries a counting action so the TEP path is still exercised
/// on firing cycles.
pub fn gang_chart() -> Chart {
    let mut b = ChartBuilder::new("gangload");
    for r in 0..GANG_REGIONS {
        b.event(format!("E{r}"), None);
    }
    for p in 0..GANG_PROBES {
        b.event(format!("P{p}"), None);
    }
    let regions: Vec<String> = (0..GANG_REGIONS).map(|r| format!("R{r}")).collect();
    b.state("Top", StateKind::Or).contains(["Run"]).default_child("Run");
    b.state("Run", StateKind::And).contains(regions.clone());
    for (r, region) in regions.iter().enumerate() {
        let states: Vec<String> =
            (0..GANG_STATES).map(|s| format!("R{r}S{s}")).collect();
        b.state(region, StateKind::Or)
            .contains(states.clone())
            .default_child(&states[0]);
        for s in 0..GANG_STATES {
            let next = &states[(s + 1) % GANG_STATES];
            let label = if r == 0 && s == GANG_STATES - 1 {
                format!("E{r}/Bump()")
            } else {
                format!("E{r}")
            };
            let mut scope = b.state(&states[s], StateKind::Basic);
            scope.transition(next, &label);
            for j in 0..6 {
                scope.transition(next, &format!("P{}", (r + s + j) % GANG_PROBES));
            }
        }
    }
    b.build().expect("gang workload chart builds")
}

/// Action source for [`gang_chart`].
pub const GANG_ACTIONS: &str = "int:16 laps; void Bump() { laps = laps + 1; }";

/// Compiles the gang workload for the paper's final architecture.
pub fn gang_system() -> CompiledSystem {
    pscp_core::compile::compile_system(
        &gang_chart(),
        GANG_ACTIONS,
        &PscpArch::dual_md16(true),
        &CodegenOptions::default(),
    )
    .expect("gang workload compiles")
}

/// Deterministic sparse scripts for [`gang_system`]: scenario `i` gets
/// `cycles` script steps with roughly 3% of them carrying one region
/// event and a rare probe event (~0.2%, firing every region at once),
/// so gang lanes idle most cycles and fire out of phase — the regime
/// the bit-sliced fast path is built for.
pub fn gang_scripts(scenarios: usize, cycles: usize) -> Vec<Vec<Vec<String>>> {
    (0..scenarios)
        .map(|i| {
            (0..cycles)
                .map(|c| {
                    if (i * 7 + c) % 37 == 0 {
                        vec![format!("E{}", (i + c) % GANG_REGIONS)]
                    } else if (i * 11 + c) % 499 == 0 {
                        vec![format!("P{}", (i + c) % GANG_PROBES)]
                    } else {
                        Vec::new()
                    }
                })
                .collect()
        })
        .collect()
}

/// Runs the timing validation with default options.
pub fn example_timing(system: &CompiledSystem) -> TimingReport {
    validate_timing(system, &TimingOptions::default())
}

/// Worst X/Y pulse-servicing cycle of a report (the Table 4 "Crit. Path
/// X, Y" column).
pub fn crit_path_xy(report: &TimingReport) -> Option<u64> {
    [report.worst_for("X_PULSE"), report.worst_for("Y_PULSE")]
        .into_iter()
        .flatten()
        .max()
}

/// Worst DATA_VALID cycle (the Table 4 "Crit. Path DATA_VALID" column).
pub fn crit_path_data_valid(report: &TimingReport) -> Option<u64> {
    report.worst_for("DATA_VALID")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_core::area::pscp_area;

    #[test]
    fn table4_shape_reproduced() {
        // The qualitative claims of Table 4 must hold on our numbers:
        // each architecture step improves both critical paths, and area
        // grows monotonically except rows 2->3 (same hardware).
        let mut xy = Vec::new();
        let mut dv = Vec::new();
        let mut area = Vec::new();
        for arch in table4_architectures() {
            let sys = example_system(&arch);
            let rep = example_timing(&sys);
            xy.push(crit_path_xy(&rep).expect("X/Y cycles found"));
            dv.push(crit_path_data_valid(&rep).expect("DATA_VALID cycles found"));
            area.push(pscp_area(&sys).total().0);
        }
        // Row 1 (minimal) is far worse than row 2 (M/D unit).
        assert!(xy[0] > 2 * xy[1], "minimal {} !>> md16 {}", xy[0], xy[1]);
        assert!(dv[0] > 2 * dv[1], "minimal {} !>> md16 {}", dv[0], dv[1]);
        // Optimised code beats unoptimised on the same hardware.
        assert!(xy[2] < xy[1]);
        assert!(dv[2] < dv[1]);
        // A second TEP beats one TEP at the same code level.
        assert!(xy[3] < xy[1]);
        assert!(dv[3] < dv[1]);
        // The final architecture is the best of all.
        assert!(xy[4] == *xy.iter().min().unwrap());
        assert!(dv[4] == *dv.iter().min().unwrap());
        // Areas: md16 > minimal; 2 TEPs > 1 TEP.
        assert!(area[1] > area[0]);
        assert!(area[3] > area[1]);
        assert!(area[4] > area[2]);
        // And everything still fits the XC4025.
        assert!(area.iter().all(|&a| a <= 1024), "areas: {area:?}");
    }

    #[test]
    fn final_architecture_meets_all_constraints() {
        let sys = example_system(&PscpArch::dual_md16(true));
        let rep = example_timing(&sys);
        assert!(
            rep.ok(),
            "the paper's final architecture fulfils all timing requirements: {:?}",
            rep.violations
        );
    }

    #[test]
    fn minimal_architecture_violates_constraints() {
        let sys = example_system(&PscpArch::minimal());
        let rep = example_timing(&sys);
        assert!(!rep.ok(), "the minimal TEP must violate Table 2");
        let events: Vec<&str> =
            rep.violations.iter().map(|v| v.event.as_str()).collect();
        assert!(events.contains(&"X_PULSE"), "X deadline blown: {events:?}");
    }
}
