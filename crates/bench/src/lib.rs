//! Shared plumbing for the experiment harness.
//!
//! One binary per table/figure of the paper lives in `src/bin/`; the
//! Criterion benches in `benches/` measure the toolchain itself. This
//! library provides the example system builders they share.

use pscp_action_lang::ir::Program;
use pscp_core::arch::PscpArch;
use pscp_core::compile::CompiledSystem;
use pscp_core::timing::{validate_timing, TimingOptions, TimingReport};
use pscp_motors::{pickup_head_actions, pickup_head_chart};
use pscp_statechart::{Chart, ChartBuilder, StateKind};
use pscp_tep::codegen::CodegenOptions;

/// The five architectures of Table 4, in row order.
pub fn table4_architectures() -> Vec<PscpArch> {
    vec![
        PscpArch::minimal(),
        PscpArch::md16_unoptimized(),
        PscpArch::md16_optimized(),
        PscpArch::dual_md16(false),
        PscpArch::dual_md16(true),
    ]
}

/// Paper values of Table 4: (label, area, crit-path X/Y, crit-path
/// DATA_VALID); `None` encodes the paper's "> 1000" / "> 3000" entries.
pub fn table4_paper_values() -> Vec<(&'static str, u32, Option<u64>, Option<u64>)> {
    vec![
        ("1 minimal TEP", 224, None, None),
        ("16bit M/D TEP, unoptimized code", 421, Some(878), Some(2041)),
        ("16bit M/D TEP, optimized code", 421, Some(524), Some(1317)),
        ("2 16bit M/D TEP, unoptimized code", 773, Some(469), Some(1081)),
        ("2 16bit M/D TEP, optimized code", 773, Some(282), Some(699)),
    ]
}

/// Table 3 paper values: (cycle path, length).
pub fn table3_paper_values() -> Vec<(&'static str, u64)> {
    vec![
        ("{Idle1, ReachPosition, Idle1}", 235),
        ("{OpReady, OpReady}", 747),
        ("{Idle1, OpReady}", 105),
        ("{OpReady, EmptyBuf, Idle1}", 772),
        ("{OpReady, EmptyBuf, Bounds, Idle1}", 1414),
        ("{OpReady, EmptyBuf, Bounds, NoData}", 2041),
        ("{NoData, OpReady}", 747),
        ("{NoData, Idle1}", 130),
        ("{NoData, ErrState, Idle1}", 180),
        ("{RunX, RunX}", 878),
        ("{RunY, RunY}", 878),
        ("{RunPhi, RunPhi}", 878),
    ]
}

/// The pickup-head chart and compiled action IR — the raw inputs of
/// [`pscp_core::optimize::optimize`], shared by the design-space
/// exploration benches and the determinism tests.
pub fn pickup_head_inputs() -> (Chart, Program) {
    let chart = pickup_head_chart();
    let env = pscp_core::compile::chart_env(&chart);
    let ir = pscp_action_lang::compile_with_env(&pickup_head_actions(), &env)
        .expect("actions compile");
    (chart, ir)
}

/// Compiles the pickup-head example for an architecture. The
/// "optimized code" configurations include the storage promotion of §4:
/// the hottest scalar globals move into the register file.
pub fn example_system(arch: &PscpArch) -> CompiledSystem {
    let chart = pickup_head_chart();
    let env = pscp_core::compile::chart_env(&chart);
    let ir = pscp_action_lang::compile_with_env(&pickup_head_actions(), &env)
        .expect("actions compile");
    let mut options = CodegenOptions::default();
    if arch.tep.optimize_code && arch.tep.register_file > 0 {
        for slot in pscp_core::optimize::hottest_scalar_globals(
            &ir,
            arch.tep.register_file as usize,
        ) {
            options
                .global_promotions
                .insert(slot, pscp_tep::StorageClass::Register);
        }
    }
    pscp_core::compile::compile_system_from_ir(&chart, &ir, arch, &options)
        .expect("pickup-head example compiles")
}

/// How many parallel regions [`gang_system`] builds.
pub const GANG_REGIONS: usize = 16;
/// States (and ring transitions) per region in [`gang_system`].
pub const GANG_STATES: usize = 5;
/// Shared probe events; every state listens to six of them.
pub const GANG_PROBES: usize = 8;

/// An SLA-bound workload for gang-simulation benchmarking: one AND
/// state of [`GANG_REGIONS`] independent rotors, each an OR-state ring
/// of [`GANG_STATES`] basic states advanced by its own event, plus
/// six shared probe events per state that also advance the ring.
/// With 560 transitions (112 of them on active sources every cycle)
/// and a wide CR, per-cycle cost is dominated by transition selection /
/// SLA evaluation rather than TEP execution — exactly the plane the
/// bit-sliced gang collapses to `1/64` of a word-parallel pass. One
/// rotor carries a counting action so the TEP path is still exercised
/// on firing cycles.
pub fn gang_chart() -> Chart {
    let mut b = ChartBuilder::new("gangload");
    for r in 0..GANG_REGIONS {
        b.event(format!("E{r}"), None);
    }
    for p in 0..GANG_PROBES {
        b.event(format!("P{p}"), None);
    }
    let regions: Vec<String> = (0..GANG_REGIONS).map(|r| format!("R{r}")).collect();
    b.state("Top", StateKind::Or).contains(["Run"]).default_child("Run");
    b.state("Run", StateKind::And).contains(regions.clone());
    for (r, region) in regions.iter().enumerate() {
        let states: Vec<String> =
            (0..GANG_STATES).map(|s| format!("R{r}S{s}")).collect();
        b.state(region, StateKind::Or)
            .contains(states.clone())
            .default_child(&states[0]);
        for s in 0..GANG_STATES {
            let next = &states[(s + 1) % GANG_STATES];
            let label = if r == 0 && s == GANG_STATES - 1 {
                format!("E{r}/Bump()")
            } else {
                format!("E{r}")
            };
            let mut scope = b.state(&states[s], StateKind::Basic);
            scope.transition(next, &label);
            for j in 0..6 {
                scope.transition(next, &format!("P{}", (r + s + j) % GANG_PROBES));
            }
        }
    }
    b.build().expect("gang workload chart builds")
}

/// Action source for [`gang_chart`].
pub const GANG_ACTIONS: &str = "int:16 laps; void Bump() { laps = laps + 1; }";

/// Compiles the gang workload for the paper's final architecture.
pub fn gang_system() -> CompiledSystem {
    pscp_core::compile::compile_system(
        &gang_chart(),
        GANG_ACTIONS,
        &PscpArch::dual_md16(true),
        &CodegenOptions::default(),
    )
    .expect("gang workload compiles")
}

/// Deterministic sparse scripts for [`gang_system`]: scenario `i` gets
/// `cycles` script steps with roughly 3% of them carrying one region
/// event and a rare probe event (~0.2%, firing every region at once),
/// so gang lanes idle most cycles and fire out of phase — the regime
/// the bit-sliced fast path is built for.
pub fn gang_scripts(scenarios: usize, cycles: usize) -> Vec<Vec<Vec<String>>> {
    (0..scenarios)
        .map(|i| {
            (0..cycles)
                .map(|c| {
                    if (i * 7 + c) % 37 == 0 {
                        vec![format!("E{}", (i + c) % GANG_REGIONS)]
                    } else if (i * 11 + c) % 499 == 0 {
                        vec![format!("P{}", (i + c) % GANG_PROBES)]
                    } else {
                        Vec::new()
                    }
                })
                .collect()
        })
        .collect()
}

/// Runs the timing validation with default options.
pub fn example_timing(system: &CompiledSystem) -> TimingReport {
    validate_timing(system, &TimingOptions::default())
}

/// Worst X/Y pulse-servicing cycle of a report (the Table 4 "Crit. Path
/// X, Y" column).
pub fn crit_path_xy(report: &TimingReport) -> Option<u64> {
    [report.worst_for("X_PULSE"), report.worst_for("Y_PULSE")]
        .into_iter()
        .flatten()
        .max()
}

/// Worst DATA_VALID cycle (the Table 4 "Crit. Path DATA_VALID" column).
pub fn crit_path_data_valid(report: &TimingReport) -> Option<u64> {
    report.worst_for("DATA_VALID")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_core::area::pscp_area;

    #[test]
    fn table4_shape_reproduced() {
        // The qualitative claims of Table 4 must hold on our numbers:
        // each architecture step improves both critical paths, and area
        // grows monotonically except rows 2->3 (same hardware).
        let mut xy = Vec::new();
        let mut dv = Vec::new();
        let mut area = Vec::new();
        for arch in table4_architectures() {
            let sys = example_system(&arch);
            let rep = example_timing(&sys);
            xy.push(crit_path_xy(&rep).expect("X/Y cycles found"));
            dv.push(crit_path_data_valid(&rep).expect("DATA_VALID cycles found"));
            area.push(pscp_area(&sys).total().0);
        }
        // Row 1 (minimal) is far worse than row 2 (M/D unit).
        assert!(xy[0] > 2 * xy[1], "minimal {} !>> md16 {}", xy[0], xy[1]);
        assert!(dv[0] > 2 * dv[1], "minimal {} !>> md16 {}", dv[0], dv[1]);
        // Optimised code beats unoptimised on the same hardware.
        assert!(xy[2] < xy[1]);
        assert!(dv[2] < dv[1]);
        // A second TEP beats one TEP at the same code level.
        assert!(xy[3] < xy[1]);
        assert!(dv[3] < dv[1]);
        // The final architecture is the best of all.
        assert!(xy[4] == *xy.iter().min().unwrap());
        assert!(dv[4] == *dv.iter().min().unwrap());
        // Areas: md16 > minimal; 2 TEPs > 1 TEP.
        assert!(area[1] > area[0]);
        assert!(area[3] > area[1]);
        assert!(area[4] > area[2]);
        // And everything still fits the XC4025.
        assert!(area.iter().all(|&a| a <= 1024), "areas: {area:?}");
    }

    #[test]
    fn final_architecture_meets_all_constraints() {
        let sys = example_system(&PscpArch::dual_md16(true));
        let rep = example_timing(&sys);
        assert!(
            rep.ok(),
            "the paper's final architecture fulfils all timing requirements: {:?}",
            rep.violations
        );
    }

    #[test]
    fn minimal_architecture_violates_constraints() {
        let sys = example_system(&PscpArch::minimal());
        let rep = example_timing(&sys);
        assert!(!rep.ok(), "the minimal TEP must violate Table 2");
        let events: Vec<&str> =
            rep.violations.iter().map(|v| v.event.as_str()).collect();
        assert!(events.contains(&"X_PULSE"), "X deadline blown: {events:?}");
    }
}
